//! The multi-threaded dataflow scheduler: a ready-queue/wavefront
//! executor over the same graphs the sequential evaluator in
//! [`crate::exec`] runs.
//!
//! ## Algorithm
//!
//! At plan-compile time each schedulable node set gets a [`WaveMeta`]:
//! per-node consumer lists, initial pending-input counts (one per data
//! edge plus one per control edge), and the source set (`pending == 0`).
//! Execution seeds the shared worker pool (`autograph-par`) with the
//! sources; every completed node decrements its consumers' pending
//! counts and injects the ones that reach zero. The thread that owns the
//! run *helps* — it pops and executes queued tasks until the run's live
//! counter drains — so nested `While`/`Cond` bodies schedule through the
//! same pool without deadlocking: waiting threads always contribute
//! worker cycles instead of blocking.
//!
//! ## Stateful-op ordering (determinism)
//!
//! Pure nodes may run in any order — each consumes immutable inputs and
//! produces its value exactly once, so results are bitwise identical to
//! the sequential executor. Stateful ops are serialized per resource by
//! explicit **control edges** added in creation (= program) order:
//!
//! * variable reads order after the preceding write; a write orders
//!   after every read since the previous write (reads of the same
//!   variable stay concurrent);
//! * `Print`/`Assert` nodes form one chain, preserving output order;
//! * a `Cond`/`While` node conservatively inherits every resource its
//!   subgraphs touch, so e.g. two loops assigning the same variable
//!   serialize while independent loops run concurrently.
//!
//! Subgraphs smaller than [`WAVEFRONT_MIN_NODES`] execute inline on the
//! current thread (same storage, same kernels) to keep tiny loop bodies
//! cheap.

// The scheduler's error paths must never themselves panic: a stray
// unwrap here would defeat the catch_unwind contract. Enforced by CI.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::error::panic_message;
use crate::exec::{pack_outputs, subgraph_order, ExecEnv};
use crate::ir::{GValue, Graph, NodeId, OpKind, SubGraph};
use crate::ops;
use crate::run::RunCtx;
use crate::{GraphError, Result};
use autograph_faults as faults;
use autograph_obs as obs;
use autograph_par as par;
use autograph_tensor::Tensor;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Minimum number of schedulable nodes for a (sub)graph to go through
/// the wavefront scheduler; smaller sets run inline on the current
/// thread (per-task queue overhead would dominate).
const WAVEFRONT_MIN_NODES: usize = 8;

/// Precomputed scheduling metadata for one node set (a plan's needed set
/// or a subgraph's pruned order).
#[derive(Debug, Clone, Default)]
pub(crate) struct WaveMeta {
    /// The node set in topological (creation) order.
    order: Vec<NodeId>,
    /// Downstream nodes per node: data-edge consumers plus control-edge
    /// successors. Indexed by `NodeId`; only entries for `order` matter.
    consumers: Vec<Vec<NodeId>>,
    /// Initial pending count per node (data edges + control edges in).
    pending0: Vec<u32>,
    /// Nodes with no pending inputs — the initial wavefront.
    sources: Vec<NodeId>,
    /// Whether the set is large enough to schedule; when false only
    /// `order` is populated and execution is inline.
    wavefront: bool,
}

/// A stateful resource that forces ordering between nodes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Resource {
    /// A named session variable (read = `Variable`, write = `Assign`).
    Var(String),
    /// The output stream shared by `Print` and `Assert` nodes.
    Io,
}

/// Record `op`'s resource accesses into `acc` (`true` = write). Control
/// flow recurses into its subgraphs so a `While`/`Cond` is ordered
/// against everything its body touches.
fn node_accesses(op: &OpKind, acc: &mut HashMap<Resource, bool>) {
    fn touch(acc: &mut HashMap<Resource, bool>, res: Resource, write: bool) {
        let e = acc.entry(res).or_insert(false);
        *e = *e || write;
    }
    match op {
        OpKind::Variable { name } => touch(acc, Resource::Var(name.clone()), false),
        OpKind::Assign { name } => touch(acc, Resource::Var(name.clone()), true),
        OpKind::Print(_) | OpKind::AssertOp(_) => touch(acc, Resource::Io, true),
        OpKind::Cond { then_g, else_g } => {
            graph_accesses(&then_g.graph, acc);
            graph_accesses(&else_g.graph, acc);
        }
        OpKind::While { cond_g, body_g, .. } => {
            graph_accesses(&cond_g.graph, acc);
            graph_accesses(&body_g.graph, acc);
        }
        _ => {}
    }
}

fn graph_accesses(g: &Graph, acc: &mut HashMap<Resource, bool>) {
    for n in &g.nodes {
        node_accesses(&n.op, acc);
    }
}

/// Build the execution DAG's adjacency for `order`: per-node consumer
/// lists (data edges plus per-resource control edges) and pending-input
/// counts. Shared by [`wave_meta`] and the critical-path analysis in
/// [`crate::report`].
pub(crate) fn edge_lists(graph: &Graph, order: &[NodeId]) -> (Vec<Vec<NodeId>>, Vec<u32>) {
    let n = graph.nodes.len();
    let mut consumers: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    let mut pending = vec![0u32; n];
    for &id in order {
        for &inp in &graph.nodes[id].inputs {
            consumers[inp].push(id);
            pending[id] += 1;
        }
    }
    // control edges: per-resource chains in program order
    struct Chain {
        last_write: Option<NodeId>,
        reads_since: Vec<NodeId>,
    }
    let mut chains: HashMap<Resource, Chain> = HashMap::new();
    let mut acc: HashMap<Resource, bool> = HashMap::new();
    for &id in order {
        acc.clear();
        node_accesses(&graph.nodes[id].op, &mut acc);
        for (res, write) in acc.drain() {
            let chain = chains.entry(res).or_insert(Chain {
                last_write: None,
                reads_since: Vec::new(),
            });
            if write {
                if chain.reads_since.is_empty() {
                    if let Some(w) = chain.last_write {
                        consumers[w].push(id);
                        pending[id] += 1;
                    }
                } else {
                    for &r in &chain.reads_since {
                        consumers[r].push(id);
                        pending[id] += 1;
                    }
                    chain.reads_since.clear();
                }
                chain.last_write = Some(id);
            } else {
                if let Some(w) = chain.last_write {
                    consumers[w].push(id);
                    pending[id] += 1;
                }
                chain.reads_since.push(id);
            }
        }
    }
    (consumers, pending)
}

/// Build scheduling metadata for `order` (a topologically sorted node
/// subset of `graph` whose data inputs are all within the subset).
pub(crate) fn wave_meta(graph: &Graph, order: Vec<NodeId>) -> WaveMeta {
    if order.len() < WAVEFRONT_MIN_NODES {
        return WaveMeta {
            order,
            ..WaveMeta::default()
        };
    }
    let (consumers, pending) = edge_lists(graph, &order);
    let sources = order.iter().copied().filter(|&i| pending[i] == 0).collect();
    WaveMeta {
        order,
        consumers,
        pending0: pending,
        sources,
        wavefront: true,
    }
}

/// Shared mutable state for one parallel `Session::run`: feeds are
/// read-only, the variable store sits behind a mutex (contention is
/// bounded because variable ops are serialized by control edges anyway).
struct ParCtx<'a> {
    feeds: &'a HashMap<String, Tensor>,
    vars: Mutex<HashMap<String, Tensor>>,
    /// Run limits and progress counters, shared with the session.
    run: &'a RunCtx,
}

impl ParCtx<'_> {
    fn lock_vars(&self) -> std::sync::MutexGuard<'_, HashMap<String, Tensor>> {
        // a poisoned lock means a kernel panicked; the panic was already
        // converted to a run error, the store itself is still consistent
        self.vars
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// One (sub)graph execution: value slots, pending counts and completion
/// accounting. Tasks reference the run through an erased pointer; the
/// owner keeps it alive by helping until `live` drains to zero.
struct ParRun<'r> {
    graph: &'r Graph,
    meta: &'r WaveMeta,
    /// Subgraph arguments bound to `Param(i)` nodes (empty at top level).
    args: &'r [GValue],
    ctx: &'r ParCtx<'r>,
    slots: Vec<OnceLock<GValue>>,
    pending: Vec<AtomicU32>,
    /// Tasks queued or running for this run.
    live: AtomicUsize,
    failed: AtomicBool,
    err: Mutex<Option<GraphError>>,
    /// Whether this run feeds the session's per-node cost collector.
    /// True only for the top-level plan: subgraph runs reuse node ids
    /// from their own (sub)graph, which would collide with the parent's,
    /// and their cost already folds into the owning `While`/`Cond` node.
    collect: bool,
}

impl<'r> ParRun<'r> {
    fn new(
        graph: &'r Graph,
        meta: &'r WaveMeta,
        args: &'r [GValue],
        ctx: &'r ParCtx<'r>,
        collect: bool,
    ) -> ParRun<'r> {
        let n = graph.nodes.len();
        ParRun {
            graph,
            meta,
            args,
            ctx,
            slots: (0..n).map(|_| OnceLock::new()).collect(),
            pending: meta.pending0.iter().map(|&p| AtomicU32::new(p)).collect(),
            live: AtomicUsize::new(0),
            failed: AtomicBool::new(false),
            err: Mutex::new(None),
            collect,
        }
    }

    fn input_values(&self, id: NodeId) -> Result<Vec<GValue>> {
        self.graph.nodes[id]
            .inputs
            .iter()
            .map(|&i| {
                self.slots[i]
                    .get()
                    .cloned()
                    .ok_or_else(|| GraphError::runtime(format!("input node {i} not yet computed")))
            })
            .collect()
    }

    /// Evaluate one node (same semantics as the sequential
    /// `exec::eval_node`, against the shared variable store).
    fn eval(&self, id: NodeId) -> Result<GValue> {
        let node = &self.graph.nodes[id];
        self.ctx
            .run
            .before_node()
            .map_err(|e| e.at_node(node.name.clone()).at_span(node.span))?;
        let v = match &node.op {
            OpKind::Placeholder { name } => self
                .ctx
                .feeds
                .get(name)
                .cloned()
                .map(GValue::Tensor)
                .ok_or_else(|| GraphError::runtime(format!("placeholder '{name}' was not fed"))),
            OpKind::Variable { name } => self
                .ctx
                .lock_vars()
                .get(name)
                .cloned()
                .map(GValue::Tensor)
                .ok_or_else(|| {
                    GraphError::runtime(format!("variable '{name}' is not initialized"))
                }),
            OpKind::Assign { name } => {
                let inputs = self.input_values(id)?;
                let v = inputs[0].as_tensor()?.clone();
                self.ctx.lock_vars().insert(name.clone(), v.clone());
                Ok(GValue::Tensor(v))
            }
            OpKind::Group => {
                let inputs = self.input_values(id)?;
                Ok(inputs.last().cloned().unwrap_or(GValue::Tuple(vec![])))
            }
            OpKind::Param(i) => self
                .args
                .get(*i)
                .cloned()
                .ok_or_else(|| GraphError::runtime(format!("missing subgraph argument {i}"))),
            OpKind::Cond { then_g, else_g } => {
                let inputs = self.input_values(id)?;
                let pred = ops::as_bool_scalar(&inputs[0])?;
                if obs::enabled() {
                    obs::count(
                        "graph",
                        if pred {
                            "cond_then_taken"
                        } else {
                            "cond_else_taken"
                        },
                        1,
                    );
                }
                let branch = if pred { then_g } else { else_g };
                run_subgraph(self.ctx, branch, &inputs[1..]).map(pack_outputs)
            }
            OpKind::While {
                cond_g,
                body_g,
                max_iters,
            } => {
                let state = self.input_values(id)?;
                run_while(self.ctx, cond_g, body_g, state, *max_iters)
            }
            _ => {
                let inputs = self.input_values(id)?;
                // chaos-test hook; one relaxed atomic load when no plan
                // is installed
                match faults::inject("graph", node.op.mnemonic()) {
                    Ok(()) => {}
                    Err(e) => {
                        return Err(GraphError::runtime(e.to_string())
                            .at_node(node.name.clone())
                            .at_span(node.span))
                    }
                }
                if obs::enabled() {
                    obs::count("graph", "node_evals", 1);
                    let _span = obs::span("graph_op", node.op.mnemonic());
                    ops::execute(&node.op, &inputs)
                } else {
                    ops::execute(&node.op, &inputs)
                }
            }
        };
        v.map_err(|e| e.at_node(node.name.clone()).at_span(node.span))
    }

    /// Evaluate `id` and store its value, recording the first failure.
    /// After a failure the remaining nodes become no-ops so the queue
    /// drains gracefully.
    fn exec_store(&self, id: NodeId) {
        if self.failed.load(Ordering::Acquire) {
            return;
        }
        let collector = if self.collect {
            self.ctx.run.collector.as_ref()
        } else {
            None
        };
        let started = collector.map(|_| {
            (
                std::time::Instant::now(),
                autograph_tensor::mem::thread_allocated(),
            )
        });
        match catch_unwind(AssertUnwindSafe(|| self.eval(id))) {
            Ok(Ok(v)) => {
                let _ = self.slots[id].set(v);
            }
            Ok(Err(e)) => self.fail(e),
            Err(payload) => {
                let node = &self.graph.nodes[id];
                self.fail(
                    GraphError::panic(format!(
                        "kernel panicked: {}",
                        panic_message(payload.as_ref())
                    ))
                    .at_node(node.name.clone())
                    .at_span(node.span),
                );
            }
        }
        if let (Some(col), Some((t0, alloc0))) = (collector, started) {
            col.record(
                id,
                t0.elapsed().as_nanos() as u64,
                autograph_tensor::mem::thread_allocated().wrapping_sub(alloc0),
            );
        }
    }

    fn fail(&self, e: GraphError) {
        if let Ok(mut slot) = self.err.lock() {
            if slot.is_none() {
                *slot = Some(e);
            }
        }
        self.failed.store(true, Ordering::Release);
    }

    /// Task entry point for the worker pool.
    ///
    /// # Safety
    ///
    /// `data` must point to a live `ParRun` — guaranteed because the run
    /// owner helps until `live == 0` before dropping it.
    unsafe fn task_entry(data: *const (), id: usize) {
        let run = unsafe { &*(data as *const ParRun<'_>) };
        run.step(id);
    }

    /// Execute one node, then schedule any consumers it makes ready.
    fn step(&self, id: NodeId) {
        self.exec_store(id);
        let mut ready: Vec<NodeId> = Vec::new();
        for &c in &self.meta.consumers[id] {
            if self.pending[c].fetch_sub(1, Ordering::AcqRel) == 1 {
                ready.push(c);
            }
        }
        if !ready.is_empty() && !self.failed.load(Ordering::Acquire) {
            // bump `live` BEFORE injecting so it never transiently hits
            // zero while work remains
            self.live.fetch_add(ready.len(), Ordering::Relaxed);
            let data = self as *const ParRun<'_> as *const ();
            // SAFETY: see `task_entry` — the run outlives its tasks.
            unsafe {
                par::inject(ready.into_iter().map(|c| par::Task {
                    data,
                    arg: c,
                    run: Self::task_entry,
                }));
            }
        }
        self.live.fetch_sub(1, Ordering::Release);
    }

    /// Run to completion: wavefront-schedule large sets, run small ones
    /// inline in topological order.
    fn execute(&self) {
        if !self.meta.wavefront {
            for &id in &self.meta.order {
                if self.failed.load(Ordering::Acquire) {
                    break;
                }
                self.exec_store(id);
            }
            return;
        }
        if self.meta.sources.is_empty() {
            return;
        }
        self.live.store(self.meta.sources.len(), Ordering::Relaxed);
        let data = self as *const ParRun<'_> as *const ();
        // SAFETY: we help until `live == 0` below, so `self` outlives
        // every injected task.
        unsafe {
            par::inject(self.meta.sources.iter().map(|&id| par::Task {
                data,
                arg: id,
                run: Self::task_entry,
            }));
        }
        par::help_until(|| self.live.load(Ordering::Acquire) == 0);
    }

    /// Collect `outputs` after [`ParRun::execute`], surfacing the first
    /// recorded error.
    fn finish(&self, outputs: &[NodeId]) -> Result<Vec<GValue>> {
        if let Ok(mut slot) = self.err.lock() {
            if let Some(e) = slot.take() {
                return Err(e);
            }
        }
        outputs
            .iter()
            .map(|&o| {
                self.slots[o]
                    .get()
                    .cloned()
                    .ok_or_else(|| GraphError::runtime(format!("fetch {o} was not computed")))
            })
            .collect()
    }
}

/// Evaluate a subgraph under the parallel context (used by `Cond`
/// branches, which have no cached metadata).
fn run_subgraph(ctx: &ParCtx<'_>, sub: &SubGraph, args: &[GValue]) -> Result<Vec<GValue>> {
    let meta = wave_meta(&sub.graph, subgraph_order(sub));
    run_sub_with_meta(ctx, sub, &meta, args)
}

fn run_sub_with_meta(
    ctx: &ParCtx<'_>,
    sub: &SubGraph,
    meta: &WaveMeta,
    args: &[GValue],
) -> Result<Vec<GValue>> {
    if args.len() != sub.num_params {
        return Err(GraphError::runtime(format!(
            "subgraph expects {} arguments, got {}",
            sub.num_params,
            args.len()
        )));
    }
    let run = ParRun::new(&sub.graph, meta, args, ctx, false);
    run.execute();
    run.finish(&sub.outputs)
}

/// A `While` loop under the parallel context: iterations stay serial
/// (each consumes the previous state), but the metadata is computed once
/// and each body execution wavefront-schedules its independent nodes.
fn run_while(
    ctx: &ParCtx<'_>,
    cond_g: &SubGraph,
    body_g: &SubGraph,
    mut state: Vec<GValue>,
    max_iters: Option<u64>,
) -> Result<GValue> {
    let cond_meta = wave_meta(&cond_g.graph, subgraph_order(cond_g));
    let body_meta = wave_meta(&body_g.graph, subgraph_order(body_g));
    let mut iters = 0u64;
    let limit = ctx.run.while_limit(max_iters);
    let outcome = loop {
        let keep = match run_sub_with_meta(ctx, cond_g, &cond_meta, &state).and_then(|c| {
            c.first()
                .ok_or_else(|| GraphError::runtime("while condition returned nothing"))
                .and_then(ops::as_bool_scalar)
        }) {
            Ok(k) => k,
            Err(e) => break Err(e),
        };
        if !keep {
            break Ok(());
        }
        state = match run_sub_with_meta(ctx, body_g, &body_meta, &state) {
            Ok(s) => s,
            Err(e) => break Err(e),
        };
        iters += 1;
        if let Err(e) = ctx.run.after_while_iter() {
            break Err(e);
        }
        if let Some(limit) = limit {
            if iters >= limit {
                break Err(GraphError::runtime(format!(
                    "while loop exceeded max_iters={limit}"
                )));
            }
        }
    };
    // flush the partial iteration count even when the loop failed, so
    // metrics and traces of failed runs reflect work done
    obs::observe("graph", "while_iters", iters);
    outcome?;
    Ok(GValue::Tuple(state))
}

/// Execute a compiled plan with the parallel scheduler. The session's
/// variable store is moved into a mutex for the duration of the run and
/// restored afterwards, so the sequential API (`&mut HashMap`) is
/// preserved.
pub(crate) fn run_plan_parallel(
    graph: &Graph,
    meta: &WaveMeta,
    env: &mut ExecEnv<'_>,
    fetches: &[NodeId],
    rctx: &RunCtx,
) -> Result<Vec<GValue>> {
    obs::env::maybe_init_from_env();
    faults::maybe_init_from_env();
    let vars = std::mem::take(env.variables);
    let ctx = ParCtx {
        feeds: env.feeds,
        vars: Mutex::new(vars),
        run: rctx,
    };
    let result = {
        let run = ParRun::new(graph, meta, &[], &ctx, true);
        run.execute();
        run.finish(fetches)
    };
    *env.variables = ctx
        .vars
        .into_inner()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    result
}
