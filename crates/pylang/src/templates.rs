//! Templated code rewriting — the paper's `templates.replace` utility
//! (Appendix C). Conversion passes build new code by parsing a quoted
//! template and splicing names, expressions or statement lists into
//! placeholder positions.
//!
//! ```
//! use autograph_pylang::templates::{replace, Replacement};
//! use autograph_pylang::{parse_str, codegen::ast_to_source, Module};
//!
//! let body = parse_str("a = x\nreturn a\n")?.body;
//! let stmts = replace(
//!     "def fn(args):\n    body\n",
//!     &[
//!         ("fn", Replacement::Name("my_function".into())),
//!         ("args", Replacement::NameList(vec!["x".into()])),
//!         ("body", Replacement::Stmts(body)),
//!     ],
//! )?;
//! let src = ast_to_source(&Module { body: stmts });
//! assert!(src.starts_with("def my_function(x):"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::ast::*;
use crate::codegen;
use crate::error::ParseError;
use crate::parse_module;
use crate::Span;
use std::collections::HashMap;

/// What to splice into a template placeholder.
#[derive(Debug, Clone)]
pub enum Replacement {
    /// Rename an identifier (valid in name, parameter and attribute
    /// positions).
    Name(String),
    /// Substitute an arbitrary expression for a placeholder name.
    Expr(Expr),
    /// Substitute a list of statements for a placeholder expression
    /// statement.
    Stmts(Vec<Stmt>),
    /// Expand a placeholder parameter (or name) into several names.
    NameList(Vec<String>),
}

/// Parse `template` and substitute placeholders, returning the resulting
/// statements.
///
/// Placeholders are ordinary identifiers; each occurrence is replaced
/// according to its [`Replacement`]. Like the paper's implementation, the
/// function performs integrity checks: replacement names must be valid
/// identifiers and the result must serialize back to parseable source.
///
/// # Errors
///
/// Returns [`ParseError`] if the template does not parse, a replacement
/// name is not a valid identifier, or the spliced result fails the
/// round-trip integrity check.
pub fn replace(
    template: &str,
    replacements: &[(&str, Replacement)],
) -> Result<Vec<Stmt>, ParseError> {
    for (key, r) in replacements {
        if !is_identifier(key) {
            return Err(ParseError::new(
                format!("template key '{key}' is not a valid identifier"),
                Span::synthetic(),
            ));
        }
        match r {
            Replacement::Name(n) if !is_identifier(n) => {
                return Err(ParseError::new(
                    format!("replacement name '{n}' is not a valid identifier"),
                    Span::synthetic(),
                ));
            }
            Replacement::NameList(ns) => {
                for n in ns {
                    if !is_identifier(n) {
                        return Err(ParseError::new(
                            format!("replacement name '{n}' is not a valid identifier"),
                            Span::synthetic(),
                        ));
                    }
                }
            }
            _ => {}
        }
    }
    let module = parse_module(template)?;
    let map: HashMap<&str, &Replacement> = replacements.iter().map(|(k, v)| (*k, v)).collect();
    let body = subst_block(module.body, &map)?;
    // Integrity check: generated code must re-parse.
    let rendered = codegen::ast_to_source(&Module { body: body.clone() });
    parse_module(&rendered).map_err(|e| {
        ParseError::new(
            format!("template splice produced unparseable code: {e}\n{rendered}"),
            Span::synthetic(),
        )
    })?;
    Ok(body)
}

fn is_identifier(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_alphanumeric() || c == '_')
}

fn subst_block(
    body: Vec<Stmt>,
    map: &HashMap<&str, &Replacement>,
) -> Result<Vec<Stmt>, ParseError> {
    let mut out = Vec::with_capacity(body.len());
    for stmt in body {
        // A bare placeholder expression statement may expand to many stmts.
        if let StmtKind::ExprStmt(Expr {
            kind: ExprKind::Name(n),
            ..
        }) = &stmt.kind
        {
            if let Some(Replacement::Stmts(stmts)) = map.get(n.as_str()) {
                out.extend(stmts.iter().cloned());
                continue;
            }
        }
        out.push(subst_stmt(stmt, map)?);
    }
    Ok(out)
}

fn subst_stmt(stmt: Stmt, map: &HashMap<&str, &Replacement>) -> Result<Stmt, ParseError> {
    let span = stmt.span;
    let kind = match stmt.kind {
        StmtKind::FunctionDef {
            name,
            params,
            body,
            decorators,
        } => {
            let name = match map.get(name.as_str()) {
                Some(Replacement::Name(n)) => n.clone(),
                _ => name,
            };
            let mut new_params = Vec::new();
            for p in params {
                match map.get(p.name.as_str()) {
                    Some(Replacement::Name(n)) => new_params.push(Param {
                        name: n.clone(),
                        default: p.default,
                    }),
                    Some(Replacement::NameList(ns)) => {
                        for n in ns {
                            new_params.push(Param {
                                name: n.clone(),
                                default: None,
                            });
                        }
                    }
                    _ => new_params.push(p),
                }
            }
            StmtKind::FunctionDef {
                name,
                params: new_params,
                body: subst_block(body, map)?,
                decorators: decorators
                    .into_iter()
                    .map(|d| subst_expr(d, map))
                    .collect::<Result<_, _>>()?,
            }
        }
        StmtKind::Return(v) => StmtKind::Return(v.map(|v| subst_expr(v, map)).transpose()?),
        StmtKind::Assign { target, value } => StmtKind::Assign {
            target: subst_expr(target, map)?,
            value: subst_expr(value, map)?,
        },
        StmtKind::AugAssign { target, op, value } => StmtKind::AugAssign {
            target: subst_expr(target, map)?,
            op,
            value: subst_expr(value, map)?,
        },
        StmtKind::If { test, body, orelse } => StmtKind::If {
            test: subst_expr(test, map)?,
            body: subst_block(body, map)?,
            orelse: subst_block(orelse, map)?,
        },
        StmtKind::While { test, body } => StmtKind::While {
            test: subst_expr(test, map)?,
            body: subst_block(body, map)?,
        },
        StmtKind::For { target, iter, body } => StmtKind::For {
            target: subst_expr(target, map)?,
            iter: subst_expr(iter, map)?,
            body: subst_block(body, map)?,
        },
        StmtKind::Assert { test, msg } => StmtKind::Assert {
            test: subst_expr(test, map)?,
            msg: msg.map(|m| subst_expr(m, map)).transpose()?,
        },
        StmtKind::ExprStmt(e) => StmtKind::ExprStmt(subst_expr(e, map)?),
        StmtKind::Raise(v) => StmtKind::Raise(v.map(|v| subst_expr(v, map)).transpose()?),
        other @ (StmtKind::Break
        | StmtKind::Continue
        | StmtKind::Pass
        | StmtKind::Global(_)
        | StmtKind::Nonlocal(_)
        | StmtKind::Del(_)) => other,
    };
    Ok(Stmt::new(kind, span))
}

fn subst_expr(expr: Expr, map: &HashMap<&str, &Replacement>) -> Result<Expr, ParseError> {
    let span = expr.span;
    let kind = match expr.kind {
        ExprKind::Name(n) => match map.get(n.as_str()) {
            Some(Replacement::Name(new)) => ExprKind::Name(new.clone()),
            Some(Replacement::Expr(e)) => e.kind.clone(),
            Some(Replacement::NameList(ns)) => ExprKind::Tuple(
                ns.iter()
                    .map(|n| Expr::new(ExprKind::Name(n.clone()), span))
                    .collect(),
            ),
            Some(Replacement::Stmts(_)) => {
                return Err(ParseError::new(
                    format!(
                        "placeholder '{n}' used in expression position but bound to statements"
                    ),
                    span,
                ));
            }
            None => ExprKind::Name(n),
        },
        ExprKind::Attribute { value, attr } => {
            let attr = match map.get(attr.as_str()) {
                Some(Replacement::Name(n)) => n.clone(),
                _ => attr,
            };
            ExprKind::Attribute {
                value: Box::new(subst_expr(*value, map)?),
                attr,
            }
        }
        ExprKind::Subscript { value, index } => ExprKind::Subscript {
            value: Box::new(subst_expr(*value, map)?),
            index: Box::new(match *index {
                Index::Single(e) => Index::Single(subst_expr(e, map)?),
                Index::Slice { lower, upper } => Index::Slice {
                    lower: lower.map(|e| subst_expr(e, map)).transpose()?,
                    upper: upper.map(|e| subst_expr(e, map)).transpose()?,
                },
            }),
        },
        ExprKind::Call { func, args, kwargs } => ExprKind::Call {
            func: Box::new(subst_expr(*func, map)?),
            args: {
                // A NameList placeholder in argument position splices in
                // several arguments rather than a tuple.
                let mut new_args = Vec::new();
                for a in args {
                    if let ExprKind::Name(n) = &a.kind {
                        if let Some(Replacement::NameList(ns)) = map.get(n.as_str()) {
                            for n in ns {
                                new_args.push(Expr::new(ExprKind::Name(n.clone()), a.span));
                            }
                            continue;
                        }
                    }
                    new_args.push(subst_expr(a, map)?);
                }
                new_args
            },
            kwargs: kwargs
                .into_iter()
                .map(|(k, v)| Ok((k, subst_expr(v, map)?)))
                .collect::<Result<_, ParseError>>()?,
        },
        ExprKind::BinOp { op, left, right } => ExprKind::BinOp {
            op,
            left: Box::new(subst_expr(*left, map)?),
            right: Box::new(subst_expr(*right, map)?),
        },
        ExprKind::UnaryOp { op, operand } => ExprKind::UnaryOp {
            op,
            operand: Box::new(subst_expr(*operand, map)?),
        },
        ExprKind::BoolOp { op, values } => ExprKind::BoolOp {
            op,
            values: values
                .into_iter()
                .map(|v| subst_expr(v, map))
                .collect::<Result<_, _>>()?,
        },
        ExprKind::Compare {
            left,
            ops,
            comparators,
        } => ExprKind::Compare {
            left: Box::new(subst_expr(*left, map)?),
            ops,
            comparators: comparators
                .into_iter()
                .map(|c| subst_expr(c, map))
                .collect::<Result<_, _>>()?,
        },
        ExprKind::IfExp { test, body, orelse } => ExprKind::IfExp {
            test: Box::new(subst_expr(*test, map)?),
            body: Box::new(subst_expr(*body, map)?),
            orelse: Box::new(subst_expr(*orelse, map)?),
        },
        ExprKind::List(items) => ExprKind::List(
            items
                .into_iter()
                .map(|i| subst_expr(i, map))
                .collect::<Result<_, _>>()?,
        ),
        ExprKind::Tuple(items) => ExprKind::Tuple(
            items
                .into_iter()
                .map(|i| subst_expr(i, map))
                .collect::<Result<_, _>>()?,
        ),
        ExprKind::Lambda { params, body } => ExprKind::Lambda {
            params,
            body: Box::new(subst_expr(*body, map)?),
        },
        lit @ (ExprKind::Int(_)
        | ExprKind::Float(_)
        | ExprKind::Str(_)
        | ExprKind::Bool(_)
        | ExprKind::NoneLit) => lit,
    };
    Ok(Expr::new(kind, span))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::ast_to_source;
    use crate::parse_str;

    #[test]
    fn appendix_c_example() {
        // The paper's worked example: build my_function(x, y) from a quote.
        let new_body = parse_str("a = x\nb = y\nreturn a + b\n").unwrap().body;
        let stmts = replace(
            "def fn(args):\n    body\n",
            &[
                ("fn", Replacement::Name("my_function".into())),
                ("args", Replacement::NameList(vec!["x".into(), "y".into()])),
                ("body", Replacement::Stmts(new_body)),
            ],
        )
        .unwrap();
        let out = ast_to_source(&Module { body: stmts });
        assert_eq!(
            out,
            "def my_function(x, y):\n    a = x\n    b = y\n    return a + b\n"
        );
    }

    #[test]
    fn expr_substitution() {
        let cond = parse_str("x > 0\n").unwrap();
        let cond_expr = match &cond.body[0].kind {
            StmtKind::ExprStmt(e) => e.clone(),
            _ => panic!(),
        };
        let stmts = replace(
            "r = test and other\n",
            &[("test", Replacement::Expr(cond_expr))],
        )
        .unwrap();
        let out = ast_to_source(&Module { body: stmts });
        assert_eq!(out, "r = x > 0 and other\n");
    }

    #[test]
    fn name_in_attribute_and_call_positions() {
        let stmts = replace(
            "obj.meth(a)\n",
            &[
                ("meth", Replacement::Name("converted".into())),
                ("a", Replacement::NameList(vec!["p".into(), "q".into()])),
            ],
        )
        .unwrap();
        let out = ast_to_source(&Module { body: stmts });
        assert_eq!(out, "obj.converted(p, q)\n");
    }

    #[test]
    fn rejects_invalid_names() {
        assert!(replace("x\n", &[("x", Replacement::Name("not valid".into()))]).is_err());
        assert!(replace("x\n", &[("1x", Replacement::Name("y".into()))]).is_err());
        assert!(replace(
            "x\n",
            &[(
                "x",
                Replacement::NameList(vec!["ok".into(), "no no".into()])
            )]
        )
        .is_err());
    }

    #[test]
    fn stmts_in_expr_position_rejected() {
        let body = parse_str("pass\n").unwrap().body;
        let err = replace("y = body + 1\n", &[("body", Replacement::Stmts(body))]).unwrap_err();
        assert!(err.to_string().contains("expression position"));
    }

    #[test]
    fn untouched_placeholders_pass_through() {
        let stmts = replace("keep = other\n", &[]).unwrap();
        let out = ast_to_source(&Module { body: stmts });
        assert_eq!(out, "keep = other\n");
    }

    #[test]
    fn nested_blocks_substituted() {
        let inner = parse_str("x = 1\n").unwrap().body;
        let stmts = replace(
            "while cond:\n    body\n",
            &[
                ("cond", Replacement::Name("running".into())),
                ("body", Replacement::Stmts(inner)),
            ],
        )
        .unwrap();
        let out = ast_to_source(&Module { body: stmts });
        assert_eq!(out, "while running:\n    x = 1\n");
    }
}
