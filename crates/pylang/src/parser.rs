//! Recursive-descent parser for PyLite.

use crate::ast::*;
use crate::error::ParseError;
use crate::lexer::tokenize;
use crate::token::{Token, TokenKind};
use crate::Span;

/// The PyLite parser. Construct with [`Parser::new`] then call
/// [`Parser::parse_module`].
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    /// Tokenize `source` and prepare a parser.
    ///
    /// # Errors
    ///
    /// Returns lexical errors.
    pub fn new(source: &str) -> Result<Parser, ParseError> {
        Ok(Parser {
            tokens: tokenize(source)?,
            pos: 0,
        })
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token, ParseError> {
        if self.peek() == &kind {
            Ok(self.bump())
        } else {
            Err(ParseError::new(
                format!("expected {}, found {}", kind, self.peek()),
                self.peek_span(),
            ))
        }
    }

    fn expect_name(&mut self) -> Result<(String, Span), ParseError> {
        let span = self.peek_span();
        match self.peek().clone() {
            TokenKind::Name(n) => {
                self.bump();
                Ok((n, span))
            }
            other => Err(ParseError::new(
                format!("expected a name, found {other}"),
                span,
            )),
        }
    }

    /// Parse the whole token stream as a module.
    ///
    /// # Errors
    ///
    /// Returns the first syntax error encountered.
    pub fn parse_module(&mut self) -> Result<Module, ParseError> {
        let mut body = Vec::new();
        loop {
            match self.peek() {
                TokenKind::Eof => break,
                TokenKind::Newline => {
                    self.bump();
                }
                _ => body.push(self.parse_stmt()?),
            }
        }
        Ok(Module { body })
    }

    fn parse_stmt(&mut self) -> Result<Stmt, ParseError> {
        let span = self.peek_span();
        match self.peek() {
            TokenKind::At | TokenKind::Def => self.parse_funcdef(),
            TokenKind::If => self.parse_if(),
            TokenKind::While => self.parse_while(),
            TokenKind::For => self.parse_for(),
            TokenKind::Return => {
                self.bump();
                let value = if matches!(self.peek(), TokenKind::Newline) {
                    None
                } else {
                    Some(self.parse_testlist()?)
                };
                self.expect(TokenKind::Newline)?;
                Ok(Stmt::new(StmtKind::Return(value), span))
            }
            TokenKind::Break => {
                self.bump();
                self.expect(TokenKind::Newline)?;
                Ok(Stmt::new(StmtKind::Break, span))
            }
            TokenKind::Continue => {
                self.bump();
                self.expect(TokenKind::Newline)?;
                Ok(Stmt::new(StmtKind::Continue, span))
            }
            TokenKind::Pass => {
                self.bump();
                self.expect(TokenKind::Newline)?;
                Ok(Stmt::new(StmtKind::Pass, span))
            }
            TokenKind::Assert => {
                self.bump();
                let test = self.parse_test()?;
                let msg = if self.eat(&TokenKind::Comma) {
                    Some(self.parse_test()?)
                } else {
                    None
                };
                self.expect(TokenKind::Newline)?;
                Ok(Stmt::new(StmtKind::Assert { test, msg }, span))
            }
            TokenKind::Global | TokenKind::Nonlocal => {
                let is_global = matches!(self.peek(), TokenKind::Global);
                self.bump();
                let mut names = vec![self.expect_name()?.0];
                while self.eat(&TokenKind::Comma) {
                    names.push(self.expect_name()?.0);
                }
                self.expect(TokenKind::Newline)?;
                Ok(Stmt::new(
                    if is_global {
                        StmtKind::Global(names)
                    } else {
                        StmtKind::Nonlocal(names)
                    },
                    span,
                ))
            }
            TokenKind::Del => {
                self.bump();
                let mut names = vec![self.expect_name()?.0];
                while self.eat(&TokenKind::Comma) {
                    names.push(self.expect_name()?.0);
                }
                self.expect(TokenKind::Newline)?;
                Ok(Stmt::new(StmtKind::Del(names), span))
            }
            TokenKind::Raise => {
                self.bump();
                let value = if matches!(self.peek(), TokenKind::Newline) {
                    None
                } else {
                    Some(self.parse_test()?)
                };
                self.expect(TokenKind::Newline)?;
                Ok(Stmt::new(StmtKind::Raise(value), span))
            }
            TokenKind::Yield => Err(ParseError::new(
                "yield is not allowed in PyLite (Table 4: generators are not supported)",
                span,
            )),
            TokenKind::Try => Err(ParseError::new(
                "try/except is outside the PyLite subset; see Table 4",
                span,
            )),
            _ => self.parse_expr_or_assign(),
        }
    }

    fn parse_funcdef(&mut self) -> Result<Stmt, ParseError> {
        let span = self.peek_span();
        let mut decorators = Vec::new();
        while self.eat(&TokenKind::At) {
            decorators.push(self.parse_test()?);
            self.expect(TokenKind::Newline)?;
        }
        self.expect(TokenKind::Def)?;
        let (name, _) = self.expect_name()?;
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        while !matches!(self.peek(), TokenKind::RParen) {
            let (pname, _) = self.expect_name()?;
            let default = if self.eat(&TokenKind::Assign) {
                Some(self.parse_test()?)
            } else {
                None
            };
            params.push(Param {
                name: pname,
                default,
            });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(TokenKind::RParen)?;
        if self.eat(&TokenKind::Arrow) {
            // return annotation: parse and discard
            let _ = self.parse_test()?;
        }
        self.expect(TokenKind::Colon)?;
        let body = self.parse_suite()?;
        Ok(Stmt::new(
            StmtKind::FunctionDef {
                name,
                params,
                body,
                decorators,
            },
            span,
        ))
    }

    fn parse_if(&mut self) -> Result<Stmt, ParseError> {
        let span = self.peek_span();
        self.bump(); // if / elif
        let test = self.parse_test()?;
        self.expect(TokenKind::Colon)?;
        let body = self.parse_suite()?;
        let orelse = match self.peek() {
            TokenKind::Elif => vec![self.parse_if()?],
            TokenKind::Else => {
                self.bump();
                self.expect(TokenKind::Colon)?;
                self.parse_suite()?
            }
            _ => Vec::new(),
        };
        Ok(Stmt::new(StmtKind::If { test, body, orelse }, span))
    }

    fn parse_while(&mut self) -> Result<Stmt, ParseError> {
        let span = self.peek_span();
        self.bump();
        let test = self.parse_test()?;
        self.expect(TokenKind::Colon)?;
        let body = self.parse_suite()?;
        Ok(Stmt::new(StmtKind::While { test, body }, span))
    }

    fn parse_for(&mut self) -> Result<Stmt, ParseError> {
        let span = self.peek_span();
        self.bump();
        let target = self.parse_target_list()?;
        self.expect(TokenKind::In)?;
        let iter = self.parse_testlist()?;
        self.expect(TokenKind::Colon)?;
        let body = self.parse_suite()?;
        Ok(Stmt::new(StmtKind::For { target, iter, body }, span))
    }

    fn parse_suite(&mut self) -> Result<Vec<Stmt>, ParseError> {
        if self.eat(&TokenKind::Newline) {
            self.expect(TokenKind::Indent)?;
            let mut body = Vec::new();
            while !matches!(self.peek(), TokenKind::Dedent | TokenKind::Eof) {
                if self.eat(&TokenKind::Newline) {
                    continue;
                }
                body.push(self.parse_stmt()?);
            }
            self.expect(TokenKind::Dedent)?;
            if body.is_empty() {
                return Err(ParseError::new("empty block", self.peek_span()));
            }
            Ok(body)
        } else {
            // inline suite: single simple statement on the same line
            let stmt = self.parse_stmt()?;
            Ok(vec![stmt])
        }
    }

    fn parse_expr_or_assign(&mut self) -> Result<Stmt, ParseError> {
        let span = self.peek_span();
        let first = self.parse_testlist()?;
        match self.peek().clone() {
            TokenKind::Assign => {
                self.bump();
                let mut chain = vec![first];
                let mut value = self.parse_testlist()?;
                while self.eat(&TokenKind::Assign) {
                    chain.push(value);
                    value = self.parse_testlist()?;
                }
                self.expect(TokenKind::Newline)?;
                // `a = b = v` desugars to consecutive assignments.
                if chain.len() == 1 {
                    let target = chain.pop().expect("len checked");
                    Self::check_target(&target)?;
                    Ok(Stmt::new(StmtKind::Assign { target, value }, span))
                } else {
                    Err(ParseError::new(
                        "chained assignment is not supported in PyLite",
                        span,
                    ))
                }
            }
            k @ (TokenKind::PlusAssign
            | TokenKind::MinusAssign
            | TokenKind::StarAssign
            | TokenKind::SlashAssign) => {
                self.bump();
                let op = match k {
                    TokenKind::PlusAssign => BinOp::Add,
                    TokenKind::MinusAssign => BinOp::Sub,
                    TokenKind::StarAssign => BinOp::Mul,
                    TokenKind::SlashAssign => BinOp::Div,
                    _ => unreachable!(),
                };
                let value = self.parse_testlist()?;
                self.expect(TokenKind::Newline)?;
                Self::check_target(&first)?;
                Ok(Stmt::new(
                    StmtKind::AugAssign {
                        target: first,
                        op,
                        value,
                    },
                    span,
                ))
            }
            _ => {
                self.expect(TokenKind::Newline)?;
                Ok(Stmt::new(StmtKind::ExprStmt(first), span))
            }
        }
    }

    fn check_target(e: &Expr) -> Result<(), ParseError> {
        match &e.kind {
            ExprKind::Name(_) | ExprKind::Attribute { .. } | ExprKind::Subscript { .. } => Ok(()),
            ExprKind::Tuple(items) | ExprKind::List(items) => {
                for i in items {
                    Self::check_target(i)?;
                }
                Ok(())
            }
            _ => Err(ParseError::new("invalid assignment target", e.span)),
        }
    }

    fn parse_target_list(&mut self) -> Result<Expr, ParseError> {
        let span = self.peek_span();
        let first = self.parse_postfix()?;
        if matches!(self.peek(), TokenKind::Comma) {
            let mut items = vec![first];
            while self.eat(&TokenKind::Comma) {
                if matches!(self.peek(), TokenKind::In) {
                    break;
                }
                items.push(self.parse_postfix()?);
            }
            Ok(Expr::new(ExprKind::Tuple(items), span))
        } else {
            Ok(first)
        }
    }

    /// testlist: test (',' test)* — builds a tuple when more than one.
    fn parse_testlist(&mut self) -> Result<Expr, ParseError> {
        let span = self.peek_span();
        let first = self.parse_test()?;
        if matches!(self.peek(), TokenKind::Comma) {
            let mut items = vec![first];
            while self.eat(&TokenKind::Comma) {
                if matches!(
                    self.peek(),
                    TokenKind::Newline
                        | TokenKind::Assign
                        | TokenKind::RParen
                        | TokenKind::RBracket
                        | TokenKind::Eof
                ) {
                    break;
                }
                items.push(self.parse_test()?);
            }
            Ok(Expr::new(ExprKind::Tuple(items), span))
        } else {
            Ok(first)
        }
    }

    /// test: ternary conditional or lambda.
    pub(crate) fn parse_test(&mut self) -> Result<Expr, ParseError> {
        if matches!(self.peek(), TokenKind::Lambda) {
            return self.parse_lambda();
        }
        let span = self.peek_span();
        let body = self.parse_or_test()?;
        if self.eat(&TokenKind::If) {
            let test = self.parse_or_test()?;
            self.expect(TokenKind::Else)?;
            let orelse = self.parse_test()?;
            Ok(Expr::new(
                ExprKind::IfExp {
                    test: Box::new(test),
                    body: Box::new(body),
                    orelse: Box::new(orelse),
                },
                span,
            ))
        } else {
            Ok(body)
        }
    }

    fn parse_lambda(&mut self) -> Result<Expr, ParseError> {
        let span = self.peek_span();
        self.expect(TokenKind::Lambda)?;
        let mut params = Vec::new();
        while !matches!(self.peek(), TokenKind::Colon) {
            let (name, _) = self.expect_name()?;
            let default = if self.eat(&TokenKind::Assign) {
                Some(self.parse_test()?)
            } else {
                None
            };
            params.push(Param { name, default });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(TokenKind::Colon)?;
        let body = self.parse_test()?;
        Ok(Expr::new(
            ExprKind::Lambda {
                params,
                body: Box::new(body),
            },
            span,
        ))
    }

    fn parse_or_test(&mut self) -> Result<Expr, ParseError> {
        let span = self.peek_span();
        let first = self.parse_and_test()?;
        if !matches!(self.peek(), TokenKind::Or) {
            return Ok(first);
        }
        let mut values = vec![first];
        while self.eat(&TokenKind::Or) {
            values.push(self.parse_and_test()?);
        }
        Ok(Expr::new(
            ExprKind::BoolOp {
                op: BoolOpKind::Or,
                values,
            },
            span,
        ))
    }

    fn parse_and_test(&mut self) -> Result<Expr, ParseError> {
        let span = self.peek_span();
        let first = self.parse_not_test()?;
        if !matches!(self.peek(), TokenKind::And) {
            return Ok(first);
        }
        let mut values = vec![first];
        while self.eat(&TokenKind::And) {
            values.push(self.parse_not_test()?);
        }
        Ok(Expr::new(
            ExprKind::BoolOp {
                op: BoolOpKind::And,
                values,
            },
            span,
        ))
    }

    fn parse_not_test(&mut self) -> Result<Expr, ParseError> {
        let span = self.peek_span();
        if self.eat(&TokenKind::Not) {
            let operand = self.parse_not_test()?;
            Ok(Expr::new(
                ExprKind::UnaryOp {
                    op: UnaryOp::Not,
                    operand: Box::new(operand),
                },
                span,
            ))
        } else {
            self.parse_comparison()
        }
    }

    fn parse_comparison(&mut self) -> Result<Expr, ParseError> {
        let span = self.peek_span();
        let left = self.parse_arith()?;
        let mut ops = Vec::new();
        let mut comparators = Vec::new();
        loop {
            let op = match self.peek() {
                TokenKind::Lt => CmpOp::Lt,
                TokenKind::Le => CmpOp::Le,
                TokenKind::Gt => CmpOp::Gt,
                TokenKind::Ge => CmpOp::Ge,
                TokenKind::EqEq => CmpOp::Eq,
                TokenKind::NotEq => CmpOp::NotEq,
                TokenKind::In => CmpOp::In,
                TokenKind::Is => {
                    self.bump();
                    if self.eat(&TokenKind::Not) {
                        ops.push(CmpOp::IsNot);
                    } else {
                        ops.push(CmpOp::Is);
                    }
                    comparators.push(self.parse_arith()?);
                    continue;
                }
                TokenKind::Not => {
                    // `not in`
                    self.bump();
                    self.expect(TokenKind::In)?;
                    ops.push(CmpOp::NotIn);
                    comparators.push(self.parse_arith()?);
                    continue;
                }
                _ => break,
            };
            self.bump();
            ops.push(op);
            comparators.push(self.parse_arith()?);
        }
        if ops.is_empty() {
            Ok(left)
        } else {
            Ok(Expr::new(
                ExprKind::Compare {
                    left: Box::new(left),
                    ops,
                    comparators,
                },
                span,
            ))
        }
    }

    fn parse_arith(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_term()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            let span = left.span;
            self.bump();
            let right = self.parse_term()?;
            left = Expr::new(
                ExprKind::BinOp {
                    op,
                    left: Box::new(left),
                    right: Box::new(right),
                },
                span,
            );
        }
        Ok(left)
    }

    fn parse_term(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_factor()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::DoubleSlash => BinOp::FloorDiv,
                TokenKind::Percent => BinOp::Mod,
                _ => break,
            };
            let span = left.span;
            self.bump();
            let right = self.parse_factor()?;
            left = Expr::new(
                ExprKind::BinOp {
                    op,
                    left: Box::new(left),
                    right: Box::new(right),
                },
                span,
            );
        }
        Ok(left)
    }

    fn parse_factor(&mut self) -> Result<Expr, ParseError> {
        let span = self.peek_span();
        match self.peek() {
            TokenKind::Minus => {
                self.bump();
                let operand = self.parse_factor()?;
                Ok(Expr::new(
                    ExprKind::UnaryOp {
                        op: UnaryOp::Neg,
                        operand: Box::new(operand),
                    },
                    span,
                ))
            }
            TokenKind::Plus => {
                self.bump();
                let operand = self.parse_factor()?;
                Ok(Expr::new(
                    ExprKind::UnaryOp {
                        op: UnaryOp::Pos,
                        operand: Box::new(operand),
                    },
                    span,
                ))
            }
            _ => self.parse_power(),
        }
    }

    fn parse_power(&mut self) -> Result<Expr, ParseError> {
        let base = self.parse_postfix()?;
        if self.eat(&TokenKind::DoubleStar) {
            let span = base.span;
            let exp = self.parse_factor()?; // right-assoc
            Ok(Expr::new(
                ExprKind::BinOp {
                    op: BinOp::Pow,
                    left: Box::new(base),
                    right: Box::new(exp),
                },
                span,
            ))
        } else {
            Ok(base)
        }
    }

    fn parse_postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.parse_atom()?;
        loop {
            let span = self.peek_span();
            match self.peek() {
                TokenKind::LParen => {
                    self.bump();
                    let mut args = Vec::new();
                    let mut kwargs = Vec::new();
                    while !matches!(self.peek(), TokenKind::RParen) {
                        // keyword arg: NAME '=' test (lookahead)
                        if let TokenKind::Name(n) = self.peek().clone() {
                            if self.tokens[self.pos + 1].kind == TokenKind::Assign {
                                self.bump();
                                self.bump();
                                let v = self.parse_test()?;
                                kwargs.push((n, v));
                                if !self.eat(&TokenKind::Comma) {
                                    break;
                                }
                                continue;
                            }
                        }
                        if !kwargs.is_empty() {
                            return Err(ParseError::new(
                                "positional argument follows keyword argument",
                                self.peek_span(),
                            ));
                        }
                        args.push(self.parse_test()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(TokenKind::RParen)?;
                    e = Expr::new(
                        ExprKind::Call {
                            func: Box::new(e),
                            args,
                            kwargs,
                        },
                        span,
                    );
                }
                TokenKind::LBracket => {
                    self.bump();
                    let index = self.parse_subscript()?;
                    self.expect(TokenKind::RBracket)?;
                    e = Expr::new(
                        ExprKind::Subscript {
                            value: Box::new(e),
                            index: Box::new(index),
                        },
                        span,
                    );
                }
                TokenKind::Dot => {
                    self.bump();
                    let (attr, _) = self.expect_name()?;
                    e = Expr::new(
                        ExprKind::Attribute {
                            value: Box::new(e),
                            attr,
                        },
                        span,
                    );
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn parse_subscript(&mut self) -> Result<Index, ParseError> {
        if matches!(self.peek(), TokenKind::Colon) {
            self.bump();
            let upper = if matches!(self.peek(), TokenKind::RBracket) {
                None
            } else {
                Some(self.parse_test()?)
            };
            return Ok(Index::Slice { lower: None, upper });
        }
        let first = self.parse_test()?;
        if self.eat(&TokenKind::Colon) {
            let upper = if matches!(self.peek(), TokenKind::RBracket) {
                None
            } else {
                Some(self.parse_test()?)
            };
            Ok(Index::Slice {
                lower: Some(first),
                upper,
            })
        } else {
            Ok(Index::Single(first))
        }
    }

    fn parse_atom(&mut self) -> Result<Expr, ParseError> {
        let span = self.peek_span();
        match self.peek().clone() {
            TokenKind::Name(n) => {
                self.bump();
                Ok(Expr::new(ExprKind::Name(n), span))
            }
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::new(ExprKind::Int(v), span))
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(Expr::new(ExprKind::Float(v), span))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::new(ExprKind::Str(s), span))
            }
            TokenKind::True => {
                self.bump();
                Ok(Expr::new(ExprKind::Bool(true), span))
            }
            TokenKind::False => {
                self.bump();
                Ok(Expr::new(ExprKind::Bool(false), span))
            }
            TokenKind::None => {
                self.bump();
                Ok(Expr::new(ExprKind::NoneLit, span))
            }
            TokenKind::Lambda => self.parse_lambda(),
            TokenKind::LParen => {
                self.bump();
                if self.eat(&TokenKind::RParen) {
                    return Ok(Expr::new(ExprKind::Tuple(Vec::new()), span));
                }
                let mut items = vec![self.parse_test()?];
                let mut is_tuple = false;
                while self.eat(&TokenKind::Comma) {
                    is_tuple = true;
                    if matches!(self.peek(), TokenKind::RParen) {
                        break;
                    }
                    items.push(self.parse_test()?);
                }
                self.expect(TokenKind::RParen)?;
                if is_tuple {
                    Ok(Expr::new(ExprKind::Tuple(items), span))
                } else {
                    Ok(items.pop().expect("one item parsed"))
                }
            }
            TokenKind::LBracket => {
                self.bump();
                let mut items = Vec::new();
                while !matches!(self.peek(), TokenKind::RBracket) {
                    items.push(self.parse_test()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(TokenKind::RBracket)?;
                Ok(Expr::new(ExprKind::List(items), span))
            }
            TokenKind::LBrace => Err(ParseError::new(
                "dict/set literals are outside the PyLite subset (Table 5: other collections are not converted)",
                span,
            )),
            other => Err(ParseError::new(format!("unexpected {other}"), span)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_module;

    #[test]
    fn parse_listing1_function() {
        let m =
            parse_module("def f(x):\n    if x > 0:\n        x = x * x\n    return x\n").unwrap();
        assert_eq!(m.function_names(), vec!["f"]);
        let f = m.function("f").unwrap();
        match &f.kind {
            StmtKind::FunctionDef { params, body, .. } => {
                assert_eq!(params.len(), 1);
                assert_eq!(body.len(), 2);
                assert!(matches!(body[0].kind, StmtKind::If { .. }));
                assert!(matches!(body[1].kind, StmtKind::Return(Some(_))));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parse_decorator() {
        let m = parse_module("@ag.convert()\ndef f(x):\n    return x\n").unwrap();
        match &m.body[0].kind {
            StmtKind::FunctionDef { decorators, .. } => {
                assert_eq!(decorators.len(), 1);
                assert!(matches!(decorators[0].kind, ExprKind::Call { .. }));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parse_elif_chain() {
        let m = parse_module("if a:\n    x = 1\nelif b:\n    x = 2\nelse:\n    x = 3\n").unwrap();
        match &m.body[0].kind {
            StmtKind::If { orelse, .. } => match &orelse[0].kind {
                StmtKind::If { orelse: inner, .. } => assert_eq!(inner.len(), 1),
                _ => panic!("elif should become nested if"),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn parse_tuple_assignment() {
        let m = parse_module("a, b = f(x)\n").unwrap();
        match &m.body[0].kind {
            StmtKind::Assign { target, .. } => {
                assert!(matches!(&target.kind, ExprKind::Tuple(items) if items.len() == 2));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parse_for_with_tuple_target() {
        let m = parse_module("for i, v in pairs:\n    pass\n").unwrap();
        match &m.body[0].kind {
            StmtKind::For { target, .. } => {
                assert!(matches!(&target.kind, ExprKind::Tuple(items) if items.len() == 2));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parse_aug_assign() {
        let m = parse_module("x += 2 * y\n").unwrap();
        assert!(matches!(
            &m.body[0].kind,
            StmtKind::AugAssign { op: BinOp::Add, .. }
        ));
    }

    #[test]
    fn parse_slices_and_calls() {
        let m = parse_module("y = x[i][1:n].foo(a, k=2)\n").unwrap();
        match &m.body[0].kind {
            StmtKind::Assign { value, .. } => match &value.kind {
                ExprKind::Call { kwargs, .. } => assert_eq!(kwargs[0].0, "k"),
                _ => panic!("expected call"),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn parse_precedence() {
        let m = parse_module("r = 1 + 2 * 3 ** 2\n").unwrap();
        // should evaluate as 1 + (2 * (3 ** 2))
        match &m.body[0].kind {
            StmtKind::Assign { value, .. } => match &value.kind {
                ExprKind::BinOp {
                    op: BinOp::Add,
                    right,
                    ..
                } => {
                    assert!(matches!(
                        &right.kind,
                        ExprKind::BinOp { op: BinOp::Mul, .. }
                    ));
                }
                _ => panic!("expected Add at top"),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn parse_bool_chain_and_compare_chain() {
        let m = parse_module("ok = a and b and not c\nr = 0 <= x < n\n").unwrap();
        match &m.body[0].kind {
            StmtKind::Assign { value, .. } => {
                assert!(
                    matches!(&value.kind, ExprKind::BoolOp { values, .. } if values.len() == 3)
                );
            }
            _ => panic!(),
        }
        match &m.body[1].kind {
            StmtKind::Assign { value, .. } => {
                assert!(matches!(&value.kind, ExprKind::Compare { ops, .. } if ops.len() == 2));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parse_is_not_and_not_in() {
        let m = parse_module("a = x is not None\nb = y not in z\n").unwrap();
        match &m.body[0].kind {
            StmtKind::Assign { value, .. } => match &value.kind {
                ExprKind::Compare { ops, .. } => assert_eq!(ops[0], CmpOp::IsNot),
                _ => panic!(),
            },
            _ => panic!(),
        }
        match &m.body[1].kind {
            StmtKind::Assign { value, .. } => match &value.kind {
                ExprKind::Compare { ops, .. } => assert_eq!(ops[0], CmpOp::NotIn),
                _ => panic!(),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn parse_lambda_and_ternary() {
        let m = parse_module("f = lambda x: x * x\ny = a if c else b\n").unwrap();
        assert!(matches!(
            &m.body[0].kind,
            StmtKind::Assign { value, .. } if matches!(value.kind, ExprKind::Lambda { .. })
        ));
        assert!(matches!(
            &m.body[1].kind,
            StmtKind::Assign { value, .. } if matches!(value.kind, ExprKind::IfExp { .. })
        ));
    }

    #[test]
    fn parse_list_and_methods() {
        let m = parse_module("l = []\nl.append(3)\nv = l.pop()\n").unwrap();
        assert_eq!(m.body.len(), 3);
    }

    #[test]
    fn parse_nested_function() {
        let m = parse_module(
            "def outer(x):\n    def inner(y):\n        return y\n    return inner(x)\n",
        )
        .unwrap();
        match &m.body[0].kind {
            StmtKind::FunctionDef { body, .. } => {
                assert!(matches!(body[0].kind, StmtKind::FunctionDef { .. }));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn reject_yield_try_dict() {
        assert!(parse_module("def f():\n    yield 1\n").is_err());
        assert!(parse_module("try:\n    pass\n").is_err());
        assert!(parse_module("d = {}\n").is_err());
        assert!(parse_module("x = = 1\n").is_err());
    }

    #[test]
    fn global_nonlocal_del_raise() {
        let m = parse_module("global a, b\nnonlocal c\ndel d\nraise e\n").unwrap();
        assert!(matches!(&m.body[0].kind, StmtKind::Global(v) if v.len() == 2));
        assert!(matches!(&m.body[1].kind, StmtKind::Nonlocal(_)));
        assert!(matches!(&m.body[2].kind, StmtKind::Del(_)));
        assert!(matches!(&m.body[3].kind, StmtKind::Raise(Some(_))));
    }

    #[test]
    fn inline_suite() {
        let m = parse_module("if x: y = 1\n").unwrap();
        match &m.body[0].kind {
            StmtKind::If { body, .. } => assert_eq!(body.len(), 1),
            _ => panic!(),
        }
    }

    #[test]
    fn multiline_call() {
        let m = parse_module("x = f(a,\n      b,\n      c)\n").unwrap();
        assert_eq!(m.body.len(), 1);
    }

    #[test]
    fn spans_preserved() {
        let m = parse_module("x = 1\ny = 2\n").unwrap();
        assert_eq!(m.body[0].span.line, 1);
        assert_eq!(m.body[1].span.line, 2);
    }

    #[test]
    fn keyword_only_after_positional_enforced() {
        assert!(parse_module("f(k=1, x)\n").is_err());
    }

    #[test]
    fn paren_tuple_and_empty_tuple() {
        let m = parse_module("t = (1, 2)\ne = ()\ns = (1)\n").unwrap();
        assert!(matches!(
            &m.body[0].kind,
            StmtKind::Assign { value, .. } if matches!(&value.kind, ExprKind::Tuple(v) if v.len() == 2)
        ));
        assert!(matches!(
            &m.body[1].kind,
            StmtKind::Assign { value, .. } if matches!(&value.kind, ExprKind::Tuple(v) if v.is_empty())
        ));
        assert!(matches!(
            &m.body[2].kind,
            StmtKind::Assign { value, .. } if matches!(&value.kind, ExprKind::Int(1))
        ));
    }
}
