//! Lexer/parser error type.

use crate::Span;
use std::fmt;

/// An error produced while lexing or parsing PyLite source.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Where the error occurred.
    pub span: Span,
}

impl ParseError {
    /// Construct a new error at a location.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        ParseError {
            message: message.into(),
            span,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location() {
        let e = ParseError::new("unexpected token", Span::new(4, 2));
        assert_eq!(e.to_string(), "parse error at 4:2: unexpected token");
    }
}
