//! Source locations, used by the source-map machinery of Appendix B.

use std::fmt;

/// A half-open region of the original source, identified by 1-based line
/// and column of its first token.
///
/// AutoGraph keeps every AST node (even after several SCT passes) associated
/// with an original line of user code; [`Span`] is that association.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Span {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl Span {
    /// A span pointing at a specific line/column.
    pub fn new(line: u32, col: u32) -> Span {
        Span { line, col }
    }

    /// The span used for synthesized (generated) nodes that have no origin
    /// in user code.
    pub fn synthetic() -> Span {
        Span { line: 0, col: 0 }
    }

    /// True if this span refers to generated (non-user) code.
    pub fn is_synthetic(&self) -> bool {
        self.line == 0
    }
}

impl Default for Span {
    fn default() -> Self {
        Span::synthetic()
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_synthetic() {
            write!(f, "<generated>")
        } else {
            write!(f, "{}:{}", self.line, self.col)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(Span::new(3, 7).to_string(), "3:7");
        assert_eq!(Span::synthetic().to_string(), "<generated>");
    }

    #[test]
    fn synthetic_flag() {
        assert!(Span::synthetic().is_synthetic());
        assert!(!Span::new(1, 1).is_synthetic());
        assert!(Span::default().is_synthetic());
    }
}
