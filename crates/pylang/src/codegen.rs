//! Serialize an AST back to PyLite source — the paper's
//! `compiler.ast_to_source` (Appendix C) and step 4 of the conversion
//! pipeline (§6).
//!
//! The emitted source re-parses to a structurally identical AST (spans
//! aside), a property checked by round-trip and property tests.

use crate::ast::*;

/// Render a module as source text.
pub fn ast_to_source(module: &Module) -> String {
    let mut out = String::new();
    for stmt in &module.body {
        emit_stmt(&mut out, stmt, 0);
    }
    out
}

/// Render a single statement (and its nested blocks) as source text.
pub fn stmt_to_source(stmt: &Stmt) -> String {
    let mut out = String::new();
    emit_stmt(&mut out, stmt, 0);
    out
}

/// Render an expression as source text.
pub fn expr_to_source(expr: &Expr) -> String {
    let mut out = String::new();
    emit_expr(&mut out, expr, 0);
    out
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn emit_block(out: &mut String, body: &[Stmt], level: usize) {
    if body.is_empty() {
        indent(out, level);
        out.push_str("pass\n");
        return;
    }
    for s in body {
        emit_stmt(out, s, level);
    }
}

fn emit_stmt(out: &mut String, stmt: &Stmt, level: usize) {
    match &stmt.kind {
        StmtKind::FunctionDef {
            name,
            params,
            body,
            decorators,
        } => {
            for d in decorators {
                indent(out, level);
                out.push('@');
                emit_expr(out, d, 0);
                out.push('\n');
            }
            indent(out, level);
            out.push_str("def ");
            out.push_str(name);
            out.push('(');
            for (i, p) in params.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&p.name);
                if let Some(d) = &p.default {
                    out.push('=');
                    emit_expr(out, d, 0);
                }
            }
            out.push_str("):\n");
            emit_block(out, body, level + 1);
        }
        StmtKind::Return(v) => {
            indent(out, level);
            out.push_str("return");
            if let Some(v) = v {
                out.push(' ');
                emit_expr(out, v, 0);
            }
            out.push('\n');
        }
        StmtKind::Assign { target, value } => {
            indent(out, level);
            emit_expr(out, target, 0);
            out.push_str(" = ");
            emit_expr(out, value, 0);
            out.push('\n');
        }
        StmtKind::AugAssign { target, op, value } => {
            indent(out, level);
            emit_expr(out, target, 0);
            out.push(' ');
            out.push_str(op.as_str());
            out.push_str("= ");
            emit_expr(out, value, 0);
            out.push('\n');
        }
        StmtKind::If { test, body, orelse } => {
            indent(out, level);
            out.push_str("if ");
            emit_expr(out, test, 0);
            out.push_str(":\n");
            emit_block(out, body, level + 1);
            if !orelse.is_empty() {
                indent(out, level);
                out.push_str("else:\n");
                emit_block(out, orelse, level + 1);
            }
        }
        StmtKind::While { test, body } => {
            indent(out, level);
            out.push_str("while ");
            emit_expr(out, test, 0);
            out.push_str(":\n");
            emit_block(out, body, level + 1);
        }
        StmtKind::For { target, iter, body } => {
            indent(out, level);
            out.push_str("for ");
            emit_expr(out, target, 0);
            out.push_str(" in ");
            emit_expr(out, iter, 0);
            out.push_str(":\n");
            emit_block(out, body, level + 1);
        }
        StmtKind::Break => {
            indent(out, level);
            out.push_str("break\n");
        }
        StmtKind::Continue => {
            indent(out, level);
            out.push_str("continue\n");
        }
        StmtKind::Pass => {
            indent(out, level);
            out.push_str("pass\n");
        }
        StmtKind::Assert { test, msg } => {
            indent(out, level);
            out.push_str("assert ");
            emit_expr(out, test, 0);
            if let Some(m) = msg {
                out.push_str(", ");
                emit_expr(out, m, 0);
            }
            out.push('\n');
        }
        StmtKind::ExprStmt(e) => {
            indent(out, level);
            emit_expr(out, e, 0);
            out.push('\n');
        }
        StmtKind::Global(names) => {
            indent(out, level);
            out.push_str("global ");
            out.push_str(&names.join(", "));
            out.push('\n');
        }
        StmtKind::Nonlocal(names) => {
            indent(out, level);
            out.push_str("nonlocal ");
            out.push_str(&names.join(", "));
            out.push('\n');
        }
        StmtKind::Del(names) => {
            indent(out, level);
            out.push_str("del ");
            out.push_str(&names.join(", "));
            out.push('\n');
        }
        StmtKind::Raise(v) => {
            indent(out, level);
            out.push_str("raise");
            if let Some(v) = v {
                out.push(' ');
                emit_expr(out, v, 0);
            }
            out.push('\n');
        }
    }
}

/// Operator precedence levels for minimal parenthesization.
/// Higher binds tighter.
fn precedence(e: &ExprKind) -> u8 {
    match e {
        ExprKind::Lambda { .. } => 1,
        ExprKind::IfExp { .. } => 2,
        ExprKind::BoolOp {
            op: BoolOpKind::Or, ..
        } => 3,
        ExprKind::BoolOp {
            op: BoolOpKind::And,
            ..
        } => 4,
        ExprKind::UnaryOp {
            op: UnaryOp::Not, ..
        } => 5,
        ExprKind::Compare { .. } => 6,
        ExprKind::BinOp {
            op: BinOp::Add | BinOp::Sub,
            ..
        } => 7,
        ExprKind::BinOp {
            op: BinOp::Mul | BinOp::Div | BinOp::FloorDiv | BinOp::Mod,
            ..
        } => 8,
        ExprKind::UnaryOp { .. } => 9,
        ExprKind::BinOp { op: BinOp::Pow, .. } => 10,
        _ => 11,
    }
}

fn emit_expr(out: &mut String, expr: &Expr, min_prec: u8) {
    let prec = precedence(&expr.kind);
    let needs_paren = prec < min_prec;
    if needs_paren {
        out.push('(');
    }
    match &expr.kind {
        ExprKind::Name(n) => out.push_str(n),
        ExprKind::Int(v) => out.push_str(&v.to_string()),
        ExprKind::Float(v) => {
            let s = format!("{v}");
            out.push_str(&s);
            if !s.contains('.') && !s.contains('e') && !s.contains("inf") && !s.contains("NaN") {
                out.push_str(".0");
            }
        }
        ExprKind::Str(s) => {
            out.push('\'');
            for c in s.chars() {
                match c {
                    '\\' => out.push_str("\\\\"),
                    '\'' => out.push_str("\\'"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    c => out.push(c),
                }
            }
            out.push('\'');
        }
        ExprKind::Bool(true) => out.push_str("True"),
        ExprKind::Bool(false) => out.push_str("False"),
        ExprKind::NoneLit => out.push_str("None"),
        ExprKind::Attribute { value, attr } => {
            emit_expr(out, value, 11);
            out.push('.');
            out.push_str(attr);
        }
        ExprKind::Subscript { value, index } => {
            emit_expr(out, value, 11);
            out.push('[');
            match &**index {
                Index::Single(e) => emit_expr(out, e, 0),
                Index::Slice { lower, upper } => {
                    if let Some(l) = lower {
                        emit_expr(out, l, 0);
                    }
                    out.push(':');
                    if let Some(u) = upper {
                        emit_expr(out, u, 0);
                    }
                }
            }
            out.push(']');
        }
        ExprKind::Call { func, args, kwargs } => {
            emit_expr(out, func, 11);
            out.push('(');
            let mut first = true;
            for a in args {
                if !first {
                    out.push_str(", ");
                }
                first = false;
                emit_expr(out, a, 1);
            }
            for (k, v) in kwargs {
                if !first {
                    out.push_str(", ");
                }
                first = false;
                out.push_str(k);
                out.push('=');
                emit_expr(out, v, 1);
            }
            out.push(')');
        }
        ExprKind::BinOp { op, left, right } => {
            let right_assoc = matches!(op, BinOp::Pow);
            emit_expr(out, left, if right_assoc { prec + 1 } else { prec });
            out.push(' ');
            out.push_str(op.as_str());
            out.push(' ');
            emit_expr(out, right, if right_assoc { prec } else { prec + 1 });
        }
        ExprKind::UnaryOp { op, operand } => {
            match op {
                UnaryOp::Neg => out.push('-'),
                UnaryOp::Pos => out.push('+'),
                UnaryOp::Not => out.push_str("not "),
            }
            emit_expr(out, operand, prec);
        }
        ExprKind::BoolOp { op, values } => {
            let text = match op {
                BoolOpKind::And => " and ",
                BoolOpKind::Or => " or ",
            };
            for (i, v) in values.iter().enumerate() {
                if i > 0 {
                    out.push_str(text);
                }
                emit_expr(out, v, prec + 1);
            }
        }
        ExprKind::Compare {
            left,
            ops,
            comparators,
        } => {
            emit_expr(out, left, prec + 1);
            for (op, c) in ops.iter().zip(comparators) {
                out.push(' ');
                out.push_str(op.as_str());
                out.push(' ');
                emit_expr(out, c, prec + 1);
            }
        }
        ExprKind::IfExp { test, body, orelse } => {
            emit_expr(out, body, prec + 1);
            out.push_str(" if ");
            emit_expr(out, test, prec + 1);
            out.push_str(" else ");
            emit_expr(out, orelse, prec);
        }
        ExprKind::List(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                emit_expr(out, item, 1);
            }
            out.push(']');
        }
        ExprKind::Tuple(items) => {
            out.push('(');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                emit_expr(out, item, 1);
            }
            if items.len() == 1 {
                out.push(',');
            }
            out.push(')');
        }
        ExprKind::Lambda { params, body } => {
            out.push_str("lambda");
            for (i, p) in params.iter().enumerate() {
                out.push_str(if i == 0 { " " } else { ", " });
                out.push_str(&p.name);
                if let Some(d) = &p.default {
                    out.push('=');
                    emit_expr(out, d, 0);
                }
            }
            out.push_str(": ");
            emit_expr(out, body, prec);
        }
    }
    if needs_paren {
        out.push(')');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_module;

    /// Strip spans so structural equality ignores locations.
    fn reparse(src: &str) -> Module {
        parse_module(src).unwrap()
    }

    fn round_trip(src: &str) {
        let m1 = reparse(src);
        let out = ast_to_source(&m1);
        let m2 = parse_module(&out)
            .unwrap_or_else(|e| panic!("generated source failed to parse: {e}\n---\n{out}"));
        let out2 = ast_to_source(&m2);
        assert_eq!(out, out2, "codegen not a fixpoint for:\n{src}");
    }

    #[test]
    fn round_trip_simple() {
        round_trip("x = 1 + 2 * 3\n");
        round_trip("y = (1 + 2) * 3\n");
        round_trip("z = -x ** 2\n");
        round_trip("w = 2 ** -3 ** 4\n");
    }

    #[test]
    fn round_trip_control_flow() {
        round_trip("def f(x):\n    if x > 0:\n        x = x * x\n    else:\n        x = -x\n    return x\n");
        round_trip("while a and b:\n    if c:\n        break\n    continue\n");
        round_trip("for i in range(10):\n    total += i\n");
    }

    #[test]
    fn round_trip_calls_slices() {
        round_trip("y = f(a, b, k=1)[2][i:j].attr\n");
        round_trip("outputs.append(tf.matmul(x, w) + b)\n");
        round_trip("l = [1, 2, [3, 4]]\n");
        round_trip("t = (1,)\n");
    }

    #[test]
    fn round_trip_lambda_ternary() {
        round_trip("f = lambda x, y=2: x + y\n");
        round_trip("v = a if p and q else b\n");
    }

    #[test]
    fn round_trip_strings() {
        round_trip("s = 'he said \\'hi\\'\\n'\n");
    }

    #[test]
    fn round_trip_float_formatting() {
        round_trip("x = 3.0\ny = 0.5\nz = 1e20\n");
        let m = reparse("x = 3.0\n");
        assert!(ast_to_source(&m).contains("3.0"));
    }

    #[test]
    fn precedence_parens_preserved_semantically() {
        // (a + b) * c must keep parens
        let m = reparse("r = (a + b) * c\n");
        assert!(ast_to_source(&m).contains("(a + b) * c"));
        // a + b * c must not gain parens
        let m = reparse("r = a + b * c\n");
        assert_eq!(ast_to_source(&m), "r = a + b * c\n");
    }

    #[test]
    fn not_and_or_parens() {
        round_trip("x = not (a or b)\n");
        round_trip("x = not a or b\n");
        let m1 = reparse("x = not (a or b)\n");
        let m2 = reparse("x = not a or b\n");
        assert_ne!(ast_to_source(&m1), ast_to_source(&m2));
    }

    #[test]
    fn decorators_and_defaults() {
        round_trip("@ag.convert()\ndef f(x, eps=0.001):\n    return x\n");
    }

    #[test]
    fn empty_body_emits_pass() {
        let m = Module {
            body: vec![Stmt::synthetic(StmtKind::While {
                test: Expr::name("x"),
                body: vec![],
            })],
        };
        assert_eq!(ast_to_source(&m), "while x:\n    pass\n");
    }

    #[test]
    fn stmt_and_expr_helpers() {
        let m = reparse("x = f(1)\n");
        assert_eq!(stmt_to_source(&m.body[0]), "x = f(1)\n");
        if let StmtKind::Assign { value, .. } = &m.body[0].kind {
            assert_eq!(expr_to_source(value), "f(1)");
        }
    }
}
