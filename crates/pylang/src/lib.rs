//! # autograph-pylang
//!
//! The "PyLite" frontend: a Python-subset language that plays the role of
//! Python in this AutoGraph reproduction. It provides everything step 1–2
//! and 4–5 of the paper's conversion pipeline (§6) need:
//!
//! * an indentation-aware [`lexer`] and recursive-descent [`parser`]
//!   producing a spanned [`ast`];
//! * a structural [`printer`] (the paper's `pretty_printer.fmt`,
//!   Appendix C);
//! * a source [`codegen`] (`compiler.ast_to_source`);
//! * AST [`templates`] for quoted-code rewriting (`templates.replace`).
//!
//! ## Example
//!
//! ```
//! use autograph_pylang::{parse_module, codegen::ast_to_source};
//!
//! let module = parse_module("def f(x):\n    return x + 1\n")?;
//! let src = ast_to_source(&module);
//! assert!(src.contains("return x + 1"));
//! # Ok::<(), autograph_pylang::ParseError>(())
//! ```

pub mod ast;
pub mod codegen;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod span;
pub mod templates;
pub mod token;

pub use ast::{Expr, ExprKind, Module, Param, Stmt, StmtKind};
pub use error::ParseError;
pub use span::Span;

/// Parse a complete PyLite module from source text.
///
/// # Errors
///
/// Returns a [`ParseError`] carrying the offending line/column on lexical or
/// syntactic errors.
pub fn parse_module(source: &str) -> Result<Module, ParseError> {
    // staging-phase spans: lexing happens inside `Parser::new`, parsing
    // in `parse_module` — both invisible in traces until now (cold-start
    // cost accounting)
    let mut parser = {
        let _s = autograph_obs::span("staging", "lex");
        parser::Parser::new(source)?
    };
    let _s = autograph_obs::span("staging", "parse");
    parser.parse_module()
}

/// Parse a string of code, like the paper's `parser.parse_str` utility.
///
/// Alias of [`parse_module`]; the string may contain any valid PyLite code.
///
/// # Errors
///
/// Returns a [`ParseError`] on lexical or syntactic errors.
pub fn parse_str(source: &str) -> Result<Module, ParseError> {
    parse_module(source)
}
