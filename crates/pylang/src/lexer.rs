//! Indentation-aware lexer for PyLite.
//!
//! Produces a flat token stream with explicit `Newline` / `Indent` /
//! `Dedent` tokens, like CPython's tokenizer. Newlines inside brackets are
//! suppressed (implicit line joining), and `\` at end of line joins
//! explicitly.

use crate::error::ParseError;
use crate::token::{Token, TokenKind};
use crate::Span;

/// Tokenize PyLite source text.
///
/// # Errors
///
/// Returns [`ParseError`] on unterminated strings, bad numbers, inconsistent
/// dedents or unknown characters.
pub fn tokenize(source: &str) -> Result<Vec<Token>, ParseError> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    indent_stack: Vec<usize>,
    paren_depth: usize,
    tokens: Vec<Token>,
    at_line_start: bool,
    source: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            chars: source.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            indent_stack: vec![0],
            paren_depth: 0,
            tokens: Vec::new(),
            at_line_start: true,
            source,
        }
    }

    fn span(&self) -> Span {
        Span::new(self.line, self.col)
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, span: Span) {
        self.tokens.push(Token { kind, span });
    }

    fn run(mut self) -> Result<Vec<Token>, ParseError> {
        let _ = self.source; // retained for future diagnostics
        while self.pos < self.chars.len() {
            if self.at_line_start && self.paren_depth == 0 {
                self.handle_indentation()?;
                if self.pos >= self.chars.len() {
                    break;
                }
            }
            let span = self.span();
            let c = match self.peek() {
                Some(c) => c,
                None => break,
            };
            match c {
                ' ' | '\t' | '\r' => {
                    self.bump();
                }
                '#' => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                '\n' => {
                    self.bump();
                    if self.paren_depth == 0 {
                        // collapse consecutive newlines
                        if matches!(
                            self.tokens.last().map(|t| &t.kind),
                            Some(TokenKind::Newline) | Some(TokenKind::Indent) | None
                        ) {
                            // skip blank line
                        } else {
                            self.push(TokenKind::Newline, span);
                        }
                        self.at_line_start = true;
                    }
                }
                '\\' if self.peek2() == Some('\n') => {
                    self.bump();
                    self.bump();
                }
                '\'' | '"' => self.lex_string(c)?,
                '0'..='9' => self.lex_number()?,
                c if c.is_alphabetic() || c == '_' => self.lex_name(),
                _ => self.lex_operator()?,
            }
        }
        // terminate last logical line
        if !matches!(
            self.tokens.last().map(|t| &t.kind),
            Some(TokenKind::Newline) | None
        ) {
            let span = self.span();
            self.push(TokenKind::Newline, span);
        }
        // unwind indents
        while self.indent_stack.len() > 1 {
            self.indent_stack.pop();
            let span = self.span();
            self.push(TokenKind::Dedent, span);
        }
        let span = self.span();
        self.push(TokenKind::Eof, span);
        Ok(self.tokens)
    }

    fn handle_indentation(&mut self) -> Result<(), ParseError> {
        loop {
            let mut width = 0usize;
            let start = self.pos;
            while let Some(c) = self.peek() {
                match c {
                    ' ' => {
                        width += 1;
                        self.bump();
                    }
                    '\t' => {
                        width += 8 - (width % 8);
                        self.bump();
                    }
                    _ => break,
                }
            }
            match self.peek() {
                // blank or comment-only line: consume and restart
                Some('\n') => {
                    self.bump();
                    continue;
                }
                Some('#') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                    continue;
                }
                None => {
                    let _ = start;
                    self.at_line_start = false;
                    return Ok(());
                }
                _ => {}
            }
            self.at_line_start = false;
            let current = *self.indent_stack.last().expect("stack nonempty");
            let span = self.span();
            if width > current {
                self.indent_stack.push(width);
                self.push(TokenKind::Indent, span);
            } else if width < current {
                while *self.indent_stack.last().expect("stack nonempty") > width {
                    self.indent_stack.pop();
                    self.push(TokenKind::Dedent, span);
                }
                if *self.indent_stack.last().expect("stack nonempty") != width {
                    return Err(ParseError::new(
                        "unindent does not match any outer indentation level",
                        span,
                    ));
                }
            }
            return Ok(());
        }
    }

    fn lex_string(&mut self, quote: char) -> Result<(), ParseError> {
        let span = self.span();
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                None | Some('\n') => {
                    return Err(ParseError::new("unterminated string literal", span));
                }
                Some('\\') => match self.bump() {
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some('\\') => s.push('\\'),
                    Some('\'') => s.push('\''),
                    Some('"') => s.push('"'),
                    Some(other) => {
                        s.push('\\');
                        s.push(other);
                    }
                    None => return Err(ParseError::new("unterminated string literal", span)),
                },
                Some(c) if c == quote => break,
                Some(c) => s.push(c),
            }
        }
        self.push(TokenKind::Str(s), span);
        Ok(())
    }

    fn lex_number(&mut self) -> Result<(), ParseError> {
        let span = self.span();
        let mut text = String::new();
        let mut is_float = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || c == '_' {
                if c != '_' {
                    text.push(c);
                }
                self.bump();
            } else if c == '.' && self.peek2().map(|c| c.is_ascii_digit()).unwrap_or(false)
                || (c == '.' && !is_float && !text.is_empty())
            {
                is_float = true;
                text.push('.');
                self.bump();
            } else if c == 'e' || c == 'E' {
                is_float = true;
                text.push(c);
                self.bump();
                if matches!(self.peek(), Some('+') | Some('-')) {
                    text.push(self.bump().expect("peeked"));
                }
            } else {
                break;
            }
        }
        if is_float {
            let v: f64 = text
                .parse()
                .map_err(|_| ParseError::new(format!("invalid float literal '{text}'"), span))?;
            self.push(TokenKind::Float(v), span);
        } else {
            let v: i64 = text
                .parse()
                .map_err(|_| ParseError::new(format!("invalid int literal '{text}'"), span))?;
            self.push(TokenKind::Int(v), span);
        }
        Ok(())
    }

    fn lex_name(&mut self) {
        let span = self.span();
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        match TokenKind::keyword(&s) {
            Some(k) => self.push(k, span),
            None => self.push(TokenKind::Name(s), span),
        }
    }

    fn lex_operator(&mut self) -> Result<(), ParseError> {
        let span = self.span();
        let c = self.bump().expect("caller checked");
        let two = |lexer: &Lexer| lexer.peek();
        let kind = match c {
            '(' => {
                self.paren_depth += 1;
                TokenKind::LParen
            }
            ')' => {
                self.paren_depth = self.paren_depth.saturating_sub(1);
                TokenKind::RParen
            }
            '[' => {
                self.paren_depth += 1;
                TokenKind::LBracket
            }
            ']' => {
                self.paren_depth = self.paren_depth.saturating_sub(1);
                TokenKind::RBracket
            }
            '{' => {
                self.paren_depth += 1;
                TokenKind::LBrace
            }
            '}' => {
                self.paren_depth = self.paren_depth.saturating_sub(1);
                TokenKind::RBrace
            }
            ',' => TokenKind::Comma,
            ':' => TokenKind::Colon,
            '.' => TokenKind::Dot,
            '@' => TokenKind::At,
            '+' => {
                if two(self) == Some('=') {
                    self.bump();
                    TokenKind::PlusAssign
                } else {
                    TokenKind::Plus
                }
            }
            '-' => match two(self) {
                Some('=') => {
                    self.bump();
                    TokenKind::MinusAssign
                }
                Some('>') => {
                    self.bump();
                    TokenKind::Arrow
                }
                _ => TokenKind::Minus,
            },
            '*' => match two(self) {
                Some('=') => {
                    self.bump();
                    TokenKind::StarAssign
                }
                Some('*') => {
                    self.bump();
                    TokenKind::DoubleStar
                }
                _ => TokenKind::Star,
            },
            '/' => match two(self) {
                Some('=') => {
                    self.bump();
                    TokenKind::SlashAssign
                }
                Some('/') => {
                    self.bump();
                    TokenKind::DoubleSlash
                }
                _ => TokenKind::Slash,
            },
            '%' => TokenKind::Percent,
            '<' => {
                if two(self) == Some('=') {
                    self.bump();
                    TokenKind::Le
                } else {
                    TokenKind::Lt
                }
            }
            '>' => {
                if two(self) == Some('=') {
                    self.bump();
                    TokenKind::Ge
                } else {
                    TokenKind::Gt
                }
            }
            '=' => {
                if two(self) == Some('=') {
                    self.bump();
                    TokenKind::EqEq
                } else {
                    TokenKind::Assign
                }
            }
            '!' => {
                if two(self) == Some('=') {
                    self.bump();
                    TokenKind::NotEq
                } else {
                    return Err(ParseError::new("unexpected character '!'", span));
                }
            }
            other => {
                return Err(ParseError::new(
                    format!("unexpected character '{other}'"),
                    span,
                ));
            }
        };
        self.push(kind, span);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use TokenKind::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn simple_expression() {
        assert_eq!(
            kinds("x = 1 + 2\n"),
            vec![Name("x".into()), Assign, Int(1), Plus, Int(2), Newline, Eof]
        );
    }

    #[test]
    fn indent_dedent() {
        let k = kinds("if x:\n    y = 1\nz = 2\n");
        assert_eq!(
            k,
            vec![
                If,
                Name("x".into()),
                Colon,
                Newline,
                Indent,
                Name("y".into()),
                Assign,
                Int(1),
                Newline,
                Dedent,
                Name("z".into()),
                Assign,
                Int(2),
                Newline,
                Eof
            ]
        );
    }

    #[test]
    fn nested_dedents_unwound_at_eof() {
        let k = kinds("if a:\n    if b:\n        pass\n");
        let dedents = k.iter().filter(|t| **t == Dedent).count();
        assert_eq!(dedents, 2);
    }

    #[test]
    fn blank_lines_and_comments_ignored() {
        let k = kinds("x = 1\n\n# comment\n   # indented comment\ny = 2\n");
        assert_eq!(
            k,
            vec![
                Name("x".into()),
                Assign,
                Int(1),
                Newline,
                Name("y".into()),
                Assign,
                Int(2),
                Newline,
                Eof
            ]
        );
    }

    #[test]
    fn implicit_line_joining_in_parens() {
        let k = kinds("f(a,\n  b)\n");
        assert!(!k[..k.len() - 2].contains(&Newline));
    }

    #[test]
    fn explicit_line_joining() {
        let k = kinds("x = 1 + \\\n2\n");
        assert_eq!(
            k,
            vec![Name("x".into()), Assign, Int(1), Plus, Int(2), Newline, Eof]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("1.5\n")[0], Float(1.5));
        assert_eq!(kinds("1e3\n")[0], Float(1000.0));
        assert_eq!(kinds("2.5e-1\n")[0], Float(0.25));
        assert_eq!(kinds("1_000\n")[0], Int(1000));
        assert_eq!(kinds("3.\n")[0], Float(3.0));
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(kinds("'a\\nb'\n")[0], Str("a\nb".into()));
        assert_eq!(kinds("\"x'y\"\n")[0], Str("x'y".into()));
        assert!(tokenize("'unterminated\n").is_err());
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            kinds("a <= b != c ** d // e -> f += 1\n"),
            vec![
                Name("a".into()),
                Le,
                Name("b".into()),
                NotEq,
                Name("c".into()),
                DoubleStar,
                Name("d".into()),
                DoubleSlash,
                Name("e".into()),
                Arrow,
                Name("f".into()),
                PlusAssign,
                Int(1),
                Newline,
                Eof
            ]
        );
    }

    #[test]
    fn bad_dedent_rejected() {
        assert!(tokenize("if x:\n        a = 1\n    b = 2\n").is_err());
    }

    #[test]
    fn unknown_char_rejected() {
        let err = tokenize("x = $\n").unwrap_err();
        assert!(err.to_string().contains('$'));
    }

    #[test]
    fn spans_track_lines() {
        let toks = tokenize("x = 1\ny = 2\n").unwrap();
        let y = toks.iter().find(|t| t.kind == Name("y".into())).unwrap();
        assert_eq!(y.span.line, 2);
        assert_eq!(y.span.col, 1);
    }

    #[test]
    fn keywords_recognized() {
        assert_eq!(kinds("lambda x: x\n")[0], Lambda);
        assert_eq!(kinds("del x\n")[0], Del);
    }

    #[test]
    fn no_trailing_newline_still_terminated() {
        let k = kinds("x = 1");
        assert_eq!(k.last(), Some(&Eof));
        assert!(k.contains(&Newline));
    }
}
