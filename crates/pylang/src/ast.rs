//! The PyLite abstract syntax tree.
//!
//! Every node carries a [`Span`] pointing back at the user's original
//! source; synthesized nodes produced by conversion passes use
//! [`Span::synthetic`] unless the pass copies the span of the construct it
//! replaced (which is how AutoGraph's source maps work, Appendix B).

use crate::Span;

/// A whole source module: a sequence of statements.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// Top-level statements.
    pub body: Vec<Stmt>,
}

impl Module {
    /// Find a top-level function definition by name.
    pub fn function(&self, name: &str) -> Option<&Stmt> {
        self.body
            .iter()
            .find(|s| matches!(&s.kind, StmtKind::FunctionDef { name: n, .. } if n == name))
    }

    /// Names of all top-level function definitions, in order.
    pub fn function_names(&self) -> Vec<&str> {
        self.body
            .iter()
            .filter_map(|s| match &s.kind {
                StmtKind::FunctionDef { name, .. } => Some(name.as_str()),
                _ => None,
            })
            .collect()
    }
}

/// A function parameter (positional, with optional default).
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Default value, if any.
    pub default: Option<Expr>,
}

/// A statement with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// What the statement is.
    pub kind: StmtKind,
    /// Source location.
    pub span: Span,
}

impl Stmt {
    /// Construct a statement at a span.
    pub fn new(kind: StmtKind, span: Span) -> Stmt {
        Stmt { kind, span }
    }

    /// Construct a synthesized statement (no user-source origin).
    pub fn synthetic(kind: StmtKind) -> Stmt {
        Stmt {
            kind,
            span: Span::synthetic(),
        }
    }
}

/// The statement kinds of PyLite.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// `def name(params): body`, possibly decorated.
    FunctionDef {
        /// Function name.
        name: String,
        /// Positional parameters.
        params: Vec<Param>,
        /// Body statements.
        body: Vec<Stmt>,
        /// Decorator expressions, outermost first.
        decorators: Vec<Expr>,
    },
    /// `return` with optional value.
    Return(Option<Expr>),
    /// `target = value` (target may be a Name, Tuple, Attribute or
    /// Subscript).
    Assign {
        /// Assignment target.
        target: Expr,
        /// Right-hand side.
        value: Expr,
    },
    /// `target op= value`.
    AugAssign {
        /// Assignment target.
        target: Expr,
        /// The arithmetic operator.
        op: BinOp,
        /// Right-hand side.
        value: Expr,
    },
    /// `if test: body [elif/else: orelse]` — `elif` chains become nested
    /// `If` in `orelse`.
    If {
        /// Condition.
        test: Expr,
        /// True branch.
        body: Vec<Stmt>,
        /// False branch (possibly empty).
        orelse: Vec<Stmt>,
    },
    /// `while test: body`.
    While {
        /// Loop condition.
        test: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `for target in iter: body`.
    For {
        /// Loop variable (Name or Tuple).
        target: Expr,
        /// Iterated expression.
        iter: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `break`.
    Break,
    /// `continue`.
    Continue,
    /// `pass`.
    Pass,
    /// `assert test[, msg]`.
    Assert {
        /// The asserted condition.
        test: Expr,
        /// Optional message.
        msg: Option<Expr>,
    },
    /// An expression evaluated for side effects.
    ExprStmt(Expr),
    /// `global names` — parsed, but rejected by conversion (Table 6).
    Global(Vec<String>),
    /// `nonlocal names` — parsed, but rejected by conversion (Table 6).
    Nonlocal(Vec<String>),
    /// `del name` — used by the undefined-symbol machinery.
    Del(Vec<String>),
    /// `raise expr` — passes through conversion unconverted (Table 4).
    Raise(Option<Expr>),
}

/// An expression with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// What the expression is.
    pub kind: ExprKind,
    /// Source location.
    pub span: Span,
}

impl Expr {
    /// Construct an expression at a span.
    pub fn new(kind: ExprKind, span: Span) -> Expr {
        Expr { kind, span }
    }

    /// Construct a synthesized expression.
    pub fn synthetic(kind: ExprKind) -> Expr {
        Expr {
            kind,
            span: Span::synthetic(),
        }
    }

    /// Shorthand: a name expression with a synthetic span.
    pub fn name(n: impl Into<String>) -> Expr {
        Expr::synthetic(ExprKind::Name(n.into()))
    }

    /// Shorthand: a call with positional args and a synthetic span.
    pub fn call(func: Expr, args: Vec<Expr>) -> Expr {
        Expr::synthetic(ExprKind::Call {
            func: Box::new(func),
            args,
            kwargs: Vec::new(),
        })
    }

    /// Shorthand: dotted attribute path, e.g. `attr_path("ag", &["if_stmt"])`.
    pub fn attr_path(base: &str, attrs: &[&str]) -> Expr {
        let mut e = Expr::name(base);
        for a in attrs {
            e = Expr::synthetic(ExprKind::Attribute {
                value: Box::new(e),
                attr: (*a).to_string(),
            });
        }
        e
    }
}

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `//`
    FloorDiv,
    /// `%`
    Mod,
    /// `**`
    Pow,
}

impl BinOp {
    /// Source text of the operator.
    pub fn as_str(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::FloorDiv => "//",
            BinOp::Mod => "%",
            BinOp::Pow => "**",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// `-`
    Neg,
    /// `+`
    Pos,
    /// `not`
    Not,
}

/// Boolean (short-circuit) operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoolOpKind {
    /// `and`
    And,
    /// `or`
    Or,
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    NotEq,
    /// `is`
    Is,
    /// `is not`
    IsNot,
    /// `in`
    In,
    /// `not in`
    NotIn,
}

impl CmpOp {
    /// Source text of the operator.
    pub fn as_str(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "==",
            CmpOp::NotEq => "!=",
            CmpOp::Is => "is",
            CmpOp::IsNot => "is not",
            CmpOp::In => "in",
            CmpOp::NotIn => "not in",
        }
    }
}

/// Subscript index: single expression or a `[lower:upper]` slice.
#[derive(Debug, Clone, PartialEq)]
pub enum Index {
    /// `x[i]`
    Single(Expr),
    /// `x[lo:hi]` (either bound optional)
    Slice {
        /// Lower bound.
        lower: Option<Expr>,
        /// Upper bound.
        upper: Option<Expr>,
    },
}

/// The expression kinds of PyLite.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// A bare name.
    Name(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// `True` / `False`.
    Bool(bool),
    /// `None`.
    NoneLit,
    /// `value.attr`.
    Attribute {
        /// Object expression.
        value: Box<Expr>,
        /// Attribute name.
        attr: String,
    },
    /// `value[index]`.
    Subscript {
        /// Subscripted expression.
        value: Box<Expr>,
        /// Index or slice.
        index: Box<Index>,
    },
    /// `func(args, kw=...)`.
    Call {
        /// Callee.
        func: Box<Expr>,
        /// Positional arguments.
        args: Vec<Expr>,
        /// Keyword arguments.
        kwargs: Vec<(String, Expr)>,
    },
    /// Binary arithmetic.
    BinOp {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary operation.
    UnaryOp {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        operand: Box<Expr>,
    },
    /// `a and b and c` / `a or b` (short-circuit).
    BoolOp {
        /// Which operator.
        op: BoolOpKind,
        /// Operands, length >= 2.
        values: Vec<Expr>,
    },
    /// Chained comparison `a < b <= c`.
    Compare {
        /// Leftmost operand.
        left: Box<Expr>,
        /// Operators, one per comparator.
        ops: Vec<CmpOp>,
        /// Right-hand operands.
        comparators: Vec<Expr>,
    },
    /// Ternary `body if test else orelse`.
    IfExp {
        /// Condition.
        test: Box<Expr>,
        /// Value when true.
        body: Box<Expr>,
        /// Value when false.
        orelse: Box<Expr>,
    },
    /// List literal.
    List(Vec<Expr>),
    /// Tuple literal / tuple target.
    Tuple(Vec<Expr>),
    /// `lambda params: body`.
    Lambda {
        /// Parameters.
        params: Vec<Param>,
        /// Body expression.
        body: Box<Expr>,
    },
}

/// Walk helper: visit every statement in a body tree (pre-order),
/// including nested function bodies.
pub fn walk_stmts<'a>(body: &'a [Stmt], f: &mut impl FnMut(&'a Stmt)) {
    for s in body {
        f(s);
        match &s.kind {
            StmtKind::FunctionDef { body, .. } => walk_stmts(body, f),
            StmtKind::If { body, orelse, .. } => {
                walk_stmts(body, f);
                walk_stmts(orelse, f);
            }
            StmtKind::While { body, .. } | StmtKind::For { body, .. } => walk_stmts(body, f),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_function_lookup() {
        let m = Module {
            body: vec![
                Stmt::synthetic(StmtKind::Pass),
                Stmt::synthetic(StmtKind::FunctionDef {
                    name: "f".into(),
                    params: vec![],
                    body: vec![Stmt::synthetic(StmtKind::Pass)],
                    decorators: vec![],
                }),
            ],
        };
        assert!(m.function("f").is_some());
        assert!(m.function("g").is_none());
        assert_eq!(m.function_names(), vec!["f"]);
    }

    #[test]
    fn expr_builders() {
        let e = Expr::attr_path("ag", &["if_stmt"]);
        match &e.kind {
            ExprKind::Attribute { value, attr } => {
                assert_eq!(attr, "if_stmt");
                assert!(matches!(&value.kind, ExprKind::Name(n) if n == "ag"));
            }
            _ => panic!("expected attribute"),
        }
    }

    #[test]
    fn walk_visits_nested() {
        let m = crate::parse_module("def f(x):\n    if x:\n        while x:\n            pass\n")
            .unwrap();
        let mut count = 0;
        walk_stmts(&m.body, &mut |_| count += 1);
        assert_eq!(count, 4); // def, if, while, pass
    }

    #[test]
    fn op_strings() {
        assert_eq!(BinOp::FloorDiv.as_str(), "//");
        assert_eq!(CmpOp::IsNot.as_str(), "is not");
    }
}
