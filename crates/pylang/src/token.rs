//! Token kinds produced by the PyLite lexer.

use crate::Span;
use std::fmt;

/// A lexical token with its source location.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where it starts in the source.
    pub span: Span,
}

/// The kinds of PyLite tokens.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    // Literals and identifiers
    /// An identifier or non-keyword name.
    Name(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (contents, quotes stripped).
    Str(String),

    // Keywords
    /// `def`
    Def,
    /// `return`
    Return,
    /// `if`
    If,
    /// `elif`
    Elif,
    /// `else`
    Else,
    /// `while`
    While,
    /// `for`
    For,
    /// `in`
    In,
    /// `break`
    Break,
    /// `continue`
    Continue,
    /// `pass`
    Pass,
    /// `and`
    And,
    /// `or`
    Or,
    /// `not`
    Not,
    /// `True`
    True,
    /// `False`
    False,
    /// `None`
    None,
    /// `assert`
    Assert,
    /// `lambda`
    Lambda,
    /// `is`
    Is,
    /// `global`
    Global,
    /// `nonlocal`
    Nonlocal,
    /// `del`
    Del,
    /// `print` is an ordinary name in PyLite (Python 3), listed here only
    /// for documentation; the lexer emits `Name("print")`.
    /// `yield` — recognized so conversion can reject it per Table 4.
    Yield,
    /// `try` — recognized so conversion can pass it through unconverted.
    Try,
    /// `raise`
    Raise,

    // Punctuation / operators
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `@`
    At,
    /// `=`
    Assign,
    /// `+=`
    PlusAssign,
    /// `-=`
    MinusAssign,
    /// `*=`
    StarAssign,
    /// `/=`
    SlashAssign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `**`
    DoubleStar,
    /// `/`
    Slash,
    /// `//`
    DoubleSlash,
    /// `%`
    Percent,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `->` (accepted and ignored in defs)
    Arrow,

    // Layout
    /// Logical end of line.
    Newline,
    /// Indentation increased.
    Indent,
    /// Indentation decreased.
    Dedent,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Map an identifier string to a keyword kind, if it is one.
    pub fn keyword(name: &str) -> Option<TokenKind> {
        Some(match name {
            "def" => TokenKind::Def,
            "return" => TokenKind::Return,
            "if" => TokenKind::If,
            "elif" => TokenKind::Elif,
            "else" => TokenKind::Else,
            "while" => TokenKind::While,
            "for" => TokenKind::For,
            "in" => TokenKind::In,
            "break" => TokenKind::Break,
            "continue" => TokenKind::Continue,
            "pass" => TokenKind::Pass,
            "and" => TokenKind::And,
            "or" => TokenKind::Or,
            "not" => TokenKind::Not,
            "True" => TokenKind::True,
            "False" => TokenKind::False,
            "None" => TokenKind::None,
            "assert" => TokenKind::Assert,
            "lambda" => TokenKind::Lambda,
            "is" => TokenKind::Is,
            "global" => TokenKind::Global,
            "nonlocal" => TokenKind::Nonlocal,
            "del" => TokenKind::Del,
            "yield" => TokenKind::Yield,
            "try" => TokenKind::Try,
            "raise" => TokenKind::Raise,
            _ => return Option::None,
        })
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Name(s) => write!(f, "name '{s}'"),
            TokenKind::Int(v) => write!(f, "int {v}"),
            TokenKind::Float(v) => write!(f, "float {v}"),
            TokenKind::Str(s) => write!(f, "string {s:?}"),
            TokenKind::Newline => write!(f, "newline"),
            TokenKind::Indent => write!(f, "indent"),
            TokenKind::Dedent => write!(f, "dedent"),
            TokenKind::Eof => write!(f, "end of input"),
            other => write!(f, "'{}'", token_text(other)),
        }
    }
}

fn token_text(kind: &TokenKind) -> &'static str {
    use TokenKind::*;
    match kind {
        Def => "def",
        Return => "return",
        If => "if",
        Elif => "elif",
        Else => "else",
        While => "while",
        For => "for",
        In => "in",
        Break => "break",
        Continue => "continue",
        Pass => "pass",
        And => "and",
        Or => "or",
        Not => "not",
        True => "True",
        False => "False",
        None => "None",
        Assert => "assert",
        Lambda => "lambda",
        Is => "is",
        Global => "global",
        Nonlocal => "nonlocal",
        Del => "del",
        Yield => "yield",
        Try => "try",
        Raise => "raise",
        LParen => "(",
        RParen => ")",
        LBracket => "[",
        RBracket => "]",
        LBrace => "{",
        RBrace => "}",
        Comma => ",",
        Colon => ":",
        Dot => ".",
        At => "@",
        Assign => "=",
        PlusAssign => "+=",
        MinusAssign => "-=",
        StarAssign => "*=",
        SlashAssign => "/=",
        Plus => "+",
        Minus => "-",
        Star => "*",
        DoubleStar => "**",
        Slash => "/",
        DoubleSlash => "//",
        Percent => "%",
        Lt => "<",
        Le => "<=",
        Gt => ">",
        Ge => ">=",
        EqEq => "==",
        NotEq => "!=",
        Arrow => "->",
        _ => unreachable!("handled in Display"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup() {
        assert_eq!(TokenKind::keyword("def"), Some(TokenKind::Def));
        assert_eq!(TokenKind::keyword("lambda"), Some(TokenKind::Lambda));
        assert_eq!(TokenKind::keyword("frobnicate"), None);
        // print is not a keyword in PyLite
        assert_eq!(TokenKind::keyword("print"), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(TokenKind::Def.to_string(), "'def'");
        assert_eq!(TokenKind::Name("x".into()).to_string(), "name 'x'");
        assert_eq!(TokenKind::Eof.to_string(), "end of input");
        assert_eq!(TokenKind::PlusAssign.to_string(), "'+='");
    }
}
