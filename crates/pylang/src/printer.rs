//! Structural AST pretty printer — the paper's `pretty_printer.fmt`
//! utility (Appendix C). Produces an indented tree dump that makes small
//! AST manipulations easy to debug.

use crate::ast::*;

/// Render the structural tree of a module, in the style of Appendix C:
///
/// ```text
/// Module:
/// | body=[
/// | | Assign:
/// | | | target=Name: id="a"
/// ...
/// ```
pub fn fmt(module: &Module) -> String {
    let mut p = Printer::default();
    p.line(0, "Module:");
    p.open_list(1, "body");
    for s in &module.body {
        p.stmt(2, s);
    }
    p.close_list(1);
    p.out
}

/// Render a single statement subtree.
pub fn fmt_stmt(stmt: &Stmt) -> String {
    let mut p = Printer::default();
    p.stmt(0, stmt);
    p.out
}

/// Render a single expression subtree.
pub fn fmt_expr(expr: &Expr) -> String {
    let mut p = Printer::default();
    p.expr(0, expr);
    p.out
}

#[derive(Default)]
struct Printer {
    out: String,
}

impl Printer {
    fn line(&mut self, depth: usize, text: &str) {
        for _ in 0..depth {
            self.out.push_str("| ");
        }
        self.out.push_str(text);
        self.out.push('\n');
    }

    fn open_list(&mut self, depth: usize, name: &str) {
        self.line(depth, &format!("{name}=["));
    }

    fn close_list(&mut self, depth: usize) {
        self.line(depth, "]");
    }

    fn block(&mut self, depth: usize, name: &str, body: &[Stmt]) {
        self.open_list(depth, name);
        for s in body {
            self.stmt(depth + 1, s);
        }
        self.close_list(depth);
    }

    fn stmt(&mut self, depth: usize, stmt: &Stmt) {
        match &stmt.kind {
            StmtKind::FunctionDef {
                name,
                params,
                body,
                decorators,
            } => {
                self.line(depth, &format!("FunctionDef: name={name:?}"));
                if !decorators.is_empty() {
                    self.open_list(depth + 1, "decorators");
                    for d in decorators {
                        self.expr(depth + 2, d);
                    }
                    self.close_list(depth + 1);
                }
                let names: Vec<&str> = params.iter().map(|p| p.name.as_str()).collect();
                self.line(depth + 1, &format!("params={names:?}"));
                self.block(depth + 1, "body", body);
            }
            StmtKind::Return(v) => {
                self.line(depth, "Return:");
                if let Some(v) = v {
                    self.expr(depth + 1, v);
                }
            }
            StmtKind::Assign { target, value } => {
                self.line(depth, "Assign:");
                self.line(depth + 1, "target=");
                self.expr(depth + 2, target);
                self.line(depth + 1, "value=");
                self.expr(depth + 2, value);
            }
            StmtKind::AugAssign { target, op, value } => {
                self.line(depth, &format!("AugAssign: op={:?}", op));
                self.expr(depth + 1, target);
                self.expr(depth + 1, value);
            }
            StmtKind::If { test, body, orelse } => {
                self.line(depth, "If:");
                self.line(depth + 1, "test=");
                self.expr(depth + 2, test);
                self.block(depth + 1, "body", body);
                if !orelse.is_empty() {
                    self.block(depth + 1, "orelse", orelse);
                }
            }
            StmtKind::While { test, body } => {
                self.line(depth, "While:");
                self.expr(depth + 1, test);
                self.block(depth + 1, "body", body);
            }
            StmtKind::For { target, iter, body } => {
                self.line(depth, "For:");
                self.expr(depth + 1, target);
                self.expr(depth + 1, iter);
                self.block(depth + 1, "body", body);
            }
            StmtKind::Break => self.line(depth, "Break"),
            StmtKind::Continue => self.line(depth, "Continue"),
            StmtKind::Pass => self.line(depth, "Pass"),
            StmtKind::Assert { test, .. } => {
                self.line(depth, "Assert:");
                self.expr(depth + 1, test);
            }
            StmtKind::ExprStmt(e) => {
                self.line(depth, "ExprStmt:");
                self.expr(depth + 1, e);
            }
            StmtKind::Global(names) => self.line(depth, &format!("Global: {names:?}")),
            StmtKind::Nonlocal(names) => self.line(depth, &format!("Nonlocal: {names:?}")),
            StmtKind::Del(names) => self.line(depth, &format!("Del: {names:?}")),
            StmtKind::Raise(v) => {
                self.line(depth, "Raise:");
                if let Some(v) = v {
                    self.expr(depth + 1, v);
                }
            }
        }
    }

    fn expr(&mut self, depth: usize, expr: &Expr) {
        match &expr.kind {
            ExprKind::Name(n) => self.line(depth, &format!("Name: id={n:?}")),
            ExprKind::Int(v) => self.line(depth, &format!("Int: {v}")),
            ExprKind::Float(v) => self.line(depth, &format!("Float: {v}")),
            ExprKind::Str(s) => self.line(depth, &format!("Str: {s:?}")),
            ExprKind::Bool(b) => self.line(depth, &format!("Bool: {b}")),
            ExprKind::NoneLit => self.line(depth, "None"),
            ExprKind::Attribute { value, attr } => {
                self.line(depth, &format!("Attribute: attr={attr:?}"));
                self.expr(depth + 1, value);
            }
            ExprKind::Subscript { value, index } => {
                self.line(depth, "Subscript:");
                self.expr(depth + 1, value);
                match &**index {
                    Index::Single(e) => self.expr(depth + 1, e),
                    Index::Slice { lower, upper } => {
                        self.line(depth + 1, "Slice:");
                        if let Some(l) = lower {
                            self.expr(depth + 2, l);
                        }
                        if let Some(u) = upper {
                            self.expr(depth + 2, u);
                        }
                    }
                }
            }
            ExprKind::Call { func, args, kwargs } => {
                self.line(depth, "Call:");
                self.expr(depth + 1, func);
                if !args.is_empty() {
                    self.open_list(depth + 1, "args");
                    for a in args {
                        self.expr(depth + 2, a);
                    }
                    self.close_list(depth + 1);
                }
                for (k, v) in kwargs {
                    self.line(depth + 1, &format!("kwarg {k}="));
                    self.expr(depth + 2, v);
                }
            }
            ExprKind::BinOp { op, left, right } => {
                self.line(depth, &format!("BinOp: op={:?}", op));
                self.expr(depth + 1, left);
                self.expr(depth + 1, right);
            }
            ExprKind::UnaryOp { op, operand } => {
                self.line(depth, &format!("UnaryOp: op={:?}", op));
                self.expr(depth + 1, operand);
            }
            ExprKind::BoolOp { op, values } => {
                self.line(depth, &format!("BoolOp: op={:?}", op));
                for v in values {
                    self.expr(depth + 1, v);
                }
            }
            ExprKind::Compare {
                left,
                ops,
                comparators,
            } => {
                self.line(depth, &format!("Compare: ops={ops:?}"));
                self.expr(depth + 1, left);
                for c in comparators {
                    self.expr(depth + 1, c);
                }
            }
            ExprKind::IfExp { test, body, orelse } => {
                self.line(depth, "IfExp:");
                self.expr(depth + 1, test);
                self.expr(depth + 1, body);
                self.expr(depth + 1, orelse);
            }
            ExprKind::List(items) => {
                self.line(depth, "List:");
                for i in items {
                    self.expr(depth + 1, i);
                }
            }
            ExprKind::Tuple(items) => {
                self.line(depth, "Tuple:");
                for i in items {
                    self.expr(depth + 1, i);
                }
            }
            ExprKind::Lambda { params, body } => {
                let names: Vec<&str> = params.iter().map(|p| p.name.as_str()).collect();
                self.line(depth, &format!("Lambda: params={names:?}"));
                self.expr(depth + 1, body);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_module;

    #[test]
    fn fmt_assignment_like_appendix_c() {
        let m = parse_module("a = b\n").unwrap();
        let s = fmt(&m);
        assert!(s.starts_with("Module:\n"));
        assert!(s.contains("Assign:"));
        assert!(s.contains("Name: id=\"a\""));
        assert!(s.contains("Name: id=\"b\""));
    }

    #[test]
    fn fmt_depth_markers() {
        let m = parse_module("if x:\n    y = f(1, k=2)\n").unwrap();
        let s = fmt(&m);
        assert!(s.contains("| | If:"));
        assert!(s.contains("kwarg k="));
    }

    #[test]
    fn fmt_every_node_kind_smoke() {
        let src = "\
@dec\ndef f(a, b=1):\n    l = [1, (2, 3)]\n    l[0] = l[1:2]\n    x = -a ** 2 if a and b else not b\n    x += 1\n    s = 'str'\n    del x\n    assert a < b <= 3, 'msg'\n    for i in range(3):\n        if i == 1:\n            continue\n        break\n    while False:\n        pass\n    g = lambda v: v\n    raise e\n    return None\n";
        let m = parse_module(src).unwrap();
        let s = fmt(&m);
        for needle in [
            "FunctionDef",
            "List:",
            "Tuple:",
            "Subscript:",
            "Slice:",
            "IfExp:",
            "AugAssign",
            "Str:",
            "Del:",
            "Assert:",
            "For:",
            "Continue",
            "Break",
            "While:",
            "Lambda",
            "Raise:",
            "Return:",
            "UnaryOp",
            "Compare",
            "BoolOp",
        ] {
            assert!(s.contains(needle), "missing {needle} in:\n{s}");
        }
    }

    #[test]
    fn fmt_stmt_and_expr() {
        let m = parse_module("x = 1\n").unwrap();
        assert!(fmt_stmt(&m.body[0]).contains("Assign:"));
        if let crate::StmtKind::Assign { value, .. } = &m.body[0].kind {
            assert_eq!(fmt_expr(value), "Int: 1\n");
        }
    }
}
