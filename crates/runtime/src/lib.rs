//! # autograph-runtime
//!
//! The AutoGraph runtime: a PyLite interpreter plus the `ag.*` operator
//! library that converted code calls into. This is where the paper's
//! **dynamic dispatch** (§6) lives — `ag.if_stmt`, `ag.while_stmt`,
//! `ag.for_stmt` and friends inspect their operand types at runtime and
//! either execute Python semantics imperatively or stage the construct
//! into the active backend IR:
//!
//! | operand | behaviour |
//! |---|---|
//! | Python bool / list / range | normal imperative execution |
//! | eager tensor | imperative execution (op-by-op, the Eager baseline) |
//! | graph node | staged into the TensorFlow-like graph (`tf.cond` / `tf.while_loop`) |
//! | Lantern expression | staged into the Lantern S-expression IR (recursion supported) |
//!
//! The [`Runtime`] type is the top-level façade: load (optionally
//! converted) PyLite source, call functions eagerly, or stage them into a
//! [`autograph_graph::Graph`] / [`autograph_lantern::Program`].

pub mod backend;
pub mod env;
pub mod error;
pub mod interp;
pub mod operators;
pub mod plan_cache;
pub mod runtime;
pub mod tf_api;
pub mod value;

pub use backend::Backend;
pub use error::RuntimeError;
pub use interp::Interp;
pub use plan_cache::{compile_cached, compile_cached_with, CachedArtifacts};
pub use runtime::{CompiledFunction, Runtime, StagedGraph};
pub use value::Value;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, RuntimeError>;
