//! The PyLite AST interpreter.
//!
//! Runs both *unconverted* code (full Python semantics: `if`/`while`/`for`
//! execute imperatively, `break`/`continue`/`return` flow natively — this
//! is the Eager baseline) and *converted* code (whose control flow has
//! become `ag.*` calls that dispatch dynamically; see
//! [`crate::operators`]).
//!
//! Arithmetic and comparison operators dispatch on operand types, the
//! runtime analog of Python operator overloading (§4): Python numbers get
//! Python semantics; eager tensors dispatch through the eager registry;
//! staged values add IR nodes.

use crate::backend::{Backend, GraphStage, LanternStage};
use crate::env::Env;
use crate::value::{ModuleKind, PyFunction, Value};
use crate::{Result, RuntimeError};
use autograph_eager::Eager;
use autograph_graph::ir::OpKind;
use autograph_lantern::sexpr::SExpr;
use autograph_pylang::ast::*;
use autograph_tensor::{Rng64, Tensor};
use std::collections::HashMap;
use std::rc::Rc;

/// Control flow out of a statement.
#[derive(Debug)]
pub enum Flow {
    /// Fall through to the next statement.
    Normal,
    /// `break` reached.
    Break,
    /// `continue` reached.
    Continue,
    /// `return` with a value.
    Return(Value),
}

/// Active staging state.
pub enum Stage {
    /// No staging: ops execute eagerly.
    Eager,
    /// Building a dataflow graph.
    Graph(GraphStage),
    /// Emitting Lantern S-expressions.
    Lantern(LanternStage),
}

impl Stage {
    /// The corresponding backend tag.
    pub fn backend(&self) -> Backend {
        match self {
            Stage::Eager => Backend::Eager,
            Stage::Graph(_) => Backend::Graph,
            Stage::Lantern(_) => Backend::Lantern,
        }
    }
}

/// The interpreter: eager context, staging state, conversion cache.
pub struct Interp {
    /// Eager op dispatch (always available; graphs constant-fold through
    /// it too).
    pub eager: Eager,
    /// Active staging backend.
    pub stage: Stage,
    /// Cache of runtime-converted functions, keyed by the original
    /// function's `Rc` pointer identity.
    pub conversion_cache: HashMap<usize, Rc<PyFunction>>,
    /// Conversion options used by `ag.converted_call` when it converts a
    /// function at runtime.
    pub config: autograph_transforms::ConversionConfig,
    /// Functions that degraded to eager execution under
    /// [`autograph_transforms::ConversionPolicy::FallbackToEager`], in the
    /// order encountered (load-time conversions first, then runtime
    /// `converted_call` conversions).
    pub conversion_warnings: Vec<autograph_transforms::ConversionWarning>,
    /// Deterministic RNG for `tf.random_*`.
    pub rng: Rng64,
    /// Original-source location of the construct currently being
    /// evaluated; stamped onto staged nodes (Appendix B source maps).
    pub current_span: autograph_pylang::Span,
    /// Iteration limit requested by an `ag.set_loop_options` directive in
    /// the loop body currently being staged (§7.2 Directives); consumed by
    /// the staged-loop builders.
    pub pending_loop_options: Option<u64>,
    /// The original PyLite source text when known (set by
    /// `Runtime::load*`); lets runtime conversion warnings quote the
    /// offending construct.
    pub source: Option<Rc<str>>,
    depth: usize,
    max_depth: usize,
}

impl Interp {
    /// New interpreter in eager mode.
    pub fn new() -> Interp {
        Interp {
            eager: Eager::new(),
            stage: Stage::Eager,
            conversion_cache: HashMap::new(),
            config: autograph_transforms::ConversionConfig::default(),
            conversion_warnings: Vec::new(),
            rng: Rng64::new(0x5EED),
            current_span: autograph_pylang::Span::synthetic(),
            pending_loop_options: None,
            source: None,
            depth: 0,
            // CPython defaults to 1000; interpreter frames are large, so
            // this also keeps us inside the OS stack in debug builds.
            max_depth: 300,
        }
    }

    /// Which backend is active.
    pub fn backend(&self) -> Backend {
        self.stage.backend()
    }

    // ---- statements --------------------------------------------------------

    /// Execute a statement block.
    ///
    /// # Errors
    ///
    /// Propagates the first runtime error, annotated with the statement's
    /// original-source span.
    pub fn exec_block(&mut self, body: &[Stmt], env: &Env) -> Result<Flow> {
        for stmt in body {
            match self.exec_stmt(stmt, env)? {
                Flow::Normal => {}
                flow => return Ok(flow),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, stmt: &Stmt, env: &Env) -> Result<Flow> {
        let span = stmt.span;
        if !span.is_synthetic() {
            self.current_span = span;
        }
        let r = self.exec_stmt_inner(stmt, env);
        r.map_err(|e| e.at(span))
    }

    fn exec_stmt_inner(&mut self, stmt: &Stmt, env: &Env) -> Result<Flow> {
        match &stmt.kind {
            StmtKind::FunctionDef {
                name,
                params,
                body,
                decorators,
            } => {
                let defaults = params
                    .iter()
                    .filter_map(|p| p.default.as_ref())
                    .map(|d| self.eval_expr(d, env))
                    .collect::<Result<Vec<_>>>()?;
                let is_artifact = autograph_transforms::wrappers::is_artifact(decorators);
                let f = Value::Function(Rc::new(PyFunction {
                    name: name.clone(),
                    def_span: stmt.span,
                    params: params.clone(),
                    body: Rc::new(body.clone()),
                    closure: env.clone(),
                    is_artifact,
                    defaults,
                }));
                env.set(name, f);
                Ok(Flow::Normal)
            }
            StmtKind::Return(v) => {
                let value = match v {
                    Some(v) => self.eval_expr(v, env)?,
                    None => Value::None,
                };
                Ok(Flow::Return(value))
            }
            StmtKind::Assign { target, value } => {
                let v = self.eval_expr(value, env)?;
                self.assign_target(target, v, env)?;
                Ok(Flow::Normal)
            }
            StmtKind::AugAssign { target, op, value } => {
                let cur = self.eval_expr(target, env)?;
                let rhs = self.eval_expr(value, env)?;
                let v = self.binop(*op, cur, rhs)?;
                self.assign_target(target, v, env)?;
                Ok(Flow::Normal)
            }
            StmtKind::If { test, body, orelse } => {
                if self.eval_expr(test, env)?.truthy()? {
                    self.exec_block(body, env)
                } else {
                    self.exec_block(orelse, env)
                }
            }
            StmtKind::While { test, body } => {
                loop {
                    if !self.eval_expr(test, env)?.truthy()? {
                        break;
                    }
                    match self.exec_block(body, env)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        r @ Flow::Return(_) => return Ok(r),
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::For { target, iter, body } => {
                let iterable = self.eval_expr(iter, env)?;
                let items = self.iterate(&iterable)?;
                for item in items {
                    self.assign_target(target, item, env)?;
                    match self.exec_block(body, env)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        r @ Flow::Return(_) => return Ok(r),
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::Break => Ok(Flow::Break),
            StmtKind::Continue => Ok(Flow::Continue),
            StmtKind::Pass => Ok(Flow::Normal),
            StmtKind::Assert { test, msg } => {
                if !self.eval_expr(test, env)?.truthy()? {
                    let m = match msg {
                        Some(m) => self.eval_expr(m, env)?.render(),
                        None => "assertion failed".to_string(),
                    };
                    return Err(RuntimeError::new(m));
                }
                Ok(Flow::Normal)
            }
            StmtKind::ExprStmt(e) => {
                self.eval_expr(e, env)?;
                Ok(Flow::Normal)
            }
            StmtKind::Del(names) => {
                for n in names {
                    env.remove(n);
                }
                Ok(Flow::Normal)
            }
            StmtKind::Raise(v) => {
                let msg = match v {
                    Some(v) => self.eval_expr(v, env)?.render(),
                    None => "exception raised".to_string(),
                };
                Err(RuntimeError::new(msg))
            }
            StmtKind::Global(_) | StmtKind::Nonlocal(_) => Err(RuntimeError::new(
                "global/nonlocal are not supported (Table 6)",
            )),
        }
    }

    /// Iterate an eager value into a vector of items.
    ///
    /// # Errors
    ///
    /// Staged values cannot be iterated imperatively.
    pub fn iterate(&mut self, v: &Value) -> Result<Vec<Value>> {
        match v {
            Value::List(items) => Ok(items.borrow().clone()),
            Value::Tuple(items) => Ok((**items).clone()),
            Value::Range { start, stop, step } => {
                let mut out = Vec::new();
                let mut i = *start;
                while (*step > 0 && i < *stop) || (*step < 0 && i > *stop) {
                    out.push(Value::Int(i));
                    i += step;
                }
                Ok(out)
            }
            Value::Tensor(t) => {
                let t = t.tensor();
                if t.rank() == 0 {
                    return Err(RuntimeError::new("cannot iterate a scalar tensor"));
                }
                (0..t.shape()[0] as i64)
                    .map(|i| Ok(Value::tensor(t.index_axis0(i)?)))
                    .collect()
            }
            Value::GraphNode { .. } | Value::Lantern(_) => Err(RuntimeError::new(
                "cannot iterate a staged tensor imperatively; this loop must be converted",
            )),
            other => Err(RuntimeError::new(format!(
                "{} is not iterable",
                other.kind()
            ))),
        }
    }

    /// Bind a value to an assignment target.
    ///
    /// # Errors
    ///
    /// Fails on arity mismatches in tuple unpacking and invalid targets.
    pub fn assign_target(&mut self, target: &Expr, value: Value, env: &Env) -> Result<()> {
        match &target.kind {
            ExprKind::Name(name) => {
                // Lantern staging: reify assignments as let-bindings so
                // shared subexpressions evaluate once in the compiled IR.
                let value = self.lantern_let_hook(name, value);
                env.set(name, value);
                Ok(())
            }
            ExprKind::Tuple(items) | ExprKind::List(items) => {
                let values: Vec<Value> = match &value {
                    Value::Tuple(vs) => (**vs).clone(),
                    Value::List(vs) => vs.borrow().clone(),
                    // Staged Lantern tuple (e.g. `c, h = cell(...)`): bind
                    // the tuple expression once, project with `(get t i)`.
                    Value::Lantern(e) => {
                        let base = if let Stage::Lantern(stage) = &mut self.stage {
                            if stage.in_frame() && matches!(**e, SExpr::List(_)) {
                                let sym = stage.fresh("t");
                                stage.bind(sym.clone(), (**e).clone());
                                SExpr::sym(sym)
                            } else {
                                (**e).clone()
                            }
                        } else {
                            (**e).clone()
                        };
                        (0..items.len())
                            .map(|idx| {
                                Value::Lantern(Rc::new(SExpr::list(vec![
                                    SExpr::sym("get"),
                                    base.clone(),
                                    SExpr::Num(idx as f64),
                                ])))
                            })
                            .collect()
                    }
                    other => {
                        return Err(RuntimeError::new(format!(
                            "cannot unpack {} into {} targets",
                            other.kind(),
                            items.len()
                        )))
                    }
                };
                if values.len() != items.len() {
                    return Err(RuntimeError::new(format!(
                        "cannot unpack {} values into {} targets",
                        values.len(),
                        items.len()
                    )));
                }
                for (t, v) in items.iter().zip(values) {
                    self.assign_target(t, v, env)?;
                }
                Ok(())
            }
            ExprKind::Subscript { value: base, index } => {
                // Unconverted mutation path (Python list semantics).
                let container = self.eval_expr(base, env)?;
                match (&container, &**index) {
                    (Value::List(items), Index::Single(i)) => {
                        let i = self.eval_expr(i, env)?.as_int()?;
                        let mut items = items.borrow_mut();
                        let len = items.len() as i64;
                        let idx = if i < 0 { i + len } else { i };
                        if idx < 0 || idx >= len {
                            return Err(RuntimeError::new(format!(
                                "list assignment index {i} out of range"
                            )));
                        }
                        items[idx as usize] = value;
                        Ok(())
                    }
                    // PyLite tensors are immutable values; `x[i] = v` on a
                    // *named* tensor rebinds the name to the functional
                    // update — the same semantics the slices pass gives
                    // converted code (`x = ag.setitem(x, i, v)`).
                    (Value::Tensor(t), Index::Single(i)) => {
                        if let ExprKind::Name(name) = &base.kind {
                            let i = self.eval_expr(i, env)?.as_int()?;
                            let updated =
                                t.tensor().set_index_axis0(i, &value.as_eager_tensor()?)?;
                            env.set(name, Value::tensor(updated));
                            Ok(())
                        } else {
                            Err(RuntimeError::new(
                                "tensor item assignment requires a simple name target",
                            ))
                        }
                    }
                    _ => Err(RuntimeError::new(
                        "subscript assignment requires a list or tensor",
                    )),
                }
            }
            ExprKind::Attribute { value: base, attr } => {
                let obj = self.eval_expr(base, env)?;
                match obj {
                    Value::Record(fields) => {
                        fields.borrow_mut().insert(attr.clone(), value);
                        Ok(())
                    }
                    other => Err(RuntimeError::new(format!(
                        "cannot set attribute on {}",
                        other.kind()
                    ))),
                }
            }
            _ => Err(RuntimeError::new("invalid assignment target")),
        }
    }

    fn lantern_let_hook(&mut self, _name: &str, value: Value) -> Value {
        if let (Stage::Lantern(stage), Value::Lantern(sexpr)) = (&mut self.stage, &value) {
            if stage.in_frame() && matches!(**sexpr, SExpr::List(_)) {
                let sym = stage.fresh("t");
                stage.bind(sym.clone(), (**sexpr).clone());
                return Value::Lantern(Rc::new(SExpr::sym(sym)));
            }
        }
        value
    }

    // ---- expressions --------------------------------------------------------

    /// Evaluate an expression.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors annotated with the expression's span.
    pub fn eval_expr(&mut self, expr: &Expr, env: &Env) -> Result<Value> {
        let span = expr.span;
        if !span.is_synthetic() {
            self.current_span = span;
        }
        self.eval_expr_inner(expr, env).map_err(|e| e.at(span))
    }

    fn eval_expr_inner(&mut self, expr: &Expr, env: &Env) -> Result<Value> {
        match &expr.kind {
            ExprKind::Name(n) => env
                .get(n)
                .ok_or_else(|| RuntimeError::new(format!("name '{n}' is not defined"))),
            ExprKind::Int(v) => Ok(Value::Int(*v)),
            ExprKind::Float(v) => Ok(Value::Float(*v)),
            ExprKind::Str(s) => Ok(Value::str(s.clone())),
            ExprKind::Bool(b) => Ok(Value::Bool(*b)),
            ExprKind::NoneLit => Ok(Value::None),
            ExprKind::List(items) => {
                let vs = items
                    .iter()
                    .map(|i| self.eval_expr(i, env))
                    .collect::<Result<Vec<_>>>()?;
                Ok(Value::list(vs))
            }
            ExprKind::Tuple(items) => {
                let vs = items
                    .iter()
                    .map(|i| self.eval_expr(i, env))
                    .collect::<Result<Vec<_>>>()?;
                Ok(Value::tuple(vs))
            }
            ExprKind::Lambda { params, body } => {
                let defaults = params
                    .iter()
                    .filter_map(|p| p.default.as_ref())
                    .map(|d| self.eval_expr(d, env))
                    .collect::<Result<Vec<_>>>()?;
                Ok(Value::Function(Rc::new(PyFunction {
                    name: "<lambda>".to_string(),
                    def_span: body.span,
                    params: params.clone(),
                    body: Rc::new(vec![Stmt::new(
                        StmtKind::Return(Some((**body).clone())),
                        body.span,
                    )]),
                    closure: env.clone(),
                    is_artifact: true, // lambdas are never re-converted
                    defaults,
                })))
            }
            ExprKind::Attribute { value, attr } => {
                let base = self.eval_expr(value, env)?;
                self.attr_get(base, attr)
            }
            ExprKind::Subscript { value, index } => {
                let base = self.eval_expr(value, env)?;
                match &**index {
                    Index::Single(i) => {
                        let idx = self.eval_expr(i, env)?;
                        self.subscript_get(base, idx)
                    }
                    Index::Slice { lower, upper } => {
                        let lo = lower
                            .as_ref()
                            .map(|e| self.eval_expr(e, env)?.as_int())
                            .transpose()?;
                        let hi = upper
                            .as_ref()
                            .map(|e| self.eval_expr(e, env)?.as_int())
                            .transpose()?;
                        self.slice_get(base, lo, hi)
                    }
                }
            }
            ExprKind::Call { func, args, kwargs } => {
                let callee = self.eval_expr(func, env)?;
                let argv = args
                    .iter()
                    .map(|a| self.eval_expr(a, env))
                    .collect::<Result<Vec<_>>>()?;
                let kwargv = kwargs
                    .iter()
                    .map(|(k, v)| Ok((k.clone(), self.eval_expr(v, env)?)))
                    .collect::<Result<Vec<_>>>()?;
                self.call_value(callee, argv, kwargv)
            }
            ExprKind::BinOp { op, left, right } => {
                let l = self.eval_expr(left, env)?;
                let r = self.eval_expr(right, env)?;
                self.binop(*op, l, r)
            }
            ExprKind::UnaryOp { op, operand } => {
                let v = self.eval_expr(operand, env)?;
                self.unary(*op, v)
            }
            ExprKind::BoolOp { op, values } => {
                // native short-circuit semantics (unconverted code)
                let mut last = Value::Bool(matches!(op, BoolOpKind::And));
                for v in values {
                    last = self.eval_expr(v, env)?;
                    let t = last.truthy()?;
                    match op {
                        BoolOpKind::And if !t => return Ok(last),
                        BoolOpKind::Or if t => return Ok(last),
                        _ => {}
                    }
                }
                Ok(last)
            }
            ExprKind::Compare {
                left,
                ops,
                comparators,
            } => {
                let mut lhs = self.eval_expr(left, env)?;
                let mut result = Value::Bool(true);
                for (op, rhs_expr) in ops.iter().zip(comparators) {
                    let rhs = self.eval_expr(rhs_expr, env)?;
                    result = self.compare(*op, lhs.clone(), rhs.clone())?;
                    // chains require intermediate truthiness (host values)
                    if ops.len() > 1 && !result.truthy()? {
                        return Ok(Value::Bool(false));
                    }
                    lhs = rhs;
                }
                Ok(result)
            }
            ExprKind::IfExp { test, body, orelse } => {
                if self.eval_expr(test, env)?.truthy()? {
                    self.eval_expr(body, env)
                } else {
                    self.eval_expr(orelse, env)
                }
            }
        }
    }

    // ---- calls ---------------------------------------------------------------

    /// Call any callable value.
    ///
    /// # Errors
    ///
    /// Fails for non-callables, arity errors, and whatever the callee
    /// raises.
    pub fn call_value(
        &mut self,
        callee: Value,
        args: Vec<Value>,
        kwargs: Vec<(String, Value)>,
    ) -> Result<Value> {
        match callee {
            Value::Builtin(b) => (b.func)(self, args, kwargs),
            Value::Function(f) => self.call_function(&f, args, kwargs),
            other => Err(RuntimeError::new(format!(
                "{} is not callable",
                other.kind()
            ))),
        }
    }

    /// Call a user-defined function with Python binding rules.
    ///
    /// # Errors
    ///
    /// Fails on arity mismatch or recursion-depth exhaustion.
    #[allow(clippy::needless_range_loop)]
    pub fn call_function(
        &mut self,
        f: &Rc<PyFunction>,
        args: Vec<Value>,
        kwargs: Vec<(String, Value)>,
    ) -> Result<Value> {
        if self.depth >= self.max_depth {
            return Err(RuntimeError::new("maximum recursion depth exceeded"));
        }
        let env = f.closure.child();
        let n_params = f.params.len();
        if args.len() > n_params {
            return Err(RuntimeError::new(format!(
                "{}() takes {} arguments but {} were given",
                f.name,
                n_params,
                args.len()
            )));
        }
        let mut bound = vec![false; n_params];
        for (i, a) in args.into_iter().enumerate() {
            env.set(&f.params[i].name, a);
            bound[i] = true;
        }
        for (k, v) in kwargs {
            match f.params.iter().position(|p| p.name == k) {
                Some(i) if !bound[i] => {
                    env.set(&k, v);
                    bound[i] = true;
                }
                Some(_) => {
                    return Err(RuntimeError::new(format!(
                        "{}() got multiple values for argument '{k}'",
                        f.name
                    )))
                }
                None => {
                    return Err(RuntimeError::new(format!(
                        "{}() got an unexpected keyword argument '{k}'",
                        f.name
                    )))
                }
            }
        }
        // defaults are right-aligned with params
        let first_default = n_params - f.defaults.len();
        for i in 0..n_params {
            if !bound[i] {
                if i >= first_default {
                    env.set(&f.params[i].name, f.defaults[i - first_default].clone());
                } else {
                    return Err(RuntimeError::new(format!(
                        "{}() missing required argument '{}'",
                        f.name, f.params[i].name
                    )));
                }
            }
        }
        // converted functions stage under a name scope so graph nodes read
        // like `f/loop_body__2/matmul_7`
        let scoped = f.is_artifact && matches!(self.stage, Stage::Graph(_));
        if scoped {
            if let Stage::Graph(g) = &mut self.stage {
                g.push_scope(&f.name);
            }
        }
        self.depth += 1;
        let flow = self.exec_block(&f.body, &env);
        self.depth -= 1;
        if scoped {
            if let Stage::Graph(g) = &mut self.stage {
                g.pop_scope();
            }
        }
        match flow.map_err(|e| e.in_frame(&f.name, autograph_pylang::Span::synthetic()))? {
            Flow::Return(v) => Ok(v),
            _ => Ok(Value::None),
        }
    }

    // ---- operator dispatch ------------------------------------------------

    /// Binary arithmetic with type dispatch.
    ///
    /// # Errors
    ///
    /// Fails for unsupported operand combinations.
    pub fn binop(&mut self, op: BinOp, l: Value, r: Value) -> Result<Value> {
        // staged operands stage the op
        if matches!(l, Value::GraphNode { .. }) || matches!(r, Value::GraphNode { .. }) {
            let kind = match op {
                BinOp::Add => OpKind::Add,
                BinOp::Sub => OpKind::Sub,
                BinOp::Mul => OpKind::Mul,
                BinOp::Div => OpKind::Div,
                BinOp::FloorDiv => OpKind::FloorDiv,
                BinOp::Mod => OpKind::Mod,
                BinOp::Pow => OpKind::Pow,
            };
            return self.graph_op(kind, &[l, r]);
        }
        if matches!(l, Value::Lantern(_)) || matches!(r, Value::Lantern(_)) {
            let name = match op {
                BinOp::Add => "add",
                BinOp::Sub => "sub",
                BinOp::Mul => "mul",
                BinOp::Div => "div",
                _ => {
                    return Err(RuntimeError::new(format!(
                        "operator {} is not supported by the lantern backend",
                        op.as_str()
                    )))
                }
            };
            let a = self.to_lantern_sexpr(&l)?;
            let b = self.to_lantern_sexpr(&r)?;
            return Ok(self.lantern_expr(name, vec![a, b]));
        }
        if matches!(l, Value::Tensor(_)) || matches!(r, Value::Tensor(_)) {
            let name = match op {
                BinOp::Add => "add",
                BinOp::Sub => "sub",
                BinOp::Mul => "mul",
                BinOp::Div => "div",
                BinOp::FloorDiv => "floordiv",
                BinOp::Mod => "mod",
                BinOp::Pow => "pow",
            };
            let a = self.to_eager(&l)?;
            let b = self.to_eager(&r)?;
            return Ok(Value::Tensor(self.eager.op(name, &[&a, &b])?));
        }
        // host (Python) semantics
        match (op, &l, &r) {
            (BinOp::Add, Value::Str(a), Value::Str(b)) => Ok(Value::str(format!("{a}{b}"))),
            (BinOp::Add, Value::List(a), Value::List(b)) => {
                let mut out = a.borrow().clone();
                out.extend(b.borrow().iter().cloned());
                Ok(Value::list(out))
            }
            (BinOp::Add, Value::Tuple(a), Value::Tuple(b)) => {
                let mut out = (**a).clone();
                out.extend(b.iter().cloned());
                Ok(Value::tuple(out))
            }
            (_, Value::Int(a), Value::Int(b)) => {
                let (a, b) = (*a, *b);
                Ok(match op {
                    BinOp::Add => Value::Int(a.wrapping_add(b)),
                    BinOp::Sub => Value::Int(a.wrapping_sub(b)),
                    BinOp::Mul => Value::Int(a.wrapping_mul(b)),
                    BinOp::Div => {
                        if b == 0 {
                            return Err(RuntimeError::new("division by zero"));
                        }
                        Value::Float(a as f64 / b as f64)
                    }
                    BinOp::FloorDiv => {
                        if b == 0 {
                            return Err(RuntimeError::new("integer division by zero"));
                        }
                        Value::Int(a.div_euclid(b))
                    }
                    BinOp::Mod => {
                        if b == 0 {
                            return Err(RuntimeError::new("integer modulo by zero"));
                        }
                        Value::Int(a.rem_euclid(b))
                    }
                    BinOp::Pow => {
                        if b >= 0 {
                            Value::Int(a.pow(b.min(u32::MAX as i64) as u32))
                        } else {
                            Value::Float((a as f64).powi(b as i32))
                        }
                    }
                })
            }
            _ => {
                let a = l.as_float().map_err(|_| {
                    RuntimeError::new(format!(
                        "unsupported operand types for {}: {} and {}",
                        op.as_str(),
                        l.kind(),
                        r.kind()
                    ))
                })?;
                let b = r.as_float().map_err(|_| {
                    RuntimeError::new(format!(
                        "unsupported operand types for {}: {} and {}",
                        op.as_str(),
                        l.kind(),
                        r.kind()
                    ))
                })?;
                Ok(match op {
                    BinOp::Add => Value::Float(a + b),
                    BinOp::Sub => Value::Float(a - b),
                    BinOp::Mul => Value::Float(a * b),
                    BinOp::Div => {
                        if b == 0.0 {
                            return Err(RuntimeError::new("float division by zero"));
                        }
                        Value::Float(a / b)
                    }
                    BinOp::FloorDiv => Value::Float((a / b).floor()),
                    BinOp::Mod => Value::Float(a.rem_euclid(b)),
                    BinOp::Pow => Value::Float(a.powf(b)),
                })
            }
        }
    }

    /// Comparison with type dispatch.
    ///
    /// # Errors
    ///
    /// Fails for incomparable operand combinations.
    pub fn compare(&mut self, op: CmpOp, l: Value, r: Value) -> Result<Value> {
        match op {
            CmpOp::Is => return Ok(Value::Bool(value_is(&l, &r))),
            CmpOp::IsNot => return Ok(Value::Bool(!value_is(&l, &r))),
            CmpOp::In => return self.membership(&l, &r),
            CmpOp::NotIn => {
                let m = self.membership(&l, &r)?;
                return Ok(Value::Bool(!m.truthy()?));
            }
            _ => {}
        }
        if matches!(l, Value::GraphNode { .. }) || matches!(r, Value::GraphNode { .. }) {
            let kind = match op {
                CmpOp::Lt => OpKind::Less,
                CmpOp::Le => OpKind::LessEqual,
                CmpOp::Gt => OpKind::Greater,
                CmpOp::Ge => OpKind::GreaterEqual,
                CmpOp::Eq => OpKind::Equal,
                CmpOp::NotEq => OpKind::NotEqual,
                _ => unreachable!("identity ops handled above"),
            };
            return self.graph_op(kind, &[l, r]);
        }
        if matches!(l, Value::Lantern(_)) || matches!(r, Value::Lantern(_)) {
            let name = match op {
                CmpOp::Lt => "lt",
                CmpOp::Le => "le",
                CmpOp::Gt => "gt",
                CmpOp::Ge => "ge",
                CmpOp::Eq => "eq",
                _ => {
                    return Err(RuntimeError::new(
                        "comparison not supported by the lantern backend",
                    ))
                }
            };
            let a = self.to_lantern_sexpr(&l)?;
            let b = self.to_lantern_sexpr(&r)?;
            return Ok(self.lantern_expr(name, vec![a, b]));
        }
        if matches!(l, Value::Tensor(_)) || matches!(r, Value::Tensor(_)) {
            let name = match op {
                CmpOp::Lt => "less",
                CmpOp::Le => "less_equal",
                CmpOp::Gt => "greater",
                CmpOp::Ge => "greater_equal",
                CmpOp::Eq => "equal",
                CmpOp::NotEq => "not_equal",
                _ => unreachable!(),
            };
            let a = self.to_eager(&l)?;
            let b = self.to_eager(&r)?;
            return Ok(Value::Tensor(self.eager.op(name, &[&a, &b])?));
        }
        // host comparisons
        let b = match op {
            CmpOp::Eq => l.py_eq(&r),
            CmpOp::NotEq => !l.py_eq(&r),
            _ => match (&l, &r) {
                (Value::Str(a), Value::Str(b)) => match op {
                    CmpOp::Lt => a < b,
                    CmpOp::Le => a <= b,
                    CmpOp::Gt => a > b,
                    CmpOp::Ge => a >= b,
                    _ => unreachable!(),
                },
                _ => {
                    let a = l.as_float()?;
                    let c = r.as_float()?;
                    match op {
                        CmpOp::Lt => a < c,
                        CmpOp::Le => a <= c,
                        CmpOp::Gt => a > c,
                        CmpOp::Ge => a >= c,
                        _ => unreachable!(),
                    }
                }
            },
        };
        Ok(Value::Bool(b))
    }

    fn membership(&mut self, item: &Value, container: &Value) -> Result<Value> {
        match container {
            Value::List(items) => Ok(Value::Bool(items.borrow().iter().any(|x| x.py_eq(item)))),
            Value::Tuple(items) => Ok(Value::Bool(items.iter().any(|x| x.py_eq(item)))),
            Value::Str(s) => match item {
                Value::Str(sub) => Ok(Value::Bool(s.contains(&**sub))),
                _ => Ok(Value::Bool(false)),
            },
            Value::Range { start, stop, step } => {
                let i = item.as_int()?;
                let in_range = if *step > 0 {
                    i >= *start && i < *stop && (i - start) % step == 0
                } else {
                    i <= *start && i > *stop && (start - i) % (-step) == 0
                };
                Ok(Value::Bool(in_range))
            }
            other => Err(RuntimeError::new(format!(
                "argument of type {} is not a container",
                other.kind()
            ))),
        }
    }

    /// Unary operator with type dispatch.
    ///
    /// # Errors
    ///
    /// Fails for unsupported operand types.
    pub fn unary(&mut self, op: UnaryOp, v: Value) -> Result<Value> {
        match op {
            UnaryOp::Not => Ok(Value::Bool(!v.truthy()?)),
            UnaryOp::Pos => Ok(v),
            UnaryOp::Neg => match v {
                Value::Int(i) => Ok(Value::Int(-i)),
                Value::Float(f) => Ok(Value::Float(-f)),
                Value::Bool(b) => Ok(Value::Int(-(b as i64))),
                Value::Tensor(t) => Ok(Value::Tensor(self.eager.op("neg", &[&t])?)),
                v @ Value::GraphNode { .. } => self.graph_op(OpKind::Neg, &[v]),
                Value::Lantern(e) => Ok(self.lantern_expr("neg", vec![(*e).clone()])),
                other => Err(RuntimeError::new(format!(
                    "bad operand type for unary -: {}",
                    other.kind()
                ))),
            },
        }
    }

    // ---- attribute / subscript --------------------------------------------

    /// Attribute access with module/record/staged dispatch.
    ///
    /// # Errors
    ///
    /// Fails for unknown attributes.
    pub fn attr_get(&mut self, base: Value, attr: &str) -> Result<Value> {
        match base {
            Value::Module(ModuleKind::Tf) => crate::tf_api::lookup(attr)
                .ok_or_else(|| RuntimeError::new(format!("module 'tf' has no attribute '{attr}'"))),
            Value::Module(ModuleKind::Ag) => crate::operators::lookup(attr)
                .ok_or_else(|| RuntimeError::new(format!("module 'ag' has no attribute '{attr}'"))),
            Value::Record(fields) => fields
                .borrow()
                .get(attr)
                .cloned()
                .ok_or_else(|| RuntimeError::new(format!("record has no field '{attr}'"))),
            // Staged Lantern record access: (attr base field)
            Value::Lantern(e) => Ok(Value::Lantern(Rc::new(SExpr::list(vec![
                SExpr::sym("attr"),
                (*e).clone(),
                SExpr::sym(attr),
            ])))),
            // native list methods (unconverted code path; converted code
            // goes through ag.list_append / ag.list_pop instead)
            Value::List(items) if attr == "append" => {
                let items = items.clone();
                Ok(Value::Builtin(Rc::new(crate::value::Builtin {
                    name: "list.append".into(),
                    func: Box::new(move |_, mut args, _| {
                        let v = args
                            .pop()
                            .ok_or_else(|| RuntimeError::new("append() takes one argument"))?;
                        items.borrow_mut().push(v);
                        Ok(Value::None)
                    }),
                })))
            }
            Value::List(items) if attr == "pop" => {
                let items = items.clone();
                Ok(Value::Builtin(Rc::new(crate::value::Builtin {
                    name: "list.pop".into(),
                    func: Box::new(move |_, _, _| {
                        items
                            .borrow_mut()
                            .pop()
                            .ok_or_else(|| RuntimeError::new("pop from empty list"))
                    }),
                })))
            }
            // tensor.shape convenience
            Value::Tensor(t) if attr == "shape" => {
                let dims: Vec<Value> = t
                    .tensor()
                    .shape()
                    .iter()
                    .map(|&d| Value::Int(d as i64))
                    .collect();
                Ok(Value::tuple(dims))
            }
            other => Err(RuntimeError::new(format!(
                "{} has no attribute '{attr}'",
                other.kind()
            ))),
        }
    }

    /// Subscript read with type dispatch (`x[i]`).
    ///
    /// # Errors
    ///
    /// Fails on out-of-range indices or unsupported containers.
    pub fn subscript_get(&mut self, base: Value, index: Value) -> Result<Value> {
        match &base {
            Value::List(items) => {
                let items = items.borrow();
                let i = index.as_int()?;
                let len = items.len() as i64;
                let idx = if i < 0 { i + len } else { i };
                items
                    .get(idx.max(0) as usize)
                    .filter(|_| idx >= 0 && idx < len)
                    .cloned()
                    .ok_or_else(|| RuntimeError::new(format!("list index {i} out of range")))
            }
            Value::Tuple(items) => {
                let i = index.as_int()?;
                let len = items.len() as i64;
                let idx = if i < 0 { i + len } else { i };
                items
                    .get(idx.max(0) as usize)
                    .filter(|_| idx >= 0 && idx < len)
                    .cloned()
                    .ok_or_else(|| RuntimeError::new(format!("tuple index {i} out of range")))
            }
            Value::Str(s) => {
                let i = index.as_int()?;
                let chars: Vec<char> = s.chars().collect();
                let len = chars.len() as i64;
                let idx = if i < 0 { i + len } else { i };
                if idx < 0 || idx >= len {
                    return Err(RuntimeError::new(format!("string index {i} out of range")));
                }
                Ok(Value::str(chars[idx as usize].to_string()))
            }
            Value::Tensor(t) => {
                let i = index.as_int()?;
                Ok(Value::tensor(t.tensor().index_axis0(i)?))
            }
            Value::GraphNode { .. } => self.graph_op(OpKind::IndexAxis0, &[base, index]),
            other => Err(RuntimeError::new(format!(
                "{} is not subscriptable",
                other.kind()
            ))),
        }
    }

    /// Range-slice read (`x[a:b]`) with static bounds.
    ///
    /// # Errors
    ///
    /// Fails for unsupported containers.
    pub fn slice_get(&mut self, base: Value, lo: Option<i64>, hi: Option<i64>) -> Result<Value> {
        match &base {
            Value::List(items) => {
                let items = items.borrow();
                let len = items.len() as i64;
                let norm = |x: i64| -> usize {
                    let x = if x < 0 { x + len } else { x };
                    x.clamp(0, len) as usize
                };
                let (s, e) = (norm(lo.unwrap_or(0)), norm(hi.unwrap_or(len)));
                Ok(Value::list(items[s..e.max(s)].to_vec()))
            }
            Value::Tuple(items) => {
                let len = items.len() as i64;
                let norm = |x: i64| -> usize {
                    let x = if x < 0 { x + len } else { x };
                    x.clamp(0, len) as usize
                };
                let (s, e) = (norm(lo.unwrap_or(0)), norm(hi.unwrap_or(len)));
                Ok(Value::tuple(items[s..e.max(s)].to_vec()))
            }
            Value::Tensor(t) => Ok(Value::tensor(t.tensor().slice_axis0(lo, hi)?)),
            Value::GraphNode { .. } => self.graph_op(
                OpKind::SliceAxis0 {
                    start: lo,
                    stop: hi,
                },
                &[base],
            ),
            other => Err(RuntimeError::new(format!(
                "{} does not support slicing",
                other.kind()
            ))),
        }
    }

    // ---- backend helpers -----------------------------------------------------

    /// Coerce a value to an eager tensor wrapper.
    ///
    /// # Errors
    ///
    /// Fails for staged or non-numeric values.
    pub fn to_eager(&self, v: &Value) -> Result<autograph_eager::EagerTensor> {
        match v {
            Value::Tensor(t) => Ok(t.clone()),
            other => Ok(autograph_eager::EagerTensor::from(other.as_eager_tensor()?)),
        }
    }

    /// Resolve/coerce a value to a node in the innermost graph layer.
    ///
    /// # Errors
    ///
    /// Fails outside graph staging, for undefined values, or for
    /// uncoercible types.
    pub fn to_graph_node(&mut self, v: &Value) -> Result<autograph_graph::NodeId> {
        // clone data needed before borrowing stage mutably
        let span = self.current_span;
        let stage = match &mut self.stage {
            Stage::Graph(g) => g,
            _ => {
                return Err(RuntimeError::new(
                    "graph staging is not active (internal dispatch error)",
                ))
            }
        };
        stage.top().builder.set_span(span);
        match v {
            Value::GraphNode { epoch, id } => stage.resolve(*epoch, *id),
            Value::Int(i) => Ok(stage.add(OpKind::Const(Tensor::scalar_i64(*i)), vec![]).1),
            Value::Float(f) => Ok(stage
                .add(OpKind::Const(Tensor::scalar_f32(*f as f32)), vec![])
                .1),
            Value::Bool(b) => Ok(stage.add(OpKind::Const(Tensor::scalar_bool(*b)), vec![]).1),
            Value::Tensor(t) => Ok(stage.add(OpKind::Const(t.tensor().clone()), vec![]).1),
            Value::List(items) => {
                // a Python list entering a staged context becomes a staged
                // tensor list (ArrayNew + pushes)
                let items = items.borrow().clone();
                let mut arr = stage.add(OpKind::ArrayNew, vec![]).1;
                for item in items {
                    let n = self.to_graph_node(&item)?;
                    let stage = match &mut self.stage {
                        Stage::Graph(g) => g,
                        _ => unreachable!(),
                    };
                    arr = stage.add(OpKind::ArrayPush, vec![arr, n]).1;
                }
                Ok(arr)
            }
            Value::Undefined(name) => Err(RuntimeError::new(format!(
                "'{name}' must be defined on all code paths before a staged \
                 control-flow construct can return it (staging error)"
            ))),
            other => Err(RuntimeError::new(format!(
                "cannot stage {} into the graph",
                other.kind()
            ))),
        }
    }

    /// Add a graph op over value inputs; returns a staged value.
    ///
    /// # Errors
    ///
    /// Fails when not staging a graph or inputs cannot be coerced.
    pub fn graph_op(&mut self, op: OpKind, inputs: &[Value]) -> Result<Value> {
        let mut ids = Vec::with_capacity(inputs.len());
        for v in inputs {
            ids.push(self.to_graph_node(v)?);
        }
        let span = self.current_span;
        let stage = match &mut self.stage {
            Stage::Graph(g) => g,
            _ => unreachable!("to_graph_node checked staging"),
        };
        stage.top().builder.set_span(span);
        let (epoch, id) = stage.add(op, ids);
        Ok(Value::GraphNode { epoch, id })
    }

    /// Coerce a value to a Lantern S-expression.
    ///
    /// # Errors
    ///
    /// Fails for values the Lantern IR cannot represent.
    pub fn to_lantern_sexpr(&self, v: &Value) -> Result<SExpr> {
        match v {
            Value::Lantern(e) => Ok((**e).clone()),
            Value::Int(i) => Ok(SExpr::Num(*i as f64)),
            Value::Float(f) => Ok(SExpr::Num(*f)),
            Value::Tensor(t) if t.tensor().num_elements() == 1 => {
                Ok(SExpr::Num(t.tensor().scalar_value_f32()? as f64))
            }
            Value::Tuple(items) => {
                let mut parts = vec![SExpr::sym("tuple")];
                for item in items.iter() {
                    parts.push(self.to_lantern_sexpr(item)?);
                }
                Ok(SExpr::list(parts))
            }
            other => Err(RuntimeError::new(format!(
                "cannot stage {} into the lantern IR (pass tensors as params/externs)",
                other.kind()
            ))),
        }
    }

    /// Build a Lantern op expression value.
    pub fn lantern_expr(&mut self, op: &str, args: Vec<SExpr>) -> Value {
        let mut items = vec![SExpr::sym(op)];
        items.extend(args);
        Value::Lantern(Rc::new(SExpr::list(items)))
    }
}

fn value_is(l: &Value, r: &Value) -> bool {
    match (l, r) {
        (Value::None, Value::None) => true,
        (Value::Bool(a), Value::Bool(b)) => a == b,
        (Value::List(a), Value::List(b)) => Rc::ptr_eq(a, b),
        (Value::Tuple(a), Value::Tuple(b)) => Rc::ptr_eq(a, b),
        (Value::Function(a), Value::Function(b)) => Rc::ptr_eq(a, b),
        (Value::Record(a), Value::Record(b)) => Rc::ptr_eq(a, b),
        (Value::Int(a), Value::Int(b)) => a == b, // small-int interning analog
        _ => false,
    }
}

impl Default for Interp {
    fn default() -> Self {
        Interp::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autograph_pylang::parse_module;

    fn run_src(src: &str) -> (Interp, Env) {
        let m = parse_module(src).unwrap();
        let mut interp = Interp::new();
        let env = crate::runtime::global_env();
        interp.exec_block(&m.body, &env).unwrap();
        (interp, env)
    }

    fn eval_to(src: &str, var: &str) -> Value {
        let (_, env) = run_src(src);
        env.get(var).unwrap()
    }

    #[test]
    fn arithmetic_python_semantics() {
        assert_eq!(eval_to("x = 7 // 2\n", "x").as_int().unwrap(), 3);
        assert_eq!(eval_to("x = 7 / 2\n", "x").as_float().unwrap(), 3.5);
        assert_eq!(eval_to("x = 2 ** 10\n", "x").as_int().unwrap(), 1024);
        assert_eq!(eval_to("x = -7 % 3\n", "x").as_int().unwrap(), 2);
        assert_eq!(eval_to("x = 'a' + 'b'\n", "x").render(), "ab");
    }

    #[test]
    fn control_flow_native() {
        let v = eval_to(
            "total = 0\nfor i in range(10):\n    if i % 2 == 0:\n        continue\n    if i > 7:\n        break\n    total += i\n",
            "total",
        );
        assert_eq!(v.as_int().unwrap(), 1 + 3 + 5 + 7);
    }

    #[test]
    fn while_and_functions() {
        let v = eval_to(
            "def fib(n):\n    a = 0\n    b = 1\n    while n > 0:\n        a, b = b, a + b\n        n -= 1\n    return a\nr = fib(10)\n",
            "r",
        );
        assert_eq!(v.as_int().unwrap(), 55);
    }

    #[test]
    fn recursion_native() {
        let v = eval_to(
            "def fact(n):\n    if n <= 1:\n        return 1\n    return n * fact(n - 1)\nr = fact(6)\n",
            "r",
        );
        assert_eq!(v.as_int().unwrap(), 720);
    }

    #[test]
    fn closures_and_lambdas() {
        let v = eval_to(
            "def make_adder(k):\n    return lambda x: x + k\nadd3 = make_adder(3)\nr = add3(4)\n",
            "r",
        );
        assert_eq!(v.as_int().unwrap(), 7);
    }

    #[test]
    fn default_and_keyword_args() {
        let v = eval_to(
            "def f(a, b=10):\n    return a + b\nr = f(1) + f(1, b=2)\n",
            "r",
        );
        assert_eq!(v.as_int().unwrap(), 14);
        let m = parse_module("def f(a):\n    return a\nr = f(b=1)\n").unwrap();
        let mut interp = Interp::new();
        let env = crate::runtime::global_env();
        assert!(interp.exec_block(&m.body, &env).is_err());
    }

    #[test]
    fn lists_tuples_slices() {
        assert_eq!(
            eval_to("l = [1, 2, 3]\nx = l[-1]\n", "x").as_int().unwrap(),
            3
        );
        assert_eq!(
            eval_to("l = [1, 2, 3, 4]\nx = l[1:3]\n", "x").render(),
            "[2, 3]"
        );
        assert_eq!(
            eval_to("t = (5, 6)\na, b = t\nx = a * b\n", "x")
                .as_int()
                .unwrap(),
            30
        );
        assert_eq!(
            eval_to("l = [0, 0]\nl[1] = 9\nx = l[1]\n", "x")
                .as_int()
                .unwrap(),
            9
        );
    }

    #[test]
    fn comparison_chains_and_membership() {
        assert!(eval_to("x = 1 < 2 < 3\n", "x").truthy().unwrap());
        assert!(!eval_to("x = 1 < 2 < 2\n", "x").truthy().unwrap());
        assert!(eval_to("x = 2 in [1, 2]\n", "x").truthy().unwrap());
        assert!(eval_to("x = 5 not in (1, 2)\n", "x").truthy().unwrap());
        assert!(eval_to("x = None\ny = x is None\n", "y").truthy().unwrap());
        assert!(eval_to("x = 3 in range(5)\n", "x").truthy().unwrap());
    }

    #[test]
    fn boolop_short_circuit_returns_operand() {
        // Python returns the deciding operand, not a bool
        assert_eq!(eval_to("x = 0 or 5\n", "x").as_int().unwrap(), 5);
        assert_eq!(eval_to("x = 3 and 7\n", "x").as_int().unwrap(), 7);
        assert_eq!(eval_to("x = 0 and boom\n", "x").as_int().unwrap(), 0);
    }

    #[test]
    fn eager_tensor_operator_overloading() {
        // tf.constant + operator overloading (§4's motivating example)
        let v = eval_to("a = tf.constant(3)\nb = tf.constant(4)\nc = a + b\n", "c");
        match v {
            Value::Tensor(t) => assert_eq!(t.tensor().scalar_value_i64().unwrap(), 7),
            other => panic!("expected tensor, got {}", other.kind()),
        }
    }

    #[test]
    fn tensor_comparison_and_truthiness() {
        let v = eval_to("x = tf.constant(5.0)\nok = x > 2.0\n", "ok");
        match &v {
            Value::Tensor(t) => assert!(t.tensor().scalar_value_bool().unwrap()),
            other => panic!("{}", other.kind()),
        }
        // eager tensor works as a bool in a conditional
        let r = eval_to(
            "x = tf.constant(5.0)\nif x > 2.0:\n    y = 1\nelse:\n    y = 2\n",
            "y",
        );
        assert_eq!(r.as_int().unwrap(), 1);
    }

    #[test]
    fn errors_carry_spans() {
        let m = parse_module("x = 1\ny = unknown_name\n").unwrap();
        let mut interp = Interp::new();
        let env = crate::runtime::global_env();
        let err = interp.exec_block(&m.body, &env).unwrap_err();
        assert_eq!(err.span.line, 2);
        assert!(err.to_string().contains("unknown_name"));
    }

    #[test]
    fn recursion_limit() {
        // debug-mode interpreter frames are large; give the guard room to
        // trip before the OS stack would (as CPython's limit does)
        let handle = std::thread::Builder::new()
            .stack_size(64 * 1024 * 1024)
            .spawn(|| {
                let m = parse_module("def f():\n    return f()\nf()\n").unwrap();
                let mut interp = Interp::new();
                let env = crate::runtime::global_env();
                interp.exec_block(&m.body, &env).unwrap_err().to_string()
            })
            .unwrap();
        assert!(handle.join().unwrap().contains("recursion"));
    }

    #[test]
    fn assert_and_raise() {
        let m = parse_module("assert 1 > 2, 'nope'\n").unwrap();
        let mut interp = Interp::new();
        let env = crate::runtime::global_env();
        let err = interp.exec_block(&m.body, &env).unwrap_err();
        assert!(err.to_string().contains("nope"));
        let m2 = parse_module("raise 'custom error'\n").unwrap();
        let err2 = Interp::new()
            .exec_block(&m2.body, &crate::runtime::global_env())
            .unwrap_err();
        assert!(err2.to_string().contains("custom error"));
    }

    #[test]
    fn records_and_attributes() {
        let env = crate::runtime::global_env();
        env.set(
            "obj",
            Value::record(vec![("a", Value::Int(1)), ("b", Value::Int(2))]),
        );
        let m = parse_module("obj.a = obj.a + obj.b\nr = obj.a\n").unwrap();
        let mut interp = Interp::new();
        interp.exec_block(&m.body, &env).unwrap();
        assert_eq!(env.get("r").unwrap().as_int().unwrap(), 3);
    }

    #[test]
    fn iterate_eager_tensor_rows() {
        let v = eval_to(
            "m = tf.constant([[1.0, 2.0], [3.0, 4.0]])\ns = 0.0\nfor row in m:\n    s = s + tf.reduce_sum(row)\n",
            "s",
        );
        match v {
            Value::Tensor(t) => assert_eq!(t.tensor().scalar_value_f32().unwrap(), 10.0),
            other => panic!("{}", other.kind()),
        }
    }
}
