//! The `ag.*` operator namespace — the overloadable functional forms that
//! converted code calls, each implementing the paper's **dynamic dispatch**
//! (Listing 2): Python operands execute imperatively; staged operands
//! lower the construct into the active IR.

use crate::backend::LanternStage;
use crate::interp::{Interp, Stage};
use crate::value::{Builtin, PyFunction, Value};
use crate::{Result, RuntimeError};
use autograph_graph::ir::OpKind;
use autograph_lantern::sexpr::SExpr;
use autograph_pylang::ast::{Module, StmtKind};
use std::rc::Rc;

type Args = Vec<Value>;
type Kwargs = Vec<(String, Value)>;

fn builtin(name: &str, f: impl Fn(&mut Interp, Args, Kwargs) -> Result<Value> + 'static) -> Value {
    Value::Builtin(Rc::new(Builtin {
        name: format!("ag.{name}"),
        func: Box::new(f),
    }))
}

/// Look up an `ag.*` attribute.
pub fn lookup(name: &str) -> Option<Value> {
    Some(match name {
        "if_stmt" => builtin("if_stmt", |i, mut a, _| {
            if a.len() != 3 {
                return Err(RuntimeError::new("ag.if_stmt(cond, true_fn, false_fn)"));
            }
            let ff = a.pop().expect("len");
            let tf_ = a.pop().expect("len");
            let cond = a.pop().expect("len");
            if_stmt_impl(i, cond, tf_, ff)
        }),
        "while_stmt" => builtin("while_stmt", |i, mut a, _| {
            if a.len() != 3 {
                return Err(RuntimeError::new("ag.while_stmt(test_fn, body_fn, init)"));
            }
            let init = a.pop().expect("len");
            let body = a.pop().expect("len");
            let test = a.pop().expect("len");
            while_stmt_impl(i, test, body, init)
        }),
        "for_stmt" => builtin("for_stmt", |i, mut a, _| {
            if a.len() != 3 {
                return Err(RuntimeError::new("ag.for_stmt(iter, body_fn, init)"));
            }
            let init = a.pop().expect("len");
            let body = a.pop().expect("len");
            let iter = a.pop().expect("len");
            for_stmt_impl(i, iter, body, init)
        }),
        "converted_call" => builtin("converted_call", |i, mut a, k| {
            if a.is_empty() {
                return Err(RuntimeError::new("ag.converted_call needs a callee"));
            }
            let callee = a.remove(0);
            converted_call_impl(i, callee, a, k)
        }),
        "and_" => builtin("and_", |i, a, _| logical_lazy(i, a, true)),
        "or_" => builtin("or_", |i, a, _| logical_lazy(i, a, false)),
        "not_" => builtin("not_", |i, mut a, _| {
            let v = a.pop().ok_or_else(|| RuntimeError::new("ag.not_(x)"))?;
            match &v {
                Value::GraphNode { .. } => i.graph_op(OpKind::LogicalNot, &[v]),
                Value::Lantern(e) => Ok(i.lantern_expr("not", vec![(**e).clone()])),
                Value::Tensor(t) if t.tensor().dtype() == autograph_tensor::DType::Bool => {
                    let r = i.eager.op("logical_not", &[t])?;
                    Ok(Value::Tensor(r))
                }
                other => Ok(Value::Bool(!other.truthy()?)),
            }
        }),
        "eq_" => builtin("eq_", |i, mut a, _| {
            let b = a.pop().ok_or_else(|| RuntimeError::new("ag.eq_(a, b)"))?;
            let x = a.pop().ok_or_else(|| RuntimeError::new("ag.eq_(a, b)"))?;
            i.compare(autograph_pylang::ast::CmpOp::Eq, x, b)
        }),
        "not_eq_" => builtin("not_eq_", |i, mut a, _| {
            let b = a
                .pop()
                .ok_or_else(|| RuntimeError::new("ag.not_eq_(a, b)"))?;
            let x = a
                .pop()
                .ok_or_else(|| RuntimeError::new("ag.not_eq_(a, b)"))?;
            i.compare(autograph_pylang::ast::CmpOp::NotEq, x, b)
        }),
        "list_append" => builtin("list_append", |i, mut a, _| {
            if a.len() != 2 {
                return Err(RuntimeError::new("ag.list_append(list, value)"));
            }
            let x = a.pop().expect("len");
            let l = a.pop().expect("len");
            list_append_impl(i, l, x)
        }),
        "list_pop" => builtin("list_pop", |i, mut a, _| {
            let l = a
                .pop()
                .ok_or_else(|| RuntimeError::new("ag.list_pop(list)"))?;
            list_pop_impl(i, l)
        }),
        "stack" => builtin("stack", |i, mut a, _| {
            let l = a
                .drain(..)
                .next()
                .ok_or_else(|| RuntimeError::new("ag.stack(list)"))?;
            stack_impl(i, l)
        }),
        "setitem" => builtin("setitem", |i, mut a, _| {
            if a.len() != 3 {
                return Err(RuntimeError::new("ag.setitem(x, i, v)"));
            }
            let v = a.pop().expect("len");
            let idx = a.pop().expect("len");
            let x = a.pop().expect("len");
            setitem_impl(i, x, idx, v)
        }),
        "undefined" => builtin("undefined", |_, mut a, _| {
            let name = match a.pop() {
                Some(Value::Str(s)) => (*s).clone(),
                _ => "<unknown>".to_string(),
            };
            Ok(Value::Undefined(Rc::new(name)))
        }),
        "assert_stmt" => builtin("assert_stmt", |i, mut a, _| {
            let msg = a.pop().unwrap_or(Value::None);
            let cond = a
                .pop()
                .ok_or_else(|| RuntimeError::new("ag.assert_stmt(cond, msg)"))?;
            let text = match &msg {
                Value::None => "assertion failed".to_string(),
                m => m.render(),
            };
            match &cond {
                Value::GraphNode { .. } => i.graph_op(OpKind::AssertOp(text), &[cond]),
                other => {
                    if !other.truthy()? {
                        return Err(RuntimeError::new(text));
                    }
                    Ok(Value::None)
                }
            }
        }),
        "print_" => builtin("print_", |i, a, _| {
            if a.len() == 1 && matches!(a[0], Value::GraphNode { .. }) {
                return i.graph_op(OpKind::Print(String::new()), &[a[0].clone()]);
            }
            let rendered: Vec<String> = a.iter().map(Value::render).collect();
            println!("{}", rendered.join(" "));
            Ok(Value::None)
        }),
        "len_" => builtin("len_", |i, mut a, _| {
            let v = a.pop().ok_or_else(|| RuntimeError::new("ag.len_(x)"))?;
            match &v {
                Value::List(l) => Ok(Value::Int(l.borrow().len() as i64)),
                Value::Tuple(t) => Ok(Value::Int(t.len() as i64)),
                Value::Str(s) => Ok(Value::Int(s.chars().count() as i64)),
                Value::Range { start, stop, step } => {
                    let n = if *step > 0 {
                        (stop - start).max(0) / step + i64::from((stop - start).max(0) % step != 0)
                    } else {
                        (start - stop).max(0) / (-step)
                            + i64::from((start - stop).max(0) % (-step) != 0)
                    };
                    Ok(Value::Int(n))
                }
                Value::Tensor(t) => {
                    let t = t.tensor();
                    if t.rank() == 0 {
                        return Err(RuntimeError::new("len() of a scalar tensor"));
                    }
                    Ok(Value::Int(t.shape()[0] as i64))
                }
                Value::GraphNode { .. } => {
                    let shape = i.graph_op(OpKind::Shape, &[v])?;
                    let zero = Value::Int(0);
                    i.graph_op(OpKind::IndexAxis0, &[shape, zero])
                }
                other => Err(RuntimeError::new(format!(
                    "object of type {} has no len()",
                    other.kind()
                ))),
            }
        }),
        "range_" => builtin("range_", |i, a, _| {
            if a.iter().any(Value::is_staged) {
                if a.len() != 1 {
                    return Err(RuntimeError::new(
                        "staged range() supports a single limit argument",
                    ));
                }
                return i.graph_op(OpKind::Range, &[a[0].clone()]);
            }
            let ints: Vec<i64> = a.iter().map(Value::as_int).collect::<Result<_>>()?;
            let (start, stop, step) = match ints.as_slice() {
                [stop] => (0, *stop, 1),
                [start, stop] => (*start, *stop, 1),
                [start, stop, step] => (*start, *stop, *step),
                _ => return Err(RuntimeError::new("range expects 1-3 arguments")),
            };
            if step == 0 {
                return Err(RuntimeError::new("range() step must not be zero"));
            }
            Ok(Value::Range { start, stop, step })
        }),
        "int_" => builtin("int_", |i, mut a, _| {
            let v = a.pop().ok_or_else(|| RuntimeError::new("int(x)"))?;
            match &v {
                Value::Int(x) => Ok(Value::Int(*x)),
                Value::Float(f) => Ok(Value::Int(*f as i64)),
                Value::Bool(b) => Ok(Value::Int(*b as i64)),
                Value::Str(s) => s
                    .trim()
                    .parse::<i64>()
                    .map(Value::Int)
                    .map_err(|_| RuntimeError::new(format!("invalid int literal: '{s}'"))),
                Value::Tensor(t) => Ok(Value::Int(t.tensor().scalar_value_i64()?)),
                Value::GraphNode { .. } => {
                    i.graph_op(OpKind::Cast(autograph_tensor::DType::I64), &[v])
                }
                other => Err(RuntimeError::new(format!(
                    "int() argument must be numeric, not {}",
                    other.kind()
                ))),
            }
        }),
        "float_" => builtin("float_", |i, mut a, _| {
            let v = a.pop().ok_or_else(|| RuntimeError::new("float(x)"))?;
            match &v {
                Value::GraphNode { .. } => {
                    i.graph_op(OpKind::Cast(autograph_tensor::DType::F32), &[v])
                }
                Value::Str(s) => s
                    .trim()
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| RuntimeError::new(format!("invalid float literal: '{s}'"))),
                other => Ok(Value::Float(other.as_float()?)),
            }
        }),
        "abs_" => builtin("abs_", |i, mut a, _| {
            let v = a.pop().ok_or_else(|| RuntimeError::new("abs(x)"))?;
            match &v {
                Value::Int(x) => Ok(Value::Int(x.abs())),
                Value::Float(f) => Ok(Value::Float(f.abs())),
                Value::Tensor(t) => Ok(Value::Tensor(i.eager.op("abs", &[t])?)),
                Value::GraphNode { .. } => i.graph_op(OpKind::Abs, &[v]),
                other => Err(RuntimeError::new(format!(
                    "bad operand for abs(): {}",
                    other.kind()
                ))),
            }
        }),
        "min_" => builtin("min_", |_, a, _| reduce_py(a, true)),
        "max_" => builtin("max_", |_, a, _| reduce_py(a, false)),
        "set_element_type" => builtin("set_element_type", |_, _, _| Ok(Value::None)),
        "set_loop_options" => builtin("set_loop_options", |i, _, kwargs| {
            if let Some((_, v)) = kwargs.iter().find(|(k, _)| k == "max_iterations") {
                i.pending_loop_options = Some(v.as_int()?.max(0) as u64);
            }
            Ok(Value::None)
        }),
        "autograph_artifact" => builtin("autograph_artifact", |_, mut a, _| {
            Ok(a.pop().unwrap_or(Value::None))
        }),
        _ => return None,
    })
}

fn reduce_py(args: Args, min: bool) -> Result<Value> {
    let items: Vec<Value> = if args.len() == 1 {
        match &args[0] {
            Value::List(l) => l.borrow().clone(),
            Value::Tuple(t) => (**t).clone(),
            _ => args,
        }
    } else {
        args
    };
    if items.is_empty() {
        return Err(RuntimeError::new("min()/max() of empty sequence"));
    }
    let mut best = items[0].as_float()?;
    let mut best_i = 0;
    for (i, v) in items.iter().enumerate().skip(1) {
        let f = v.as_float()?;
        if (min && f < best) || (!min && f > best) {
            best = f;
            best_i = i;
        }
    }
    Ok(items[best_i].clone())
}

// ---- control flow: dynamic dispatch ---------------------------------------

/// Call a stored function value with positional args.
fn call(i: &mut Interp, f: &Value, args: Vec<Value>) -> Result<Value> {
    i.call_value(f.clone(), args, Vec::new())
}

/// Flatten a branch/body result into individual values (None → 0 outputs,
/// tuple → n outputs, anything else → 1 output).
fn flatten_result(v: &Value) -> Vec<Value> {
    match v {
        Value::None => Vec::new(),
        Value::Tuple(items) => (**items).clone(),
        single => vec![single.clone()],
    }
}

/// Rebuild a result with the same structure from replacement values.
fn rebuild_result(template: &Value, values: Vec<Value>) -> Value {
    match template {
        Value::None => Value::None,
        Value::Tuple(_) => Value::tuple(values),
        _ => values.into_iter().next().unwrap_or(Value::None),
    }
}

/// The conditional operator (Listing 2).
pub fn if_stmt_impl(i: &mut Interp, cond: Value, true_fn: Value, false_fn: Value) -> Result<Value> {
    match &cond {
        Value::GraphNode { .. } => staged_cond(i, cond, true_fn, false_fn),
        Value::Lantern(_) => lantern_cond(i, cond, true_fn, false_fn),
        other => {
            if other.truthy()? {
                call(i, &true_fn, vec![])
            } else {
                call(i, &false_fn, vec![])
            }
        }
    }
}

fn staged_cond(i: &mut Interp, cond: Value, true_fn: Value, false_fn: Value) -> Result<Value> {
    // stage then-branch
    {
        let Stage::Graph(stage) = &mut i.stage else {
            return Err(RuntimeError::new("graph staging inactive"));
        };
        stage.push_layer(0);
    }
    let t_result = call(i, &true_fn, vec![])?;
    let t_values = flatten_result(&t_result);
    let mut t_nodes = Vec::with_capacity(t_values.len());
    for v in &t_values {
        t_nodes.push(i.to_graph_node(v)?);
    }
    let (mut then_g, caps1) = {
        let Stage::Graph(stage) = &mut i.stage else {
            unreachable!()
        };
        stage.pop_layer(t_nodes)
    };

    // stage else-branch, pre-seeded with then's captures
    {
        let Stage::Graph(stage) = &mut i.stage else {
            unreachable!()
        };
        stage.push_layer_with_captures(0, &caps1);
    }
    let f_result = call(i, &false_fn, vec![])?;
    let f_values = flatten_result(&f_result);
    let mut f_nodes = Vec::with_capacity(f_values.len());
    for v in &f_values {
        f_nodes.push(i.to_graph_node(v)?);
    }
    let (else_g, caps_all) = {
        let Stage::Graph(stage) = &mut i.stage else {
            unreachable!()
        };
        stage.pop_layer(f_nodes)
    };

    if t_values.len() != f_values.len() {
        return Err(RuntimeError::new(format!(
            "staged conditional branches must produce the same number of values \
             ({} vs {}); all code paths must initialize the same variables",
            t_values.len(),
            f_values.len()
        )));
    }
    then_g.num_params = caps_all.len();

    // cond node inputs: predicate + resolved captures
    let n_outputs = t_values.len();
    let mut inputs = vec![i.to_graph_node(&cond)?];
    {
        let Stage::Graph(stage) = &mut i.stage else {
            unreachable!()
        };
        for (e, id) in &caps_all {
            inputs.push(stage.resolve(*e, *id)?);
        }
        let (epoch, node) = stage.add(OpKind::Cond { then_g, else_g }, inputs);
        match n_outputs {
            0 => Ok(Value::None),
            1 => Ok(Value::GraphNode { epoch, id: node }),
            n => {
                let mut outs = Vec::with_capacity(n);
                for k in 0..n {
                    let id = stage.add(OpKind::TupleGet(k), vec![node]).1;
                    outs.push(Value::GraphNode { epoch, id });
                }
                Ok(rebuild_result(&t_result, outs))
            }
        }
    }
}

fn lantern_cond(i: &mut Interp, cond: Value, true_fn: Value, false_fn: Value) -> Result<Value> {
    let cond_sexpr = i.to_lantern_sexpr(&cond)?;
    let stage_frame = |i: &mut Interp| {
        if let Stage::Lantern(s) = &mut i.stage {
            s.push_frame();
        }
    };
    let unframe = |i: &mut Interp, body: SExpr| -> SExpr {
        if let Stage::Lantern(s) = &mut i.stage {
            s.pop_frame(body)
        } else {
            body
        }
    };
    stage_frame(i);
    let t = call(i, &true_fn, vec![])?;
    // a branch that modifies no variables returns None (matching the
    // graph path's zero-output Cond); Lantern is pure, so a conditional
    // with no outputs stages to nothing at all
    let t_none = matches!(t, Value::None);
    let t_sexpr = if t_none {
        SExpr::Num(0.0)
    } else {
        i.to_lantern_sexpr(&t)?
    };
    let t_sexpr = unframe(i, t_sexpr);
    stage_frame(i);
    let f = call(i, &false_fn, vec![])?;
    let f_none = matches!(f, Value::None);
    let f_sexpr = if f_none {
        SExpr::Num(0.0)
    } else {
        i.to_lantern_sexpr(&f)?
    };
    let f_sexpr = unframe(i, f_sexpr);
    if t_none != f_none {
        return Err(RuntimeError::new(
            "staged conditional branches must produce the same number of values; \
             all code paths must initialize the same variables",
        ));
    }
    if t_none {
        return Ok(Value::None);
    }
    Ok(Value::Lantern(Rc::new(SExpr::list(vec![
        SExpr::sym("if"),
        cond_sexpr,
        t_sexpr,
        f_sexpr,
    ]))))
}

/// The while operator.
pub fn while_stmt_impl(
    i: &mut Interp,
    test_fn: Value,
    body_fn: Value,
    init: Value,
) -> Result<Value> {
    let state: Vec<Value> = match &init {
        Value::Tuple(items) => (**items).clone(),
        other => vec![other.clone()],
    };
    // Dispatch on the condition-closure types (Table 4): the loop stages
    // when the first test result OR any loop-state value is staged (a
    // state variable may only become tensor-dependent inside the body,
    // e.g. a lowered `break` guard flipped by a staged conditional).
    let first = call(i, &test_fn, state.clone())?;
    if matches!(i.stage, Stage::Graph(_))
        && (first.is_staged() || state.iter().any(Value::is_staged))
    {
        return staged_while(i, &test_fn, &body_fn, &init, state);
    }
    match &first {
        Value::GraphNode { .. } => staged_while(i, &test_fn, &body_fn, &init, state),
        Value::Lantern(_) => Err(RuntimeError::new(
            "the lantern backend stages loops as recursion; rewrite this loop as a \
             recursive function (§8)",
        )),
        other => {
            let mut keep = other.truthy()?;
            let mut state = state;
            let n = state.len();
            // an ag.set_loop_options inside an imperative loop body applies
            // to nothing staged; consume it so it cannot leak into a later
            // staged loop
            while keep {
                let out = call(i, &body_fn, state.clone())?;
                state = match out {
                    Value::Tuple(items) if items.len() == n => (*items).clone(),
                    other if n == 1 => vec![other],
                    other => {
                        return Err(RuntimeError::new(format!(
                            "loop body must return {n} state values, got {}",
                            other.kind()
                        )))
                    }
                };
                keep = call(i, &test_fn, state.clone())?.truthy()?;
            }
            i.pending_loop_options = None;
            Ok(rebuild_result(&init, state))
        }
    }
}

fn staged_while(
    i: &mut Interp,
    test_fn: &Value,
    body_fn: &Value,
    init: &Value,
    state: Vec<Value>,
) -> Result<Value> {
    let k = state.len();

    // condition subgraph
    let cond_params = {
        let Stage::Graph(stage) = &mut i.stage else {
            return Err(RuntimeError::new("graph staging inactive"));
        };
        stage.push_layer(k)
    };
    let param_values: Vec<Value> = cond_params
        .iter()
        .map(|(e, id)| Value::GraphNode { epoch: *e, id: *id })
        .collect();
    let test_out = call(i, test_fn, param_values)?;
    let test_node = i.to_graph_node(&test_out)?;
    let (mut cond_g, caps_c) = {
        let Stage::Graph(stage) = &mut i.stage else {
            unreachable!()
        };
        stage.pop_layer(vec![test_node])
    };

    // body subgraph (captures pre-seeded with the condition's)
    let body_params = {
        let Stage::Graph(stage) = &mut i.stage else {
            unreachable!()
        };
        stage.push_layer_with_captures(k, &caps_c)
    };
    let param_values: Vec<Value> = body_params
        .iter()
        .map(|(e, id)| Value::GraphNode { epoch: *e, id: *id })
        .collect();
    let body_out = call(i, body_fn, param_values)?;
    let body_values = flatten_result(&body_out);
    if body_values.len() != k {
        return Err(RuntimeError::new(format!(
            "staged loop body must return {k} state values, got {}",
            body_values.len()
        )));
    }
    let mut out_nodes = Vec::with_capacity(k);
    for v in &body_values {
        out_nodes.push(i.to_graph_node(v)?);
    }
    let (body_g, caps_all, passthrough) = {
        let Stage::Graph(stage) = &mut i.stage else {
            unreachable!()
        };
        let passthrough = stage.capture_param_nodes();
        let mut outputs = out_nodes;
        outputs.extend(passthrough.iter().copied());
        let (g, caps) = stage.pop_layer(outputs);
        (g, caps, passthrough)
    };
    let _ = passthrough;
    cond_g.num_params = k + caps_all.len();
    let max_iters = i.pending_loop_options.take();

    // While node: initial state + resolved captures
    let mut inputs = Vec::with_capacity(k + caps_all.len());
    for v in &state {
        inputs.push(i.to_graph_node(v)?);
    }
    {
        let Stage::Graph(stage) = &mut i.stage else {
            unreachable!()
        };
        for (e, id) in &caps_all {
            inputs.push(stage.resolve(*e, *id)?);
        }
        let (epoch, node) = stage.add(
            OpKind::While {
                cond_g,
                body_g,
                max_iters,
            },
            inputs,
        );
        let mut outs = Vec::with_capacity(k);
        for idx in 0..k {
            let id = stage.add(OpKind::TupleGet(idx), vec![node]).1;
            outs.push(Value::GraphNode { epoch, id });
        }
        Ok(rebuild_result(init, outs))
    }
}

/// The for operator.
pub fn for_stmt_impl(i: &mut Interp, iter: Value, body_fn: Value, init: Value) -> Result<Value> {
    let state: Vec<Value> = match &init {
        Value::Tuple(items) => (**items).clone(),
        other => vec![other.clone()],
    };
    match &iter {
        Value::GraphNode { .. } => staged_for(i, iter, &body_fn, &init, state),
        Value::Lantern(_) => Err(RuntimeError::new(
            "the lantern backend stages loops as recursion; rewrite this loop as a \
             recursive function (§8)",
        )),
        _ => {
            let items = i.iterate(&iter)?;
            let mut state = state;
            let n = state.len();
            for item in items {
                let mut args = vec![item];
                args.extend(state.iter().cloned());
                let out = call(i, &body_fn, args)?;
                state = match out {
                    Value::Tuple(items) if items.len() == n => (*items).clone(),
                    other if n == 1 => vec![other],
                    other => {
                        return Err(RuntimeError::new(format!(
                            "loop body must return {n} state values, got {}",
                            other.kind()
                        )))
                    }
                };
            }
            i.pending_loop_options = None;
            Ok(rebuild_result(&init, state))
        }
    }
}

/// Staged `for` over a 1-D tensor: lowered to a staged while with an index
/// counter, exactly like `tf.while_loop`-based `dynamic_rnn` (Appendix A).
fn staged_for(
    i: &mut Interp,
    iter: Value,
    body_fn: &Value,
    init: &Value,
    state: Vec<Value>,
) -> Result<Value> {
    let k = state.len();

    // condition subgraph: params [idx, state...]; idx < len(iter)
    let (cond_g, caps_c) = {
        let cond_params = {
            let Stage::Graph(stage) = &mut i.stage else {
                return Err(RuntimeError::new("graph staging inactive"));
            };
            stage.push_layer(k + 1)
        };
        let idx = Value::GraphNode {
            epoch: cond_params[0].0,
            id: cond_params[0].1,
        };
        let shape = i.graph_op(OpKind::Shape, std::slice::from_ref(&iter))?;
        let len = i.graph_op(OpKind::IndexAxis0, &[shape, Value::Int(0)])?;
        let lt = i.graph_op(OpKind::Less, &[idx, len])?;
        let lt_node = i.to_graph_node(&lt)?;
        let Stage::Graph(stage) = &mut i.stage else {
            unreachable!()
        };
        stage.pop_layer(vec![lt_node])
    };

    // body subgraph
    let body_params = {
        let Stage::Graph(stage) = &mut i.stage else {
            unreachable!()
        };
        stage.push_layer_with_captures(k + 1, &caps_c)
    };
    let idx_val = Value::GraphNode {
        epoch: body_params[0].0,
        id: body_params[0].1,
    };
    let target = i.graph_op(OpKind::IndexAxis0, &[iter.clone(), idx_val.clone()])?;
    let mut args = vec![target];
    args.extend(
        body_params[1..]
            .iter()
            .map(|(e, id)| Value::GraphNode { epoch: *e, id: *id }),
    );
    let body_out = call(i, body_fn, args)?;
    let body_values = flatten_result(&body_out);
    if body_values.len() != k {
        return Err(RuntimeError::new(format!(
            "staged loop body must return {k} state values, got {}",
            body_values.len()
        )));
    }
    let next_idx = i.binop(autograph_pylang::ast::BinOp::Add, idx_val, Value::Int(1))?;
    let mut out_nodes = vec![i.to_graph_node(&next_idx)?];
    for v in &body_values {
        out_nodes.push(i.to_graph_node(v)?);
    }
    let (body_g, caps_all) = {
        let Stage::Graph(stage) = &mut i.stage else {
            unreachable!()
        };
        let passthrough = stage.capture_param_nodes();
        out_nodes.extend(passthrough);
        stage.pop_layer(out_nodes)
    };
    let mut cond_g = cond_g;
    cond_g.num_params = k + 1 + caps_all.len();
    let max_iters = i.pending_loop_options.take();

    // While node inputs: idx=0, state inits, captures
    let mut inputs = vec![];
    {
        let zero = Value::Int(0);
        inputs.push(i.to_graph_node(&zero)?);
    }
    for v in &state {
        inputs.push(i.to_graph_node(v)?);
    }
    {
        let Stage::Graph(stage) = &mut i.stage else {
            unreachable!()
        };
        for (e, id) in &caps_all {
            inputs.push(stage.resolve(*e, *id)?);
        }
        let (epoch, node) = stage.add(
            OpKind::While {
                cond_g,
                body_g,
                max_iters,
            },
            inputs,
        );
        let mut outs = Vec::with_capacity(k);
        for idx in 0..k {
            let id = stage.add(OpKind::TupleGet(idx + 1), vec![node]).1;
            outs.push(Value::GraphNode { epoch, id });
        }
        Ok(rebuild_result(init, outs))
    }
}

// ---- logical ----------------------------------------------------------------

/// Lazy `and`/`or`: `args = [a, thunk_b]`.
fn logical_lazy(i: &mut Interp, mut args: Args, is_and: bool) -> Result<Value> {
    if args.len() != 2 {
        return Err(RuntimeError::new("ag.and_/or_(a, lambda: b)"));
    }
    let thunk = args.pop().expect("len");
    let a = args.pop().expect("len");
    match &a {
        Value::GraphNode { .. } => {
            // staged: strict evaluation of the second operand (the paper
            // lowers through tf.cond; our kernel is strict — documented)
            let b = call(i, &thunk, vec![])?;
            let op = if is_and {
                OpKind::LogicalAnd
            } else {
                OpKind::LogicalOr
            };
            i.graph_op(op, &[a, b])
        }
        Value::Lantern(e) => {
            let b = call(i, &thunk, vec![])?;
            let b_sexpr = i.to_lantern_sexpr(&b)?;
            Ok(i.lantern_expr(
                if is_and { "and" } else { "or" },
                vec![(**e).clone(), b_sexpr],
            ))
        }
        other => {
            // Python lazy boolean semantics: return the deciding operand
            let t = other.truthy()?;
            if t == is_and {
                call(i, &thunk, vec![])
            } else {
                Ok(a)
            }
        }
    }
}

// ---- lists -------------------------------------------------------------------

fn list_append_impl(i: &mut Interp, l: Value, x: Value) -> Result<Value> {
    match (&l, &x) {
        (Value::List(items), x) if !x.is_staged() => {
            items.borrow_mut().push(x.clone());
            Ok(l)
        }
        (Value::List(_), _) => {
            // a Python list receiving a staged element becomes a staged list
            let arr = i.to_graph_node(&l)?;
            let stage_epoch = match &i.stage {
                Stage::Graph(g) => g.top_epoch(),
                _ => unreachable!("to_graph_node checked"),
            };
            let arr_v = Value::GraphNode {
                epoch: stage_epoch,
                id: arr,
            };
            i.graph_op(OpKind::ArrayPush, &[arr_v, x])
        }
        (Value::GraphNode { .. }, _) => i.graph_op(OpKind::ArrayPush, &[l, x]),
        (other, _) => Err(RuntimeError::new(format!(
            "cannot append to {}",
            other.kind()
        ))),
    }
}

fn list_pop_impl(i: &mut Interp, l: Value) -> Result<Value> {
    match &l {
        Value::List(items) => {
            let v = items
                .borrow_mut()
                .pop()
                .ok_or_else(|| RuntimeError::new("pop from empty list"))?;
            Ok(Value::tuple(vec![l, v]))
        }
        Value::GraphNode { .. } => {
            let pair = i.graph_op(OpKind::ArrayPop, &[l])?;
            let rest = i.graph_op(OpKind::TupleGet(0), std::slice::from_ref(&pair))?;
            let item = i.graph_op(OpKind::TupleGet(1), &[pair])?;
            Ok(Value::tuple(vec![rest, item]))
        }
        other => Err(RuntimeError::new(format!(
            "cannot pop from {}",
            other.kind()
        ))),
    }
}

fn stack_impl(i: &mut Interp, l: Value) -> Result<Value> {
    match &l {
        Value::List(items) => {
            let items = items.borrow().clone();
            if items.is_empty() {
                return Err(RuntimeError::new("ag.stack of an empty list"));
            }
            if items.iter().any(Value::is_staged) {
                return i.graph_op(OpKind::StackOp, &items);
            }
            let ts: Vec<autograph_tensor::Tensor> = items
                .iter()
                .map(|v| v.as_eager_tensor())
                .collect::<Result<_>>()?;
            Ok(Value::tensor(autograph_tensor::Tensor::stack(&ts)?))
        }
        Value::GraphNode { .. } => i.graph_op(OpKind::ArrayStack, &[l]),
        other => Err(RuntimeError::new(format!("cannot stack {}", other.kind()))),
    }
}

fn setitem_impl(i: &mut Interp, x: Value, idx: Value, v: Value) -> Result<Value> {
    match &x {
        Value::List(items) => {
            let pos = idx.as_int()?;
            let mut items_mut = items.borrow_mut();
            let len = items_mut.len() as i64;
            let p = if pos < 0 { pos + len } else { pos };
            if p < 0 || p >= len {
                return Err(RuntimeError::new(format!(
                    "list assignment index {pos} out of range"
                )));
            }
            items_mut[p as usize] = v;
            drop(items_mut);
            Ok(x)
        }
        Value::Tensor(t) => {
            let pos = idx.as_int()?;
            Ok(Value::tensor(
                t.tensor().set_index_axis0(pos, &v.as_eager_tensor()?)?,
            ))
        }
        Value::GraphNode { .. } => i.graph_op(OpKind::SetItemAxis0, &[x, idx, v]),
        other => Err(RuntimeError::new(format!(
            "cannot set item on {}",
            other.kind()
        ))),
    }
}

// ---- converted_call ---------------------------------------------------------

/// `ag.converted_call` (§7.2 Function Calls): dynamically convert the
/// target, call it as-is, or stage it, depending on its characteristics.
pub fn converted_call_impl(
    i: &mut Interp,
    callee: Value,
    args: Args,
    kwargs: Kwargs,
) -> Result<Value> {
    match callee {
        Value::Builtin(b) => (b.func)(i, args, kwargs),
        Value::Function(f) => {
            // Lantern: a user-function call with staged args becomes a
            // staged function definition + `(call f ...)` — including
            // recursion (§8).
            let lantern_staged = matches!(i.stage, Stage::Lantern(_))
                && args.iter().any(|a| matches!(a, Value::Lantern(_)));
            if lantern_staged {
                return lantern_staged_call(i, &f, args, kwargs);
            }
            let target = ensure_converted(i, &f)?;
            i.call_function(&target, args, kwargs)
        }
        other => Err(RuntimeError::new(format!(
            "{} is not callable",
            other.kind()
        ))),
    }
}

/// Convert a user function at runtime (recursive mode), caching by
/// function identity.
pub fn ensure_converted(i: &mut Interp, f: &Rc<PyFunction>) -> Result<Rc<PyFunction>> {
    if f.is_artifact {
        return Ok(f.clone());
    }
    let key = Rc::as_ptr(f) as usize;
    if let Some(c) = i.conversion_cache.get(&key) {
        return Ok(c.clone());
    }
    // Rebuild a module holding just this function and convert it.
    let fdef = autograph_pylang::ast::Stmt::synthetic(StmtKind::FunctionDef {
        name: f.name.clone(),
        params: f.params.clone(),
        body: (*f.body).clone(),
        decorators: vec![],
    });
    let module = Module { body: vec![fdef] };
    let converted = autograph_transforms::convert_module(module, &i.config.clone())?;
    // Under FallbackToEager an unconvertible function comes back verbatim
    // with a warning; marking it as an artifact below caches the decision
    // and lets it run op-by-op in the eager interpreter.
    match i.source.clone() {
        Some(src) => i
            .conversion_warnings
            .extend(converted.warnings.into_iter().map(|w| w.with_source(&src))),
        None => i.conversion_warnings.extend(converted.warnings),
    }
    let body = match converted.module.body.into_iter().next() {
        Some(autograph_pylang::ast::Stmt {
            kind: StmtKind::FunctionDef { body, .. },
            ..
        }) => body,
        _ => return Err(RuntimeError::new("conversion lost the function definition")),
    };
    let new_f = Rc::new(PyFunction {
        name: f.name.clone(),
        def_span: f.def_span,
        params: f.params.clone(),
        body: Rc::new(body),
        closure: f.closure.clone(),
        is_artifact: true,
        defaults: f.defaults.clone(),
    });
    i.conversion_cache.insert(key, new_f.clone());
    // the converted artifact calls itself through converted_call; map its
    // own identity too so recursion does not re-convert
    i.conversion_cache
        .insert(Rc::as_ptr(&new_f) as usize, new_f.clone());
    Ok(new_f)
}

/// Stage a user-function call into the Lantern IR (`__def_staged` /
/// `__call_staged` of §8).
fn lantern_staged_call(
    i: &mut Interp,
    f: &Rc<PyFunction>,
    args: Args,
    kwargs: Kwargs,
) -> Result<Value> {
    if !kwargs.is_empty() {
        return Err(RuntimeError::new(
            "keyword arguments are not supported in staged lantern calls",
        ));
    }
    let target = ensure_converted(i, f)?;
    // staged name keyed on the ORIGINAL function identity
    let key = Rc::as_ptr(f) as usize;
    let key2 = Rc::as_ptr(&target) as usize;

    let existing = match &mut i.stage {
        Stage::Lantern(s) => s.staged.get(&key).cloned(),
        _ => return Err(RuntimeError::new("lantern staging inactive")),
    };
    let name = match existing {
        Some(name) => name,
        None => {
            // register before staging the body so recursion resolves
            let name = {
                let Stage::Lantern(s) = &mut i.stage else {
                    unreachable!()
                };
                let name = s.fresh(&f.name);
                s.staged.insert(key, name.clone());
                s.staged.insert(key2, name.clone());
                s.push_frame();
                name
            };
            // bind params symbolically and interpret the body once
            let sym_args: Vec<Value> = target
                .params
                .iter()
                .map(|p| Value::Lantern(Rc::new(SExpr::sym(p.name.clone()))))
                .collect();
            let result = i.call_function(&target, sym_args, vec![])?;
            let body_sexpr = i.to_lantern_sexpr(&result)?;
            let Stage::Lantern(s) = &mut i.stage else {
                unreachable!()
            };
            let body_sexpr = s.pop_frame(body_sexpr);
            let params = SExpr::list(
                target
                    .params
                    .iter()
                    .map(|p| SExpr::sym(p.name.clone()))
                    .collect(),
            );
            s.defs.push(SExpr::list(vec![
                SExpr::sym("def"),
                SExpr::sym(name.clone()),
                params,
                body_sexpr,
            ]));
            name
        }
    };
    // emit (call name args...)
    let mut items = vec![SExpr::sym("call"), SExpr::sym(name)];
    for a in &args {
        items.push(i.to_lantern_sexpr(a)?);
    }
    Ok(Value::Lantern(Rc::new(SExpr::list(items))))
}

/// Expose `LanternStage` for `Runtime` (staging entry points).
pub fn lantern_stage_mut(i: &mut Interp) -> Result<&mut LanternStage> {
    match &mut i.stage {
        Stage::Lantern(s) => Ok(s),
        _ => Err(RuntimeError::new("lantern staging inactive")),
    }
}
