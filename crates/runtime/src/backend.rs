//! Staging backends and the capture machinery for nested subgraphs.

use crate::{Result, RuntimeError};
use autograph_graph::builder::GraphBuilder;
use autograph_graph::ir::{NodeId, OpKind, SubGraph};
use autograph_lantern::sexpr::SExpr;
use std::collections::HashMap;

/// Which execution mode the interpreter is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Imperative op-by-op execution (eager tensors).
    Eager,
    /// Staging into the TensorFlow-like dataflow graph.
    Graph,
    /// Staging into the Lantern S-expression IR.
    Lantern,
}

/// One graph-builder layer. The root layer builds the final graph;
/// `cond`/`while` bodies stage in nested layers whose references to outer
/// nodes become `Param` captures.
#[derive(Debug)]
pub struct GraphLayer {
    /// Unique identity of this layer (stamped into `Value::GraphNode`).
    pub epoch: u64,
    /// The builder for this layer's nodes.
    pub builder: GraphBuilder,
    /// Number of pre-declared state params (loop state), before captures.
    pub state_params: usize,
    /// Outer references captured so far, in param order after the state
    /// params. Entries are `(outer_epoch, outer_node)`.
    pub captures: Vec<(u64, NodeId)>,
    capture_map: HashMap<(u64, NodeId), NodeId>,
}

/// The graph staging context: a stack of builder layers.
#[derive(Debug)]
pub struct GraphStage {
    layers: Vec<GraphLayer>,
    next_epoch: u64,
}

impl GraphStage {
    /// Start staging with a fresh root builder.
    pub fn new() -> GraphStage {
        GraphStage {
            layers: vec![GraphLayer {
                epoch: 1,
                builder: GraphBuilder::new(),
                state_params: 0,
                captures: Vec::new(),
                capture_map: HashMap::new(),
            }],
            next_epoch: 2,
        }
    }

    /// The innermost layer.
    pub fn top(&mut self) -> &mut GraphLayer {
        self.layers.last_mut().expect("at least the root layer")
    }

    /// Push a name scope on the innermost layer's builder (readable node
    /// names per converted function, §7.2 Function Wrappers).
    pub fn push_scope(&mut self, name: &str) {
        self.top().builder.push_scope(name);
    }

    /// Pop the innermost layer's name scope.
    pub fn pop_scope(&mut self) {
        self.top().builder.pop_scope();
    }

    /// The innermost layer's epoch.
    pub fn top_epoch(&self) -> u64 {
        self.layers.last().expect("root layer").epoch
    }

    /// Number of layers (1 = just the root).
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Add a node in the innermost layer.
    pub fn add(&mut self, op: OpKind, inputs: Vec<NodeId>) -> (u64, NodeId) {
        let layer = self.top();
        let id = layer.builder.add(op, inputs);
        (layer.epoch, id)
    }

    /// Push a nested layer with `state_params` pre-declared params.
    /// Returns the param node references (epoch, id).
    pub fn push_layer(&mut self, state_params: usize) -> Vec<(u64, NodeId)> {
        let epoch = self.next_epoch;
        self.next_epoch += 1;
        let mut builder = GraphBuilder::new();
        let params: Vec<(u64, NodeId)> = (0..state_params)
            .map(|i| (epoch, builder.add(OpKind::Param(i), vec![])))
            .collect();
        self.layers.push(GraphLayer {
            epoch,
            builder,
            state_params,
            captures: Vec::new(),
            capture_map: HashMap::new(),
        });
        params
    }

    /// Push a nested layer pre-seeded with the capture list of a sibling
    /// layer (so a `cond`'s two branches agree on param indices).
    pub fn push_layer_with_captures(
        &mut self,
        state_params: usize,
        seeded: &[(u64, NodeId)],
    ) -> Vec<(u64, NodeId)> {
        let params = self.push_layer(state_params);
        let layer = self.top();
        for (i, outer) in seeded.iter().enumerate() {
            let p = layer.builder.add(OpKind::Param(state_params + i), vec![]);
            layer.captures.push(*outer);
            layer.capture_map.insert(*outer, p);
        }
        params
    }

    /// Node ids of the innermost layer's capture params, in capture order
    /// (used to pass loop-invariant captures through a `While` body).
    pub fn capture_param_nodes(&mut self) -> Vec<NodeId> {
        let layer = self.top();
        let captures = layer.captures.clone();
        captures
            .iter()
            .map(|outer| layer.capture_map[outer])
            .collect()
    }

    /// Pop the innermost layer, returning its subgraph (with
    /// `num_params = state_params + captures`) and the outer references it
    /// captured.
    pub fn pop_layer(&mut self, outputs: Vec<NodeId>) -> (SubGraph, Vec<(u64, NodeId)>) {
        let layer = self.layers.pop().expect("pop_layer on root");
        let num_params = layer.state_params + layer.captures.len();
        (
            SubGraph {
                graph: layer.builder.finish(),
                num_params,
                outputs,
            },
            layer.captures,
        )
    }

    /// Resolve a node reference `(epoch, id)` into the innermost layer,
    /// inserting `Param` captures through every intermediate layer.
    ///
    /// # Errors
    ///
    /// Fails when the epoch does not belong to any live layer (a staged
    /// value escaped its staging context).
    pub fn resolve(&mut self, epoch: u64, id: NodeId) -> Result<NodeId> {
        let top = self.layers.len() - 1;
        if self.layers[top].epoch == epoch {
            return Ok(id);
        }
        let from = self
            .layers
            .iter()
            .position(|l| l.epoch == epoch)
            .ok_or_else(|| {
                RuntimeError::new(
                    "a staged tensor escaped its staging context (it belongs to a \
                     graph that is no longer being built)",
                )
            })?;
        let mut cur = (epoch, id);
        for i in from + 1..=top {
            let outer = cur;
            let layer = &mut self.layers[i];
            let local = match layer.capture_map.get(&outer) {
                Some(&p) => p,
                None => {
                    let idx = layer.state_params + layer.captures.len();
                    let p = layer.builder.add(OpKind::Param(idx), vec![]);
                    layer.captures.push(outer);
                    layer.capture_map.insert(outer, p);
                    p
                }
            };
            cur = (layer.epoch, local);
        }
        Ok(cur.1)
    }

    /// Finish staging: consume the root layer's builder.
    ///
    /// # Panics
    ///
    /// Panics if nested layers are still open (an operator bug).
    pub fn finish(mut self) -> autograph_graph::Graph {
        assert_eq!(self.layers.len(), 1, "unbalanced staging layers");
        self.layers.pop().expect("root layer").builder.finish()
    }
}

impl Default for GraphStage {
    fn default() -> Self {
        GraphStage::new()
    }
}

/// The Lantern staging context: staged function definitions plus
/// let-binding frames (assignments during staging become `(let ...)`
/// forms so shared subexpressions are computed once).
#[derive(Debug, Default)]
pub struct LanternStage {
    /// Completed `(def name (params) body)` forms.
    pub defs: Vec<SExpr>,
    /// Function identity (Rc pointer) → staged name; present while staging
    /// too, which is what lets recursive calls emit `(call f ...)` instead
    /// of unrolling (§8 Staging Functions and Recursion).
    pub staged: HashMap<usize, String>,
    binding_frames: Vec<Vec<(String, SExpr)>>,
    counter: u64,
}

impl LanternStage {
    /// Fresh staging context.
    pub fn new() -> LanternStage {
        LanternStage::default()
    }

    /// Generate a unique symbol with a prefix.
    pub fn fresh(&mut self, prefix: &str) -> String {
        self.counter += 1;
        format!("{prefix}_{}", self.counter)
    }

    /// Open a let-binding frame (entering a staged function body or a
    /// staged `if` branch).
    pub fn push_frame(&mut self) {
        self.binding_frames.push(Vec::new());
    }

    /// Record a let binding in the current frame.
    pub fn bind(&mut self, name: String, value: SExpr) {
        if let Some(frame) = self.binding_frames.last_mut() {
            frame.push((name, value));
        }
    }

    /// Whether a binding frame is open (i.e. we are staging a body).
    pub fn in_frame(&self) -> bool {
        !self.binding_frames.is_empty()
    }

    /// Close the current frame, wrapping `body` in its bindings
    /// (innermost binding closest to the body).
    pub fn pop_frame(&mut self, body: SExpr) -> SExpr {
        let frame = self.binding_frames.pop().unwrap_or_default();
        let mut out = body;
        for (name, value) in frame.into_iter().rev() {
            out = SExpr::list(vec![SExpr::sym("let"), SExpr::sym(name), value, out]);
        }
        out
    }

    /// Assemble the final `(program ...)` S-expression.
    pub fn program(&self, main: SExpr) -> SExpr {
        let mut items = vec![SExpr::sym("program")];
        items.extend(self.defs.iter().cloned());
        items.push(main);
        SExpr::list(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autograph_tensor::Tensor;

    #[test]
    fn resolve_same_layer_is_identity() {
        let mut s = GraphStage::new();
        let (e, id) = s.add(OpKind::Const(Tensor::scalar_f32(1.0)), vec![]);
        assert_eq!(s.resolve(e, id).unwrap(), id);
    }

    #[test]
    fn resolve_captures_through_layers() {
        let mut s = GraphStage::new();
        let (e0, c) = s.add(OpKind::Const(Tensor::scalar_f32(1.0)), vec![]);
        let params = s.push_layer(1);
        assert_eq!(params.len(), 1);
        // resolving the outer const creates Param(1) (after the state param)
        let inner = s.resolve(e0, c).unwrap();
        let again = s.resolve(e0, c).unwrap();
        assert_eq!(inner, again, "capture deduplicated");
        let (sub, caps) = s.pop_layer(vec![inner]);
        assert_eq!(sub.num_params, 2);
        assert_eq!(caps, vec![(e0, c)]);
    }

    #[test]
    fn resolve_through_two_layers() {
        let mut s = GraphStage::new();
        let (e0, c) = s.add(OpKind::Const(Tensor::scalar_f32(1.0)), vec![]);
        s.push_layer(0);
        s.push_layer(0);
        let innermost = s.resolve(e0, c).unwrap();
        let (sub2, caps2) = s.pop_layer(vec![innermost]);
        assert_eq!(sub2.num_params, 1);
        // the middle layer also captured it
        let (sub1, caps1) = s.pop_layer(vec![]);
        assert_eq!(sub1.num_params, 1);
        assert_eq!(caps1, vec![(e0, c)]);
        // caps2 refers to the middle layer's param node
        assert_eq!(caps2.len(), 1);
        assert_ne!(caps2[0].0, e0);
    }

    #[test]
    fn escaped_node_rejected() {
        let mut s = GraphStage::new();
        s.push_layer(0);
        let (einner, id) = s.add(OpKind::Const(Tensor::scalar_f32(1.0)), vec![]);
        let _ = s.pop_layer(vec![id]);
        assert!(s.resolve(einner, id).is_err());
    }

    #[test]
    fn seeded_captures_align() {
        let mut s = GraphStage::new();
        let (e0, a) = s.add(OpKind::Const(Tensor::scalar_f32(1.0)), vec![]);
        let (_, b) = s.add(OpKind::Const(Tensor::scalar_f32(2.0)), vec![]);
        // then-branch captures a
        s.push_layer(0);
        let ia = s.resolve(e0, a).unwrap();
        let (_then, caps) = s.pop_layer(vec![ia]);
        // else-branch pre-seeded with then's captures; captures b afterwards
        s.push_layer_with_captures(0, &caps);
        let ia2 = s.resolve(e0, a).unwrap();
        let ib = s.resolve(e0, b).unwrap();
        let (else_g, caps2) = s.pop_layer(vec![ia2, ib]);
        assert_eq!(caps2, vec![(e0, a), (e0, b)]);
        assert_eq!(else_g.num_params, 2);
    }

    #[test]
    fn lantern_let_frames() {
        let mut l = LanternStage::new();
        l.push_frame();
        l.bind("t_1".into(), SExpr::sym("x"));
        l.bind("t_2".into(), SExpr::sym("y"));
        let body = l.pop_frame(SExpr::sym("t_2"));
        assert_eq!(body.to_string(), "(let t_1 x (let t_2 y t_2))");
        assert!(!l.in_frame());
    }

    #[test]
    fn lantern_program_assembly() {
        let mut l = LanternStage::new();
        l.defs.push(SExpr::list(vec![
            SExpr::sym("def"),
            SExpr::sym("f"),
            SExpr::list(vec![SExpr::sym("x")]),
            SExpr::sym("x"),
        ]));
        let p = l.program(SExpr::list(vec![
            SExpr::sym("call"),
            SExpr::sym("f"),
            SExpr::Num(1.0),
        ]));
        assert_eq!(p.to_string(), "(program (def f (x) x) (call f 1))");
    }
}
