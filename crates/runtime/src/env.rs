//! Lexical environments.
//!
//! PyLite uses *lenient* lexical scoping: reads search the scope chain
//! outward; assignments always bind in the innermost scope. This differs
//! from CPython (which would raise `UnboundLocalError` when a name is read
//! before a local assignment) and matches what AutoGraph's generated
//! branch functions need: they read the enclosing function's variables and
//! shadow them on assignment. Real AutoGraph achieves the same effect by
//! renaming (`x_1 = x` in Listing 1); the semantics of converted code are
//! identical. The deviation is documented in DESIGN.md.

use crate::value::Value;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// A scope in the environment chain.
#[derive(Debug, Default)]
pub struct EnvData {
    vars: HashMap<String, Value>,
    parent: Option<Env>,
}

/// Shared handle to a scope.
#[derive(Debug, Clone, Default)]
pub struct Env(Rc<RefCell<EnvData>>);

impl Env {
    /// A fresh root scope.
    pub fn new() -> Env {
        Env::default()
    }

    /// A child scope of `self`.
    pub fn child(&self) -> Env {
        Env(Rc::new(RefCell::new(EnvData {
            vars: HashMap::new(),
            parent: Some(self.clone()),
        })))
    }

    /// Read a name, searching outward.
    pub fn get(&self, name: &str) -> Option<Value> {
        let data = self.0.borrow();
        match data.vars.get(name) {
            Some(v) => Some(v.clone()),
            None => data.parent.as_ref().and_then(|p| p.get(name)),
        }
    }

    /// Bind a name in this scope.
    pub fn set(&self, name: &str, value: Value) {
        self.0.borrow_mut().vars.insert(name.to_string(), value);
    }

    /// Remove a name from this scope (for `del`). Returns whether it was
    /// present here.
    pub fn remove(&self, name: &str) -> bool {
        self.0.borrow_mut().vars.remove(name).is_some()
    }

    /// Whether the name is bound anywhere in the chain.
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shadowing_and_fallthrough() {
        let root = Env::new();
        root.set("x", Value::Int(1));
        let inner = root.child();
        assert_eq!(inner.get("x").unwrap().as_int().unwrap(), 1);
        inner.set("x", Value::Int(2));
        assert_eq!(inner.get("x").unwrap().as_int().unwrap(), 2);
        // outer unchanged
        assert_eq!(root.get("x").unwrap().as_int().unwrap(), 1);
    }

    #[test]
    fn missing_name() {
        let env = Env::new();
        assert!(env.get("nope").is_none());
        assert!(!env.contains("nope"));
    }

    #[test]
    fn remove_only_local() {
        let root = Env::new();
        root.set("x", Value::Int(1));
        let inner = root.child();
        assert!(!inner.remove("x"));
        assert!(inner.contains("x"));
        assert!(root.remove("x"));
        assert!(!inner.contains("x"));
    }
}
