//! The `tf.*` API surface exposed to PyLite, dispatching on the active
//! backend: eager kernels, graph nodes, or (a subset) Lantern expressions.

use crate::interp::{Interp, Stage};
use crate::value::{Builtin, Value};
use crate::{Result, RuntimeError};
use autograph_graph::ir::OpKind;
use autograph_lantern::sexpr::SExpr;
use autograph_tensor::{DType, Tensor};
use std::rc::Rc;

type Args = Vec<Value>;
type Kwargs = Vec<(String, Value)>;

fn builtin(name: &str, f: impl Fn(&mut Interp, Args, Kwargs) -> Result<Value> + 'static) -> Value {
    Value::Builtin(Rc::new(Builtin {
        name: format!("tf.{name}"),
        func: Box::new(f),
    }))
}

fn kwarg(kwargs: &Kwargs, name: &str) -> Option<Value> {
    kwargs
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.clone())
}

fn arity(name: &str, args: &Args, n: usize) -> Result<()> {
    if args.len() != n {
        return Err(RuntimeError::new(format!(
            "tf.{name} expects {n} arguments, got {}",
            args.len()
        )));
    }
    Ok(())
}

/// Convert a (possibly nested-list) host value into a dense tensor, like
/// `tf.constant`.
pub fn value_to_tensor(v: &Value) -> Result<Tensor> {
    fn gather(
        v: &Value,
        out: &mut Vec<f64>,
        shape: &mut Vec<usize>,
        depth: usize,
        all_int: &mut bool,
    ) -> Result<()> {
        match v {
            Value::Int(i) => {
                out.push(*i as f64);
                Ok(())
            }
            Value::Float(f) => {
                *all_int = false;
                out.push(*f);
                Ok(())
            }
            Value::Bool(b) => {
                *all_int = false;
                out.push(*b as i64 as f64);
                Ok(())
            }
            Value::List(items) => {
                let items = items.borrow();
                if depth == shape.len() {
                    shape.push(items.len());
                } else if shape[depth] != items.len() {
                    return Err(RuntimeError::new("ragged nested list in tf.constant"));
                }
                for item in items.iter() {
                    gather(item, out, shape, depth + 1, all_int)?;
                }
                Ok(())
            }
            Value::Tuple(items) => {
                if depth == shape.len() {
                    shape.push(items.len());
                } else if shape[depth] != items.len() {
                    return Err(RuntimeError::new("ragged nested tuple in tf.constant"));
                }
                for item in items.iter() {
                    gather(item, out, shape, depth + 1, all_int)?;
                }
                Ok(())
            }
            other => Err(RuntimeError::new(format!(
                "cannot convert {} to a tensor",
                other.kind()
            ))),
        }
    }
    match v {
        Value::Tensor(t) => Ok(t.tensor().clone()),
        Value::Int(i) => Ok(Tensor::scalar_i64(*i)),
        Value::Float(f) => Ok(Tensor::scalar_f32(*f as f32)),
        Value::Bool(b) => Ok(Tensor::scalar_bool(*b)),
        _ => {
            let mut flat = Vec::new();
            let mut shape = Vec::new();
            let mut all_int = true;
            gather(v, &mut flat, &mut shape, 0, &mut all_int)?;
            if all_int {
                Ok(Tensor::from_vec_i64(
                    flat.iter().map(|&x| x as i64).collect(),
                    &shape,
                )?)
            } else {
                Ok(Tensor::from_vec(
                    flat.iter().map(|&x| x as f32).collect(),
                    &shape,
                )?)
            }
        }
    }
}

/// Dispatch a unary op across backends.
fn unary_op(
    interp: &mut Interp,
    v: Value,
    eager_name: &str,
    graph_op: OpKind,
    lantern_name: Option<&str>,
) -> Result<Value> {
    match &v {
        Value::GraphNode { .. } => interp.graph_op(graph_op, &[v]),
        Value::Lantern(e) => match lantern_name {
            Some(n) => Ok(interp.lantern_expr(n, vec![(**e).clone()])),
            None => Err(RuntimeError::new(format!(
                "tf op '{eager_name}' is not supported by the lantern backend"
            ))),
        },
        _ => {
            // if the interpreter is staging a graph, host values still stage
            if matches!(interp.stage, Stage::Graph(_)) {
                return interp.graph_op(graph_op, &[v]);
            }
            let t = interp.to_eager(&v)?;
            Ok(Value::Tensor(interp.eager.op(eager_name, &[&t])?))
        }
    }
}

fn binary_op(
    interp: &mut Interp,
    a: Value,
    b: Value,
    eager_name: &str,
    graph_op: OpKind,
    lantern_name: Option<&str>,
) -> Result<Value> {
    if matches!(a, Value::GraphNode { .. })
        || matches!(b, Value::GraphNode { .. })
        || matches!(interp.stage, Stage::Graph(_))
    {
        return interp.graph_op(graph_op, &[a, b]);
    }
    if matches!(a, Value::Lantern(_)) || matches!(b, Value::Lantern(_)) {
        return match lantern_name {
            Some(n) => {
                let x = interp.to_lantern_sexpr(&a)?;
                let y = interp.to_lantern_sexpr(&b)?;
                Ok(interp.lantern_expr(n, vec![x, y]))
            }
            None => Err(RuntimeError::new(format!(
                "tf op '{eager_name}' is not supported by the lantern backend"
            ))),
        };
    }
    let x = interp.to_eager(&a)?;
    let y = interp.to_eager(&b)?;
    Ok(Value::Tensor(interp.eager.op(eager_name, &[&x, &y])?))
}

fn axis_from(kwargs: &Kwargs, args: &Args, pos: usize) -> Result<Option<isize>> {
    let v = kwarg(kwargs, "axis").or_else(|| args.get(pos).cloned());
    match v {
        None | Some(Value::None) => Ok(None),
        Some(v) => Ok(Some(v.as_int()? as isize)),
    }
}

fn reduce_op(
    interp: &mut Interp,
    args: Args,
    kwargs: Kwargs,
    name: &'static str,
    mk: fn(Option<isize>) -> OpKind,
    lantern_full: Option<&str>,
) -> Result<Value> {
    let axis = axis_from(&kwargs, &args, 1)?;
    let v = args
        .into_iter()
        .next()
        .ok_or_else(|| RuntimeError::new(format!("tf.{name} needs an argument")))?;
    match &v {
        Value::GraphNode { .. } => interp.graph_op(mk(axis), &[v]),
        Value::Lantern(e) => match (axis, lantern_full) {
            (None, Some(n)) => Ok(interp.lantern_expr(n, vec![(**e).clone()])),
            _ => Err(RuntimeError::new(format!(
                "tf.{name} with axis is not supported by the lantern backend"
            ))),
        },
        _ => {
            if matches!(interp.stage, Stage::Graph(_)) {
                return interp.graph_op(mk(axis), &[v]);
            }
            // differentiable reductions route through the registry so the
            // gradient tape records them — full reductions as unary ops,
            // axis reductions with the axis as a scalar-i64 input; the
            // non-differentiable reductions use the kernel directly
            if axis.is_none() {
                let et = interp.to_eager(&v)?;
                return Ok(Value::Tensor(interp.eager.op(name, &[&et])?));
            }
            if let (Some(a), "reduce_sum" | "reduce_mean") = (axis, name) {
                let et = interp.to_eager(&v)?;
                let ax = autograph_eager::EagerTensor::from(Tensor::scalar_i64(a as i64));
                let axis_name = format!("{name}_axis");
                return Ok(Value::Tensor(interp.eager.op(&axis_name, &[&et, &ax])?));
            }
            let t = v.as_eager_tensor()?;
            let r = match mk(axis) {
                OpKind::ReduceSum(a) => t.reduce_sum(a)?,
                OpKind::ReduceMean(a) => t.reduce_mean(a)?,
                OpKind::ReduceMax(a) => t.reduce_max(a)?,
                OpKind::ReduceMin(a) => t.reduce_min(a)?,
                OpKind::ReduceAll(a) => t.reduce_all(a)?,
                OpKind::ReduceAny(a) => t.reduce_any(a)?,
                _ => unreachable!(),
            };
            Ok(Value::tensor(r))
        }
    }
}

/// Look up a `tf.*` attribute: a builtin function or a dtype constant.
pub fn lookup(name: &str) -> Option<Value> {
    Some(match name {
        // ---- dtypes -------------------------------------------------------
        "float32" | "float64" => Value::DType(DType::F32),
        "int32" | "int64" => Value::DType(DType::I64),
        "bool_" | "boolean" => Value::DType(DType::Bool),

        // ---- construction ---------------------------------------------------
        "constant" => builtin("constant", |interp, args, kwargs| {
            arity("constant", &args, 1).or_else(|_| {
                if kwarg(&kwargs, "dtype").is_some() && args.len() == 1 {
                    Ok(())
                } else {
                    Err(RuntimeError::new("tf.constant takes one value"))
                }
            })?;
            let mut t = value_to_tensor(&args[0])?;
            if let Some(Value::DType(d)) = kwarg(&kwargs, "dtype") {
                t = t.cast(d);
            }
            match &interp.stage {
                Stage::Graph(_) => interp.graph_op(OpKind::Const(t), &[]),
                _ => Ok(Value::tensor(t)),
            }
        }),
        "zeros" => builtin("zeros", |interp, args, _| {
            let shape = shape_arg(&args, 0)?;
            let t = Tensor::zeros(DType::F32, &shape);
            match &interp.stage {
                Stage::Graph(_) => interp.graph_op(OpKind::Const(t), &[]),
                _ => Ok(Value::tensor(t)),
            }
        }),
        "ones" => builtin("ones", |interp, args, _| {
            let shape = shape_arg(&args, 0)?;
            let t = Tensor::ones(DType::F32, &shape);
            match &interp.stage {
                Stage::Graph(_) => interp.graph_op(OpKind::Const(t), &[]),
                _ => Ok(Value::tensor(t)),
            }
        }),
        "random_normal" => builtin("random_normal", |interp, args, kwargs| {
            let shape = shape_arg(&args, 0)?;
            let stddev = match kwarg(&kwargs, "stddev") {
                Some(v) => v.as_float()? as f32,
                None => 1.0,
            };
            // sampled at trace time; staged graphs embed the sample
            let t = interp.rng.normal_tensor(&shape, stddev);
            match &interp.stage {
                Stage::Graph(_) => interp.graph_op(OpKind::Const(t), &[]),
                _ => Ok(Value::tensor(t)),
            }
        }),
        "range" => builtin("range", |interp, args, _| {
            arity("range", &args, 1)?;
            let v = args.into_iter().next().expect("arity checked");
            match &v {
                Value::GraphNode { .. } => interp.graph_op(OpKind::Range, &[v]),
                _ if matches!(interp.stage, Stage::Graph(_)) => {
                    interp.graph_op(OpKind::Range, &[v])
                }
                _ => Ok(Value::tensor(Tensor::range_i64(v.as_int()?))),
            }
        }),

        // ---- unary math ------------------------------------------------------
        "tanh" => builtin("tanh", |i, a, _| {
            unary_op(i, one(a)?, "tanh", OpKind::Tanh, Some("tanh"))
        }),
        "sigmoid" => builtin("sigmoid", |i, a, _| {
            unary_op(i, one(a)?, "sigmoid", OpKind::Sigmoid, Some("sigmoid"))
        }),
        "relu" => builtin("relu", |i, a, _| {
            unary_op(i, one(a)?, "relu", OpKind::Relu, Some("relu"))
        }),
        "exp" => builtin("exp", |i, a, _| {
            unary_op(i, one(a)?, "exp", OpKind::Exp, Some("exp"))
        }),
        "log" => builtin("log", |i, a, _| {
            unary_op(i, one(a)?, "log", OpKind::Log, Some("log"))
        }),
        "sqrt" => builtin("sqrt", |i, a, _| {
            unary_op(i, one(a)?, "sqrt", OpKind::Sqrt, Some("sqrt"))
        }),
        "square" => builtin("square", |i, a, _| {
            unary_op(i, one(a)?, "square", OpKind::Square, Some("square"))
        }),
        "abs" => builtin("abs", |i, a, _| {
            unary_op(i, one(a)?, "abs", OpKind::Abs, None)
        }),
        "neg" => builtin("neg", |i, a, _| {
            unary_op(i, one(a)?, "neg", OpKind::Neg, Some("neg"))
        }),
        "softmax" => builtin("softmax", |i, a, _| {
            unary_op(i, one(a)?, "softmax", OpKind::Softmax, None)
        }),
        "log_softmax" => builtin("log_softmax", |i, a, _| {
            unary_op(i, one(a)?, "log_softmax", OpKind::LogSoftmax, None)
        }),
        "stop_gradient" => builtin("stop_gradient", |i, a, _| {
            unary_op(i, one(a)?, "identity", OpKind::StopGradient, None)
        }),
        "identity" => builtin("identity", |i, a, _| {
            unary_op(i, one(a)?, "identity", OpKind::Identity, None)
        }),

        // ---- binary ------------------------------------------------------------
        "add" => builtin("add", |i, a, _| {
            let (x, y) = two(a)?;
            binary_op(i, x, y, "add", OpKind::Add, Some("add"))
        }),
        "subtract" => builtin("subtract", |i, a, _| {
            let (x, y) = two(a)?;
            binary_op(i, x, y, "sub", OpKind::Sub, Some("sub"))
        }),
        "multiply" => builtin("multiply", |i, a, _| {
            let (x, y) = two(a)?;
            binary_op(i, x, y, "mul", OpKind::Mul, Some("mul"))
        }),
        "divide" => builtin("divide", |i, a, _| {
            let (x, y) = two(a)?;
            binary_op(i, x, y, "div", OpKind::Div, Some("div"))
        }),
        "matmul" => builtin("matmul", |i, a, _| {
            let (x, y) = two(a)?;
            binary_op(i, x, y, "matmul", OpKind::MatMul, Some("matmul"))
        }),
        "maximum" => builtin("maximum", |i, a, _| {
            let (x, y) = two(a)?;
            binary_op(i, x, y, "maximum", OpKind::Maximum, None)
        }),
        "minimum" => builtin("minimum", |i, a, _| {
            let (x, y) = two(a)?;
            binary_op(i, x, y, "minimum", OpKind::Minimum, None)
        }),
        "equal" => builtin("equal", |i, a, _| {
            let (x, y) = two(a)?;
            i.compare(autograph_pylang::ast::CmpOp::Eq, x, y)
        }),
        "less" => builtin("less", |i, a, _| {
            let (x, y) = two(a)?;
            i.compare(autograph_pylang::ast::CmpOp::Lt, x, y)
        }),
        "greater" => builtin("greater", |i, a, _| {
            let (x, y) = two(a)?;
            i.compare(autograph_pylang::ast::CmpOp::Gt, x, y)
        }),
        "logical_and" => builtin("logical_and", |i, a, _| {
            let (x, y) = two(a)?;
            binary_op(i, x, y, "logical_and", OpKind::LogicalAnd, None)
        }),
        "logical_or" => builtin("logical_or", |i, a, _| {
            let (x, y) = two(a)?;
            binary_op(i, x, y, "logical_or", OpKind::LogicalOr, None)
        }),
        "logical_not" => builtin("logical_not", |i, a, _| {
            unary_op(i, one(a)?, "logical_not", OpKind::LogicalNot, None)
        }),
        "pow" => builtin("pow", |i, a, _| {
            let (x, y) = two(a)?;
            binary_op(i, x, y, "pow", OpKind::Pow, None)
        }),

        // ---- reductions -----------------------------------------------------
        "reduce_sum" => builtin("reduce_sum", |i, a, k| {
            reduce_op(i, a, k, "reduce_sum", OpKind::ReduceSum, Some("reduce_sum"))
        }),
        "reduce_mean" => builtin("reduce_mean", |i, a, k| {
            reduce_op(
                i,
                a,
                k,
                "reduce_mean",
                OpKind::ReduceMean,
                Some("reduce_mean"),
            )
        }),
        "reduce_max" => builtin("reduce_max", |i, a, k| {
            reduce_op(i, a, k, "reduce_max", OpKind::ReduceMax, None)
        }),
        "reduce_min" => builtin("reduce_min", |i, a, k| {
            reduce_op(i, a, k, "reduce_min", OpKind::ReduceMin, None)
        }),
        "reduce_all" => builtin("reduce_all", |i, a, k| {
            reduce_op(i, a, k, "reduce_all", OpKind::ReduceAll, None)
        }),
        "reduce_any" => builtin("reduce_any", |i, a, k| {
            reduce_op(i, a, k, "reduce_any", OpKind::ReduceAny, None)
        }),
        "argmax" => builtin("argmax", |i, a, k| {
            let axis = axis_from(&k, &a, 1)?.unwrap_or(-1);
            let v = one_of(a, 0)?;
            match &v {
                Value::GraphNode { .. } => i.graph_op(OpKind::ArgMax(axis), &[v]),
                _ if matches!(i.stage, Stage::Graph(_)) => i.graph_op(OpKind::ArgMax(axis), &[v]),
                _ => Ok(Value::tensor(v.as_eager_tensor()?.argmax(axis)?)),
            }
        }),

        // ---- shape / indexing --------------------------------------------------
        "shape" => builtin("shape", |i, a, _| {
            let v = one(a)?;
            match &v {
                Value::GraphNode { .. } => i.graph_op(OpKind::Shape, &[v]),
                _ => {
                    let t = v.as_eager_tensor()?;
                    let dims: Vec<i64> = t.shape().iter().map(|&d| d as i64).collect();
                    let n = dims.len();
                    Ok(Value::tensor(Tensor::from_vec_i64(dims, &[n])?))
                }
            }
        }),
        "transpose" => builtin("transpose", |i, a, _| {
            if a.len() != 2 {
                return Err(RuntimeError::new("tf.transpose(x, perm)"));
            }
            let perm: Vec<usize> = match &a[1] {
                Value::Tuple(items) => items
                    .iter()
                    .map(|v| v.as_int().map(|x| x as usize))
                    .collect::<Result<_>>()?,
                Value::List(items) => items
                    .borrow()
                    .iter()
                    .map(|v| v.as_int().map(|x| x as usize))
                    .collect::<Result<_>>()?,
                other => {
                    return Err(RuntimeError::new(format!(
                        "perm must be a tuple, got {}",
                        other.kind()
                    )))
                }
            };
            let v = a.into_iter().next().expect("len checked");
            match &v {
                Value::GraphNode { .. } => i.graph_op(OpKind::Transpose(perm), &[v]),
                _ if matches!(i.stage, Stage::Graph(_)) => {
                    i.graph_op(OpKind::Transpose(perm), &[v])
                }
                _ => Ok(Value::tensor(v.as_eager_tensor()?.transpose(&perm)?)),
            }
        }),
        "reshape" => builtin("reshape", |i, a, _| {
            if a.len() != 2 {
                return Err(RuntimeError::new("tf.reshape(x, shape)"));
            }
            let shape = shape_arg(&a, 1)?;
            let v = a.into_iter().next().expect("len checked");
            match &v {
                Value::GraphNode { .. } => i.graph_op(OpKind::Reshape(shape), &[v]),
                _ => Ok(Value::tensor(v.as_eager_tensor()?.reshape(&shape)?)),
            }
        }),
        "expand_dims" => builtin("expand_dims", |i, a, _| {
            let (x, ax) = two(a)?;
            let ax = ax.as_int()? as isize;
            match &x {
                Value::GraphNode { .. } => i.graph_op(OpKind::ExpandDims(ax), &[x]),
                _ => Ok(Value::tensor(x.as_eager_tensor()?.expand_dims(ax)?)),
            }
        }),
        "squeeze" => builtin("squeeze", |i, a, _| {
            let ax = a
                .get(1)
                .map(|v| v.as_int())
                .transpose()?
                .map(|x| x as isize);
            let x = one_of(a, 0)?;
            match &x {
                Value::GraphNode { .. } => i.graph_op(OpKind::Squeeze(ax), &[x]),
                _ => Ok(Value::tensor(x.as_eager_tensor()?.squeeze(ax)?)),
            }
        }),
        "cast" => builtin("cast", |i, a, _| {
            let (x, d) = two(a)?;
            let d = match d {
                Value::DType(d) => d,
                other => {
                    return Err(RuntimeError::new(format!(
                        "tf.cast dtype must be a dtype, got {}",
                        other.kind()
                    )))
                }
            };
            match &x {
                Value::GraphNode { .. } => i.graph_op(OpKind::Cast(d), &[x]),
                _ => Ok(Value::tensor(x.as_eager_tensor()?.cast(d))),
            }
        }),
        "where" => builtin("where", |i, a, _| {
            if a.len() != 3 {
                return Err(RuntimeError::new("tf.where(cond, a, b)"));
            }
            let mut it = a.into_iter();
            let (c, x, y) = (
                it.next().expect("len"),
                it.next().expect("len"),
                it.next().expect("len"),
            );
            if c.is_staged() || x.is_staged() || y.is_staged() || matches!(i.stage, Stage::Graph(_))
            {
                return i.graph_op(OpKind::Select, &[c, x, y]);
            }
            let ct = i.to_eager(&c)?;
            let xt = i.to_eager(&x)?;
            let yt = i.to_eager(&y)?;
            Ok(Value::Tensor(i.eager.op("select", &[&ct, &xt, &yt])?))
        }),
        "gather" => builtin("gather", |i, a, _| {
            let (x, idx) = two(a)?;
            binary_op(i, x, idx, "gather", OpKind::Gather, None)
        }),
        "one_hot" => builtin("one_hot", |i, a, _| {
            let (x, depth) = two(a)?;
            let depth = depth.as_int()? as usize;
            match &x {
                Value::GraphNode { .. } => i.graph_op(OpKind::OneHot(depth), &[x]),
                _ => Ok(Value::tensor(x.as_eager_tensor()?.one_hot(depth)?)),
            }
        }),
        "concat" => builtin("concat", |i, a, _| {
            if a.len() != 2 {
                return Err(RuntimeError::new("tf.concat(values, axis)"));
            }
            let axis = a[1].as_int()? as isize;
            let items: Vec<Value> = match &a[0] {
                Value::List(l) => l.borrow().clone(),
                Value::Tuple(t) => (**t).clone(),
                other => {
                    return Err(RuntimeError::new(format!(
                        "tf.concat values must be a list, got {}",
                        other.kind()
                    )))
                }
            };
            if items.iter().any(Value::is_staged) || matches!(i.stage, Stage::Graph(_)) {
                if items.iter().any(|v| matches!(v, Value::Lantern(_))) {
                    let name = match axis {
                        0 => "concat0",
                        1 => "concat1",
                        _ => return Err(RuntimeError::new("lantern concat supports axes 0 and 1")),
                    };
                    let sexprs: Vec<SExpr> = items
                        .iter()
                        .map(|v| i.to_lantern_sexpr(v))
                        .collect::<Result<_>>()?;
                    return Ok(i.lantern_expr(name, sexprs));
                }
                return i.graph_op(OpKind::Concat(axis), &items);
            }
            // dispatch through the registry so the gradient tape records
            let ets: Vec<autograph_eager::EagerTensor> =
                items.iter().map(|v| i.to_eager(v)).collect::<Result<_>>()?;
            let refs: Vec<&autograph_eager::EagerTensor> = ets.iter().collect();
            match axis {
                0 => Ok(Value::Tensor(i.eager.op("concat0", &refs)?)),
                1 => Ok(Value::Tensor(i.eager.op("concat1", &refs)?)),
                _ => {
                    let ts: Vec<Tensor> = items
                        .iter()
                        .map(|v| v.as_eager_tensor())
                        .collect::<Result<_>>()?;
                    Ok(Value::tensor(Tensor::concat(&ts, axis)?))
                }
            }
        }),
        "stack" => builtin("stack", |i, a, _| {
            let items: Vec<Value> = match &a[0] {
                Value::List(l) => l.borrow().clone(),
                Value::Tuple(t) => (**t).clone(),
                other => {
                    return Err(RuntimeError::new(format!(
                        "tf.stack values must be a list, got {}",
                        other.kind()
                    )))
                }
            };
            if items.iter().any(Value::is_staged) || matches!(i.stage, Stage::Graph(_)) {
                return i.graph_op(OpKind::StackOp, &items);
            }
            let ts: Vec<Tensor> = items
                .iter()
                .map(|v| v.as_eager_tensor())
                .collect::<Result<_>>()?;
            Ok(Value::tensor(Tensor::stack(&ts)?))
        }),
        "top_k" => builtin("top_k", |i, a, _| {
            let (x, k) = two(a)?;
            let k = k.as_int()? as usize;
            match &x {
                Value::GraphNode { .. } => {
                    let pair = i.graph_op(OpKind::TopK(k), &[x])?;
                    let vals = i.graph_op(OpKind::TupleGet(0), std::slice::from_ref(&pair))?;
                    let idxs = i.graph_op(OpKind::TupleGet(1), &[pair])?;
                    Ok(Value::tuple(vec![vals, idxs]))
                }
                _ => {
                    let (v, idx) = x.as_eager_tensor()?.top_k(k)?;
                    Ok(Value::tuple(vec![Value::tensor(v), Value::tensor(idx)]))
                }
            }
        }),

        // ---- losses --------------------------------------------------------------
        "softmax_cross_entropy" => builtin("softmax_cross_entropy", |i, a, _| {
            let (logits, labels) = two(a)?;
            binary_op(
                i,
                logits,
                labels,
                "softmax_cross_entropy",
                OpKind::SoftmaxCrossEntropy,
                Some("softmax_xent"),
            )
        }),

        // ---- gradients / control flow / effects ------------------------------------
        "gradients" => builtin("gradients", |i, a, _| {
            let (loss, wrt) = two(a)?;
            let wrt_items: Vec<Value> = match &wrt {
                Value::List(l) => l.borrow().clone(),
                Value::Tuple(t) => (**t).clone(),
                single => vec![single.clone()],
            };
            let loss_node = i.to_graph_node(&loss)?;
            let mut wrt_nodes = Vec::with_capacity(wrt_items.len());
            for w in &wrt_items {
                wrt_nodes.push(i.to_graph_node(w)?);
            }
            let stage =
                match &mut i.stage {
                    Stage::Graph(g) => g,
                    _ => return Err(RuntimeError::new(
                        "tf.gradients requires graph staging (use the eager tape in eager mode)",
                    )),
                };
            let epoch = stage.top_epoch();
            let grads =
                autograph_graph::grad::gradients(&mut stage.top().builder, loss_node, &wrt_nodes)?;
            Ok(Value::list(
                grads
                    .into_iter()
                    .map(|id| Value::GraphNode { epoch, id })
                    .collect(),
            ))
        }),
        // ---- eager autodiff (the GradientTape analog; eager mode only) --------
        "tape_begin" => builtin("tape_begin", |i, _, _| {
            i.eager.start_tape();
            Ok(Value::None)
        }),
        "watch" => builtin("watch", |i, a, _| {
            let v = one(a)?;
            let t = i.to_eager(&v)?;
            Ok(Value::Tensor(i.eager.watch(&t)?))
        }),
        "grad" => builtin("grad", |i, a, _| {
            let (loss, wrt) = two(a)?;
            let loss_t = match &loss {
                Value::Tensor(t) => t.clone(),
                other => {
                    return Err(RuntimeError::new(format!(
                        "tf.grad loss must be an eager tensor, got {}",
                        other.kind()
                    )))
                }
            };
            let wrt_items: Vec<Value> = match &wrt {
                Value::List(l) => l.borrow().clone(),
                Value::Tuple(t) => (**t).clone(),
                single => vec![single.clone()],
            };
            let wrt_tensors: Vec<autograph_eager::EagerTensor> = wrt_items
                .iter()
                .map(|v| match v {
                    Value::Tensor(t) => Ok(t.clone()),
                    other => Err(RuntimeError::new(format!(
                        "tf.grad parameters must be watched tensors, got {}",
                        other.kind()
                    ))),
                })
                .collect::<Result<_>>()?;
            let refs: Vec<&autograph_eager::EagerTensor> = wrt_tensors.iter().collect();
            let grads = i.eager.gradient(&loss_t, &refs)?;
            Ok(Value::list(grads.into_iter().map(Value::tensor).collect()))
        }),
        "cond" => builtin("cond", |i, a, _| {
            if a.len() != 3 {
                return Err(RuntimeError::new("tf.cond(pred, true_fn, false_fn)"));
            }
            let mut it = a.into_iter();
            let pred = it.next().expect("len");
            let tf_ = it.next().expect("len");
            let ff = it.next().expect("len");
            crate::operators::if_stmt_impl(i, pred, tf_, ff)
        }),
        "while_loop" => builtin("while_loop", |i, a, _| {
            if a.len() != 3 {
                return Err(RuntimeError::new(
                    "tf.while_loop(cond_fn, body_fn, loop_vars)",
                ));
            }
            let mut it = a.into_iter();
            let cond = it.next().expect("len");
            let body = it.next().expect("len");
            let vars = it.next().expect("len");
            crate::operators::while_stmt_impl(i, cond, body, vars)
        }),
        "print" => builtin("print", |i, a, _| {
            let v = one(a)?;
            match &v {
                Value::GraphNode { .. } => i.graph_op(OpKind::Print("tf.print: ".into()), &[v]),
                other => {
                    let line = other.render();
                    // tests/profilers capture eager prints via the obs sink
                    if !autograph_obs::emit_print(&line) {
                        println!("{line}");
                    }
                    Ok(Value::None)
                }
            }
        }),

        _ => return None,
    })
}

fn one(mut args: Args) -> Result<Value> {
    if args.len() != 1 {
        return Err(RuntimeError::new(format!(
            "expected 1 argument, got {}",
            args.len()
        )));
    }
    Ok(args.remove(0))
}

fn one_of(mut args: Args, i: usize) -> Result<Value> {
    if args.len() <= i {
        return Err(RuntimeError::new("missing argument"));
    }
    Ok(args.remove(i))
}

fn two(mut args: Args) -> Result<(Value, Value)> {
    if args.len() != 2 {
        return Err(RuntimeError::new(format!(
            "expected 2 arguments, got {}",
            args.len()
        )));
    }
    let b = args.pop().expect("len checked");
    let a = args.pop().expect("len checked");
    Ok((a, b))
}

fn shape_arg(args: &Args, i: usize) -> Result<Vec<usize>> {
    let v = args
        .get(i)
        .ok_or_else(|| RuntimeError::new("missing shape argument"))?;
    let to_dim = |v: &Value| -> Result<usize> {
        let i = v.as_int()?;
        if i == -1 {
            Ok(usize::MAX) // inferred dimension
        } else if i < 0 {
            Err(RuntimeError::new("negative dimension in shape"))
        } else {
            Ok(i as usize)
        }
    };
    match v {
        Value::Tuple(items) => items.iter().map(to_dim).collect(),
        Value::List(items) => items.borrow().iter().map(to_dim).collect(),
        Value::Int(_) => Ok(vec![to_dim(v)?]),
        other => Err(RuntimeError::new(format!(
            "shape must be a tuple/list, got {}",
            other.kind()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_names() {
        assert!(lookup("matmul").is_some());
        assert!(lookup("reduce_sum").is_some());
        assert!(matches!(lookup("float32"), Some(Value::DType(DType::F32))));
        assert!(lookup("nonexistent_op").is_none());
    }

    #[test]
    fn value_to_tensor_nested() {
        let v = Value::list(vec![
            Value::list(vec![Value::Int(1), Value::Int(2)]),
            Value::list(vec![Value::Int(3), Value::Int(4)]),
        ]);
        let t = value_to_tensor(&v).unwrap();
        assert_eq!(t.shape(), &[2, 2]);
        assert_eq!(t.dtype(), DType::I64);
        // mixed float promotes
        let v2 = Value::list(vec![Value::Int(1), Value::Float(2.5)]);
        assert_eq!(value_to_tensor(&v2).unwrap().dtype(), DType::F32);
        // ragged rejected
        let bad = Value::list(vec![
            Value::list(vec![Value::Int(1)]),
            Value::list(vec![Value::Int(1), Value::Int(2)]),
        ]);
        assert!(value_to_tensor(&bad).is_err());
    }

    #[test]
    fn shape_arg_forms() {
        let args = vec![Value::tuple(vec![Value::Int(2), Value::Int(3)])];
        assert_eq!(shape_arg(&args, 0).unwrap(), vec![2, 3]);
        let inferred = vec![Value::tuple(vec![Value::Int(-1), Value::Int(3)])];
        assert_eq!(shape_arg(&inferred, 0).unwrap(), vec![usize::MAX, 3]);
        let bad = vec![Value::str("x")];
        assert!(shape_arg(&bad, 0).is_err());
    }
}
