//! The top-level façade: load PyLite source (optionally converting it),
//! call functions eagerly, or stage them into a graph / Lantern program.

use crate::env::Env;
use crate::interp::{Interp, Stage};
use crate::operators;
use crate::value::{ModuleKind, PyFunction, Value};
use crate::{Result, RuntimeError};
use autograph_graph::ir::NodeId;
use autograph_graph::Graph;
use autograph_lantern::Program;
use autograph_obs as obs;
use autograph_tensor::Tensor;
use std::rc::Rc;

/// Build the global environment: the `tf` and `ag` modules plus Python
/// built-ins (which route through the same `ag.*` implementations the
/// calls pass would substitute).
pub fn global_env() -> Env {
    let env = Env::new();
    env.set("tf", Value::Module(ModuleKind::Tf));
    env.set("ag", Value::Module(ModuleKind::Ag));
    for (py, ag) in [
        ("print", "print_"),
        ("len", "len_"),
        ("range", "range_"),
        ("int", "int_"),
        ("float", "float_"),
        ("abs", "abs_"),
        ("min", "min_"),
        ("max", "max_"),
    ] {
        if let Some(b) = operators::lookup(ag) {
            env.set(py, b);
        }
    }
    env
}

/// An argument to [`Runtime::stage_to_graph`].
#[derive(Debug, Clone)]
pub enum GraphArg {
    /// A named feed point (becomes a `Placeholder` node).
    Placeholder(String),
    /// A concrete value passed through unchanged — Python values stay
    /// Python values (hyperparameter "macro-programming"); tensors embed
    /// as constants when ops touch them.
    Value(Value),
}

/// An argument to [`Runtime::stage_to_lantern`].
#[derive(Debug, Clone)]
pub enum LanternArg {
    /// A named external input (`(extern name)`).
    Extern(String),
    /// A named trainable parameter (`(param name)`).
    Param(String),
    /// A concrete host value passed through unchanged.
    Value(Value),
}

/// The result of staging a function into the dataflow graph.
#[derive(Debug)]
pub struct StagedGraph {
    /// The staged graph.
    pub graph: Graph,
    /// Output nodes (one per returned value; tuples flatten).
    pub outputs: Vec<NodeId>,
    /// Whether the function returned a tuple.
    pub tuple_result: bool,
}

/// Loads modules and drives execution/staging — the embodiment of the
/// paper's single-function API (`@ag.convert()` + calling the function).
pub struct Runtime {
    /// The interpreter.
    pub interp: Interp,
    /// Module-global environment.
    pub globals: Env,
}

impl Runtime {
    /// Load PyLite source. With `convert = true` the module is run through
    /// the full conversion pipeline first (every function becomes an
    /// AutoGraph artifact); with `false` it runs with native Python
    /// semantics (the Eager baseline).
    ///
    /// # Errors
    ///
    /// Returns parse and conversion errors (located in the original
    /// source) and errors from executing top-level statements.
    pub fn load(source: &str, convert: bool) -> Result<Runtime> {
        if convert {
            return Runtime::load_with(source, &autograph_transforms::ConversionConfig::default());
        }
        let module = autograph_pylang::parse_module(source)?;
        let mut interp = Interp::new();
        interp.source = Some(Rc::from(source));
        let globals = global_env();
        interp.exec_block(&module.body, &globals)?;
        Ok(Runtime { interp, globals })
    }

    /// Load PyLite source through the conversion pipeline with explicit
    /// options. With
    /// [`ConversionPolicy::FallbackToEager`](autograph_transforms::ConversionPolicy)
    /// unsupported functions are kept unconverted (they run op-by-op in
    /// the eager interpreter) and reported via [`Runtime::warnings`]
    /// instead of failing the load.
    ///
    /// # Errors
    ///
    /// Returns parse errors, conversion errors (under the strict policy),
    /// and errors from executing top-level statements.
    pub fn load_with(
        source: &str,
        config: &autograph_transforms::ConversionConfig,
    ) -> Result<Runtime> {
        let module = autograph_pylang::parse_module(source)?;
        let converted = {
            let _s = obs::span("staging", "convert");
            autograph_transforms::convert_module(module, config)?
        };
        let mut interp = Interp::new();
        interp.config = config.clone();
        interp.source = Some(Rc::from(source));
        // warnings gain the offending construct's text now that the
        // original source is in hand
        interp.conversion_warnings = converted
            .warnings
            .into_iter()
            .map(|w| w.with_source(source))
            .collect();
        let globals = global_env();
        interp.exec_block(&converted.module.body, &globals)?;
        Ok(Runtime { interp, globals })
    }

    /// Degradations recorded so far: load-time fallbacks first, then any
    /// functions `ag.converted_call` failed to convert at runtime.
    pub fn warnings(&self) -> &[autograph_transforms::ConversionWarning] {
        &self.interp.conversion_warnings
    }

    /// Fetch a loaded function by name.
    ///
    /// # Errors
    ///
    /// Fails when the name is unbound or not a function.
    pub fn function(&self, name: &str) -> Result<Rc<PyFunction>> {
        match self.globals.get(name) {
            Some(Value::Function(f)) => Ok(f),
            Some(other) => Err(RuntimeError::new(format!(
                "'{name}' is a {}, not a function",
                other.kind()
            ))),
            None => Err(RuntimeError::new(format!(
                "function '{name}' is not defined"
            ))),
        }
    }

    /// Call a loaded function with eager semantics.
    ///
    /// # Errors
    ///
    /// Propagates interpreter errors.
    pub fn call(&mut self, name: &str, args: Vec<Value>) -> Result<Value> {
        let f = self.function(name)?;
        self.interp.stage = Stage::Eager;
        let result = self.interp.call_function(&f, args, vec![])?;
        // An "undefined" reification escaping to the caller means a
        // variable was read on a path that never assigned it — raise here,
        // matching Python's NameError-at-use semantics (§7.2).
        fn check_defined(v: &Value) -> Result<()> {
            match v {
                Value::Undefined(name) => Err(RuntimeError::new(format!(
                    "variable '{name}' may be used before assignment"
                ))),
                Value::Tuple(items) => items.iter().try_for_each(check_defined),
                _ => Ok(()),
            }
        }
        check_defined(&result)?;
        Ok(result)
    }

    /// Read a module-global variable.
    pub fn global(&self, name: &str) -> Option<Value> {
        self.globals.get(name)
    }

    /// Stage a function into a dataflow graph: run it once with symbolic
    /// arguments, recording every tensor op (and staged control flow) into
    /// the IR.
    ///
    /// # Errors
    ///
    /// Returns staging errors (unconverted data-dependent control flow,
    /// branch arity mismatches, …) located at the user's source.
    pub fn stage_to_graph(&mut self, name: &str, args: Vec<GraphArg>) -> Result<StagedGraph> {
        let _s = obs::span("staging", "stage");
        let f = self.function(name)?;
        let f = operators::ensure_converted(&mut self.interp, &f)?;
        self.interp.stage = Stage::Graph(crate::backend::GraphStage::new());

        // Placeholders stage before any user statement runs; attribute
        // them to the function's `def` line so every executed node
        // resolves to a source span.
        if !f.def_span.is_synthetic() {
            self.interp.current_span = f.def_span;
        }

        let mut arg_values = Vec::with_capacity(args.len());
        for a in args {
            let v = match a {
                GraphArg::Placeholder(n) => self
                    .interp
                    .graph_op(autograph_graph::ir::OpKind::Placeholder { name: n }, &[])?,
                GraphArg::Value(v) => v,
            };
            arg_values.push(v);
        }

        let result = self.interp.call_function(&f, arg_values, vec![]);
        let result = match result {
            Ok(r) => r,
            Err(e) => {
                self.interp.stage = Stage::Eager;
                return Err(e);
            }
        };
        let (tuple_result, flat): (bool, Vec<Value>) = match &result {
            Value::Tuple(items) => (true, (**items).clone()),
            Value::None => (false, vec![]),
            single => (false, vec![single.clone()]),
        };
        let mut outputs = Vec::with_capacity(flat.len());
        for v in &flat {
            match self.interp.to_graph_node(v) {
                Ok(n) => outputs.push(n),
                Err(e) => {
                    self.interp.stage = Stage::Eager;
                    return Err(e);
                }
            }
        }
        let stage = std::mem::replace(&mut self.interp.stage, Stage::Eager);
        let graph = match stage {
            Stage::Graph(g) => g.finish(),
            _ => unreachable!("stage set above"),
        };
        Ok(StagedGraph {
            graph,
            outputs,
            tuple_result,
        })
    }

    /// Stage a function into a Lantern program (§8). Returns the compiled
    /// program; run it with [`autograph_lantern::Engine`].
    ///
    /// # Errors
    ///
    /// Returns staging/compilation errors.
    pub fn stage_to_lantern(&mut self, name: &str, args: Vec<LanternArg>) -> Result<Program> {
        let _s = obs::span("staging", "stage");
        let f = self.function(name)?;
        self.interp.stage = Stage::Lantern(crate::backend::LanternStage::new());

        let arg_values: Vec<Value> = args
            .into_iter()
            .map(|a| match a {
                LanternArg::Extern(n) => {
                    Value::Lantern(Rc::new(autograph_lantern::sexpr::SExpr::list(vec![
                        autograph_lantern::sexpr::SExpr::sym("extern"),
                        autograph_lantern::sexpr::SExpr::sym(n),
                    ])))
                }
                LanternArg::Param(n) => {
                    Value::Lantern(Rc::new(autograph_lantern::sexpr::SExpr::list(vec![
                        autograph_lantern::sexpr::SExpr::sym("param"),
                        autograph_lantern::sexpr::SExpr::sym(n),
                    ])))
                }
                LanternArg::Value(v) => v,
            })
            .collect();

        let result = operators::converted_call_impl(
            &mut self.interp,
            Value::Function(f),
            arg_values,
            vec![],
        );
        let main = match result.and_then(|r| self.interp.to_lantern_sexpr(&r)) {
            Ok(s) => s,
            Err(e) => {
                self.interp.stage = Stage::Eager;
                return Err(e);
            }
        };
        let stage = std::mem::replace(&mut self.interp.stage, Stage::Eager);
        let program_sexpr = match stage {
            Stage::Lantern(s) => s.program(main),
            _ => unreachable!(),
        };
        Ok(Program::compile(&program_sexpr)?)
    }
}

/// Helper: wrap a dense tensor as a runtime value.
pub fn tensor_value(t: Tensor) -> Value {
    Value::tensor(t)
}

/// A staged-and-compiled callable — the `tf.function` analog: the
/// function is converted and staged once (optionally graph-optimized),
/// then called repeatedly with tensor arguments at graph speed.
pub struct CompiledFunction {
    session: autograph_graph::Session,
    outputs: Vec<NodeId>,
    arg_names: Vec<String>,
    /// Whether the original function returned a tuple.
    pub tuple_result: bool,
}

impl CompiledFunction {
    /// Execute with tensors bound to the compiled placeholders in
    /// declaration order.
    ///
    /// # Errors
    ///
    /// Fails on arity mismatch or graph-execution errors.
    pub fn call(&mut self, args: &[Tensor]) -> Result<Vec<Tensor>> {
        if args.len() != self.arg_names.len() {
            return Err(RuntimeError::new(format!(
                "compiled function expects {} arguments, got {}",
                self.arg_names.len(),
                args.len()
            )));
        }
        let feeds: Vec<(&str, Tensor)> = self
            .arg_names
            .iter()
            .map(String::as_str)
            .zip(args.iter().cloned())
            .collect();
        Ok(self.session.run(&feeds, &self.outputs)?)
    }

    /// The staged graph (for inspection/dumping).
    pub fn graph(&self) -> &autograph_graph::Graph {
        self.session.graph()
    }

    /// The output node ids in the staged graph.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Pin the underlying session's thread count (see
    /// [`autograph_graph::Session::set_threads`]).
    pub fn set_threads(&mut self, threads: usize) -> &mut CompiledFunction {
        self.session.set_threads(threads);
        self
    }

    /// Pin the underlying session's execution mode.
    pub fn set_exec_mode(&mut self, mode: autograph_graph::ExecMode) -> &mut CompiledFunction {
        self.session.set_exec_mode(mode);
        self
    }

    /// Plan-cache and plan-store statistics from the underlying session.
    pub fn stats(&self) -> autograph_graph::SessionStats {
        self.session.stats()
    }

    /// Shared handle to the live session counters (see
    /// [`autograph_graph::Session::stats_handle`]).
    pub fn stats_handle(&self) -> std::sync::Arc<autograph_graph::session::SessionStatsShared> {
        self.session.stats_handle()
    }

    /// Assemble a compiled function from already-staged parts — the
    /// warm-restage constructor used by [`crate::plan_cache`].
    pub(crate) fn from_parts(
        session: autograph_graph::Session,
        outputs: Vec<NodeId>,
        arg_names: Vec<String>,
        tuple_result: bool,
    ) -> CompiledFunction {
        CompiledFunction {
            session,
            outputs,
            arg_names,
            tuple_result,
        }
    }
}

impl Runtime {
    /// Convert + stage + optimize a function into a [`CompiledFunction`]
    /// with one placeholder per `arg_names` entry.
    ///
    /// # Errors
    ///
    /// Propagates staging errors.
    pub fn compile(&mut self, name: &str, arg_names: &[&str]) -> Result<CompiledFunction> {
        let staged = self.stage_to_graph(
            name,
            arg_names
                .iter()
                .map(|n| GraphArg::Placeholder((*n).to_string()))
                .collect(),
        )?;
        let _s = obs::span("staging", "optimize");
        let (graph, outputs, _) =
            autograph_graph::optimize::optimize(&staged.graph, &staged.outputs);
        // staging-time shape validation: provable mismatches fail here,
        // attributed to original source lines, instead of at run time
        autograph_graph::shapes::validate(&graph)?;
        Ok(CompiledFunction {
            session: autograph_graph::Session::new(graph),
            outputs,
            arg_names: arg_names.iter().map(|n| (*n).to_string()).collect(),
            tuple_result: staged.tuple_result,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autograph_graph::Session;

    const LISTING1: &str = "def f(x):\n    if x > 0:\n        x = x * x\n    return x\n";

    #[test]
    fn converted_eager_matches_python_semantics() {
        // hyperparameter-style dispatch: a Python number branches natively
        let mut rt = Runtime::load(LISTING1, true).unwrap();
        assert_eq!(
            rt.call("f", vec![Value::Int(3)]).unwrap().as_int().unwrap(),
            9
        );
        assert_eq!(
            rt.call("f", vec![Value::Int(-3)])
                .unwrap()
                .as_int()
                .unwrap(),
            -3
        );
        // and an eager tensor executes imperatively
        let r = rt
            .call("f", vec![Value::tensor(Tensor::scalar_f32(4.0))])
            .unwrap();
        match r {
            Value::Tensor(t) => assert_eq!(t.tensor().scalar_value_f32().unwrap(), 16.0),
            other => panic!("{}", other.kind()),
        }
    }

    #[test]
    fn unconverted_matches_converted() {
        let mut plain = Runtime::load(LISTING1, false).unwrap();
        let mut conv = Runtime::load(LISTING1, true).unwrap();
        for x in [-5i64, 0, 7] {
            let a = plain.call("f", vec![Value::Int(x)]).unwrap();
            let b = conv.call("f", vec![Value::Int(x)]).unwrap();
            assert!(a.py_eq(&b), "mismatch at {x}");
        }
    }

    #[test]
    fn listing1_stages_tf_cond() {
        let mut rt = Runtime::load(LISTING1, true).unwrap();
        let staged = rt
            .stage_to_graph("f", vec![GraphArg::Placeholder("x".into())])
            .unwrap();
        // the graph contains a Cond node
        assert!(staged
            .graph
            .nodes
            .iter()
            .any(|n| matches!(n.op, autograph_graph::ir::OpKind::Cond { .. })));
        let mut sess = Session::new(staged.graph);
        let out = sess
            .run(&[("x", Tensor::scalar_f32(5.0))], &staged.outputs)
            .unwrap();
        assert_eq!(out[0].scalar_value_f32().unwrap(), 25.0);
        let out = sess
            .run(&[("x", Tensor::scalar_f32(-5.0))], &staged.outputs)
            .unwrap();
        assert_eq!(out[0].scalar_value_f32().unwrap(), -5.0);
    }

    #[test]
    fn hyperparameter_conditional_not_staged() {
        // §3: conditional on a plain Python value stays out of the graph
        let src = "def f(x, use_relu):\n    if use_relu:\n        y = tf.relu(x)\n    else:\n        y = tf.tanh(x)\n    return y\n";
        let mut rt = Runtime::load(src, true).unwrap();
        let staged = rt
            .stage_to_graph(
                "f",
                vec![
                    GraphArg::Placeholder("x".into()),
                    GraphArg::Value(Value::Bool(true)),
                ],
            )
            .unwrap();
        // no Cond node: the Python bool dispatched imperatively
        assert!(!staged
            .graph
            .nodes
            .iter()
            .any(|n| matches!(n.op, autograph_graph::ir::OpKind::Cond { .. })));
        assert!(staged
            .graph
            .nodes
            .iter()
            .any(|n| matches!(n.op, autograph_graph::ir::OpKind::Relu)));
        assert!(!staged
            .graph
            .nodes
            .iter()
            .any(|n| matches!(n.op, autograph_graph::ir::OpKind::Tanh)));
    }

    #[test]
    fn staged_while_loop_runs() {
        let src = "def f(x, eps):\n    while x > eps:\n        x = x / 2.0\n    return x\n";
        let mut rt = Runtime::load(src, true).unwrap();
        // eager first
        let r = rt
            .call(
                "f",
                vec![
                    Value::tensor(Tensor::scalar_f32(100.0)),
                    Value::tensor(Tensor::scalar_f32(1.0)),
                ],
            )
            .unwrap();
        match &r {
            Value::Tensor(t) => assert_eq!(t.tensor().scalar_value_f32().unwrap(), 0.78125),
            other => panic!("{}", other.kind()),
        }
        // staged
        let staged = rt
            .stage_to_graph(
                "f",
                vec![
                    GraphArg::Placeholder("x".into()),
                    GraphArg::Placeholder("eps".into()),
                ],
            )
            .unwrap();
        assert!(staged
            .graph
            .nodes
            .iter()
            .any(|n| matches!(n.op, autograph_graph::ir::OpKind::While { .. })));
        let mut sess = Session::new(staged.graph);
        let out = sess
            .run(
                &[
                    ("x", Tensor::scalar_f32(100.0)),
                    ("eps", Tensor::scalar_f32(1.0)),
                ],
                &staged.outputs,
            )
            .unwrap();
        assert_eq!(out[0].scalar_value_f32().unwrap(), 0.78125);
    }

    #[test]
    fn staged_for_loop_with_list_append() {
        let src = "\
def f(xs):
    outputs = []
    total = tf.constant(0.0)
    for x in xs:
        total = total + x
        outputs.append(total)
    return ag.stack(outputs), total
";
        let mut rt = Runtime::load(src, true).unwrap();
        // eager
        let xs = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let r = rt.call("f", vec![Value::tensor(xs.clone())]).unwrap();
        match &r {
            Value::Tuple(items) => match &items[0] {
                Value::Tensor(t) => {
                    assert_eq!(t.tensor().as_f32().unwrap(), &[1.0, 3.0, 6.0])
                }
                other => panic!("{}", other.kind()),
            },
            other => panic!("{}", other.kind()),
        }
        // staged
        let staged = rt
            .stage_to_graph("f", vec![GraphArg::Placeholder("xs".into())])
            .unwrap();
        assert!(staged.tuple_result);
        let mut sess = Session::new(staged.graph);
        let out = sess.run(&[("xs", xs)], &staged.outputs).unwrap();
        assert_eq!(out[0].as_f32().unwrap(), &[1.0, 3.0, 6.0]);
        assert_eq!(out[1].scalar_value_f32().unwrap(), 6.0);
    }

    #[test]
    fn staged_break_loop() {
        let src = "\
def f(limit):
    i = 0
    total = tf.constant(0.0)
    while True:
        total = total + 2.0
        i = i + 1
        if i >= limit:
            break
    return total
";
        let mut rt = Runtime::load(src, true).unwrap();
        let staged = rt
            .stage_to_graph("f", vec![GraphArg::Placeholder("limit".into())])
            .unwrap();
        let mut sess = Session::new(staged.graph);
        let out = sess
            .run(&[("limit", Tensor::scalar_i64(5))], &staged.outputs)
            .unwrap();
        assert_eq!(out[0].scalar_value_f32().unwrap(), 10.0);
    }

    #[test]
    fn branch_must_initialize_all_paths() {
        // §10 limitations: staged conditionals require consistent values
        let src = "def f(x):\n    if x > 0:\n        y = x\n    return y\n";
        let mut rt = Runtime::load(src, true).unwrap();
        let err = rt
            .stage_to_graph("f", vec![GraphArg::Placeholder("x".into())])
            .unwrap_err();
        assert!(
            err.to_string()
                .contains("must be defined on all code paths")
                || err.to_string().contains("same number of values"),
            "{err}"
        );
    }

    #[test]
    fn lantern_recursion_stages_and_runs() {
        // the paper's tree_prod (§8), staged through converted code
        let src = "\
def tree_prod(base, tree):
    if tree.is_empty:
        return base
    l = tree_prod(base, tree.left)
    r = tree_prod(base, tree.right)
    return l * r * tree.value
";
        let mut rt = Runtime::load(src, true).unwrap();
        let program = rt
            .stage_to_lantern(
                "tree_prod",
                vec![
                    LanternArg::Extern("base".into()),
                    LanternArg::Extern("tree".into()),
                ],
            )
            .unwrap();
        // exactly one staged def despite two recursive call sites
        assert_eq!(program.funcs.len(), 1);
        let engine = autograph_lantern::Engine::new(program);
        use autograph_lantern::value::{LValue, Record};
        let leaf = LValue::Record(Record::new(vec![("is_empty", LValue::Bool(true))]));
        let node = |l: LValue, r: LValue, v: f32| {
            LValue::Record(Record::new(vec![
                ("is_empty", LValue::Bool(false)),
                ("left", l),
                ("right", r),
                ("value", LValue::scalar(v)),
            ]))
        };
        let tree = node(
            node(leaf.clone(), leaf.clone(), 2.0),
            node(leaf.clone(), leaf.clone(), 5.0),
            3.0,
        );
        let out = engine
            .run_values(&[("base", LValue::scalar(1.0)), ("tree", tree)], &[])
            .unwrap();
        assert_eq!(out.as_tensor().unwrap().scalar_value_f32().unwrap(), 30.0);
    }

    #[test]
    fn eager_call_still_works_for_recursive_function() {
        let src = "\
def tree_sum(tree):
    if tree.is_empty:
        return 0.0
    return tree_sum(tree.left) + tree_sum(tree.right) + tree.value
";
        let mut rt = Runtime::load(src, true).unwrap();
        let leaf = Value::record(vec![("is_empty", Value::Bool(true))]);
        let tree = Value::record(vec![
            ("is_empty", Value::Bool(false)),
            ("left", leaf.clone()),
            ("right", leaf),
            ("value", Value::Float(4.5)),
        ]);
        let out = rt.call("tree_sum", vec![tree]).unwrap();
        assert_eq!(out.as_float().unwrap(), 4.5);
    }

    #[test]
    fn runtime_conversion_of_unconverted_callee() {
        // converted caller invokes an unconverted helper through
        // converted_call; the helper is converted at runtime (recursive
        // mode) and its data-dependent control flow stages correctly
        let src = "\
def helper(x):
    if x > 0:
        return x * 2.0
    return x

def main(x):
    return helper(x) + 1.0
";
        let mut rt = Runtime::load(src, true).unwrap();
        let staged = rt
            .stage_to_graph("main", vec![GraphArg::Placeholder("x".into())])
            .unwrap();
        let mut sess = Session::new(staged.graph);
        let out = sess
            .run(&[("x", Tensor::scalar_f32(3.0))], &staged.outputs)
            .unwrap();
        assert_eq!(out[0].scalar_value_f32().unwrap(), 7.0);
    }

    #[test]
    fn missing_function_errors() {
        let mut rt = Runtime::load("x = 1\n", false).unwrap();
        assert!(rt.call("nope", vec![]).is_err());
        assert!(rt.global("x").unwrap().as_int().unwrap() == 1);
    }
}
