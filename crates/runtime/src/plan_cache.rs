//! Warm restaging through the persistent plan store (ROADMAP item 3).
//!
//! [`compile_cached`] is the cache-aware twin of [`Runtime::compile`]:
//! on a store hit it deserializes the optimized graph + compiled VM
//! program straight into a ready [`CompiledFunction`], skipping
//! lex/parse/convert/stage/optimize/compile entirely (no `"staging"`
//! obs spans fire); on a miss it runs the cold pipeline and writes the
//! artifact back atomically.
//!
//! ## Cache key
//!
//! `planstore::cache_key(source, flags, version_tag, exec_mode)` where
//! `flags` covers the staging request (function name + placeholder
//! names + conversion pipeline revision) and `exec_mode` is the mode a
//! fresh session would resolve to. Any axis changing produces a
//! different key — the invalidation matrix in `tests/plan_cache.rs`
//! locks this down.
//!
//! ## What is persisted
//!
//! The payload carries the function's `tuple_result` flag, its
//! conversion warnings (a warm start never runs the converter, but must
//! report identical degradations), and the
//! [`CompiledUnit`](autograph_graph::artifact::CompiledUnit) — the
//! optimized graph with provenance chains plus the lowered bytecode
//! program. Anything malformed (bad checksum at the store layer, or a
//! payload that fails structural decode here) falls back to cold
//! staging; a cache can make results faster, never different.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::runtime::{CompiledFunction, GraphArg, Runtime};
use crate::Result;
use autograph_graph::artifact::{ByteReader, ByteWriter, CompiledUnit};
use autograph_graph::Session;
use autograph_obs as obs;
use autograph_planstore::{self as planstore, Load, PlanStore};
use autograph_pylang::Span;
use autograph_transforms::ConversionWarning;

/// A compiled function together with the staging byproducts a caller
/// may need even on a warm start.
pub struct CachedArtifacts {
    /// The ready-to-call compiled function.
    pub func: CompiledFunction,
    /// Conversion warnings — recorded at cold staging time, replayed
    /// verbatim from the artifact on a warm start.
    pub warnings: Vec<ConversionWarning>,
    /// Whether this function came from the persistent store (`true`) or
    /// was staged cold this call (`false`).
    pub from_cache: bool,
}

/// Revision of the flags layout + payload encoding below. Folded into
/// the flags string so changing how artifacts are produced invalidates
/// older ones even under the same `version_tag`.
const FLAGS_REV: &str = "r1";

/// The flags-axis string for a staging request: which function, which
/// placeholders, which pipeline revision.
fn flags_for(name: &str, arg_names: &[&str]) -> String {
    format!("fn={name};args={};{FLAGS_REV}", arg_names.join(","))
}

/// The exec-mode axis: what a fresh session would resolve to right now.
fn exec_mode_str() -> &'static str {
    match autograph_graph::session::default_exec_mode() {
        autograph_graph::ExecMode::Vm => "vm",
        autograph_graph::ExecMode::Interp => "interp",
    }
}

/// Compile `name` from `source`, consulting the plan store configured
/// via `AUTOGRAPH_PLAN_CACHE` (no store configured → always cold, no
/// I/O).
///
/// # Errors
///
/// Propagates cold-pipeline staging errors. Store/decode failures are
/// not errors — they fall back to cold staging.
pub fn compile_cached(source: &str, name: &str, arg_names: &[&str]) -> Result<CachedArtifacts> {
    let store = PlanStore::from_env();
    compile_cached_with(
        source,
        name,
        arg_names,
        store.as_ref(),
        planstore::VERSION_TAG,
    )
}

/// [`compile_cached`] against an explicit store and version tag (tests
/// pass a bumped tag to exercise invalidation).
///
/// # Errors
///
/// Propagates cold-pipeline staging errors.
pub fn compile_cached_with(
    source: &str,
    name: &str,
    arg_names: &[&str],
    store: Option<&PlanStore>,
    version_tag: &str,
) -> Result<CachedArtifacts> {
    let flags = flags_for(name, arg_names);
    let key = planstore::cache_key(source, &flags, version_tag, exec_mode_str());

    if let Some(store) = store {
        match store.load(key) {
            Load::Hit {
                payload,
                bytes,
                load_ns,
            } => match decode_payload(&payload, arg_names) {
                Ok(art) => {
                    art.func.stats_handle().record_store_hit(bytes, load_ns);
                    return Ok(CachedArtifacts {
                        func: art.func,
                        warnings: art.warnings,
                        from_cache: true,
                    });
                }
                Err(e) => {
                    // the checksum passed but the payload didn't decode:
                    // count it as corruption and stage cold
                    planstore::note_corrupt(&e);
                }
            },
            Load::Miss => {}
            Load::Corrupt(_) => {
                // already counted by the store; fall through to cold
            }
        }
    }

    let art = compile_cold(source, name, arg_names)?;
    if let Some(store) = store {
        art.func.stats_handle().record_store_miss();
        let payload = encode_payload(&art);
        if let Err(e) = store.save(key, &payload) {
            // a read-only cache dir must not break staging
            obs::count("planstore", "plan_cache_write_failed", 1);
            let _ = e;
        }
    }
    Ok(CachedArtifacts {
        func: art.func,
        warnings: art.warnings,
        from_cache: false,
    })
}

/// The cold pipeline: convert, stage, optimize, validate — identical to
/// [`Runtime::compile`] but keeping the optimized graph/outputs in hand
/// so the artifact can be encoded without re-staging.
struct ColdArtifacts {
    func: CompiledFunction,
    warnings: Vec<ConversionWarning>,
    unit: CompiledUnit,
    tuple_result: bool,
}

impl ColdArtifacts {
    fn as_cached(&self) -> (&CompiledFunction, &[ConversionWarning]) {
        (&self.func, &self.warnings)
    }
}

fn compile_cold(source: &str, name: &str, arg_names: &[&str]) -> Result<ColdArtifacts> {
    let mut rt = Runtime::load(source, true)?;
    let staged = rt.stage_to_graph(
        name,
        arg_names
            .iter()
            .map(|n| GraphArg::Placeholder((*n).to_string()))
            .collect(),
    )?;
    let warnings = rt.warnings().to_vec();
    let tuple_result = staged.tuple_result;
    let (graph, outputs) = {
        let _s = obs::span("staging", "optimize");
        let (g, o, _) = autograph_graph::optimize::optimize(&staged.graph, &staged.outputs);
        (g, o)
    };
    autograph_graph::shapes::validate(&graph)?;
    let unit = CompiledUnit::build(graph, outputs.clone())?;
    let mut session = Session::new(unit.graph.clone());
    session.install_compiled(&unit)?;
    let func = CompiledFunction::from_parts(
        session,
        outputs,
        arg_names.iter().map(|n| (*n).to_string()).collect(),
        tuple_result,
    );
    Ok(ColdArtifacts {
        func,
        warnings,
        unit,
        tuple_result,
    })
}

// ---------------------------------------------------------------------
// Payload encoding: tuple_result + warnings + compiled unit

fn encode_payload(art: &ColdArtifacts) -> Vec<u8> {
    let (_, warnings) = art.as_cached();
    let mut w = ByteWriter::new();
    w.u8(u8::from(art.tuple_result));
    w.u64(warnings.len() as u64);
    for warn in warnings {
        w.str(&warn.function);
        w.u32(warn.span.line);
        w.u32(warn.span.col);
        w.str(&warn.reason);
        w.opt(warn.source_line.as_deref(), |w, s| w.str(s));
    }
    art.unit.encode_into(&mut w);
    w.into_bytes()
}

struct DecodedArtifacts {
    func: CompiledFunction,
    warnings: Vec<ConversionWarning>,
}

fn decode_payload(
    payload: &[u8],
    arg_names: &[&str],
) -> std::result::Result<DecodedArtifacts, String> {
    let mut r = ByteReader::new(payload);
    let tuple_result = match r.u8()? {
        0 => false,
        1 => true,
        t => return Err(format!("invalid tuple_result tag {t}")),
    };
    let nwarn = r.count()?;
    let mut warnings = Vec::with_capacity(nwarn);
    for _ in 0..nwarn {
        let function = r.str()?;
        let line = r.u32()?;
        let col = r.u32()?;
        let reason = r.str()?;
        let source_line = r.opt(|r| r.str())?;
        warnings.push(ConversionWarning {
            function,
            span: Span::new(line, col),
            reason,
            source_line,
        });
    }
    let unit = CompiledUnit::decode_from(&mut r)?;
    if !r.is_done() {
        return Err("trailing bytes after compiled unit".to_string());
    }
    let mut session = Session::new(unit.graph.clone());
    session
        .install_compiled(&unit)
        .map_err(|e| format!("decoded unit rejected by session: {e}"))?;
    let outputs = unit.outputs.clone();
    let func = CompiledFunction::from_parts(
        session,
        outputs,
        arg_names.iter().map(|n| (*n).to_string()).collect(),
        tuple_result,
    );
    Ok(DecodedArtifacts { func, warnings })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use autograph_tensor::Tensor;

    const SRC: &str = "\
def f(x):
    y = tf.constant(0.0)
    while y < x:
        y = y + 1.5
    return y * 2.0
";

    fn tmp_store(tag: &str) -> PlanStore {
        let dir = std::env::temp_dir().join(format!("agplan-rt-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        PlanStore::open(&dir).unwrap()
    }

    #[test]
    fn cold_then_warm_bitwise_identical() {
        let store = tmp_store("warm");
        let cold = compile_cached_with(SRC, "f", &["x"], Some(&store), "test-v1").unwrap();
        assert!(!cold.from_cache);
        let warm = compile_cached_with(SRC, "f", &["x"], Some(&store), "test-v1").unwrap();
        assert!(warm.from_cache);
        let (mut c, mut w) = (cold.func, warm.func);
        for v in [0.0f32, 1.0, 7.3] {
            let a = c.call(&[Tensor::scalar_f32(v)]).unwrap();
            let b = w.call(&[Tensor::scalar_f32(v)]).unwrap();
            assert_eq!(
                a[0].scalar_value_f32().unwrap().to_bits(),
                b[0].scalar_value_f32().unwrap().to_bits()
            );
        }
        // the warm session recorded the store hit
        assert_eq!(w.stats().plan_store_hits, 1);
        assert_eq!(c.stats().plan_store_misses, 1);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn no_store_stays_cold() {
        let a = compile_cached_with(SRC, "f", &["x"], None, "test-v1").unwrap();
        assert!(!a.from_cache);
        let b = compile_cached_with(SRC, "f", &["x"], None, "test-v1").unwrap();
        assert!(!b.from_cache);
    }

    #[test]
    fn warnings_replay_from_artifact() {
        // a function the converter degrades on (generator expressions are
        // unsupported) plus a stageable one
        let src = "\
def g(x):
    return x + 1.0
";
        let store = tmp_store("warn");
        let cold = compile_cached_with(src, "g", &["x"], Some(&store), "test-v1").unwrap();
        let warm = compile_cached_with(src, "g", &["x"], Some(&store), "test-v1").unwrap();
        assert!(warm.from_cache);
        assert_eq!(cold.warnings.len(), warm.warnings.len());
        for (a, b) in cold.warnings.iter().zip(&warm.warnings) {
            assert_eq!(a.function, b.function);
            assert_eq!(a.span, b.span);
            assert_eq!(a.reason, b.reason);
            assert_eq!(a.source_line, b.source_line);
        }
        let _ = std::fs::remove_dir_all(store.dir());
    }
}
