//! Runtime values of the PyLite interpreter.

use crate::{Result, RuntimeError};
use autograph_eager::EagerTensor;
use autograph_lantern::sexpr::SExpr;
use autograph_pylang::ast::{Param, Stmt};
use autograph_tensor::{DType, Tensor};
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use crate::env::Env;

/// A user-defined PyLite function (its AST plus captured environment).
pub struct PyFunction {
    /// Function name.
    pub name: String,
    /// Source location of the `def` (synthetic for functions with no
    /// user-source origin); placeholders staged for the function's
    /// parameters are attributed here.
    pub def_span: autograph_pylang::Span,
    /// Parameters.
    pub params: Vec<Param>,
    /// Body statements (shared with the defining module).
    pub body: Rc<Vec<Stmt>>,
    /// Lexical closure.
    pub closure: Env,
    /// Whether this definition carries `@ag.autograph_artifact`
    /// (already converted — `converted_call` will not convert it again).
    pub is_artifact: bool,
    /// Pre-evaluated default values (right-aligned with params).
    pub defaults: Vec<Value>,
}

impl fmt::Debug for PyFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<function {}/{}>", self.name, self.params.len())
    }
}

/// A native (Rust) function exposed to PyLite, e.g. the `tf.*` API and the
/// `ag.*` operators.
pub struct Builtin {
    /// Qualified display name, e.g. `"tf.matmul"`.
    pub name: String,
    /// Implementation.
    #[allow(clippy::type_complexity)]
    pub func: Box<dyn Fn(&mut crate::Interp, Vec<Value>, Vec<(String, Value)>) -> Result<Value>>,
}

impl fmt::Debug for Builtin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<builtin {}>", self.name)
    }
}

/// Which namespace a module value denotes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModuleKind {
    /// The staged-ops module `tf`.
    Tf,
    /// The AutoGraph operator module `ag`.
    Ag,
}

/// A value in the PyLite interpreter.
#[derive(Debug, Clone)]
pub enum Value {
    /// `None`.
    None,
    /// Python bool.
    Bool(bool),
    /// Python int.
    Int(i64),
    /// Python float.
    Float(f64),
    /// Python str.
    Str(Rc<String>),
    /// Mutable list.
    List(Rc<RefCell<Vec<Value>>>),
    /// Immutable tuple.
    Tuple(Rc<Vec<Value>>),
    /// Lazy integer range (from `range(...)`).
    Range {
        /// Inclusive start.
        start: i64,
        /// Exclusive stop.
        stop: i64,
        /// Step (nonzero).
        step: i64,
    },
    /// User-defined function.
    Function(Rc<PyFunction>),
    /// Native function.
    Builtin(Rc<Builtin>),
    /// A namespace (`tf` / `ag`).
    Module(ModuleKind),
    /// Record with named fields (tree nodes, simple objects).
    Record(Rc<RefCell<HashMap<String, Value>>>),
    /// An eager tensor (imperative mode).
    Tensor(EagerTensor),
    /// A staged graph value. `epoch` identifies the builder layer that owns
    /// `id` (capture resolution across `cond`/`while` subgraphs).
    GraphNode {
        /// Builder-layer epoch.
        epoch: u64,
        /// Node id within that layer.
        id: autograph_graph::NodeId,
    },
    /// A staged Lantern expression.
    Lantern(Rc<SExpr>),
    /// A dtype constant (`tf.float32`).
    DType(DType),
    /// The reified "undefined" state of a variable (§7.2 Control Flow).
    Undefined(Rc<String>),
}

impl Value {
    /// Wrap a string.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(Rc::new(s.into()))
    }

    /// Wrap an eager tensor.
    pub fn tensor(t: Tensor) -> Value {
        Value::Tensor(EagerTensor::from(t))
    }

    /// Build a list value.
    pub fn list(items: Vec<Value>) -> Value {
        Value::List(Rc::new(RefCell::new(items)))
    }

    /// Build a tuple value.
    pub fn tuple(items: Vec<Value>) -> Value {
        Value::Tuple(Rc::new(items))
    }

    /// Build a record value.
    pub fn record(fields: Vec<(&str, Value)>) -> Value {
        Value::Record(Rc::new(RefCell::new(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )))
    }

    /// Short kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::None => "None",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "str",
            Value::List(_) => "list",
            Value::Tuple(_) => "tuple",
            Value::Range { .. } => "range",
            Value::Function(_) => "function",
            Value::Builtin(_) => "builtin",
            Value::Module(_) => "module",
            Value::Record(_) => "record",
            Value::Tensor(_) => "tensor",
            Value::GraphNode { .. } => "graph tensor",
            Value::Lantern(_) => "lantern expression",
            Value::DType(_) => "dtype",
            Value::Undefined(_) => "undefined",
        }
    }

    /// Is this a staged or eager tensor-like value (the paper's
    /// "tensor-like" dispatch test)?
    pub fn is_tensor_like(&self) -> bool {
        matches!(
            self,
            Value::Tensor(_) | Value::GraphNode { .. } | Value::Lantern(_)
        )
    }

    /// Is this a *staged* value (graph or Lantern)?
    pub fn is_staged(&self) -> bool {
        matches!(self, Value::GraphNode { .. } | Value::Lantern(_))
    }

    /// Python truthiness. Staged values refuse, exactly like using a
    /// `tf.Tensor` as a Python bool — the Appendix B staging error.
    ///
    /// # Errors
    ///
    /// Fails for staged values and `Undefined`.
    pub fn truthy(&self) -> Result<bool> {
        match self {
            Value::None => Ok(false),
            Value::Bool(b) => Ok(*b),
            Value::Int(i) => Ok(*i != 0),
            Value::Float(f) => Ok(*f != 0.0),
            Value::Str(s) => Ok(!s.is_empty()),
            Value::List(l) => Ok(!l.borrow().is_empty()),
            Value::Tuple(t) => Ok(!t.is_empty()),
            Value::Range { start, stop, step } => Ok(if *step > 0 {
                start < stop
            } else {
                start > stop
            }),
            Value::Tensor(t) => t
                .tensor()
                .scalar_value_bool()
                .map_err(|e| RuntimeError::new(format!("tensor used as bool: {e}"))),
            Value::GraphNode { .. } | Value::Lantern(_) => Err(RuntimeError::new(
                "using a staged tensor as a Python bool is not allowed; \
                 this conditional must be converted (staging error)",
            )),
            Value::Undefined(name) => Err(RuntimeError::new(format!(
                "variable '{name}' may be used before assignment"
            ))),
            other => Err(RuntimeError::new(format!(
                "{} has no truth value",
                other.kind()
            ))),
        }
    }

    /// Extract an int.
    ///
    /// # Errors
    ///
    /// Fails for non-integers (including floats — no silent truncation).
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            Value::Bool(b) => Ok(*b as i64),
            Value::Tensor(t) => Ok(t.tensor().scalar_value_i64()?),
            other => Err(RuntimeError::new(format!(
                "expected int, got {}",
                other.kind()
            ))),
        }
    }

    /// Extract a float (ints promote).
    ///
    /// # Errors
    ///
    /// Fails for non-numeric values.
    pub fn as_float(&self) -> Result<f64> {
        match self {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::Bool(b) => Ok(*b as i64 as f64),
            Value::Tensor(t) => Ok(t.tensor().scalar_value_f32()? as f64),
            other => Err(RuntimeError::new(format!(
                "expected float, got {}",
                other.kind()
            ))),
        }
    }

    /// Extract an eager tensor, coercing Python numbers to scalars.
    ///
    /// # Errors
    ///
    /// Fails for staged values and non-numerics.
    pub fn as_eager_tensor(&self) -> Result<Tensor> {
        match self {
            Value::Tensor(t) => Ok(t.tensor().clone()),
            Value::Int(i) => Ok(Tensor::scalar_i64(*i)),
            Value::Float(f) => Ok(Tensor::scalar_f32(*f as f32)),
            Value::Bool(b) => Ok(Tensor::scalar_bool(*b)),
            Value::List(items) => {
                let v: Result<Vec<f32>> = items
                    .borrow()
                    .iter()
                    .map(|x| x.as_float().map(|f| f as f32))
                    .collect();
                let v = v?;
                let n = v.len();
                Ok(Tensor::from_vec(v, &[n])?)
            }
            other => Err(RuntimeError::new(format!(
                "cannot convert {} to an eager tensor",
                other.kind()
            ))),
        }
    }

    /// Structural/value equality (Python `==` on host values).
    pub fn py_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::None, Value::None) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b,
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => *a as f64 == *b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Tuple(a), Value::Tuple(b)) => {
                a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.py_eq(y))
            }
            (Value::List(a), Value::List(b)) => {
                let (a, b) = (a.borrow(), b.borrow());
                a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.py_eq(y))
            }
            _ => false,
        }
    }

    /// Human-readable rendering (the `print` output format).
    pub fn render(&self) -> String {
        match self {
            Value::None => "None".into(),
            Value::Bool(true) => "True".into(),
            Value::Bool(false) => "False".into(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => format!("{f}"),
            Value::Str(s) => (**s).clone(),
            Value::List(items) => {
                let inner: Vec<String> = items.borrow().iter().map(Value::render).collect();
                format!("[{}]", inner.join(", "))
            }
            Value::Tuple(items) => {
                let inner: Vec<String> = items.iter().map(Value::render).collect();
                format!("({})", inner.join(", "))
            }
            Value::Range { start, stop, step } => format!("range({start}, {stop}, {step})"),
            Value::Tensor(t) => format!("{}", t.tensor()),
            Value::GraphNode { id, .. } => format!("<staged tensor node {id}>"),
            Value::Lantern(e) => format!("<staged lantern {e}>"),
            Value::Function(f) => format!("{f:?}"),
            Value::Builtin(b) => format!("{b:?}"),
            Value::Module(ModuleKind::Tf) => "<module tf>".into(),
            Value::Module(ModuleKind::Ag) => "<module ag>".into(),
            Value::Record(_) => "<record>".into(),
            Value::DType(d) => format!("tf.{d}"),
            Value::Undefined(n) => format!("<undefined {n}>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(!Value::None.truthy().unwrap());
        assert!(Value::Int(2).truthy().unwrap());
        assert!(!Value::Float(0.0).truthy().unwrap());
        assert!(Value::str("x").truthy().unwrap());
        assert!(!Value::list(vec![]).truthy().unwrap());
        assert!(Value::tensor(Tensor::scalar_bool(true)).truthy().unwrap());
        assert!(Value::GraphNode { epoch: 0, id: 0 }.truthy().is_err());
        assert!(Value::Undefined(Rc::new("x".into())).truthy().is_err());
    }

    #[test]
    fn numeric_extraction() {
        assert_eq!(Value::Int(3).as_float().unwrap(), 3.0);
        assert_eq!(Value::Bool(true).as_int().unwrap(), 1);
        assert!(Value::str("x").as_int().is_err());
        let t = Value::tensor(Tensor::scalar_f32(2.5));
        assert_eq!(t.as_float().unwrap(), 2.5);
    }

    #[test]
    fn eager_coercion_from_list() {
        let v = Value::list(vec![Value::Int(1), Value::Float(2.5)]);
        let t = v.as_eager_tensor().unwrap();
        assert_eq!(t.as_f32().unwrap(), &[1.0, 2.5]);
    }

    #[test]
    fn py_eq_mixed() {
        assert!(Value::Int(2).py_eq(&Value::Float(2.0)));
        assert!(Value::tuple(vec![Value::Int(1)]).py_eq(&Value::tuple(vec![Value::Int(1)])));
        assert!(!Value::Int(1).py_eq(&Value::str("1")));
    }

    #[test]
    fn render_forms() {
        assert_eq!(Value::Bool(true).render(), "True");
        assert_eq!(
            Value::list(vec![Value::Int(1), Value::Int(2)]).render(),
            "[1, 2]"
        );
        assert_eq!(Value::DType(DType::F32).render(), "tf.f32");
    }

    #[test]
    fn tensor_like_classification() {
        assert!(Value::tensor(Tensor::scalar_f32(0.0)).is_tensor_like());
        assert!(Value::GraphNode { epoch: 0, id: 1 }.is_tensor_like());
        assert!(Value::GraphNode { epoch: 0, id: 1 }.is_staged());
        assert!(!Value::tensor(Tensor::scalar_f32(0.0)).is_staged());
        assert!(!Value::Int(1).is_tensor_like());
    }
}
