//! Runtime errors with original-source attribution (Appendix B).
//!
//! Because conversion passes stamp every synthesized AST node with the
//! span of the user construct it replaced, the interpreter's errors point
//! at the user's original source with no separate lookup — the error
//! message shows the offending line even when the failure happened deep in
//! generated code.

use autograph_pylang::Span;
use std::fmt;

/// An error raised while interpreting (possibly converted) PyLite code,
/// staging a graph, or executing a staged IR.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeError {
    /// What went wrong.
    pub message: String,
    /// Location in the user's original source.
    pub span: Span,
    /// Function-call stack (innermost last), as `(function, call-site)`.
    pub frames: Vec<(String, Span)>,
}

impl RuntimeError {
    /// New error with no location.
    pub fn new(message: impl Into<String>) -> Self {
        RuntimeError {
            message: message.into(),
            span: Span::synthetic(),
            frames: Vec::new(),
        }
    }

    /// Attach a location if none is set yet (innermost wins).
    pub fn at(mut self, span: Span) -> Self {
        if self.span.is_synthetic() && !span.is_synthetic() {
            self.span = span;
        }
        self
    }

    /// Push a stack frame (outermost calls push last).
    pub fn in_frame(mut self, name: &str, span: Span) -> Self {
        self.frames.push((name.to_string(), span));
        self
    }
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "runtime error at {}: {}", self.span, self.message)?;
        for (name, span) in &self.frames {
            write!(f, "\n    in {name} (called at {span})")?;
        }
        Ok(())
    }
}

impl std::error::Error for RuntimeError {}

impl From<autograph_tensor::TensorError> for RuntimeError {
    fn from(e: autograph_tensor::TensorError) -> Self {
        RuntimeError::new(e.to_string())
    }
}

impl From<autograph_eager::EagerError> for RuntimeError {
    fn from(e: autograph_eager::EagerError) -> Self {
        RuntimeError::new(e.to_string())
    }
}

impl From<autograph_graph::GraphError> for RuntimeError {
    fn from(e: autograph_graph::GraphError) -> Self {
        let mut err = RuntimeError::new(e.to_string());
        if let Some(span) = e.span {
            err.span = span;
        }
        err
    }
}

impl From<autograph_lantern::LanternError> for RuntimeError {
    fn from(e: autograph_lantern::LanternError) -> Self {
        RuntimeError::new(e.to_string())
    }
}

impl From<autograph_transforms::ConversionError> for RuntimeError {
    fn from(e: autograph_transforms::ConversionError) -> Self {
        RuntimeError::new(e.message.clone()).at(e.span)
    }
}

impl From<autograph_pylang::ParseError> for RuntimeError {
    fn from(e: autograph_pylang::ParseError) -> Self {
        RuntimeError::new(e.message.clone()).at(e.span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn innermost_span_wins() {
        let e = RuntimeError::new("boom")
            .at(Span::new(3, 1))
            .at(Span::new(9, 9));
        assert_eq!(e.span, Span::new(3, 1));
    }

    #[test]
    fn display_with_frames() {
        let e = RuntimeError::new("bad")
            .at(Span::new(2, 5))
            .in_frame("inner", Span::new(10, 1))
            .in_frame("outer", Span::new(20, 1));
        let s = e.to_string();
        assert!(s.contains("2:5"));
        assert!(s.contains("in inner (called at 10:1)"));
        assert!(s.contains("in outer"));
    }

    #[test]
    fn graph_error_span_propagates() {
        let ge = autograph_graph::GraphError::runtime("x").at_span(Span::new(4, 2));
        let re: RuntimeError = ge.into();
        assert_eq!(re.span, Span::new(4, 2));
    }
}
