//! `autograph-report`: pretty-print and diff AutoGraph performance
//! artifacts (RunReport JSON and bench `--json` outputs).
//!
//! ```text
//! autograph-report print FILE
//! autograph-report diff BASELINE CURRENT [--tol-pct P] [--abs A] [--tol KEY=PCT]...
//! ```
//!
//! `diff` exits 0 when no gated metric regressed, 1 on regression, 2 on
//! usage/IO/parse errors — so it can gate CI directly. Tolerances:
//! `--tol-pct` sets the global relative slack in percent (default 25),
//! `--abs` an absolute slack in the metric's unit, and repeated
//! `--tol KEY=PCT` widens individual metrics (substring match on the
//! dotted path).

use autograph_report::{diff, render_tree, FindingKind, Tolerance};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("print") => cmd_print(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        _ => {
            eprintln!(
                "usage:\n  autograph-report print FILE\n  autograph-report diff BASELINE CURRENT [--tol-pct P] [--abs A] [--tol KEY=PCT]..."
            );
            ExitCode::from(2)
        }
    }
}

fn load(path: &str) -> Result<serde_json::Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn cmd_print(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("usage: autograph-report print FILE");
        return ExitCode::from(2);
    };
    match load(path) {
        Ok(doc) => {
            let mut out = String::new();
            render_tree(&doc, 0, &mut out);
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}

fn cmd_diff(args: &[String]) -> ExitCode {
    let mut paths: Vec<&String> = Vec::new();
    let mut tol = Tolerance::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tol-pct" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(p) => tol.rel = p / 100.0,
                None => return usage_diff("--tol-pct needs a number"),
            },
            "--abs" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) => tol.abs = v,
                None => return usage_diff("--abs needs a number"),
            },
            "--tol" => match it.next().and_then(|v| {
                let (k, p) = v.split_once('=')?;
                Some((k.to_string(), p.parse::<f64>().ok()? / 100.0))
            }) {
                Some(kv) => tol.overrides.push(kv),
                None => return usage_diff("--tol needs KEY=PCT"),
            },
            _ if a.starts_with("--") => return usage_diff(&format!("unknown flag {a}")),
            _ => paths.push(a),
        }
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        return usage_diff("need exactly BASELINE and CURRENT");
    };
    let (baseline, current) = match (load(baseline_path), load(current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let result = diff(&baseline, &current, &tol);
    println!(
        "diff {baseline_path} -> {current_path} ({} metrics compared, rel tol {:.0}%)",
        result.compared,
        tol.rel * 100.0
    );
    for f in &result.findings {
        // regressions and improvements always print; info only when
        // something actually moved
        if !matches!(f.kind, FindingKind::Info) || f.change.abs() > 1e-12 {
            println!("  {}", f.render());
        }
    }
    let regressions = result.regressions().count();
    if regressions > 0 {
        println!("FAIL: {regressions} regression(s)");
        ExitCode::FAILURE
    } else {
        println!("OK: no regressions");
        ExitCode::SUCCESS
    }
}

fn usage_diff(msg: &str) -> ExitCode {
    eprintln!("autograph-report diff: {msg}");
    ExitCode::from(2)
}
