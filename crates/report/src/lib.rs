//! Diff engine for AutoGraph's machine-readable performance artifacts:
//! `RunReport` JSON (from `Session::last_report`) and the bench binaries'
//! `--json` outputs.
//!
//! [`diff`] walks two JSON documents in parallel and classifies every
//! numeric/boolean leaf by a *direction heuristic* on its key path:
//!
//! * **lower is better** — durations (`*_ns`, `*_ms`, `seconds*`,
//!   `*_time`) and memory (`*bytes*`, `allocs`, `frees`);
//! * **higher is better** — `*rate*`, `*speedup*`, `*utilization*`,
//!   `*throughput*`, `*per_sec*`, `*hits*`;
//! * **must hold** — booleans that were `true` in the baseline (e.g.
//!   `bitwise_identical`, `succeeded`);
//! * everything else is **informational**: config echoes (`threads`,
//!   `batch`), identifiers, and volatile subtrees (`workers`,
//!   `node_costs`, `critical_path`, `error`) never gate.
//!
//! A gated metric regresses when it moves in the bad direction by more
//! than `max(rel × baseline, abs)` — the caller picks the tolerance
//! (CI uses a deliberately wide one; shared single-CPU runners are
//! noisy). A metric present in the baseline but missing from the
//! current file is always a regression: silently dropping a metric must
//! not pass the gate.

use serde_json::Value;
use std::collections::BTreeMap;

/// How a metric's value relates to "better".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Smaller values are better (times, bytes).
    LowerIsBetter,
    /// Larger values are better (rates, speedups).
    HigherIsBetter,
    /// A boolean that must stay `true` once the baseline had it `true`.
    MustHold,
    /// Not gated; changes are reported but never fail.
    Informational,
}

/// Path subtrees that are never gated: per-worker breakdowns and node
/// tables vary run to run by construction, and `error` is prose.
const INFORMATIONAL_SUBTREES: &[&str] = &["workers", "node_costs", "critical_path", "error"];

/// Classify a dotted key path (e.g. `mem.peak_bytes`,
/// `sched.workers[0].busy_ns`).
pub fn direction_for(path: &str) -> Direction {
    let lower = path.to_ascii_lowercase();
    for sub in INFORMATIONAL_SUBTREES {
        if lower.contains(sub) {
            return Direction::Informational;
        }
    }
    let leaf = lower
        .rsplit('.')
        .next()
        .unwrap_or(&lower)
        .trim_end_matches(|c: char| c == ']' || c.is_ascii_digit() || c == '[');
    const HIGHER: &[&str] = &[
        "rate",
        "speedup",
        "utilization",
        "throughput",
        "per_sec",
        "hits",
    ];
    if HIGHER.iter().any(|k| leaf.contains(k)) {
        return Direction::HigherIsBetter;
    }
    const LOWER_EXACT: &[&str] = &["allocs", "frees"];
    const LOWER: &[&str] = &["_ns", "_ms", "seconds", "bytes", "_time", "misses"];
    if LOWER_EXACT.contains(&leaf)
        || LOWER.iter().any(|k| leaf.contains(k))
        || leaf == "ns"
        || leaf == "ms"
    {
        return Direction::LowerIsBetter;
    }
    Direction::Informational
}

/// Relative + absolute slack for gated metrics: a change is within
/// tolerance when `|delta| <= max(rel * |baseline|, abs)`.
#[derive(Debug, Clone)]
pub struct Tolerance {
    /// Relative slack as a fraction (0.25 = 25%).
    pub rel: f64,
    /// Absolute slack in the metric's own unit.
    pub abs: f64,
    /// Per-metric overrides: the first entry whose key is a substring of
    /// the metric path wins (relative fraction).
    pub overrides: Vec<(String, f64)>,
}

impl Default for Tolerance {
    fn default() -> Tolerance {
        Tolerance {
            rel: 0.25,
            abs: 0.0,
            overrides: Vec::new(),
        }
    }
}

impl Tolerance {
    fn rel_for(&self, path: &str) -> f64 {
        self.overrides
            .iter()
            .find(|(k, _)| path.contains(k.as_str()))
            .map(|(_, v)| *v)
            .unwrap_or(self.rel)
    }
}

/// What happened to one leaf metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingKind {
    /// Worsened beyond tolerance in a gated direction.
    Regression,
    /// Improved beyond tolerance (never fails the gate).
    Improvement,
    /// Changed, but the metric is informational or within tolerance.
    Info,
    /// Present in the baseline, absent in the current file.
    Missing,
}

/// One compared leaf.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Dotted path into the document.
    pub path: String,
    /// Baseline value (None when the leaf is new).
    pub baseline: Option<f64>,
    /// Current value (None when the leaf disappeared).
    pub current: Option<f64>,
    /// Signed relative change (`(current - baseline) / |baseline|`).
    pub change: f64,
    /// Classification under the direction heuristic and tolerance.
    pub kind: FindingKind,
    /// The direction the metric was judged under.
    pub direction: Direction,
}

impl Finding {
    /// One-line rendering for terminal output.
    pub fn render(&self) -> String {
        let tag = match self.kind {
            FindingKind::Regression => "REGRESSION",
            FindingKind::Improvement => "improved",
            FindingKind::Info => "info",
            FindingKind::Missing => "MISSING",
        };
        match (self.baseline, self.current) {
            (Some(b), Some(c)) => format!(
                "{tag:<10} {:<44} {b:.6} -> {c:.6} ({:+.1}%)",
                self.path,
                self.change * 100.0
            ),
            (Some(b), None) => format!("{tag:<10} {:<44} {b:.6} -> (absent)", self.path),
            (None, Some(c)) => format!("{tag:<10} {:<44} (new) -> {c:.6}", self.path),
            (None, None) => format!("{tag:<10} {}", self.path),
        }
    }
}

/// The outcome of a [`diff`].
#[derive(Debug, Clone, Default)]
pub struct DiffResult {
    /// Every compared leaf that changed (plus regressions/missing).
    pub findings: Vec<Finding>,
    /// Leaves compared in total (changed or not).
    pub compared: usize,
}

impl DiffResult {
    /// Findings that fail the gate.
    pub fn regressions(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|f| matches!(f.kind, FindingKind::Regression | FindingKind::Missing))
    }

    /// Whether the gate passes.
    pub fn passed(&self) -> bool {
        self.regressions().next().is_none()
    }
}

/// Compare `current` against `baseline` under `tol`.
pub fn diff(baseline: &Value, current: &Value, tol: &Tolerance) -> DiffResult {
    let mut out = DiffResult::default();
    walk(baseline, Some(current), String::new(), tol, &mut out);
    out
}

fn walk(base: &Value, cur: Option<&Value>, path: String, tol: &Tolerance, out: &mut DiffResult) {
    match base {
        Value::Object(bmap) => {
            let empty = BTreeMap::new();
            let cmap = match cur {
                Some(Value::Object(m)) => m,
                _ => &empty,
            };
            for (k, bv) in bmap {
                let child = if path.is_empty() {
                    k.clone()
                } else {
                    format!("{path}.{k}")
                };
                walk(bv, cmap.get(k), child, tol, out);
            }
        }
        Value::Array(barr) => {
            let carr = match cur {
                Some(Value::Array(a)) => a.as_slice(),
                _ => &[],
            };
            for (i, bv) in barr.iter().enumerate() {
                walk(bv, carr.get(i), format!("{path}[{i}]"), tol, out);
            }
        }
        Value::Number(b) => leaf_number(*b, cur, path, tol, out),
        Value::Bool(b) => leaf_bool(*b, cur, path, out),
        // strings and nulls never gate; only report disappearance of the
        // whole subtree via their parent (numbers/bools)
        Value::String(_) | Value::Null => {}
    }
}

fn leaf_number(b: f64, cur: Option<&Value>, path: String, tol: &Tolerance, out: &mut DiffResult) {
    let direction = direction_for(&path);
    let c = match cur.and_then(Value::as_f64) {
        Some(c) => c,
        None => {
            out.findings.push(Finding {
                kind: if direction == Direction::Informational {
                    FindingKind::Info
                } else {
                    FindingKind::Missing
                },
                path,
                baseline: Some(b),
                current: None,
                change: -1.0,
                direction,
            });
            return;
        }
    };
    out.compared += 1;
    let delta = c - b;
    let change = if b.abs() > f64::EPSILON {
        delta / b.abs()
    } else if delta.abs() > f64::EPSILON {
        1.0
    } else {
        0.0
    };
    let slack = (tol.rel_for(&path) * b.abs()).max(tol.abs);
    let kind = match direction {
        Direction::Informational => {
            if delta.abs() > f64::EPSILON {
                FindingKind::Info
            } else {
                return;
            }
        }
        Direction::LowerIsBetter if delta > slack => FindingKind::Regression,
        Direction::HigherIsBetter if -delta > slack => FindingKind::Regression,
        Direction::LowerIsBetter if -delta > slack => FindingKind::Improvement,
        Direction::HigherIsBetter if delta > slack => FindingKind::Improvement,
        _ => {
            if delta.abs() > f64::EPSILON {
                FindingKind::Info
            } else {
                return;
            }
        }
    };
    out.findings.push(Finding {
        path,
        baseline: Some(b),
        current: Some(c),
        change,
        kind,
        direction,
    });
}

fn leaf_bool(b: bool, cur: Option<&Value>, path: String, out: &mut DiffResult) {
    // booleans that were true must stay true (bitwise_identical,
    // succeeded); false baselines never gate. Only the volatile
    // subtrees are exempt — the key-name heuristic is for numbers.
    let lower = path.to_ascii_lowercase();
    if INFORMATIONAL_SUBTREES.iter().any(|s| lower.contains(s)) {
        return;
    }
    let c = cur.and_then(Value::as_bool);
    out.compared += 1;
    let kind = match (b, c) {
        (true, Some(true)) | (false, Some(false)) => return,
        (true, Some(false)) => FindingKind::Regression,
        (false, Some(true)) => FindingKind::Improvement,
        (true, None) => FindingKind::Missing,
        (false, None) => FindingKind::Info,
    };
    out.findings.push(Finding {
        path,
        baseline: Some(if b { 1.0 } else { 0.0 }),
        current: c.map(|v| if v { 1.0 } else { 0.0 }),
        change: 0.0,
        kind,
        direction: Direction::MustHold,
    });
}

/// Generic pretty-printer for a JSON document (used by
/// `autograph-report print` for non-RunReport files).
pub fn render_tree(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match v {
        Value::Object(map) => {
            for (k, val) in map {
                match val {
                    Value::Object(_) | Value::Array(_) => {
                        out.push_str(&format!("{pad}{k}:\n"));
                        render_tree(val, indent + 1, out);
                    }
                    _ => out.push_str(&format!("{pad}{k}: {}\n", scalar(val))),
                }
            }
        }
        Value::Array(items) => {
            for (i, val) in items.iter().enumerate() {
                match val {
                    Value::Object(_) | Value::Array(_) => {
                        out.push_str(&format!("{pad}[{i}]:\n"));
                        render_tree(val, indent + 1, out);
                    }
                    _ => out.push_str(&format!("{pad}[{i}]: {}\n", scalar(val))),
                }
            }
        }
        _ => out.push_str(&format!("{pad}{}\n", scalar(v))),
    }
}

fn scalar(v: &Value) -> String {
    match v {
        Value::Null => "null".to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Number(n) => {
            if n.fract() == 0.0 && n.abs() < 9e15 {
                format!("{}", *n as i64)
            } else {
                format!("{n:.6}")
            }
        }
        Value::String(s) => s.clone(),
        _ => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Value {
        serde_json::from_str(s).expect("test JSON parses")
    }

    #[test]
    fn direction_heuristics() {
        assert_eq!(direction_for("mem.peak_bytes"), Direction::LowerIsBetter);
        assert_eq!(direction_for("wall_ns"), Direction::LowerIsBetter);
        assert_eq!(direction_for("seconds_threads_1"), Direction::LowerIsBetter);
        assert_eq!(direction_for("speedup"), Direction::HigherIsBetter);
        assert_eq!(
            direction_for("sched.utilization"),
            Direction::HigherIsBetter
        );
        assert_eq!(
            direction_for("configs.Eager.seq16_batch2.rate"),
            Direction::HigherIsBetter
        );
        assert_eq!(direction_for("threads"), Direction::Informational);
        assert_eq!(
            direction_for("sched.workers[0].busy_ns"),
            Direction::Informational,
            "per-worker breakdown never gates"
        );
        assert_eq!(
            direction_for("critical_path.path_ns"),
            Direction::Informational
        );
    }

    #[test]
    fn self_diff_has_zero_regressions() {
        let doc = v(
            r#"{"wall_ns": 123456, "speedup": 1.8, "mem": {"peak_bytes": 4096},
                        "bitwise_identical": true, "threads": 4}"#,
        );
        let r = diff(&doc, &doc, &Tolerance::default());
        assert!(r.passed());
        assert_eq!(r.regressions().count(), 0);
        assert!(r.compared >= 4);
    }

    #[test]
    fn slower_time_and_lower_speedup_regress() {
        let base = v(r#"{"seconds_threads_1": 1.0, "speedup": 2.0}"#);
        let cur = v(r#"{"seconds_threads_1": 1.6, "speedup": 1.2}"#);
        let r = diff(&base, &cur, &Tolerance::default());
        assert_eq!(r.regressions().count(), 2, "{:#?}", r.findings);
        // within a wide tolerance the same change passes
        let wide = Tolerance {
            rel: 0.75,
            ..Tolerance::default()
        };
        assert!(diff(&base, &cur, &wide).passed());
    }

    #[test]
    fn improvements_and_info_do_not_fail() {
        let base = v(r#"{"wall_ns": 1000, "speedup": 1.0, "threads": 2}"#);
        let cur = v(r#"{"wall_ns": 400, "speedup": 3.0, "threads": 8}"#);
        let r = diff(&base, &cur, &Tolerance::default());
        assert!(r.passed());
        assert!(r
            .findings
            .iter()
            .any(|f| f.kind == FindingKind::Improvement));
        assert!(r
            .findings
            .iter()
            .any(|f| f.path == "threads" && f.kind == FindingKind::Info));
    }

    #[test]
    fn missing_metric_fails_gate() {
        let base = v(r#"{"mem": {"peak_bytes": 4096}}"#);
        let cur = v(r#"{"mem": {}}"#);
        let r = diff(&base, &cur, &Tolerance::default());
        assert!(!r.passed());
        assert!(matches!(r.findings[0].kind, FindingKind::Missing));
    }

    #[test]
    fn bool_must_hold() {
        let base = v(r#"{"bitwise_identical": true}"#);
        let cur = v(r#"{"bitwise_identical": false}"#);
        assert!(!diff(&base, &cur, &Tolerance::default()).passed());
    }

    #[test]
    fn per_metric_override_wins() {
        let base = v(r#"{"speedup": 2.0, "wall_ns": 1000}"#);
        let cur = v(r#"{"speedup": 1.3, "wall_ns": 1300}"#);
        // default 25% would fail both; override speedup to 50% and
        // wall_ns to 40%
        let tol = Tolerance {
            rel: 0.25,
            abs: 0.0,
            overrides: vec![("speedup".to_string(), 0.5), ("wall_ns".to_string(), 0.4)],
        };
        assert!(diff(&base, &cur, &tol).passed(), "overrides widen the gate");
    }

    #[test]
    fn zero_baseline_does_not_divide_by_zero() {
        let base = v(r#"{"wall_ns": 0}"#);
        let cur = v(r#"{"wall_ns": 50}"#);
        let tol = Tolerance {
            abs: 100.0,
            ..Tolerance::default()
        };
        assert!(diff(&base, &cur, &tol).passed(), "within absolute slack");
        let tight = Tolerance::default();
        assert!(!diff(&base, &cur, &tight).passed());
    }
}
