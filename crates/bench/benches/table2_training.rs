//! Criterion tracking for Table 2: linear-model SGD in all four
//! configurations (25 steps per iteration).

use autograph_graph::Session;
use autograph_models::data::synthetic_mnist;
use autograph_models::mnist;
use autograph_tensor::Tensor;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let batch = 32;
    let steps = 25;
    let (images, labels) = synthetic_mnist(mnist::NUM_BATCHES, batch, 99);
    let params = mnist::LinearParams::new(1);

    let mut g = c.benchmark_group("table2_training");
    g.sample_size(10).measurement_time(Duration::from_secs(3));

    let mut rt = mnist::runtime(false).expect("load");
    g.bench_function("eager", |b| {
        b.iter(|| mnist::run_eager(&mut rt, &images, &labels, &params, steps).expect("run"))
    });

    let (graph, train_op) = mnist::build_step_graph(&params);
    let mut sess = Session::new(graph);
    g.bench_function("graph_model_host_loop", |b| {
        b.iter(|| mnist::run_host_loop(&mut sess, train_op, &images, &labels, steps).expect("run"))
    });

    let (g3, fetches) = mnist::build_ingraph_loop(&params);
    let mut sess3 = Session::new(g3);
    let feeds3 = [
        ("images", images.clone()),
        ("labels", labels.clone()),
        ("steps", Tensor::scalar_i64(steps as i64)),
    ];
    g.bench_function("in_graph_loop", |b| {
        b.iter(|| sess3.run(&feeds3, &fetches).expect("run"))
    });

    let mut rt4 = mnist::runtime(true).expect("load");
    let staged = mnist::stage_autograph(&mut rt4).expect("stage");
    let mut sess4 = Session::new(staged.graph);
    let feeds4 = [
        ("images", images.clone()),
        ("labels", labels.clone()),
        ("w", params.w.clone()),
        ("b", params.b.clone()),
        ("steps", Tensor::scalar_i64(steps as i64)),
    ];
    g.bench_function("autograph_loop", |b| {
        b.iter(|| sess4.run(&feeds4, &staged.outputs).expect("run"))
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
