//! Criterion tracking for Table 3: one TreeLSTM SGD step, eager vs
//! AutoGraph→Lantern.

use autograph_lantern::Engine;
use autograph_models::data::{random_tree_lantern, random_tree_value};
use autograph_models::treelstm;
use autograph_tensor::{Rng64, Tensor};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let dim = 8;
    let leaves = 12;
    let weights = treelstm::TreeWeights::new(dim, 2, 11);
    let label = Tensor::from_vec_i64(vec![1], &[1]).expect("label");

    let mut g = c.benchmark_group("table3_treelstm");
    g.sample_size(20).measurement_time(Duration::from_secs(2));

    let mut rng = Rng64::new(33);
    let tree_v = random_tree_value(&mut rng, leaves, dim);
    let mut rng = Rng64::new(33);
    let tree_l = random_tree_lantern(&mut rng, leaves, dim);

    let mut rt = treelstm::eager_runtime(&weights).expect("load");
    let mut w1 = weights.clone();
    g.bench_function("eager_pytorch_style", |b| {
        b.iter(|| {
            treelstm::eager_train_step(&mut rt, &tree_v, &label, &mut w1, 0.01).expect("step")
        })
    });

    let engine = Engine::new(treelstm::stage_lantern(&weights).expect("stage"));
    let mut w2 = weights.clone();
    g.bench_function("autograph_lantern", |b| {
        b.iter(|| {
            treelstm::lantern_train_step(&engine, &tree_l, &label, &mut w2, 0.01).expect("step")
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
