//! Criterion tracking for the Appendix D workloads, eager vs staged, one
//! representative configuration each.

use autograph_graph::Session;
use autograph_tensor::Tensor;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_beam(c: &mut Criterion) {
    use autograph_models::beam;
    let cfg = beam::BeamConfig {
        beam: 4,
        vocab: 64,
        hidden: 16,
        eos: 0,
    };
    let w = beam::BeamWeights::new(&cfg, 4);
    let init = beam::init_state(&cfg, 9);
    let max_len = 16;

    let mut g = c.benchmark_group("d1_beam");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    let mut rt = beam::runtime(&cfg, false).expect("load");
    g.bench_function("eager", |b| {
        b.iter(|| beam::run_eager(&mut rt, &w, &init, max_len).expect("run"))
    });
    let mut rt2 = beam::runtime(&cfg, true).expect("load");
    let staged = beam::stage(&mut rt2, &w).expect("stage");
    let mut sess = Session::new(staged.graph);
    let feeds = [
        ("init_state", init.clone()),
        ("max_len", Tensor::scalar_i64(max_len as i64)),
    ];
    g.bench_function("autograph", |b| {
        b.iter(|| sess.run(&feeds, &staged.outputs).expect("run"))
    });
    g.finish();
}

fn bench_lbfgs(c: &mut Criterion) {
    use autograph_models::lbfgs;
    let p = lbfgs::LbfgsProblem::new(8, 10, 17);
    let start = lbfgs::x0(p.n);
    let iters = 10;

    let mut g = c.benchmark_group("d2_lbfgs");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    let mut rt = lbfgs::runtime(&p, false, true).expect("load");
    g.bench_function("eager", |b| {
        b.iter(|| lbfgs::run_eager(&mut rt, &start, iters).expect("run"))
    });
    let mut rt2 = lbfgs::runtime(&p, true, false).expect("load");
    let staged = lbfgs::stage(&mut rt2).expect("stage");
    let mut sess = Session::new(staged.graph);
    let feeds = [
        ("x0", start.clone()),
        ("iters", Tensor::scalar_i64(iters as i64)),
    ];
    g.bench_function("autograph", |b| {
        b.iter(|| sess.run(&feeds, &staged.outputs).expect("run"))
    });
    g.finish();
}

fn bench_maml(c: &mut Criterion) {
    use autograph_models::maml;
    let num_tasks = 4;
    let params = maml::MamlParams::new(16, 3);
    let batch = maml::sample_tasks(num_tasks, 10, 10);

    let mut g = c.benchmark_group("d3_maml");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    let mut rt = maml::runtime(num_tasks, false, true).expect("load");
    g.bench_function("eager", |b| {
        b.iter(|| maml::run_eager(&mut rt, &batch, &params).expect("run"))
    });
    let mut rt2 = maml::runtime(num_tasks, true, false).expect("load");
    let staged = maml::stage(&mut rt2).expect("stage");
    let mut sess = Session::new(staged.graph);
    let feeds = maml::feeds(&batch, &params);
    g.bench_function("autograph", |b| {
        b.iter(|| sess.run(&feeds, &staged.outputs).expect("run"))
    });
    g.finish();
}

fn bench_seq2seq(c: &mut Criterion) {
    use autograph_models::seq2seq;
    let cfg = seq2seq::Seq2SeqConfig {
        vocab: 64,
        hidden: 16,
        batch: 4,
        src_len: 16,
        tgt_len: 16,
        teacher_forcing: false,
    };
    let w = seq2seq::Seq2SeqWeights::new(&cfg, 8);
    let (src, tgt) = seq2seq::sequences(&cfg, 21);

    let mut g = c.benchmark_group("d4_seq2seq");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    let mut rt = seq2seq::runtime(&cfg, &w, false).expect("load");
    g.bench_function("eager", |b| {
        b.iter(|| seq2seq::run_eager(&mut rt, &src, &tgt).expect("run"))
    });
    let mut rt2 = seq2seq::runtime(&cfg, &w, true).expect("load");
    let staged = seq2seq::stage(&mut rt2).expect("stage");
    let mut sess = Session::new(staged.graph);
    let feeds = [("src_t", src.clone()), ("tgt_t", tgt.clone())];
    g.bench_function("autograph", |b| {
        b.iter(|| sess.run(&feeds, &staged.outputs).expect("run"))
    });
    g.finish();
}

criterion_group!(benches, bench_beam, bench_lbfgs, bench_maml, bench_seq2seq);
criterion_main!(benches);
