//! Criterion tracking for Table 1: the dynamic RNN in all four
//! configurations at one laptop-scale grid point.

use autograph_graph::Session;
use autograph_models::rnn;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let (batch, time, feat, hidden) = (8, 16, 8, 16);
    let weights = rnn::RnnWeights::new(feat, hidden, 42);
    let inp = rnn::inputs(batch, time, feat, hidden, 7);
    let feeds = [
        ("input_data", inp.input_data.clone()),
        ("initial_state", inp.initial_state.clone()),
        ("sequence_len", inp.sequence_len.clone()),
    ];

    let mut g = c.benchmark_group("table1_rnn");
    g.sample_size(20).measurement_time(Duration::from_secs(2));

    let mut rt = rnn::runtime(&weights, false).expect("load");
    g.bench_function("eager", |b| {
        b.iter(|| rnn::run_eager(&mut rt, &inp).expect("run"))
    });

    g.bench_function("official", |b| {
        b.iter(|| rnn::official(&weights, &inp).expect("run"))
    });

    let (graph, fetches) = rnn::build_handwritten(&weights);
    let mut sess = Session::new(graph);
    g.bench_function("handwritten", |b| {
        b.iter(|| sess.run(&feeds, &fetches).expect("run"))
    });

    let mut rt2 = rnn::runtime(&weights, true).expect("load");
    let staged = rnn::stage_autograph(&mut rt2).expect("stage");
    let mut sess2 = Session::new(staged.graph);
    g.bench_function("autograph", |b| {
        b.iter(|| sess2.run(&feeds, &staged.outputs).expect("run"))
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
