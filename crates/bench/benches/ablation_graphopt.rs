//! Criterion ablation: graph optimization passes on/off, plus the §6
//! dynamic-dispatch overhead on unstaged code.

use autograph_graph::{optimize::optimize, Session};
use autograph_models::rnn;
use autograph_runtime::{Runtime, Value};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_graphopt(c: &mut Criterion) {
    let (batch, time, feat, hidden) = (8, 16, 8, 16);
    let weights = rnn::RnnWeights::new(feat, hidden, 42);
    let inp = rnn::inputs(batch, time, feat, hidden, 7);
    let feeds = [
        ("input_data", inp.input_data.clone()),
        ("initial_state", inp.initial_state.clone()),
        ("sequence_len", inp.sequence_len.clone()),
    ];

    let mut rt = rnn::runtime(&weights, true).expect("load");
    let staged = rnn::stage_autograph(&mut rt).expect("stage");
    let (og, outputs, _) = optimize(&staged.graph, &staged.outputs);

    let mut g = c.benchmark_group("ablation_graphopt");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    let mut sess_raw = Session::new(staged.graph.clone());
    g.bench_function("unoptimized", |b| {
        b.iter(|| sess_raw.run(&feeds, &staged.outputs).expect("run"))
    });
    let mut sess_opt = Session::new(og);
    g.bench_function("optimized", |b| {
        b.iter(|| sess_opt.run(&feeds, &outputs).expect("run"))
    });
    g.finish();
}

fn bench_dispatch(c: &mut Criterion) {
    let src = "\
def count(n):
    total = 0
    i = 0
    while i < n:
        if i % 3 == 0:
            total = total + i
        i = i + 1
    return total
";
    let n = 500i64;
    let mut plain = Runtime::load(src, false).expect("load");
    let mut conv = Runtime::load(src, true).expect("load");

    let mut g = c.benchmark_group("ablation_dispatch");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    g.bench_function("unconverted", |b| {
        b.iter(|| plain.call("count", vec![Value::Int(n)]).expect("run"))
    });
    g.bench_function("converted_unstaged", |b| {
        b.iter(|| conv.call("count", vec![Value::Int(n)]).expect("run"))
    });
    g.finish();
}

criterion_group!(benches, bench_graphopt, bench_dispatch);
criterion_main!(benches);
