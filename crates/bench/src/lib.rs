//! # autograph-bench
//!
//! The benchmark harness that regenerates every table in the paper's
//! evaluation. Each `src/bin/*` binary prints one table in the paper's
//! format (means ± standard deviations over repeated runs); the
//! `benches/*` Criterion targets track the same workloads for regression.
//!
//! Absolute numbers will not match the paper's testbeds (see DESIGN.md);
//! the *shape* — which configuration wins and by roughly what factor —
//! is the reproduction target, recorded in EXPERIMENTS.md.

use std::time::Instant;

/// Mean/standard deviation of a set of timed runs.
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    /// Mean seconds per run.
    pub mean: f64,
    /// Standard deviation of seconds per run.
    pub std: f64,
}

impl Stats {
    /// Convert to a rate (`units_per_run / seconds`), with the std
    /// propagated to first order.
    pub fn rate(&self, units_per_run: f64) -> Stats {
        let mean = units_per_run / self.mean;
        let std = if self.mean > 0.0 {
            mean * (self.std / self.mean)
        } else {
            0.0
        };
        Stats { mean, std }
    }

    /// `mean ± std` with a scale factor (e.g. 1e-3 for thousands).
    pub fn display(&self, scale: f64, decimals: usize) -> String {
        format!(
            "{:.prec$} ± {:.prec$}",
            self.mean * scale,
            self.std * scale,
            prec = decimals
        )
    }
}

/// Time `runs` invocations of `f` after `warmup` untimed ones.
///
/// # Panics
///
/// Panics when `runs == 0`.
pub fn measure(warmup: usize, runs: usize, mut f: impl FnMut()) -> Stats {
    assert!(runs > 0, "need at least one measured run");
    for _ in 0..warmup {
        f();
    }
    let mut samples = Vec::with_capacity(runs);
    for _ in 0..runs {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed().as_secs_f64());
    }
    // shared machines produce heavy-tailed samples; trim the extremes
    // (interquartile mean) so one preempted run cannot dominate
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    let trim = samples.len() / 4;
    let core = &samples[trim..samples.len() - trim];
    let mean = core.iter().sum::<f64>() / core.len() as f64;
    let var = core.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / core.len() as f64;
    Stats {
        mean,
        std: var.sqrt(),
    }
}

/// Print a fixed-width table row.
pub fn row(label: &str, cells: &[String]) {
    print!("{label:<34}");
    for c in cells {
        print!("{c:>22}");
    }
    println!();
}

/// Print a rule line sized for `n` cells.
pub fn rule(n: usize) {
    println!("{}", "-".repeat(34 + 22 * n));
}

/// Parse `--full` / `--runs N` / `--profile PATH` / `--threads N` /
/// `--json PATH` / `--json-table PATH` / `--report PATH` style flags
/// from `std::env::args`.
pub struct HarnessArgs {
    /// Use paper-scale workloads (slow) instead of laptop-scale defaults.
    pub full: bool,
    /// Measured runs per configuration.
    pub runs: usize,
    /// Write a Chrome trace (`chrome://tracing` JSON) to this path and
    /// print a per-op summary table at exit.
    pub profile: Option<String>,
    /// Executor thread count (`--threads N`); `None` leaves the session
    /// default resolution (`AUTOGRAPH_THREADS`, then machine
    /// parallelism) in effect.
    pub threads: Option<usize>,
    /// Write machine-readable results as JSON to this path (`--json`).
    pub json: Option<String>,
    /// Write the benchmark's main table as JSON to this path
    /// (`--json-table`) — input for `autograph-report diff`.
    pub json_table: Option<String>,
    /// Run one reported session pass and write its `RunReport` JSON to
    /// this path (`--report`).
    pub report: Option<String>,
    /// Remaining positional arguments.
    pub rest: Vec<String>,
}

impl HarnessArgs {
    /// Parse from the process arguments.
    pub fn parse() -> HarnessArgs {
        let mut full = false;
        let mut runs = 5;
        let mut profile = None;
        let mut threads = None;
        let mut json = None;
        let mut json_table = None;
        let mut report = None;
        let mut rest = Vec::new();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--full" => full = true,
                "--runs" => {
                    runs = args.next().and_then(|v| v.parse().ok()).unwrap_or(runs);
                }
                "--profile" => profile = args.next(),
                "--threads" => threads = args.next().and_then(|v| v.parse().ok()),
                "--json" => json = args.next(),
                "--json-table" => json_table = args.next(),
                "--report" => report = args.next(),
                other => rest.push(other.to_string()),
            }
        }
        HarnessArgs {
            full,
            runs,
            profile,
            threads,
            json,
            json_table,
            rest,
            report,
        }
    }

    /// Apply `--threads` to the process: raise the worker-pool budget and
    /// set the session default so every `Session::run` in the benchmark
    /// uses it. A no-op without the flag (sessions then fall back to
    /// `AUTOGRAPH_THREADS` / machine parallelism).
    pub fn apply_threads(&self) -> usize {
        let n = self
            .threads
            .unwrap_or_else(autograph_par::available_parallelism);
        if self.threads.is_some() {
            autograph_par::configure(n);
            autograph_graph::session::set_default_threads(n);
        }
        n
    }

    /// Start profiling if `--profile` was given. Call
    /// [`Profiler::finish`] after the workload to write the trace and
    /// print the summary. Inert (and free) without the flag.
    pub fn profiler(&self) -> Profiler {
        Profiler::start(self.profile.clone())
    }
}

/// Bench-side exporter: installs a fan-out of a Chrome-trace buffer and
/// an aggregating recorder, then writes the trace file and prints the
/// per-op summary table (sorted by total self-time) on [`Profiler::finish`].
pub struct Profiler {
    sinks: Option<(
        std::sync::Arc<autograph_obs::TraceRecorder>,
        std::sync::Arc<autograph_obs::AggregateRecorder>,
        String,
    )>,
}

impl Profiler {
    /// Install recorders when `path` is given; otherwise a no-op guard.
    pub fn start(path: Option<String>) -> Profiler {
        use std::sync::Arc;
        let sinks = path.map(|path| {
            let trace = Arc::new(autograph_obs::TraceRecorder::new());
            let agg = Arc::new(autograph_obs::AggregateRecorder::new());
            autograph_obs::install(Arc::new(autograph_obs::FanoutRecorder::new(vec![
                trace.clone() as Arc<dyn autograph_obs::Recorder>,
                agg.clone() as Arc<dyn autograph_obs::Recorder>,
            ])));
            (trace, agg, path)
        });
        Profiler { sinks }
    }

    /// Write the Chrome trace and print the summary table. Also prints the
    /// `PROFILE_NODES` aggregate when the env-var bootstrap was active.
    pub fn finish(self) {
        if let Some((trace, agg, path)) = self.sinks {
            autograph_obs::uninstall();
            match trace.write_to(&path) {
                Ok(()) => eprintln!("\nwrote Chrome trace to {path} (open in chrome://tracing)"),
                Err(e) => eprintln!("\nfailed to write Chrome trace to {path}: {e}"),
            }
            println!("\n{}", agg.summary().render_table());
        } else if let Some(summary) = autograph_obs::env::installed_summary() {
            // PROFILE_NODES=1 path: no trace file, but show the aggregate
            println!("\n{}", summary.render_table());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_counts_runs() {
        let mut n = 0;
        let s = measure(2, 3, || n += 1);
        assert_eq!(n, 5);
        assert!(s.mean >= 0.0 && s.std >= 0.0);
    }

    #[test]
    fn rate_inverts_mean() {
        let s = Stats {
            mean: 0.5,
            std: 0.05,
        };
        let r = s.rate(100.0);
        assert!((r.mean - 200.0).abs() < 1e-9);
        assert!((r.std - 20.0).abs() < 1e-9);
    }

    #[test]
    fn display_scales() {
        let s = Stats {
            mean: 1234.5,
            std: 67.8,
        };
        assert_eq!(s.display(1e-3, 2), "1.23 ± 0.07");
    }
}
