//! Cold-vs-warm staging benchmark for the persistent plan cache.
//!
//! Measures the full cold pipeline (lex → parse → convert → stage →
//! optimize → shape-check → compile) against a warm start that
//! deserializes the same program's optimized graph + VM bytecode from
//! an on-disk [`PlanStore`] artifact. Two properties are enforced, not
//! just reported:
//!
//! 1. the warm path must never enter the staging pipeline — an
//!    [`AggregateRecorder`] is installed around the warm runs and any
//!    `staging/*` span row is a hard failure (exit 1);
//! 2. the warm best-of-N must be at least [`MIN_SPEEDUP`]× faster than
//!    the cold best-of-N (exit 1 otherwise).
//!
//! `--json PATH` emits `BENCH_stage.json` for the CI perf gate
//! (`autograph-report diff` against `baselines/BENCH_stage.json`):
//! `warm_speedup` gates as higher-is-better, and the two booleans are
//! must-hold.
//!
//! Usage: `stage_bench [--runs N] [--cache-dir DIR] [--lines N] [--json PATH]`

use autograph_obs as obs;
use autograph_planstore::PlanStore;
use autograph_runtime::plan_cache::compile_cached_with;
use autograph_tensor::Tensor;
use std::time::Instant;

/// The CI floor: warm restaging must beat cold staging by at least
/// this factor on the benchmark program.
const MIN_SPEEDUP: f64 = 5.0;

/// A staging-heavy PyLite program: a long straight-line chain of
/// elementwise ops (converter + optimizer + compiler all scale with
/// it) feeding a `while` loop, so the artifact carries subgraphs too.
fn build_src(lines: usize) -> String {
    let mut src = String::from("def f(x):\n    acc = x * 1.0001\n");
    for i in 0..lines {
        let c = 1.0 + (i % 7) as f64 * 1e-4;
        match i % 3 {
            0 => src.push_str(&format!("    acc = tf.tanh(acc * {c:.4}) + 0.125\n")),
            1 => src.push_str(&format!("    acc = acc + tf.sigmoid(acc) * {c:.4}\n")),
            _ => src.push_str(&format!("    acc = acc * {c:.4} - 0.0625\n")),
        }
    }
    src.push_str(
        "    i = tf.constant(0.0)\n    while i < 8.0:\n        acc = acc * 0.999 + 0.001\n        i = i + 1.0\n    return tf.reduce_sum(acc)\n",
    );
    src
}

fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let runs: usize = flag(&args, "--runs")
        .map(|v| v.parse().expect("--runs must be a number"))
        .unwrap_or(5);
    let lines: usize = flag(&args, "--lines")
        .map(|v| v.parse().expect("--lines must be a number"))
        .unwrap_or(120);
    let cache_dir = flag(&args, "--cache-dir")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| {
            std::env::temp_dir().join(format!("agplan-bench-{}", std::process::id()))
        });
    let json_path = flag(&args, "--json").map(str::to_string);

    let src = build_src(lines);
    let tag = autograph_planstore::VERSION_TAG;
    let probe = Tensor::from_vec(vec![0.5f32, -1.25, 2.0, 0.0], &[4]).expect("probe tensor");

    // fresh store; one untimed cold pass populates the artifact
    let _ = std::fs::remove_dir_all(&cache_dir);
    let store = PlanStore::open(&cache_dir).expect("open plan cache dir");
    let seeded = compile_cached_with(&src, "f", &["x"], Some(&store), tag).expect("seed staging");
    assert!(!seeded.from_cache, "fresh store reported a cache hit");

    // cold best-of-N: the full pipeline, no store in the loop
    let mut cold_best = f64::INFINITY;
    let mut cold_func = None;
    for _ in 0..runs {
        let t = Instant::now();
        let art = compile_cached_with(&src, "f", &["x"], None, tag).expect("cold staging");
        cold_best = cold_best.min(t.elapsed().as_secs_f64());
        cold_func = Some(art.func);
    }

    // warm best-of-N under an aggregate recorder: any `staging/*` span
    // firing here means the cache failed to skip the pipeline
    let recorder = std::sync::Arc::new(obs::AggregateRecorder::new());
    obs::install(recorder.clone());
    let mut warm_best = f64::INFINITY;
    let mut warm_func = None;
    for _ in 0..runs {
        let t = Instant::now();
        let art =
            compile_cached_with(&src, "f", &["x"], Some(&store), tag).expect("warm restaging");
        warm_best = warm_best.min(t.elapsed().as_secs_f64());
        assert!(art.from_cache, "populated store missed");
        warm_func = Some(art.func);
    }
    obs::uninstall();
    let summary = recorder.summary();
    let staging_rows: Vec<&str> = summary
        .rows
        .iter()
        .map(|r| r.key.as_str())
        .filter(|k| k.starts_with("staging/"))
        .collect();
    let warm_skips_staging = staging_rows.is_empty();

    // the warm function must not just be fast — it must be the same
    // function, bitwise
    let (mut cf, mut wf) = (
        cold_func.expect("cold runs executed"),
        warm_func.expect("warm runs executed"),
    );
    let a = cf.call(std::slice::from_ref(&probe)).expect("cold call");
    let b = wf.call(std::slice::from_ref(&probe)).expect("warm call");
    let bitwise_identical = a.len() == b.len()
        && a.iter().zip(&b).all(|(x, y)| {
            x.shape() == y.shape()
                && x.as_f32()
                    .ok()
                    .zip(y.as_f32().ok())
                    .is_some_and(|(xa, ya)| {
                        xa.iter().zip(ya).all(|(p, q)| p.to_bits() == q.to_bits())
                    })
        });

    let speedup = cold_best / warm_best;
    println!("Stage bench: cold staging vs warm plan-cache restore");
    println!(
        "source lines: {}   best of {runs} runs",
        src.lines().count()
    );
    println!("cold:  {:>9.3} ms", cold_best * 1e3);
    println!("warm:  {:>9.3} ms", warm_best * 1e3);
    println!("speedup: {speedup:.1}x   (floor {MIN_SPEEDUP}x)");
    println!("warm skipped staging pipeline: {warm_skips_staging}");
    println!("cold/warm results bitwise identical: {bitwise_identical}");

    if let Some(path) = &json_path {
        let json = format!(
            "{{\n  \"bench\": \"stage\",\n  \"runs\": {runs},\n  \"source_lines\": {},\n  \"cold_ms\": {:.6},\n  \"warm_ms\": {:.6},\n  \"warm_speedup\": {speedup:.6},\n  \"warm_skips_staging\": {warm_skips_staging},\n  \"bitwise_identical\": {bitwise_identical}\n}}\n",
            src.lines().count(),
            cold_best * 1e3,
            warm_best * 1e3,
        );
        match std::fs::write(path, json) {
            Ok(()) => eprintln!("wrote stage bench results to {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    let _ = std::fs::remove_dir_all(&cache_dir);

    if !warm_skips_staging {
        eprintln!("FAIL: warm start entered the staging pipeline: {staging_rows:?}");
        std::process::exit(1);
    }
    if !bitwise_identical {
        eprintln!("FAIL: warm results diverged from cold results");
        std::process::exit(1);
    }
    if speedup < MIN_SPEEDUP {
        eprintln!("FAIL: warm speedup {speedup:.1}x is below the {MIN_SPEEDUP}x floor");
        std::process::exit(1);
    }
}
