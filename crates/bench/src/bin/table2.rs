//! Regenerates **Table 2 — Model and Training Loop (SGD steps/sec)** plus
//! the two in-text §9 claims (graph ~75% faster than eager; in-graph loop
//! a further ~30%).

use autograph_bench::{measure, row, rule, HarnessArgs};
use autograph_graph::Session;
use autograph_models::data::synthetic_mnist;
use autograph_models::mnist;
use autograph_tensor::Tensor;

fn main() {
    let args = HarnessArgs::parse();
    args.apply_threads();
    let profiler = args.profiler();
    let (batch, steps) = if args.full { (200, 1000) } else { (64, 100) };
    let warmup = 1;
    let runs = args.runs.max(3);

    println!("Table 2. Model and Training Loop (SGD steps/sec)");
    println!("batch={batch} steps-per-run={steps} warmup={warmup} runs={runs}\n");
    row("Configuration", &["SGD steps / sec".to_string()]);
    rule(1);

    let (images, labels) = synthetic_mnist(mnist::NUM_BATCHES, batch, 99);
    let params = mnist::LinearParams::new(1);
    let steps_f = steps as f64;

    // 1. Eager
    let mut rt = mnist::runtime(false).expect("load");
    let eager = measure(warmup, runs, || {
        mnist::run_eager(&mut rt, &images, &labels, &params, steps).expect("eager");
    });
    row("Eager", &[eager.rate(steps_f).display(1.0, 1)]);

    // 2. Model In Graph, Loop In Python (host loop, one run per step)
    let (g, train_op) = mnist::build_step_graph(&params);
    let mut sess = Session::new(g);
    let host = measure(warmup, runs, || {
        mnist::run_host_loop(&mut sess, train_op, &images, &labels, steps).expect("host loop");
    });
    row(
        "Model In Graph, Loop In Python",
        &[host.rate(steps_f).display(1.0, 1)],
    );

    // 3. Model And Loop In Graph (handwritten while_loop)
    let (g3, fetches) = mnist::build_ingraph_loop(&params);
    let mut sess3 = Session::new(g3);
    let feeds = [
        ("images", images.clone()),
        ("labels", labels.clone()),
        ("steps", Tensor::scalar_i64(steps as i64)),
    ];
    let ingraph = measure(warmup, runs, || {
        sess3.run(&feeds, &fetches).expect("in-graph loop");
    });
    row(
        "Model And Loop In Graph",
        &[ingraph.rate(steps_f).display(1.0, 1)],
    );

    // 4. Model And Loop In AutoGraph
    let mut rt4 = mnist::runtime(true).expect("load");
    let staged = mnist::stage_autograph(&mut rt4).expect("stage");
    let mut sess4 = Session::new(staged.graph);
    let outputs = staged.outputs.clone();
    let feeds4 = [
        ("images", images.clone()),
        ("labels", labels.clone()),
        ("w", params.w.clone()),
        ("b", params.b.clone()),
        ("steps", Tensor::scalar_i64(steps as i64)),
    ];
    let autograph = measure(warmup, runs, || {
        sess4.run(&feeds4, &outputs).expect("autograph loop");
    });
    row(
        "Model And Loop In AutoGraph",
        &[autograph.rate(steps_f).display(1.0, 1)],
    );
    rule(1);

    let host_vs_eager = eager.mean / host.mean;
    let ingraph_vs_host = host.mean / ingraph.mean;
    println!(
        "\ngraph/Python-loop vs eager: {:.2}x (paper: ~1.75x)",
        host_vs_eager
    );
    println!(
        "in-graph loop vs graph/Python-loop: {:.2}x (paper: ~1.3x)",
        ingraph_vs_host
    );
    println!(
        "AutoGraph vs handwritten in-graph: {:.2}x (paper: ~0.96x)",
        ingraph.mean / autograph.mean
    );
    profiler.finish();
}
