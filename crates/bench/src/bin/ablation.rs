//! Ablations for the design choices DESIGN.md calls out:
//!
//! * `ablation graphopt` — whole-graph optimization on/off (constant
//!   folding + CSE + DCE) on the staged RNN;
//! * `ablation dispatch` — the §6 claim that dynamic dispatch makes
//!   *unstaged* converted code slower than unconverted code;
//! * `ablation amortize` — staging cost vs per-run cost: how many runs it
//!   takes for AutoGraph's one-time conversion+staging to pay for itself
//!   against eager execution.

use autograph_bench::{measure, row, rule, HarnessArgs};
use autograph_graph::{optimize::optimize, Session};
use autograph_models::rnn;
use autograph_runtime::{Runtime, Value};

fn ablate_graphopt(args: &HarnessArgs) {
    println!("\nAblation: graph optimization passes (staged RNN)\n");
    let (batch, seq, feat, hidden) = (8, 16, 8, 32);
    let weights = rnn::RnnWeights::new(feat, hidden, 42);
    let inp = rnn::inputs(batch, seq, feat, hidden, 7);
    let mut rt = rnn::runtime(&weights, true).expect("load");
    let staged = rnn::stage_autograph(&mut rt).expect("stage");

    let raw_nodes = staged.graph.deep_len();
    let (opt_graph, opt_outputs, stats) = optimize(&staged.graph, &staged.outputs);
    let opt_nodes = opt_graph.deep_len();
    println!(
        "nodes: {raw_nodes} -> {opt_nodes}  (folded {}, deduped {}, eliminated {})\n",
        stats.folded, stats.deduped, stats.eliminated
    );

    let feeds = [
        ("input_data", inp.input_data.clone()),
        ("initial_state", inp.initial_state.clone()),
        ("sequence_len", inp.sequence_len.clone()),
    ];
    let mut sess_raw = Session::new(staged.graph);
    let outputs = staged.outputs.clone();
    let t_raw = measure(2, args.runs, || {
        sess_raw.run(&feeds, &outputs).expect("raw");
    });
    let mut sess_opt = Session::new(opt_graph);
    let t_opt = measure(2, args.runs, || {
        sess_opt.run(&feeds, &opt_outputs).expect("opt");
    });
    row(
        "unoptimized graph",
        &[format!("{:.3} ms", t_raw.mean * 1e3)],
    );
    row("optimized graph", &[format!("{:.3} ms", t_opt.mean * 1e3)]);
    rule(1);
    println!("speedup: {:.2}x", t_raw.mean / t_opt.mean);
}

fn ablate_dispatch(args: &HarnessArgs) {
    println!("\nAblation: dynamic-dispatch overhead on unstaged code (§6)\n");
    // pure Python computation: converted code pays ag.* dispatch per
    // construct without any staging payoff
    let src = "\
def count(n):
    total = 0
    i = 0
    while i < n:
        if i % 3 == 0:
            total = total + i
        i = i + 1
    return total
";
    let n = 2000i64;
    let mut plain = Runtime::load(src, false).expect("load");
    let mut converted = Runtime::load(src, true).expect("load");
    let a = plain.call("count", vec![Value::Int(n)]).expect("run");
    let b = converted.call("count", vec![Value::Int(n)]).expect("run");
    assert!(a.py_eq(&b), "semantics preserved");

    let t_plain = measure(2, args.runs, || {
        plain.call("count", vec![Value::Int(n)]).expect("run");
    });
    let t_conv = measure(2, args.runs, || {
        converted.call("count", vec![Value::Int(n)]).expect("run");
    });
    row(
        "unconverted (native semantics)",
        &[format!("{:.3} ms", t_plain.mean * 1e3)],
    );
    row(
        "converted, unstaged",
        &[format!("{:.3} ms", t_conv.mean * 1e3)],
    );
    rule(1);
    println!(
        "dispatch overhead: {:.2}x slower (the paper: \"if AutoGraph was used to\n\
         perform normal unstaged Python computation, it would be slower\")",
        t_conv.mean / t_plain.mean
    );
}

fn ablate_amortize(args: &HarnessArgs) {
    println!("\nAblation: staging amortization (RNN workload)\n");
    let (batch, seq, feat, hidden) = (8, 16, 8, 32);
    let weights = rnn::RnnWeights::new(feat, hidden, 42);
    let inp = rnn::inputs(batch, seq, feat, hidden, 7);

    // one-time cost: convert + stage
    let t_stage = measure(1, args.runs, || {
        let mut rt = rnn::runtime(&weights, true).expect("load");
        rnn::stage_autograph(&mut rt).expect("stage");
    });

    // per-run costs
    let mut rt_eager = rnn::runtime(&weights, false).expect("load");
    let t_eager = measure(2, args.runs, || {
        rnn::run_eager(&mut rt_eager, &inp).expect("eager");
    });
    let mut rt = rnn::runtime(&weights, true).expect("load");
    let staged = rnn::stage_autograph(&mut rt).expect("stage");
    let mut sess = Session::new(staged.graph);
    let outputs = staged.outputs.clone();
    let feeds = [
        ("input_data", inp.input_data.clone()),
        ("initial_state", inp.initial_state.clone()),
        ("sequence_len", inp.sequence_len.clone()),
    ];
    let t_run = measure(2, args.runs, || {
        sess.run(&feeds, &outputs).expect("staged");
    });

    row(
        "convert + stage (once)",
        &[format!("{:.3} ms", t_stage.mean * 1e3)],
    );
    row("eager, per run", &[format!("{:.3} ms", t_eager.mean * 1e3)]);
    row("staged, per run", &[format!("{:.3} ms", t_run.mean * 1e3)]);
    rule(1);
    let gain = t_eager.mean - t_run.mean;
    if gain > 0.0 {
        println!(
            "staging pays for itself after {:.1} runs",
            t_stage.mean / gain
        );
    } else {
        println!("staging does not pay off at this size");
    }
}

fn main() {
    let args = HarnessArgs::parse();
    args.apply_threads();
    let profiler = args.profiler();
    let which = args.rest.first().map(String::as_str).unwrap_or("all");
    match which {
        "graphopt" => ablate_graphopt(&args),
        "dispatch" => ablate_dispatch(&args),
        "amortize" => ablate_amortize(&args),
        "all" => {
            ablate_graphopt(&args);
            ablate_dispatch(&args);
            ablate_amortize(&args);
        }
        other => {
            eprintln!("unknown ablation '{other}'; use graphopt|dispatch|amortize|all");
            std::process::exit(2);
        }
    }
    profiler.finish();
}
