//! Regenerates **Table 3 — TreeLSTM Targeting Lantern (SGD steps/sec)**:
//! the recursive sentiment model trained with batch size 1, eager
//! ("PyTorch"-style, interpreted + tape) vs AutoGraph→Lantern (staged
//! once, compiled IR + CPS-style AD).

use autograph_bench::{measure, row, rule, HarnessArgs};
use autograph_models::data::{random_tree_lantern, random_tree_value};
use autograph_models::treelstm;
use autograph_tensor::{Rng64, Tensor};

fn main() {
    let args = HarnessArgs::parse();
    args.apply_threads();
    let profiler = args.profiler();
    let (dim, leaves, examples) = if args.full { (64, 24, 20) } else { (8, 16, 10) };
    let warmup = 1;
    let runs = args.runs;
    let lr = 0.05;

    println!("Table 3. TreeLSTM Targeting Lantern (SGD steps/sec, batch 1)");
    println!("dim={dim} leaves/tree={leaves} examples-per-run={examples} runs={runs}\n");
    row("Configuration", &["SGD steps / sec".to_string()]);
    rule(1);

    let weights = treelstm::TreeWeights::new(dim, 2, 11);
    // identical forest in both value representations
    let trees_v: Vec<_> = (0..examples)
        .map(|i| {
            let mut rng = Rng64::new(1000 + i as u64);
            random_tree_value(&mut rng, leaves, dim)
        })
        .collect();
    let trees_l: Vec<_> = (0..examples)
        .map(|i| {
            let mut rng = Rng64::new(1000 + i as u64);
            random_tree_lantern(&mut rng, leaves, dim)
        })
        .collect();
    let labels: Vec<Tensor> = (0..examples)
        .map(|i| Tensor::from_vec_i64(vec![(i % 2) as i64], &[1]).expect("shape"))
        .collect();

    // Eager ("PyTorch"): interpret the recursion + tape per example
    let mut rt = treelstm::eager_runtime(&weights).expect("load");
    let mut w_eager = weights.clone();
    let eager = measure(warmup, runs, || {
        for (tree, label) in trees_v.iter().zip(&labels) {
            treelstm::eager_train_step(&mut rt, tree, label, &mut w_eager, lr).expect("step");
        }
    });
    row(
        "Loop and Model in PyTorch-style eager",
        &[eager.rate(examples as f64).display(1.0, 2)],
    );

    // AutoGraph -> Lantern: stage once, run the compiled engine
    let program = treelstm::stage_lantern(&weights).expect("stage");
    let engine = autograph_lantern::Engine::new(program);
    let mut w_lantern = weights.clone();
    let lantern = measure(warmup, runs, || {
        for (tree, label) in trees_l.iter().zip(&labels) {
            treelstm::lantern_train_step(&engine, tree, label, &mut w_lantern, lr).expect("step");
        }
    });
    row(
        "Loop and Model in AutoGraph/Lantern",
        &[lantern.rate(examples as f64).display(1.0, 2)],
    );
    rule(1);

    println!(
        "\nAutoGraph/Lantern speedup over eager: {:.2}x (paper: ~2.38x)",
        eager.mean / lantern.mean
    );
    profiler.finish();
}
