//! Regenerates **Table 1 — RNN Cell Performance (1K examples/sec)**.
//!
//! Four configurations (Eager / Official / Handwritten / AutoGraph) over
//! a grid of sequence lengths and batch sizes, hidden size 256 in `--full`
//! mode (the paper's setting) or a laptop-scale default otherwise.

use autograph_bench::{measure, row, rule, HarnessArgs};
use autograph_graph::Session;
use autograph_models::rnn;

fn main() {
    let args = HarnessArgs::parse();
    let threads = args.apply_threads();
    let profiler = args.profiler();
    let (hidden, feat, seqs, batches) = if args.full {
        (256, 64, vec![64, 128], vec![32, 64, 128])
    } else {
        (16, 8, vec![16, 32], vec![2, 4, 8])
    };
    let warmup = if args.full { 5 } else { 2 };
    let runs = args.runs;

    println!("Table 1. RNN Cell Performance (1K examples/sec)");
    println!("hidden={hidden} feat={feat} warmup={warmup} runs={runs}\n");
    let header: Vec<String> = seqs
        .iter()
        .flat_map(|s| batches.iter().map(move |b| format!("seq {s} / batch {b}")))
        .collect();
    row("Configuration", &header);
    rule(header.len());

    let weights = rnn::RnnWeights::new(feat, hidden, 42);
    let mut rows: Vec<(String, Vec<String>)> = vec![
        ("Eager".into(), vec![]),
        ("Official".into(), vec![]),
        ("Handwritten".into(), vec![]),
        ("AutoGraph".into(), vec![]),
    ];

    for &seq in &seqs {
        for &batch in &batches {
            let inp = rnn::inputs(batch, seq, feat, hidden, 7);
            let k_examples = batch as f64 / 1000.0;

            // Eager: interpret the imperative source per run
            let mut rt = rnn::runtime(&weights, false).expect("load");
            let s = measure(warmup, runs, || {
                rnn::run_eager(&mut rt, &inp).expect("eager run");
            });
            rows[0].1.push(s.rate(k_examples).display(1.0, 2));

            // Official: fused kernel
            let s = measure(warmup, runs, || {
                rnn::official(&weights, &inp).expect("official run");
            });
            rows[1].1.push(s.rate(k_examples).display(1.0, 2));

            // Handwritten graph
            let (g, fetches) = rnn::build_handwritten(&weights);
            let mut sess = Session::new(g);
            let feeds = [
                ("input_data", inp.input_data.clone()),
                ("initial_state", inp.initial_state.clone()),
                ("sequence_len", inp.sequence_len.clone()),
            ];
            let s = measure(warmup, runs, || {
                sess.run(&feeds, &fetches).expect("handwritten run");
            });
            rows[2].1.push(s.rate(k_examples).display(1.0, 2));

            // AutoGraph: converted + staged once, then Session::run
            let mut rt = rnn::runtime(&weights, true).expect("load");
            let staged = rnn::stage_autograph(&mut rt).expect("stage");
            let mut sess = Session::new(staged.graph);
            let outputs = staged.outputs.clone();
            let s = measure(warmup, runs, || {
                sess.run(&feeds, &outputs).expect("autograph run");
            });
            rows[3].1.push(s.rate(k_examples).display(1.0, 2));
        }
    }

    for (label, cells) in &rows {
        row(label, cells);
    }
    rule(header.len());
    println!("\nPaper shape: Eager slowest by ~2-3x; Official ≈ Handwritten ≈ AutoGraph.");

    multi_branch_section(&args, threads, hidden, feat, warmup, runs);
    profiler.finish();
}

/// Parallel-executor workload: K independent RNN `While` branches in one
/// graph, measured single-threaded and with the configured thread count.
/// Fetch outputs must be bitwise identical; the speedup (and machine
/// parallelism) go to stdout and optionally `--json`.
fn multi_branch_section(
    args: &HarnessArgs,
    threads: usize,
    hidden: usize,
    feat: usize,
    warmup: usize,
    runs: usize,
) {
    let branches = 4;
    let (seq, batch) = if args.full { (64, 64) } else { (16, 8) };
    let weights: Vec<rnn::RnnWeights> = (0..branches)
        .map(|k| rnn::RnnWeights::new(feat, hidden, 100 + k as u64))
        .collect();
    let inp = rnn::inputs(batch, seq, feat, hidden, 7);
    let feeds = [
        ("input_data", inp.input_data.clone()),
        ("initial_state", inp.initial_state.clone()),
        ("sequence_len", inp.sequence_len.clone()),
    ];
    let (g, fetches) = rnn::build_multi_branch(&weights);

    println!(
        "\nParallel executor: {branches} independent RNN branches (seq {seq} / batch {batch})"
    );
    let mut sess1 = Session::new(g.clone());
    sess1.set_threads(1);
    let out1 = sess1.run(&feeds, &fetches).expect("single-threaded run");
    let s1 = measure(warmup, runs, || {
        sess1.run(&feeds, &fetches).expect("single-threaded run");
    });

    let mut sess_n = Session::new(g);
    sess_n.set_threads(threads);
    let out_n = sess_n.run(&feeds, &fetches).expect("parallel run");
    let sn = measure(warmup, runs, || {
        sess_n.run(&feeds, &fetches).expect("parallel run");
    });

    // determinism gate: parallel fetches must be bitwise identical
    let mut identical = true;
    for (a, b) in out1.iter().zip(&out_n) {
        let (av, bv) = (a.as_f32().expect("f32"), b.as_f32().expect("f32"));
        identical &=
            a.shape() == b.shape() && av.iter().zip(bv).all(|(x, y)| x.to_bits() == y.to_bits());
    }
    assert!(identical, "parallel run diverged from single-threaded run");

    let speedup = s1.mean / sn.mean;
    row(
        "threads=1",
        &[format!("{:.3} ms", s1.mean * 1e3), String::new()],
    );
    row(
        &format!("threads={threads}"),
        &[
            format!("{:.3} ms", sn.mean * 1e3),
            format!("{speedup:.2}x speedup"),
        ],
    );
    println!("fetch outputs bitwise identical: {identical}");

    if let Some(path) = &args.json {
        let json = format!(
            "{{\n  \"bench\": \"table1_multi_branch\",\n  \"branches\": {branches},\n  \"seq\": {seq},\n  \"batch\": {batch},\n  \"threads\": {threads},\n  \"available_parallelism\": {},\n  \"seconds_threads_1\": {:.9},\n  \"seconds_threads_n\": {:.9},\n  \"speedup\": {speedup:.6},\n  \"bitwise_identical\": {identical}\n}}\n",
            autograph_par::available_parallelism(),
            s1.mean,
            sn.mean,
        );
        match std::fs::write(path, json) {
            Ok(()) => eprintln!("wrote parallel bench results to {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
}
