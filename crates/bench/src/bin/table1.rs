//! Regenerates **Table 1 — RNN Cell Performance (1K examples/sec)**.
//!
//! Five configurations (Eager / Official / Handwritten / AutoGraph in
//! both execution tiers) over a grid of sequence lengths and batch
//! sizes, hidden size 256 in `--full` mode (the paper's setting) or a
//! laptop-scale default otherwise. The staged AutoGraph graph is
//! measured twice — through the register-bytecode VM (the default
//! tier, fused elementwise kernels) and through the per-node
//! interpreter — so `--json-table` carries an exec-mode dimension the
//! perf gate can diff.

use autograph_bench::{measure, row, rule, HarnessArgs};
use autograph_graph::{ExecMode, Session};
use autograph_models::rnn;

fn main() {
    let args = HarnessArgs::parse();
    let threads = args.apply_threads();
    let profiler = args.profiler();
    let (hidden, feat, seqs, batches) = if args.full {
        (256, 64, vec![64, 128], vec![32, 64, 128])
    } else {
        (16, 8, vec![16, 32], vec![2, 4, 8])
    };
    let warmup = if args.full { 5 } else { 2 };
    let runs = args.runs;

    println!("Table 1. RNN Cell Performance (1K examples/sec)");
    println!("hidden={hidden} feat={feat} warmup={warmup} runs={runs}\n");
    let header: Vec<String> = seqs
        .iter()
        .flat_map(|s| batches.iter().map(move |b| format!("seq {s} / batch {b}")))
        .collect();
    row("Configuration", &header);
    rule(header.len());

    let weights = rnn::RnnWeights::new(feat, hidden, 42);
    let mut rows: Vec<(String, Vec<String>)> = vec![
        ("Eager".into(), vec![]),
        ("Official".into(), vec![]),
        ("Handwritten".into(), vec![]),
        ("AutoGraph (Vm)".into(), vec![]),
        ("AutoGraph (Interp)".into(), vec![]),
    ];
    // (config, cell, rate stats) for --json-table
    let mut cells: Vec<(usize, String, autograph_bench::Stats)> = Vec::new();

    for &seq in &seqs {
        for &batch in &batches {
            let inp = rnn::inputs(batch, seq, feat, hidden, 7);
            let k_examples = batch as f64 / 1000.0;
            let cell = format!("seq{seq}_batch{batch}");

            // Eager: interpret the imperative source per run
            let mut rt = rnn::runtime(&weights, false).expect("load");
            let s = measure(warmup, runs, || {
                rnn::run_eager(&mut rt, &inp).expect("eager run");
            })
            .rate(k_examples);
            rows[0].1.push(s.display(1.0, 2));
            cells.push((0, cell.clone(), s));

            // Official: fused kernel
            let s = measure(warmup, runs, || {
                rnn::official(&weights, &inp).expect("official run");
            })
            .rate(k_examples);
            rows[1].1.push(s.display(1.0, 2));
            cells.push((1, cell.clone(), s));

            // Handwritten graph
            let (g, fetches) = rnn::build_handwritten(&weights);
            let mut sess = Session::new(g);
            let feeds = [
                ("input_data", inp.input_data.clone()),
                ("initial_state", inp.initial_state.clone()),
                ("sequence_len", inp.sequence_len.clone()),
            ];
            let s = measure(warmup, runs, || {
                sess.run(&feeds, &fetches).expect("handwritten run");
            })
            .rate(k_examples);
            rows[2].1.push(s.display(1.0, 2));
            cells.push((2, cell.clone(), s));

            // AutoGraph: converted + staged once, then Session::run —
            // measured in both execution tiers over the same staged graph
            let mut rt = rnn::runtime(&weights, true).expect("load");
            let staged = rnn::stage_autograph(&mut rt).expect("stage");
            let outputs = staged.outputs.clone();
            for (ri, mode) in [(3, ExecMode::Vm), (4, ExecMode::Interp)] {
                let mut sess = Session::new(staged.graph.clone());
                sess.set_exec_mode(mode);
                let s = measure(warmup, runs, || {
                    sess.run(&feeds, &outputs).expect("autograph run");
                })
                .rate(k_examples);
                rows[ri].1.push(s.display(1.0, 2));
                cells.push((ri, cell.clone(), s));
            }
        }
    }

    for (label, cells) in &rows {
        row(label, cells);
    }
    rule(header.len());
    println!(
        "\nPaper shape: Eager slowest by ~2-3x; Official ≈ Handwritten ≈ AutoGraph (both tiers)."
    );

    if let Some(path) = &args.json_table {
        write_table_json(path, &args, threads, hidden, feat, &rows, &cells);
    }

    multi_branch_section(&args, threads, hidden, feat, warmup, runs);
    profiler.finish();
}

/// Emit the main table as JSON keyed `rates.<config>.<cell>.rate` —
/// `rate` gates as higher-is-better in `autograph-report diff`, `std`
/// stays informational.
fn write_table_json(
    path: &str,
    args: &HarnessArgs,
    threads: usize,
    hidden: usize,
    feat: usize,
    rows: &[(String, Vec<String>)],
    cells: &[(usize, String, autograph_bench::Stats)],
) {
    let mut json = String::from("{\n  \"bench\": \"table1\",\n");
    json.push_str(&format!(
        "  \"full\": {},\n  \"runs\": {},\n  \"threads\": {threads},\n  \"hidden\": {hidden},\n  \"feat\": {feat},\n  \"rates\": {{\n",
        args.full, args.runs
    ));
    for (ci, (config, _)) in rows.iter().enumerate() {
        json.push_str(&format!("    \"{config}\": {{"));
        let mut first = true;
        for (rc, cell, s) in cells.iter().filter(|(rc, _, _)| *rc == ci) {
            let _ = rc;
            if !first {
                json.push(',');
            }
            first = false;
            json.push_str(&format!(
                "\n      \"{cell}\": {{\"rate\": {:.6}, \"std\": {:.6}}}",
                s.mean, s.std
            ));
        }
        json.push_str("\n    }");
        if ci + 1 < rows.len() {
            json.push(',');
        }
        json.push('\n');
    }
    json.push_str("  }\n}\n");
    match std::fs::write(path, json) {
        Ok(()) => eprintln!("wrote table JSON to {path}"),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}

/// Parallel-executor workload: K independent RNN `While` branches in one
/// graph, measured single-threaded and with the configured thread count.
/// Fetch outputs must be bitwise identical; the speedup (and machine
/// parallelism) go to stdout and optionally `--json`.
fn multi_branch_section(
    args: &HarnessArgs,
    threads: usize,
    hidden: usize,
    feat: usize,
    warmup: usize,
    runs: usize,
) {
    let branches = 4;
    let (seq, batch) = if args.full { (64, 64) } else { (16, 8) };
    let weights: Vec<rnn::RnnWeights> = (0..branches)
        .map(|k| rnn::RnnWeights::new(feat, hidden, 100 + k as u64))
        .collect();
    let inp = rnn::inputs(batch, seq, feat, hidden, 7);
    let feeds = [
        ("input_data", inp.input_data.clone()),
        ("initial_state", inp.initial_state.clone()),
        ("sequence_len", inp.sequence_len.clone()),
    ];
    let (g, fetches) = rnn::build_multi_branch(&weights);

    println!(
        "\nParallel executor: {branches} independent RNN branches (seq {seq} / batch {batch})"
    );
    // this section benchmarks the wavefront scheduler, so pin the
    // interpretive tier: the bytecode VM executes linearly on the
    // calling thread and would erase the t1-vs-tN comparison
    let mut sess1 = Session::new(g.clone());
    sess1.set_exec_mode(ExecMode::Interp);
    sess1.set_threads(1);
    let out1 = sess1.run(&feeds, &fetches).expect("single-threaded run");
    let s1 = measure(warmup, runs, || {
        sess1.run(&feeds, &fetches).expect("single-threaded run");
    });

    let mut sess_n = Session::new(g);
    sess_n.set_exec_mode(ExecMode::Interp);
    sess_n.set_threads(threads);
    let out_n = sess_n.run(&feeds, &fetches).expect("parallel run");
    let sn = measure(warmup, runs, || {
        sess_n.run(&feeds, &fetches).expect("parallel run");
    });

    // determinism gate: parallel fetches must be bitwise identical
    let mut identical = true;
    for (a, b) in out1.iter().zip(&out_n) {
        let (av, bv) = (a.as_f32().expect("f32"), b.as_f32().expect("f32"));
        identical &=
            a.shape() == b.shape() && av.iter().zip(bv).all(|(x, y)| x.to_bits() == y.to_bits());
    }
    assert!(identical, "parallel run diverged from single-threaded run");

    let speedup = s1.mean / sn.mean;
    row(
        "threads=1",
        &[format!("{:.3} ms", s1.mean * 1e3), String::new()],
    );
    row(
        &format!("threads={threads}"),
        &[
            format!("{:.3} ms", sn.mean * 1e3),
            format!("{speedup:.2}x speedup"),
        ],
    );
    println!("fetch outputs bitwise identical: {identical}");

    if let Some(path) = &args.json {
        let json = format!(
            "{{\n  \"bench\": \"table1_multi_branch\",\n  \"branches\": {branches},\n  \"seq\": {seq},\n  \"batch\": {batch},\n  \"threads\": {threads},\n  \"available_parallelism\": {},\n  \"seconds_threads_1\": {:.9},\n  \"seconds_threads_n\": {:.9},\n  \"speedup\": {speedup:.6},\n  \"bitwise_identical\": {identical}\n}}\n",
            autograph_par::available_parallelism(),
            s1.mean,
            sn.mean,
        );
        match std::fs::write(path, json) {
            Ok(()) => eprintln!("wrote parallel bench results to {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }

    if let Some(path) = &args.report {
        // one fully-instrumented pass: memory accounting, scheduler
        // utilization and critical path for the multi-branch workload
        sess_n.set_reporting(true);
        sess_n.run(&feeds, &fetches).expect("reported run");
        let report = sess_n.last_report().expect("reporting was enabled");
        println!("\n{}", report.render_text());
        match std::fs::write(path, report.to_json()) {
            Ok(()) => eprintln!("wrote run report to {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
}
