//! Regenerates **Table 1 — RNN Cell Performance (1K examples/sec)**.
//!
//! Four configurations (Eager / Official / Handwritten / AutoGraph) over
//! a grid of sequence lengths and batch sizes, hidden size 256 in `--full`
//! mode (the paper's setting) or a laptop-scale default otherwise.

use autograph_bench::{measure, row, rule, HarnessArgs};
use autograph_graph::Session;
use autograph_models::rnn;

fn main() {
    let args = HarnessArgs::parse();
    let profiler = args.profiler();
    let (hidden, feat, seqs, batches) = if args.full {
        (256, 64, vec![64, 128], vec![32, 64, 128])
    } else {
        (16, 8, vec![16, 32], vec![2, 4, 8])
    };
    let warmup = if args.full { 5 } else { 2 };
    let runs = args.runs;

    println!("Table 1. RNN Cell Performance (1K examples/sec)");
    println!("hidden={hidden} feat={feat} warmup={warmup} runs={runs}\n");
    let header: Vec<String> = seqs
        .iter()
        .flat_map(|s| batches.iter().map(move |b| format!("seq {s} / batch {b}")))
        .collect();
    row("Configuration", &header);
    rule(header.len());

    let weights = rnn::RnnWeights::new(feat, hidden, 42);
    let mut rows: Vec<(String, Vec<String>)> = vec![
        ("Eager".into(), vec![]),
        ("Official".into(), vec![]),
        ("Handwritten".into(), vec![]),
        ("AutoGraph".into(), vec![]),
    ];

    for &seq in &seqs {
        for &batch in &batches {
            let inp = rnn::inputs(batch, seq, feat, hidden, 7);
            let k_examples = batch as f64 / 1000.0;

            // Eager: interpret the imperative source per run
            let mut rt = rnn::runtime(&weights, false).expect("load");
            let s = measure(warmup, runs, || {
                rnn::run_eager(&mut rt, &inp).expect("eager run");
            });
            rows[0].1.push(s.rate(k_examples).display(1.0, 2));

            // Official: fused kernel
            let s = measure(warmup, runs, || {
                rnn::official(&weights, &inp).expect("official run");
            });
            rows[1].1.push(s.rate(k_examples).display(1.0, 2));

            // Handwritten graph
            let (g, fetches) = rnn::build_handwritten(&weights);
            let mut sess = Session::new(g);
            let feeds = [
                ("input_data", inp.input_data.clone()),
                ("initial_state", inp.initial_state.clone()),
                ("sequence_len", inp.sequence_len.clone()),
            ];
            let s = measure(warmup, runs, || {
                sess.run(&feeds, &fetches).expect("handwritten run");
            });
            rows[2].1.push(s.rate(k_examples).display(1.0, 2));

            // AutoGraph: converted + staged once, then Session::run
            let mut rt = rnn::runtime(&weights, true).expect("load");
            let staged = rnn::stage_autograph(&mut rt).expect("stage");
            let mut sess = Session::new(staged.graph);
            let outputs = staged.outputs.clone();
            let s = measure(warmup, runs, || {
                sess.run(&feeds, &outputs).expect("autograph run");
            });
            rows[3].1.push(s.rate(k_examples).display(1.0, 2));
        }
    }

    for (label, cells) in &rows {
        row(label, cells);
    }
    rule(header.len());
    println!("\nPaper shape: Eager slowest by ~2-3x; Official ≈ Handwritten ≈ AutoGraph.");
    profiler.finish();
}
