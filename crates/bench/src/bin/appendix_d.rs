//! Regenerates the **Appendix D** speedup studies:
//!
//! * `appendix_d beam`    — D.1 beam search (sweep seq length × vocab)
//! * `appendix_d lbfgs`   — D.2 L-BFGS (batch 10)
//! * `appendix_d maml`    — D.3 MAML (1 vs 10 meta-tasks)
//! * `appendix_d seq2seq` — D.4 seq2seq (vocab sweep × teacher forcing)
//! * `appendix_d all`     — everything

use autograph_bench::{measure, row, rule, HarnessArgs, Stats};
use autograph_graph::Session;
use autograph_tensor::Tensor;

fn speedup(eager: Stats, staged: Stats) -> String {
    format!("{:.2}x", eager.mean / staged.mean)
}

fn bench_beam(args: &HarnessArgs) {
    use autograph_models::beam;
    println!("\nAppendix D.1 — Beam search (AutoGraph speedup over Eager)");
    println!("paper: 2x-3.2x, growing with sequence length, shrinking with vocab\n");
    let (lens, vocabs) = if args.full {
        (vec![32usize, 64, 128], vec![64usize, 512, 4096])
    } else {
        (vec![16usize, 32], vec![32usize, 256])
    };
    let header: Vec<String> = vocabs.iter().map(|v| format!("vocab {v}")).collect();
    row("max_len", &header);
    rule(header.len());
    for &len in &lens {
        let mut cells = Vec::new();
        for &vocab in &vocabs {
            let cfg = beam::BeamConfig {
                beam: 4,
                vocab,
                hidden: 32,
                eos: 0,
            };
            let w = beam::BeamWeights::new(&cfg, 4);
            let init = beam::init_state(&cfg, 9);

            let mut rt = beam::runtime(&cfg, false).expect("load");
            let eager = measure(1, args.runs, || {
                beam::run_eager(&mut rt, &w, &init, len).expect("eager");
            });

            let mut rt2 = beam::runtime(&cfg, true).expect("load");
            let staged = beam::stage(&mut rt2, &w).expect("stage");
            let before = staged.graph.deep_len();
            let (og, outputs, _) =
                autograph_graph::optimize::optimize(&staged.graph, &staged.outputs);
            eprintln!("beam graph nodes: {before} -> {}", og.deep_len());
            let mut sess = Session::new(og);
            let feeds = [
                ("init_state", init.clone()),
                ("max_len", Tensor::scalar_i64(len as i64)),
            ];
            let stag = measure(1, args.runs, || {
                sess.run(&feeds, &outputs).expect("staged");
            });
            cells.push(format!(
                "{} [{:.2}ms vs {:.2}ms]",
                speedup(eager, stag),
                eager.mean * 1e3,
                stag.mean * 1e3
            ));
        }
        row(&format!("{len}"), &cells);
    }
}

fn bench_lbfgs(args: &HarnessArgs) {
    use autograph_models::lbfgs;
    println!("\nAppendix D.2 — L-BFGS (AutoGraph speedup over Eager)");
    println!("paper: ~2x at batch 10\n");
    let (n, iters) = if args.full { (32, 40) } else { (8, 15) };
    for batch in [1usize, 10] {
        let p = lbfgs::LbfgsProblem::new(n, batch, 17);
        let start = lbfgs::x0(p.n);

        let mut rt = lbfgs::runtime(&p, false, true).expect("load");
        let eager = measure(1, args.runs, || {
            lbfgs::run_eager(&mut rt, &start, iters).expect("eager");
        });

        let mut rt2 = lbfgs::runtime(&p, true, false).expect("load");
        let staged = lbfgs::stage(&mut rt2).expect("stage");
        let mut sess = Session::new(staged.graph);
        let outputs = staged.outputs.clone();
        let feeds = [
            ("x0", start.clone()),
            ("iters", Tensor::scalar_i64(iters as i64)),
        ];
        let stag = measure(1, args.runs, || {
            sess.run(&feeds, &outputs).expect("staged");
        });
        row(
            &format!("batch {batch} (n={n}, iters={iters})"),
            &[speedup(eager, stag)],
        );
    }
}

fn bench_maml(args: &HarnessArgs) {
    use autograph_models::maml;
    println!("\nAppendix D.3 — MAML sinusoid (AutoGraph speedup over Eager)");
    println!("paper: 1.9x at 1 meta-parameter task, 2.7x at 10\n");
    let hidden = if args.full { 40 } else { 16 };
    for num_tasks in [1usize, 10] {
        let params = maml::MamlParams::new(hidden, 3);
        let batch = maml::sample_tasks(num_tasks, 10, 10);

        let mut rt = maml::runtime(num_tasks, false, true).expect("load");
        let eager = measure(1, args.runs, || {
            maml::run_eager(&mut rt, &batch, &params).expect("eager");
        });

        let mut rt2 = maml::runtime(num_tasks, true, false).expect("load");
        let staged = maml::stage(&mut rt2).expect("stage");
        let mut sess = Session::new(staged.graph);
        let outputs = staged.outputs.clone();
        let feeds = maml::feeds(&batch, &params);
        let stag = measure(1, args.runs, || {
            sess.run(&feeds, &outputs).expect("staged");
        });
        row(
            &format!("{num_tasks} task(s), hidden {hidden}"),
            &[speedup(eager, stag)],
        );
    }
}

fn bench_seq2seq(args: &HarnessArgs) {
    use autograph_models::seq2seq;
    println!("\nAppendix D.4 — seq2seq (AutoGraph speedup over Eager)");
    println!("paper: 1.18x-3.05x, growing with vocab; teacher forcing ~doubles the gain\n");
    let vocabs = if args.full {
        vec![128usize, 1024, 8192]
    } else {
        vec![32usize, 256]
    };
    let header: Vec<String> = vocabs.iter().map(|v| format!("vocab {v}")).collect();
    row("mode", &header);
    rule(header.len());
    for tf_mode in [false, true] {
        let mut cells = Vec::new();
        for &vocab in &vocabs {
            let cfg = seq2seq::Seq2SeqConfig {
                vocab,
                hidden: 16,
                batch: 4,
                src_len: if args.full { 64 } else { 32 },
                tgt_len: if args.full { 64 } else { 32 },
                teacher_forcing: tf_mode,
            };
            let w = seq2seq::Seq2SeqWeights::new(&cfg, 8);
            let (src, tgt) = seq2seq::sequences(&cfg, 21);

            let mut rt = seq2seq::runtime(&cfg, &w, false).expect("load");
            let eager = measure(1, args.runs, || {
                seq2seq::run_eager(&mut rt, &src, &tgt).expect("eager");
            });

            let mut rt2 = seq2seq::runtime(&cfg, &w, true).expect("load");
            let staged = seq2seq::stage(&mut rt2).expect("stage");
            let mut sess = Session::new(staged.graph);
            let outputs = staged.outputs.clone();
            let feeds = [("src_t", src.clone()), ("tgt_t", tgt.clone())];
            let stag = measure(1, args.runs, || {
                sess.run(&feeds, &outputs).expect("staged");
            });
            cells.push(speedup(eager, stag));
        }
        row(
            if tf_mode {
                "teacher forcing"
            } else {
                "free running"
            },
            &cells,
        );
    }
}

fn main() {
    let args = HarnessArgs::parse();
    args.apply_threads();
    let profiler = args.profiler();
    let which = args.rest.first().map(String::as_str).unwrap_or("all");
    match which {
        "beam" => bench_beam(&args),
        "lbfgs" => bench_lbfgs(&args),
        "maml" => bench_maml(&args),
        "seq2seq" => bench_seq2seq(&args),
        "all" => {
            bench_beam(&args);
            bench_lbfgs(&args);
            bench_maml(&args);
            bench_seq2seq(&args);
        }
        other => {
            eprintln!("unknown experiment '{other}'; use beam|lbfgs|maml|seq2seq|all");
            std::process::exit(2);
        }
    }
    profiler.finish();
}
