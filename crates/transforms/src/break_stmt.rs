//! Lowers `break` statements (§7.2) into guard variables and expanded loop
//! conditions. After this pass no `break` remains anywhere.
//!
//! ```text
//! while c:                 break__1 = False
//!     if done:             while not break__1 and c:
//!         break       →        if done:
//!     x = f(x)                     break__1 = True
//!                              if not break__1:
//!                                  x = f(x)
//! ```
//!
//! `for` loops cannot grow an extra condition in Python syntax, so the body
//! is additionally wrapped in `if not guard:` — the loop runs out its
//! iterator with a false guard, preserving semantics (TensorFlow's staged
//! loop applies the same masking; real AutoGraph threads an `extra_test`
//! into `for_stmt`, which the runtime here also supports for `while`-based
//! early exit).

use crate::context::PassContext;
use crate::continue_stmt::guarded_if;
use crate::error::ConversionError;
use autograph_pylang::ast::*;
use autograph_pylang::{Module, Span};

/// Run the break-lowering pass over a module.
///
/// # Errors
///
/// Returns [`ConversionError`] for a `break` outside any loop.
pub fn run(module: Module, ctx: &mut PassContext) -> Result<Module, ConversionError> {
    let body = process_block(module.body, ctx, false)?;
    Ok(Module { body })
}

fn process_block(
    body: Vec<Stmt>,
    ctx: &mut PassContext,
    in_loop: bool,
) -> Result<Vec<Stmt>, ConversionError> {
    let mut out = Vec::with_capacity(body.len());
    for stmt in body {
        let span = stmt.span;
        match stmt.kind {
            StmtKind::FunctionDef {
                name,
                params,
                body,
                decorators,
            } => out.push(Stmt::new(
                StmtKind::FunctionDef {
                    name,
                    params,
                    body: process_block(body, ctx, false)?,
                    decorators,
                },
                span,
            )),
            StmtKind::If { test, body, orelse } => out.push(Stmt::new(
                StmtKind::If {
                    test,
                    body: process_block(body, ctx, in_loop)?,
                    orelse: process_block(orelse, ctx, in_loop)?,
                },
                span,
            )),
            StmtKind::While { test, body } => {
                let body = process_block(body, ctx, true)?;
                if block_has_break(&body) {
                    let guard = ctx.gensym("break");
                    let (guarded, _) = guard_block(body, &guard);
                    out.push(assign_bool(&guard, false, span));
                    out.push(Stmt::new(
                        StmtKind::While {
                            // not guard and (test)
                            test: Expr::new(
                                ExprKind::BoolOp {
                                    op: BoolOpKind::And,
                                    values: vec![
                                        Expr::new(
                                            ExprKind::UnaryOp {
                                                op: UnaryOp::Not,
                                                operand: Box::new(Expr::new(
                                                    ExprKind::Name(guard.clone()),
                                                    span,
                                                )),
                                            },
                                            span,
                                        ),
                                        test,
                                    ],
                                },
                                span,
                            ),
                            body: guarded,
                        },
                        span,
                    ));
                } else {
                    out.push(Stmt::new(StmtKind::While { test, body }, span));
                }
            }
            StmtKind::For { target, iter, body } => {
                let body = process_block(body, ctx, true)?;
                if block_has_break(&body) {
                    let guard = ctx.gensym("break");
                    let (guarded, _) = guard_block(body, &guard);
                    out.push(assign_bool(&guard, false, span));
                    out.push(Stmt::new(
                        StmtKind::For {
                            target,
                            iter,
                            body: vec![guarded_if(&guard, guarded, span)],
                        },
                        span,
                    ));
                } else {
                    out.push(Stmt::new(StmtKind::For { target, iter, body }, span));
                }
            }
            StmtKind::Break if !in_loop => {
                return Err(ConversionError::new("'break' outside of a loop", span));
            }
            other => out.push(Stmt::new(other, span)),
        }
    }
    Ok(out)
}

fn assign_bool(name: &str, value: bool, span: Span) -> Stmt {
    Stmt::new(
        StmtKind::Assign {
            target: Expr::new(ExprKind::Name(name.to_string()), span),
            value: Expr::new(ExprKind::Bool(value), span),
        },
        span,
    )
}

fn block_has_break(body: &[Stmt]) -> bool {
    body.iter().any(|s| match &s.kind {
        StmtKind::Break => true,
        StmtKind::If { body, orelse, .. } => block_has_break(body) || block_has_break(orelse),
        _ => false,
    })
}

fn guard_block(body: Vec<Stmt>, guard: &str) -> (Vec<Stmt>, bool) {
    let mut out = Vec::with_capacity(body.len());
    let mut contains = false;
    let mut iter = body.into_iter();
    while let Some(stmt) = iter.next() {
        let span = stmt.span;
        let (mut rewritten, c) = guard_stmt(stmt, guard);
        out.append(&mut rewritten);
        if c {
            contains = true;
            let rest: Vec<Stmt> = iter.collect();
            if !rest.is_empty() {
                let (rest_guarded, _) = guard_block(rest, guard);
                out.push(guarded_if(guard, rest_guarded, span));
            }
            break;
        }
    }
    (out, contains)
}

fn guard_stmt(stmt: Stmt, guard: &str) -> (Vec<Stmt>, bool) {
    let span = stmt.span;
    match stmt.kind {
        StmtKind::Break => (vec![assign_bool(guard, true, span)], true),
        StmtKind::If { test, body, orelse } => {
            let (b, c1) = guard_block(body, guard);
            let (o, c2) = guard_block(orelse, guard);
            (
                vec![Stmt::new(
                    StmtKind::If {
                        test,
                        body: b,
                        orelse: o,
                    },
                    span,
                )],
                c1 || c2,
            )
        }
        other => (vec![Stmt::new(other, span)], false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autograph_pylang::codegen::ast_to_source;
    use autograph_pylang::parse_module;

    fn convert(src: &str) -> String {
        let m = parse_module(src).unwrap();
        ast_to_source(&run(m, &mut PassContext::new()).unwrap())
    }

    #[test]
    fn while_break_lowered() {
        let out = convert("while c:\n    if done:\n        break\n    x = f(x)\n");
        assert!(!out.contains("break\n"), "{out}");
        assert!(out.contains("break__1 = False"));
        assert!(out.contains("while not break__1 and c:"));
        assert!(out.contains("break__1 = True"));
        assert!(out.contains("if not break__1:"));
    }

    #[test]
    fn for_break_masks_body() {
        let out = convert("for i in xs:\n    if i > 3:\n        break\n    s = s + i\n");
        assert!(!out.contains("break\n"));
        assert!(out.contains("for i in xs:\n    if not break__1:"), "{out}");
    }

    #[test]
    fn loop_without_break_untouched() {
        let src = "while c:\n    x = x + 1\n";
        assert_eq!(convert(src), src);
    }

    #[test]
    fn nested_loop_breaks_independent() {
        let out = convert(
            "while a:\n    while b:\n        if p:\n            break\n        x = 1\n    if q:\n        break\n",
        );
        assert!(
            out.contains("break__1") && out.contains("break__2"),
            "{out}"
        );
        assert!(!out.contains("break\n"));
    }

    #[test]
    fn break_outside_loop_rejected() {
        let m = parse_module("break\n").unwrap();
        assert!(run(m, &mut PassContext::new()).is_err());
    }

    #[test]
    fn break_semantics_shape() {
        // beam-search-style loop: break directly at top level of body
        let out = convert("while True:\n    x = step(x)\n    if stop(x):\n        break\n");
        // nothing after the if, so no trailing guard branch needed
        assert!(out.contains("while not break__1 and True:"));
        assert!(out.matches("if not break__1:").count() == 0, "{out}");
    }
}
