//! Control-flow functionalization (§7.2) — the heart of AutoGraph.
//!
//! Every `if`/`while`/`for` inside a converted function is replaced by an
//! overloadable functional form whose runtime implementation dynamically
//! dispatches on the predicate/iterate type (Listing 2):
//!
//! ```text
//! if x > 0:                    def if_true__1():
//!     x = x * x         →          x = x * x
//!                                  return x
//!                              def if_false__2():
//!                                  return x
//!                              x = ag.if_stmt(x > 0, if_true__1, if_false__2)
//! ```
//!
//! `while` and `for` are stateful: their functional forms thread the
//! variables modified in the loop body (its *state*) through explicit
//! arguments and return values. Liveness analysis prunes state to symbols
//! actually used afterwards or loop-carried; definedness analysis decides
//! which symbols must be reified with `ag.undefined(...)` because a branch
//! or a zero-trip loop may leave them unset.
//!
//! Ternary expressions are converted by [`run_ternary`]:
//! `x if c else y` → `ag.if_stmt(c, lambda: x, lambda: y)`.

use crate::context::{ag_call, thunk, tuple_or_single, PassContext};
use crate::error::ConversionError;
use autograph_analysis::activity::{stmt_activity, target_defs};
use autograph_analysis::definedness::defined_after_stmt;
use autograph_analysis::liveness::{live_into, live_into_stmt};
use autograph_analysis::SymbolSet;
use autograph_pylang::ast::*;
use autograph_pylang::{Module, Span};

/// Run the control-flow functionalization pass. Only statements inside
/// function definitions are converted; module-level statements remain host
/// ("macro-programming") code.
///
/// # Errors
///
/// Infallible in practice; `Result` for pipeline uniformity.
pub fn run(module: Module, ctx: &mut PassContext) -> Result<Module, ConversionError> {
    let body = module
        .body
        .into_iter()
        .map(|s| convert_toplevel(s, ctx))
        .collect::<Result<_, _>>()?;
    Ok(Module { body })
}

fn convert_toplevel(stmt: Stmt, ctx: &mut PassContext) -> Result<Stmt, ConversionError> {
    let span = stmt.span;
    match stmt.kind {
        StmtKind::FunctionDef {
            name,
            params,
            body,
            decorators,
        } => {
            let defined: SymbolSet = params.iter().map(|p| p.name.clone()).collect();
            let body = convert_block(body, &SymbolSet::new(), defined, ctx)?;
            Ok(Stmt::new(
                StmtKind::FunctionDef {
                    name,
                    params,
                    body,
                    decorators,
                },
                span,
            ))
        }
        other => Ok(Stmt::new(other, span)),
    }
}

/// Convert a statement block. `live_after_block` is the set of symbols
/// live after the whole block; `defined` the symbols definitely defined on
/// entry.
fn convert_block(
    body: Vec<Stmt>,
    live_after_block: &SymbolSet,
    mut defined: SymbolSet,
    ctx: &mut PassContext,
) -> Result<Vec<Stmt>, ConversionError> {
    // live_after[i]: symbols live right after statement i (= live into the
    // suffix body[i+1..], terminated by live_after_block).
    let n = body.len();
    let mut live_after = vec![live_after_block.clone(); n];
    for i in (0..n.saturating_sub(1)).rev() {
        live_after[i] = live_into(&body[i + 1..], live_after_block);
    }

    let mut out = Vec::with_capacity(n);
    for (i, stmt) in body.into_iter().enumerate() {
        let defined_after = defined_after_stmt(&stmt, &defined);
        let span = stmt.span;
        match stmt.kind {
            StmtKind::If { test, body, orelse } => {
                let original = Stmt::new(
                    StmtKind::If {
                        test: test.clone(),
                        body: body.clone(),
                        orelse: orelse.clone(),
                    },
                    span,
                );
                out.extend(functionalize_if(
                    &original,
                    test,
                    body,
                    orelse,
                    &live_after[i],
                    &defined,
                    ctx,
                )?);
            }
            StmtKind::While { test, body } => {
                let original = Stmt::new(
                    StmtKind::While {
                        test: test.clone(),
                        body: body.clone(),
                    },
                    span,
                );
                out.extend(functionalize_while(
                    &original,
                    test,
                    body,
                    &live_after[i],
                    &defined,
                    ctx,
                )?);
            }
            StmtKind::For { target, iter, body } => {
                let original = Stmt::new(
                    StmtKind::For {
                        target: target.clone(),
                        iter: iter.clone(),
                        body: body.clone(),
                    },
                    span,
                );
                out.extend(functionalize_for(
                    &original,
                    target,
                    iter,
                    body,
                    &live_after[i],
                    &defined,
                    ctx,
                )?);
            }
            StmtKind::FunctionDef {
                name,
                params,
                body,
                decorators,
            } => {
                let inner_defined: SymbolSet = params.iter().map(|p| p.name.clone()).collect();
                let body = convert_block(body, &SymbolSet::new(), inner_defined, ctx)?;
                out.push(Stmt::new(
                    StmtKind::FunctionDef {
                        name,
                        params,
                        body,
                        decorators,
                    },
                    span,
                ));
            }
            other => out.push(Stmt::new(other, span)),
        }
        defined = defined_after;
    }
    Ok(out)
}

/// `name = ag.undefined('name')`
fn undefined_stmt(name: &str, span: Span) -> Stmt {
    Stmt::new(
        StmtKind::Assign {
            target: Expr::new(ExprKind::Name(name.to_string()), span),
            value: ag_call(
                "undefined",
                vec![Expr::new(ExprKind::Str(name.to_string()), span)],
                span,
            ),
        },
        span,
    )
}

fn names_expr(syms: &[String], span: Span) -> Vec<Expr> {
    syms.iter()
        .map(|s| Expr::new(ExprKind::Name(s.clone()), span))
        .collect()
}

fn fn_def(name: &str, params: Vec<String>, body: Vec<Stmt>, span: Span) -> Stmt {
    Stmt::new(
        StmtKind::FunctionDef {
            name: name.to_string(),
            params: params
                .into_iter()
                .map(|p| Param {
                    name: p,
                    default: None,
                })
                .collect(),
            body,
            decorators: Vec::new(),
        },
        span,
    )
}

fn functionalize_if(
    original: &Stmt,
    test: Expr,
    body: Vec<Stmt>,
    orelse: Vec<Stmt>,
    live_after: &SymbolSet,
    defined: &SymbolSet,
    ctx: &mut PassContext,
) -> Result<Vec<Stmt>, ConversionError> {
    let span = original.span;
    let modified = stmt_activity(original).modified_simple_roots();
    let out_syms: Vec<String> = modified
        .iter()
        .filter(|s| live_after.contains(*s))
        .cloned()
        .collect();

    let mut stmts = Vec::new();
    let mut branch_defined = defined.clone();
    for s in &out_syms {
        if !defined.contains(s) {
            stmts.push(undefined_stmt(s, span));
        }
        branch_defined.insert(s.clone());
    }

    let out_set: SymbolSet = out_syms.iter().cloned().collect();
    let mut true_body = convert_block(body, &out_set, branch_defined.clone(), ctx)?;
    let mut false_body = convert_block(orelse, &out_set, branch_defined, ctx)?;
    if !out_syms.is_empty() {
        let ret = |span| {
            Stmt::new(
                StmtKind::Return(Some(tuple_or_single(names_expr(&out_syms, span), span))),
                span,
            )
        };
        true_body.push(ret(span));
        false_body.push(ret(span));
    }
    if true_body.is_empty() {
        true_body.push(Stmt::new(StmtKind::Pass, span));
    }
    if false_body.is_empty() {
        false_body.push(Stmt::new(StmtKind::Pass, span));
    }

    let t_name = ctx.gensym("if_true");
    let f_name = ctx.gensym("if_false");
    stmts.push(fn_def(&t_name, vec![], true_body, span));
    stmts.push(fn_def(&f_name, vec![], false_body, span));

    let call = ag_call(
        "if_stmt",
        vec![
            test,
            Expr::new(ExprKind::Name(t_name), span),
            Expr::new(ExprKind::Name(f_name), span),
        ],
        span,
    );
    if out_syms.is_empty() {
        stmts.push(Stmt::new(StmtKind::ExprStmt(call), span));
    } else {
        stmts.push(Stmt::new(
            StmtKind::Assign {
                target: tuple_or_single(names_expr(&out_syms, span), span),
                value: call,
            },
            span,
        ));
    }
    Ok(stmts)
}

/// Compute the loop state: symbols modified in the loop that are either
/// live afterwards or loop-carried (live at loop entry).
fn loop_state(original: &Stmt, live_after: &SymbolSet) -> Vec<String> {
    let modified = stmt_activity(original).modified_simple_roots();
    let live_in = live_into_stmt(original, live_after);
    modified
        .iter()
        .filter(|s| live_after.contains(*s) || live_in.contains(*s))
        .cloned()
        .collect()
}

fn functionalize_while(
    original: &Stmt,
    test: Expr,
    body: Vec<Stmt>,
    live_after: &SymbolSet,
    defined: &SymbolSet,
    ctx: &mut PassContext,
) -> Result<Vec<Stmt>, ConversionError> {
    let span = original.span;
    let state = loop_state(original, live_after);

    let mut stmts = Vec::new();
    let mut inner_defined = defined.clone();
    for s in &state {
        if !defined.contains(s) {
            stmts.push(undefined_stmt(s, span));
        }
        inner_defined.insert(s.clone());
    }

    let state_set: SymbolSet = state.iter().cloned().collect();
    let mut loop_body = convert_block(body, &state_set, inner_defined, ctx)?;
    loop_body.push(Stmt::new(
        StmtKind::Return(Some(Expr::new(
            ExprKind::Tuple(names_expr(&state, span)),
            span,
        ))),
        span,
    ));

    let test_name = ctx.gensym("loop_test");
    let body_name = ctx.gensym("loop_body");
    stmts.push(fn_def(
        &test_name,
        state.clone(),
        vec![Stmt::new(StmtKind::Return(Some(test)), span)],
        span,
    ));
    stmts.push(fn_def(&body_name, state.clone(), loop_body, span));

    let call = ag_call(
        "while_stmt",
        vec![
            Expr::new(ExprKind::Name(test_name), span),
            Expr::new(ExprKind::Name(body_name), span),
            Expr::new(ExprKind::Tuple(names_expr(&state, span)), span),
        ],
        span,
    );
    if state.is_empty() {
        stmts.push(Stmt::new(StmtKind::ExprStmt(call), span));
    } else {
        stmts.push(Stmt::new(
            StmtKind::Assign {
                target: Expr::new(ExprKind::Tuple(names_expr(&state, span)), span),
                value: call,
            },
            span,
        ));
    }
    Ok(stmts)
}

fn functionalize_for(
    original: &Stmt,
    target: Expr,
    iter: Expr,
    body: Vec<Stmt>,
    live_after: &SymbolSet,
    defined: &SymbolSet,
    ctx: &mut PassContext,
) -> Result<Vec<Stmt>, ConversionError> {
    let span = original.span;
    let state = loop_state(original, live_after);
    let tdefs = target_defs(&target);

    let mut stmts = Vec::new();
    let mut inner_defined = defined.clone();
    for s in &state {
        if !defined.contains(s) {
            stmts.push(undefined_stmt(s, span));
        }
        inner_defined.insert(s.clone());
    }
    inner_defined.extend(tdefs.iter().cloned());

    // The iteration variable is the body function's first parameter. Tuple
    // targets unpack from a synthesized parameter.
    let (iter_param, mut prelude) = match &target.kind {
        ExprKind::Name(n) => (n.clone(), Vec::new()),
        _ => {
            let p = ctx.gensym("itervar");
            (
                p.clone(),
                vec![Stmt::new(
                    StmtKind::Assign {
                        target: target.clone(),
                        value: Expr::new(ExprKind::Name(p), span),
                    },
                    span,
                )],
            )
        }
    };

    let state_set: SymbolSet = state.iter().cloned().collect();
    let converted = convert_block(body, &state_set, inner_defined, ctx)?;
    prelude.extend(converted);
    prelude.push(Stmt::new(
        StmtKind::Return(Some(Expr::new(
            ExprKind::Tuple(names_expr(&state, span)),
            span,
        ))),
        span,
    ));

    // State variables that the loop header itself defines (the target) are
    // fed back by the body function returning its parameter.
    let mut params = vec![iter_param.clone()];
    params.extend(state.iter().filter(|s| **s != iter_param).cloned());

    let body_name = ctx.gensym("for_body");
    stmts.push(fn_def(&body_name, params, prelude, span));

    let call = ag_call(
        "for_stmt",
        vec![
            iter,
            Expr::new(ExprKind::Name(body_name), span),
            Expr::new(ExprKind::Tuple(names_expr(&state, span)), span),
        ],
        span,
    );
    if state.is_empty() {
        stmts.push(Stmt::new(StmtKind::ExprStmt(call), span));
    } else {
        stmts.push(Stmt::new(
            StmtKind::Assign {
                target: Expr::new(ExprKind::Tuple(names_expr(&state, span)), span),
                value: call,
            },
            span,
        ));
    }
    Ok(stmts)
}

/// Convert ternary conditional expressions inline (§7.2):
/// `x if cond else y` → `ag.if_stmt(cond, lambda: x, lambda: y)`.
///
/// # Errors
///
/// Infallible in practice; `Result` for pipeline uniformity.
pub fn run_ternary(module: Module, _ctx: &mut PassContext) -> Result<Module, ConversionError> {
    let body = crate::context::rewrite_exprs(module.body, &mut |expr| {
        let span = expr.span;
        match expr.kind {
            ExprKind::IfExp { test, body, orelse } => ag_call(
                "if_stmt",
                vec![*test, thunk(*body, span), thunk(*orelse, span)],
                span,
            ),
            other => Expr::new(other, span),
        }
    });
    Ok(Module { body })
}

#[cfg(test)]
mod tests {
    use super::*;
    use autograph_pylang::codegen::ast_to_source;
    use autograph_pylang::parse_module;

    fn convert(src: &str) -> String {
        let m = parse_module(src).unwrap();
        ast_to_source(&run(m, &mut PassContext::new()).unwrap())
    }

    #[test]
    fn listing1_if_conversion() {
        let out = convert("def f(x):\n    if x > 0:\n        x = x * x\n    return x\n");
        assert!(out.contains("def if_true__1():"), "{out}");
        assert!(out.contains("def if_false__2():"), "{out}");
        assert!(
            out.contains("x = ag.if_stmt(x > 0, if_true__1, if_false__2)"),
            "{out}"
        );
        // both branches return x
        assert!(out.matches("return x").count() >= 2, "{out}");
        assert!(
            !out.contains("if x > 0:\n"),
            "original if should be gone:\n{out}"
        );
    }

    #[test]
    fn while_conversion_threads_state() {
        let out = convert("def f(x, eps):\n    while x > eps:\n        x = x / 2\n    return x\n");
        assert!(out.contains("def loop_test__1(x):"), "{out}");
        assert!(out.contains("def loop_body__2(x):"), "{out}");
        assert!(
            out.contains("(x,) = ag.while_stmt(loop_test__1, loop_body__2, (x,))"),
            "{out}"
        );
    }

    #[test]
    fn for_conversion() {
        let out =
            convert("def f(xs):\n    s = 0\n    for i in xs:\n        s = s + i\n    return s\n");
        assert!(out.contains("def for_body__1(i, s):"), "{out}");
        assert!(
            out.contains("(s,) = ag.for_stmt(xs, for_body__1, (s,))"),
            "{out}"
        );
    }

    #[test]
    fn for_tuple_target_unpacks() {
        let out = convert(
            "def f(ps):\n    s = 0\n    for a, b in ps:\n        s = s + a * b\n    return s\n",
        );
        assert!(out.contains("def for_body__2(itervar__1, s):"), "{out}");
        assert!(out.contains("(a, b) = itervar__1"), "{out}");
    }

    #[test]
    fn undefined_reified_for_branch_only_symbol() {
        let out = convert("def f(c):\n    if c:\n        y = 1\n    return y\n");
        assert!(out.contains("y = ag.undefined('y')"), "{out}");
    }

    #[test]
    fn defined_symbol_not_reified() {
        let out = convert("def f(c):\n    y = 0\n    if c:\n        y = 1\n    return y\n");
        assert!(!out.contains("ag.undefined"), "{out}");
    }

    #[test]
    fn dead_writes_not_threaded() {
        // t is modified in the branch but never used after -> not an output
        let out =
            convert("def f(c, x):\n    if c:\n        t = 1\n        x = x + t\n    return x\n");
        assert!(out.contains("x = ag.if_stmt"), "{out}");
        assert!(!out.contains("(t, x)"), "{out}");
    }

    #[test]
    fn side_effect_only_if() {
        let out = convert("def f(c, x):\n    if c:\n        ag.print_(x)\n    return x\n");
        assert!(
            out.contains("ag.if_stmt(c, if_true__1, if_false__2)\n"),
            "{out}"
        );
        // statement form, no assignment
        assert!(!out.contains("= ag.if_stmt"), "{out}");
    }

    #[test]
    fn nested_control_flow() {
        let out = convert(
            "def f(n):\n    s = 0\n    for i in n:\n        if i > 2:\n            s = s + i\n    return s\n",
        );
        assert!(out.contains("ag.for_stmt"), "{out}");
        assert!(out.contains("ag.if_stmt"), "{out}");
        // the if is inside the for body function
        let for_pos = out.find("def for_body").unwrap();
        let if_pos = out.find("ag.if_stmt").unwrap();
        assert!(if_pos > for_pos);
    }

    #[test]
    fn module_level_control_flow_untouched() {
        // hyperparameter-style conditional outside a function stays imperative
        let src = "if flag:\n    x = 1\nelse:\n    x = 2\n";
        assert_eq!(convert(src), src);
    }

    #[test]
    fn loop_state_includes_loop_carried_only_vars() {
        // acc is modified + read in loop but dead after: still loop state
        let out = convert("def f(n):\n    acc = 0\n    while n > 0:\n        acc = acc + n\n        n = n - 1\n    return n\n");
        assert!(out.contains("(acc, n)"), "{out}");
    }

    #[test]
    fn ternary_pass() {
        let m = parse_module("y = a if c else b\n").unwrap();
        let out = ast_to_source(&run_ternary(m, &mut PassContext::new()).unwrap());
        assert_eq!(out, "y = ag.if_stmt(c, lambda: a, lambda: b)\n");
    }

    #[test]
    fn else_branch_converted() {
        let out = convert(
            "def f(c):\n    if c:\n        r = 1\n    else:\n        r = 2\n    return r\n",
        );
        assert!(out.contains("r = ag.if_stmt"), "{out}");
        assert!(out.contains("return 1") || out.contains("r = 1"), "{out}");
    }
}
