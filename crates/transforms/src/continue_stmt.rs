//! Lowers `continue` statements (§7.2): each loop body containing a
//! `continue` gains a guard variable; the `continue` becomes `guard = True`
//! and every statement that could execute after it is wrapped in
//! `if not guard:`. After this pass no `continue` remains anywhere.
//!
//! ```text
//! while c:                     while c:
//!     if skip:                     continue__1 = False
//!         continue        →        if skip:
//!     x = x + 1                        continue__1 = True
//!                                  if not continue__1:
//!                                      x = x + 1
//! ```

use crate::context::PassContext;
use crate::error::ConversionError;
use autograph_pylang::ast::*;
use autograph_pylang::{Module, Span};

/// Run the continue-lowering pass over a module.
///
/// # Errors
///
/// Returns [`ConversionError`] for a `continue` outside any loop.
pub fn run(module: Module, ctx: &mut PassContext) -> Result<Module, ConversionError> {
    let body = process_block(module.body, ctx, false)?;
    Ok(Module { body })
}

/// Recursively process a statement block; `in_loop` tracks whether a bare
/// `continue` here would be legal.
fn process_block(
    body: Vec<Stmt>,
    ctx: &mut PassContext,
    in_loop: bool,
) -> Result<Vec<Stmt>, ConversionError> {
    let mut out = Vec::with_capacity(body.len());
    for stmt in body {
        let span = stmt.span;
        let kind = match stmt.kind {
            StmtKind::FunctionDef {
                name,
                params,
                body,
                decorators,
            } => StmtKind::FunctionDef {
                name,
                params,
                body: process_block(body, ctx, false)?,
                decorators,
            },
            StmtKind::If { test, body, orelse } => StmtKind::If {
                test,
                body: process_block(body, ctx, in_loop)?,
                orelse: process_block(orelse, ctx, in_loop)?,
            },
            StmtKind::While { test, body } => {
                let body = process_block(body, ctx, true)?;
                StmtKind::While {
                    test,
                    body: lower_loop_body(body, ctx, span),
                }
            }
            StmtKind::For { target, iter, body } => {
                let body = process_block(body, ctx, true)?;
                StmtKind::For {
                    target,
                    iter,
                    body: lower_loop_body(body, ctx, span),
                }
            }
            StmtKind::Continue if !in_loop => {
                return Err(ConversionError::new("'continue' outside of a loop", span));
            }
            other => other,
        };
        out.push(Stmt::new(kind, span));
    }
    Ok(out)
}

/// If `body` contains a continue at this loop level, rewrite it with a
/// guard variable.
fn lower_loop_body(body: Vec<Stmt>, ctx: &mut PassContext, loop_span: Span) -> Vec<Stmt> {
    if !block_has_continue(&body) {
        return body;
    }
    let guard = ctx.gensym("continue");
    let (mut guarded, _) = guard_block(body, &guard);
    let mut new_body = vec![Stmt::new(
        StmtKind::Assign {
            target: Expr::new(ExprKind::Name(guard.clone()), loop_span),
            value: Expr::new(ExprKind::Bool(false), loop_span),
        },
        loop_span,
    )];
    new_body.append(&mut guarded);
    new_body
}

/// Does the block contain `continue` at this loop's level (not inside
/// nested loops or functions)?
fn block_has_continue(body: &[Stmt]) -> bool {
    body.iter().any(|s| match &s.kind {
        StmtKind::Continue => true,
        StmtKind::If { body, orelse, .. } => block_has_continue(body) || block_has_continue(orelse),
        _ => false,
    })
}

/// Rewrite a block: `continue` → `guard = True`; statements following a
/// possible continue are wrapped in `if not guard:`. Returns the new block
/// and whether it may set the guard.
fn guard_block(body: Vec<Stmt>, guard: &str) -> (Vec<Stmt>, bool) {
    let mut out = Vec::with_capacity(body.len());
    let mut contains = false;
    let mut iter = body.into_iter();
    while let Some(stmt) = iter.next() {
        let span = stmt.span;
        let (mut rewritten, c) = guard_stmt(stmt, guard);
        out.append(&mut rewritten);
        if c {
            contains = true;
            let rest: Vec<Stmt> = iter.collect();
            if !rest.is_empty() {
                let (rest_guarded, _) = guard_block(rest, guard);
                out.push(guarded_if(guard, rest_guarded, span));
            }
            break;
        }
    }
    (out, contains)
}

fn guard_stmt(stmt: Stmt, guard: &str) -> (Vec<Stmt>, bool) {
    let span = stmt.span;
    match stmt.kind {
        StmtKind::Continue => (
            vec![Stmt::new(
                StmtKind::Assign {
                    target: Expr::new(ExprKind::Name(guard.to_string()), span),
                    value: Expr::new(ExprKind::Bool(true), span),
                },
                span,
            )],
            true,
        ),
        StmtKind::If { test, body, orelse } => {
            let (b, c1) = guard_block(body, guard);
            let (o, c2) = guard_block(orelse, guard);
            (
                vec![Stmt::new(
                    StmtKind::If {
                        test,
                        body: b,
                        orelse: o,
                    },
                    span,
                )],
                c1 || c2,
            )
        }
        // Nested loops keep their own continues (already lowered).
        other => (vec![Stmt::new(other, span)], false),
    }
}

/// `if not guard: body`
pub(crate) fn guarded_if(guard: &str, body: Vec<Stmt>, span: Span) -> Stmt {
    Stmt::new(
        StmtKind::If {
            test: Expr::new(
                ExprKind::UnaryOp {
                    op: UnaryOp::Not,
                    operand: Box::new(Expr::new(ExprKind::Name(guard.to_string()), span)),
                },
                span,
            ),
            body,
            orelse: Vec::new(),
        },
        span,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use autograph_pylang::codegen::ast_to_source;
    use autograph_pylang::parse_module;

    fn convert(src: &str) -> String {
        let m = parse_module(src).unwrap();
        let mut ctx = PassContext::new();
        ast_to_source(&run(m, &mut ctx).unwrap())
    }

    #[test]
    fn simple_continue_lowered() {
        let out = convert("while c:\n    if skip:\n        continue\n    x = x + 1\n");
        assert!(
            !out.contains("continue\n"),
            "continue should be gone:\n{out}"
        );
        assert!(out.contains("continue__1 = False"));
        assert!(out.contains("continue__1 = True"));
        assert!(out.contains("if not continue__1:"));
        assert!(out.contains("x = x + 1"));
    }

    #[test]
    fn loop_without_continue_untouched() {
        let src = "while c:\n    x = x + 1\n";
        assert_eq!(convert(src), src);
    }

    #[test]
    fn trailing_continue_adds_no_guard_branch() {
        let out = convert("for i in xs:\n    continue\n");
        assert!(out.contains("continue__1 = True"));
        assert!(!out.contains("if not continue__1"), "{out}");
    }

    #[test]
    fn nested_loops_get_separate_guards() {
        let out = convert(
            "while a:\n    for i in xs:\n        if p:\n            continue\n        y = 1\n    if q:\n        continue\n    z = 2\n",
        );
        assert!(
            out.contains("continue__1") && out.contains("continue__2"),
            "{out}"
        );
        assert!(!out.contains("continue\n"));
    }

    #[test]
    fn continue_outside_loop_rejected() {
        let m = parse_module("def f():\n    continue\n").unwrap();
        let mut ctx = PassContext::new();
        let err = run(m, &mut ctx).unwrap_err();
        assert!(err.to_string().contains("outside of a loop"));
        assert_eq!(err.span.line, 2);
    }

    #[test]
    fn continue_in_nested_function_inside_loop_rejected() {
        let m = parse_module("while c:\n    def g():\n        continue\n").unwrap();
        assert!(run(m, &mut PassContext::new()).is_err());
    }

    #[test]
    fn statements_after_if_guarded() {
        let out = convert("while c:\n    if p:\n        continue\n    a = 1\n    b = 2\n");
        // a and b must both be inside the guard
        let guard_pos = out.find("if not continue__1:").unwrap();
        assert!(out.find("a = 1").unwrap() > guard_pos);
        assert!(out.find("b = 2").unwrap() > guard_pos);
    }
}
