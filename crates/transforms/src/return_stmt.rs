//! Lowers early `return` statements (§7.2) so every function has at most a
//! single trailing `return`. The paper's example:
//!
//! ```text
//! if cond:                     if cond:
//!     return f(x)        →         retval__1 = f(x)
//! return g(x)                  else:
//!                                  retval__1 = g(x)
//!                              return retval__1
//! ```
//!
//! Two strategies compose:
//!
//! 1. **Structured lowering** (preferred, matches the paper's example):
//!    when each conditional branch either *always* returns or *never*
//!    contains a return, trailing statements move into the non-returning
//!    branch and every `return v` becomes `retval = v`. The result
//!    contains no guard booleans and stages cleanly.
//! 2. **Guard fallback**: returns inside loops cannot be restructured, so
//!    a `do_return` guard is introduced, loop conditions extended with
//!    `not do_return`, and trailing statements wrapped in
//!    `if not do_return:`.

use crate::context::PassContext;
use crate::continue_stmt::guarded_if;
use crate::error::ConversionError;
use autograph_pylang::ast::*;
use autograph_pylang::{Module, Span};

/// Run the return-lowering pass over a module.
///
/// # Errors
///
/// Currently infallible in practice; the `Result` mirrors the other
/// passes' signatures.
pub fn run(module: Module, ctx: &mut PassContext) -> Result<Module, ConversionError> {
    let body = process_functions(module.body, ctx)?;
    Ok(Module { body })
}

fn process_functions(body: Vec<Stmt>, ctx: &mut PassContext) -> Result<Vec<Stmt>, ConversionError> {
    let mut out = Vec::with_capacity(body.len());
    for stmt in body {
        let span = stmt.span;
        let kind = match stmt.kind {
            StmtKind::FunctionDef {
                name,
                params,
                body,
                decorators,
            } => {
                // Recurse into nested functions first.
                let body = process_functions(body, ctx)?;
                StmtKind::FunctionDef {
                    name,
                    params,
                    body: lower_function_body(body, ctx, span),
                    decorators,
                }
            }
            StmtKind::If { test, body, orelse } => StmtKind::If {
                test,
                body: process_functions(body, ctx)?,
                orelse: process_functions(orelse, ctx)?,
            },
            StmtKind::While { test, body } => StmtKind::While {
                test,
                body: process_functions(body, ctx)?,
            },
            StmtKind::For { target, iter, body } => StmtKind::For {
                target,
                iter,
                body: process_functions(body, ctx)?,
            },
            other => other,
        };
        out.push(Stmt::new(kind, span));
    }
    Ok(out)
}

/// Whether a block contains `return` at this function's level (not inside
/// nested functions).
fn block_has_return(body: &[Stmt]) -> bool {
    body.iter().any(|s| match &s.kind {
        StmtKind::Return(_) => true,
        StmtKind::If { body, orelse, .. } => block_has_return(body) || block_has_return(orelse),
        StmtKind::While { body, .. } | StmtKind::For { body, .. } => block_has_return(body),
        _ => false,
    })
}

/// Whether every path through the block ends in `return`.
fn always_returns(body: &[Stmt]) -> bool {
    match body.last().map(|s| &s.kind) {
        Some(StmtKind::Return(_)) => true,
        Some(StmtKind::If { body, orelse, .. }) => {
            !orelse.is_empty() && always_returns(body) && always_returns(orelse)
        }
        _ => false,
    }
}

fn lower_function_body(body: Vec<Stmt>, ctx: &mut PassContext, fspan: Span) -> Vec<Stmt> {
    // Fast path: a function whose only return (if any) is the final
    // top-level statement needs no lowering.
    let trailing_only = match body.split_last() {
        None => true,
        Some((last, init)) => {
            !block_has_return(init)
                && (matches!(last.kind, StmtKind::Return(_))
                    || !block_has_return(std::slice::from_ref(last)))
        }
    };
    if trailing_only {
        return body;
    }

    let retval = ctx.gensym("retval");

    // Preferred: structured lowering (no guards; stages cleanly).
    if let Some((mut lowered, always)) = lower_structured(body.clone(), &retval) {
        let mut out = Vec::with_capacity(lowered.len() + 2);
        if !always {
            // fall-off-the-end path returns None
            out.push(assign(&retval, Expr::new(ExprKind::NoneLit, fspan), fspan));
        }
        out.append(&mut lowered);
        out.push(Stmt::new(
            StmtKind::Return(Some(Expr::new(ExprKind::Name(retval), fspan))),
            fspan,
        ));
        return out;
    }

    // Fallback: guard-based lowering (handles returns inside loops).
    let guard = ctx.gensym("do_return");
    let (mut guarded, _) = guard_block(body, &guard, &retval);
    let mut out = vec![
        assign(&guard, Expr::new(ExprKind::Bool(false), fspan), fspan),
        assign(&retval, Expr::new(ExprKind::NoneLit, fspan), fspan),
    ];
    out.append(&mut guarded);
    out.push(Stmt::new(
        StmtKind::Return(Some(Expr::new(ExprKind::Name(retval), fspan))),
        fspan,
    ));
    out
}

/// Structured lowering. Returns `None` when the block's shape requires the
/// guard fallback (a return inside a loop, or a branch that returns on
/// some paths but falls through on others while its sibling needs trailing
/// code). On success returns the rewritten block and whether every path
/// through it assigns `retval` (i.e. the original always returned).
fn lower_structured(body: Vec<Stmt>, retval: &str) -> Option<(Vec<Stmt>, bool)> {
    let mut out = Vec::with_capacity(body.len());
    let mut iter = body.into_iter();
    while let Some(stmt) = iter.next() {
        let span = stmt.span;
        match stmt.kind {
            StmtKind::Return(v) => {
                out.push(assign(
                    retval,
                    v.unwrap_or(Expr::new(ExprKind::NoneLit, span)),
                    span,
                ));
                // trailing statements are unreachable
                return Some((out, true));
            }
            StmtKind::While { ref body, .. } | StmtKind::For { ref body, .. }
                if block_has_return(body) =>
            {
                return None;
            }
            StmtKind::If { test, body, orelse }
                if block_has_return(&body) || block_has_return(&orelse) =>
            {
                // classify each branch: Always / Never; Partial → fallback
                let b_has = block_has_return(&body);
                let o_has = block_has_return(&orelse);
                let b_always = always_returns(&body);
                let o_always = always_returns(&orelse);
                if (b_has && !b_always) || (o_has && !o_always) {
                    return None;
                }
                let (b, _) = if b_has {
                    lower_structured(body, retval)?
                } else {
                    (body, false)
                };
                let (o, _) = if o_has {
                    lower_structured(orelse, retval)?
                } else {
                    (orelse, false)
                };
                let rest: Vec<Stmt> = iter.collect();
                match (b_always, o_always) {
                    (true, true) => {
                        out.push(Stmt::new(
                            StmtKind::If {
                                test,
                                body: b,
                                orelse: o,
                            },
                            span,
                        ));
                        return Some((out, true));
                    }
                    (true, false) => {
                        // trailing code runs only on the else path
                        let (r, rret) = lower_structured(rest, retval)?;
                        let mut o = o;
                        o.extend(r);
                        out.push(Stmt::new(
                            StmtKind::If {
                                test,
                                body: b,
                                orelse: o,
                            },
                            span,
                        ));
                        return Some((out, rret));
                    }
                    (false, true) => {
                        let (r, rret) = lower_structured(rest, retval)?;
                        let mut b = b;
                        b.extend(r);
                        out.push(Stmt::new(
                            StmtKind::If {
                                test,
                                body: b,
                                orelse: o,
                            },
                            span,
                        ));
                        return Some((out, rret));
                    }
                    (false, false) => unreachable!("guarded by b_has/o_has checks"),
                }
            }
            other => out.push(Stmt::new(other, span)),
        }
    }
    Some((out, false))
}

fn assign(name: &str, value: Expr, span: Span) -> Stmt {
    Stmt::new(
        StmtKind::Assign {
            target: Expr::new(ExprKind::Name(name.to_string()), span),
            value,
        },
        span,
    )
}

// ---- guard fallback -----------------------------------------------------

fn guard_block(body: Vec<Stmt>, guard: &str, retval: &str) -> (Vec<Stmt>, bool) {
    let mut out = Vec::with_capacity(body.len());
    let mut contains = false;
    let mut iter = body.into_iter();
    while let Some(stmt) = iter.next() {
        let span = stmt.span;
        let (mut rewritten, c) = guard_stmt(stmt, guard, retval);
        out.append(&mut rewritten);
        if c {
            contains = true;
            let rest: Vec<Stmt> = iter.collect();
            if !rest.is_empty() {
                let (rest_guarded, _) = guard_block(rest, guard, retval);
                out.push(guarded_if(guard, rest_guarded, span));
            }
            break;
        }
    }
    (out, contains)
}

fn guard_stmt(stmt: Stmt, guard: &str, retval: &str) -> (Vec<Stmt>, bool) {
    let span = stmt.span;
    match stmt.kind {
        StmtKind::Return(v) => (
            vec![
                assign(guard, Expr::new(ExprKind::Bool(true), span), span),
                assign(
                    retval,
                    v.unwrap_or(Expr::new(ExprKind::NoneLit, span)),
                    span,
                ),
            ],
            true,
        ),
        StmtKind::If { test, body, orelse } => {
            let (b, c1) = guard_block(body, guard, retval);
            let (o, c2) = guard_block(orelse, guard, retval);
            (
                vec![Stmt::new(
                    StmtKind::If {
                        test,
                        body: b,
                        orelse: o,
                    },
                    span,
                )],
                c1 || c2,
            )
        }
        StmtKind::While { test, body } => {
            if block_has_return(&body) {
                let (b, _) = guard_block(body, guard, retval);
                (
                    vec![Stmt::new(
                        StmtKind::While {
                            test: Expr::new(
                                ExprKind::BoolOp {
                                    op: BoolOpKind::And,
                                    values: vec![
                                        Expr::new(
                                            ExprKind::UnaryOp {
                                                op: UnaryOp::Not,
                                                operand: Box::new(Expr::new(
                                                    ExprKind::Name(guard.to_string()),
                                                    span,
                                                )),
                                            },
                                            span,
                                        ),
                                        test,
                                    ],
                                },
                                span,
                            ),
                            body: b,
                        },
                        span,
                    )],
                    true,
                )
            } else {
                (vec![Stmt::new(StmtKind::While { test, body }, span)], false)
            }
        }
        StmtKind::For { target, iter, body } => {
            if block_has_return(&body) {
                let (b, _) = guard_block(body, guard, retval);
                (
                    vec![Stmt::new(
                        StmtKind::For {
                            target,
                            iter,
                            body: vec![guarded_if(guard, b, span)],
                        },
                        span,
                    )],
                    true,
                )
            } else {
                (
                    vec![Stmt::new(StmtKind::For { target, iter, body }, span)],
                    false,
                )
            }
        }
        // Nested functions keep their own returns.
        other => (vec![Stmt::new(other, span)], false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autograph_pylang::codegen::ast_to_source;
    use autograph_pylang::parse_module;

    fn convert(src: &str) -> String {
        let m = parse_module(src).unwrap();
        ast_to_source(&run(m, &mut PassContext::new()).unwrap())
    }

    #[test]
    fn paper_example_structured_shape() {
        let out = convert("def f(x):\n    if cond:\n        return g(x)\n    return h(x)\n");
        // the paper's exact target shape: no guards, trailing return moved
        // into the else branch
        assert!(!out.contains("do_return"), "{out}");
        assert!(out.contains("retval__1 = g(x)"), "{out}");
        assert!(out.contains("else:\n        retval__1 = h(x)"), "{out}");
        assert!(out.trim_end().ends_with("return retval__1"), "{out}");
        assert_eq!(out.matches("return ").count(), 1, "{out}");
    }

    #[test]
    fn single_trailing_return_untouched() {
        let src = "def f(x):\n    y = x + 1\n    return y\n";
        assert_eq!(convert(src), src);
    }

    #[test]
    fn function_without_return_untouched() {
        let src = "def f(x):\n    y = x + 1\n";
        assert_eq!(convert(src), src);
    }

    #[test]
    fn early_return_with_fallthrough_structured() {
        // helper-style: if returns, fall-through continues
        let out = convert("def f(x):\n    if x > 0:\n        return x * 2\n    return x\n");
        assert!(!out.contains("do_return"), "{out}");
        assert!(
            !out.contains("retval__1 = None"),
            "structured path needs no None init:\n{out}"
        );
    }

    #[test]
    fn fallthrough_without_final_return_gets_none_init() {
        let out = convert("def f(c):\n    if c:\n        return 1\n    x = 2\n");
        assert!(out.contains("retval__1 = None"), "{out}");
        assert!(out.trim_end().ends_with("return retval__1"));
        assert!(!out.contains("do_return"), "{out}");
    }

    #[test]
    fn return_inside_while_uses_guard_fallback() {
        let out = convert("def f(x):\n    while c:\n        if p:\n            return x\n        x = g(x)\n    return 0\n");
        assert!(out.contains("while not do_return__2 and c:"), "{out}");
        assert!(out.contains("retval__1 = x"), "{out}");
    }

    #[test]
    fn return_inside_for_masks_body() {
        let out = convert(
            "def f(xs):\n    for i in xs:\n        if p(i):\n            return i\n    return -1\n",
        );
        assert!(
            out.contains("for i in xs:\n        if not do_return__2:"),
            "{out}"
        );
    }

    #[test]
    fn bare_return_becomes_none() {
        let out = convert("def f(x):\n    if c:\n        return\n    x = 1\n");
        assert!(out.contains("retval__1 = None"), "{out}");
    }

    #[test]
    fn nested_early_returns_structured() {
        let out = convert(
            "def f(x):\n    if a:\n        if b:\n            return 1\n        return 2\n    return 3\n",
        );
        assert!(!out.contains("do_return"), "{out}");
        assert_eq!(out.matches("return ").count(), 1, "{out}");
        // all three values present as retval assignments
        for v in ["= 1", "= 2", "= 3"] {
            assert!(out.contains(v), "{out}");
        }
    }

    #[test]
    fn partial_branch_return_falls_back_to_guards() {
        // then-branch returns on SOME paths only -> guards required
        let out = convert(
            "def f(x):\n    if a:\n        if b:\n            return 1\n        x = 2\n    y = 3\n    return y\n",
        );
        assert!(out.contains("do_return"), "{out}");
        assert_eq!(out.matches("return retval").count(), 1, "{out}");
    }

    #[test]
    fn both_branches_return_drops_trailing() {
        let out = convert(
            "def f(c):\n    if c:\n        return 1\n    else:\n        return 2\n    x = 99\n",
        );
        assert!(!out.contains("x = 99"), "unreachable code dropped:\n{out}");
        assert!(!out.contains("do_return"), "{out}");
    }

    #[test]
    fn nested_functions_lowered_independently() {
        let out = convert(
            "def outer(x):\n    def inner(y):\n        if c:\n            return 1\n        return 2\n    if d:\n        return inner(x)\n    return 0\n",
        );
        assert!(
            out.contains("retval__1") && out.contains("retval__2"),
            "{out}"
        );
    }
}
