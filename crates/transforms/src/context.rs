//! Shared state threaded through conversion passes: fresh-symbol
//! generation and rewrite utilities used by several passes.

use autograph_pylang::ast::{Expr, ExprKind, Stmt, StmtKind};
use autograph_pylang::Span;

/// Per-conversion mutable state shared by all passes.
#[derive(Debug, Default)]
pub struct PassContext {
    counter: u64,
}

impl PassContext {
    /// A fresh context with the symbol counter at zero.
    pub fn new() -> Self {
        PassContext::default()
    }

    /// Generate a fresh symbol with the given prefix, e.g. `retval__3`.
    /// Double underscores keep generated names out of the user namespace,
    /// matching AutoGraph's `ag__` convention.
    pub fn gensym(&mut self, prefix: &str) -> String {
        self.counter += 1;
        format!("{prefix}__{}", self.counter)
    }
}

/// Build `ag.<name>(args...)` with a given span (so errors in generated
/// code point at the user construct that produced it).
pub fn ag_call(name: &str, args: Vec<Expr>, span: Span) -> Expr {
    Expr::new(
        ExprKind::Call {
            func: Box::new(Expr::new(
                ExprKind::Attribute {
                    value: Box::new(Expr::new(ExprKind::Name("ag".into()), span)),
                    attr: name.to_string(),
                },
                span,
            )),
            args,
            kwargs: Vec::new(),
        },
        span,
    )
}

/// True if the expression is exactly the qualified name `ag.<name>`.
pub fn is_ag_intrinsic(expr: &Expr, name: &str) -> bool {
    match &expr.kind {
        ExprKind::Attribute { value, attr } => {
            attr == name && matches!(&value.kind, ExprKind::Name(n) if n == "ag")
        }
        _ => false,
    }
}

/// A zero-argument lambda wrapping an expression (used for lazy operands).
pub fn thunk(body: Expr, span: Span) -> Expr {
    Expr::new(
        ExprKind::Lambda {
            params: Vec::new(),
            body: Box::new(body),
        },
        span,
    )
}

/// A tuple expression (or the single expression when exactly one item —
/// functional control flow uses bare values for single-symbol state).
pub fn tuple_or_single(mut items: Vec<Expr>, span: Span) -> Expr {
    if items.len() == 1 {
        items.pop().expect("len checked")
    } else {
        Expr::new(ExprKind::Tuple(items), span)
    }
}

/// Map every statement in a body with a fallible function, flattening
/// multi-statement results.
pub fn flat_map_body<E>(
    body: Vec<Stmt>,
    f: &mut impl FnMut(Stmt) -> Result<Vec<Stmt>, E>,
) -> Result<Vec<Stmt>, E> {
    let mut out = Vec::with_capacity(body.len());
    for s in body {
        out.extend(f(s)?);
    }
    Ok(out)
}

/// Recursively rebuild all nested statement bodies with `f` applied
/// bottom-up to each body (innermost first). The map receives whole bodies
/// so passes can restructure statement sequences.
pub fn rewrite_bodies_bottom_up<E>(
    body: Vec<Stmt>,
    f: &mut impl FnMut(Vec<Stmt>) -> Result<Vec<Stmt>, E>,
) -> Result<Vec<Stmt>, E> {
    let mut rebuilt = Vec::with_capacity(body.len());
    for stmt in body {
        let span = stmt.span;
        let kind = match stmt.kind {
            StmtKind::FunctionDef {
                name,
                params,
                body,
                decorators,
            } => StmtKind::FunctionDef {
                name,
                params,
                body: rewrite_bodies_bottom_up(body, f)?,
                decorators,
            },
            StmtKind::If { test, body, orelse } => StmtKind::If {
                test,
                body: rewrite_bodies_bottom_up(body, f)?,
                orelse: rewrite_bodies_bottom_up(orelse, f)?,
            },
            StmtKind::While { test, body } => StmtKind::While {
                test,
                body: rewrite_bodies_bottom_up(body, f)?,
            },
            StmtKind::For { target, iter, body } => StmtKind::For {
                target,
                iter,
                body: rewrite_bodies_bottom_up(body, f)?,
            },
            other => other,
        };
        rebuilt.push(Stmt::new(kind, span));
    }
    f(rebuilt)
}

/// Rebuild every expression in a statement body, applying `f` bottom-up
/// (children first). Decorator expressions are left untouched — they are
/// conversion metadata, not staged code.
pub fn rewrite_exprs(body: Vec<Stmt>, f: &mut impl FnMut(Expr) -> Expr) -> Vec<Stmt> {
    body.into_iter().map(|s| rewrite_stmt_exprs(s, f)).collect()
}

fn rewrite_stmt_exprs(stmt: Stmt, f: &mut impl FnMut(Expr) -> Expr) -> Stmt {
    let span = stmt.span;
    let kind = match stmt.kind {
        StmtKind::FunctionDef {
            name,
            params,
            body,
            decorators,
        } => StmtKind::FunctionDef {
            name,
            params: params
                .into_iter()
                .map(|p| autograph_pylang::Param {
                    name: p.name,
                    default: p.default.map(|d| rewrite_expr(d, f)),
                })
                .collect(),
            body: rewrite_exprs(body, f),
            decorators,
        },
        StmtKind::Return(v) => StmtKind::Return(v.map(|v| rewrite_expr(v, f))),
        StmtKind::Assign { target, value } => StmtKind::Assign {
            target: rewrite_expr(target, f),
            value: rewrite_expr(value, f),
        },
        StmtKind::AugAssign { target, op, value } => StmtKind::AugAssign {
            target: rewrite_expr(target, f),
            op,
            value: rewrite_expr(value, f),
        },
        StmtKind::If { test, body, orelse } => StmtKind::If {
            test: rewrite_expr(test, f),
            body: rewrite_exprs(body, f),
            orelse: rewrite_exprs(orelse, f),
        },
        StmtKind::While { test, body } => StmtKind::While {
            test: rewrite_expr(test, f),
            body: rewrite_exprs(body, f),
        },
        StmtKind::For { target, iter, body } => StmtKind::For {
            target: rewrite_expr(target, f),
            iter: rewrite_expr(iter, f),
            body: rewrite_exprs(body, f),
        },
        StmtKind::Assert { test, msg } => StmtKind::Assert {
            test: rewrite_expr(test, f),
            msg: msg.map(|m| rewrite_expr(m, f)),
        },
        StmtKind::ExprStmt(e) => StmtKind::ExprStmt(rewrite_expr(e, f)),
        StmtKind::Raise(v) => StmtKind::Raise(v.map(|v| rewrite_expr(v, f))),
        other => other,
    };
    Stmt::new(kind, span)
}

/// Apply `f` to an expression tree bottom-up.
pub fn rewrite_expr(expr: Expr, f: &mut impl FnMut(Expr) -> Expr) -> Expr {
    use autograph_pylang::ast::Index;
    let span = expr.span;
    let kind = match expr.kind {
        ExprKind::Attribute { value, attr } => ExprKind::Attribute {
            value: Box::new(rewrite_expr(*value, f)),
            attr,
        },
        ExprKind::Subscript { value, index } => ExprKind::Subscript {
            value: Box::new(rewrite_expr(*value, f)),
            index: Box::new(match *index {
                Index::Single(e) => Index::Single(rewrite_expr(e, f)),
                Index::Slice { lower, upper } => Index::Slice {
                    lower: lower.map(|e| rewrite_expr(e, f)),
                    upper: upper.map(|e| rewrite_expr(e, f)),
                },
            }),
        },
        ExprKind::Call { func, args, kwargs } => ExprKind::Call {
            func: Box::new(rewrite_expr(*func, f)),
            args: args.into_iter().map(|a| rewrite_expr(a, f)).collect(),
            kwargs: kwargs
                .into_iter()
                .map(|(k, v)| (k, rewrite_expr(v, f)))
                .collect(),
        },
        ExprKind::BinOp { op, left, right } => ExprKind::BinOp {
            op,
            left: Box::new(rewrite_expr(*left, f)),
            right: Box::new(rewrite_expr(*right, f)),
        },
        ExprKind::UnaryOp { op, operand } => ExprKind::UnaryOp {
            op,
            operand: Box::new(rewrite_expr(*operand, f)),
        },
        ExprKind::BoolOp { op, values } => ExprKind::BoolOp {
            op,
            values: values.into_iter().map(|v| rewrite_expr(v, f)).collect(),
        },
        ExprKind::Compare {
            left,
            ops,
            comparators,
        } => ExprKind::Compare {
            left: Box::new(rewrite_expr(*left, f)),
            ops,
            comparators: comparators
                .into_iter()
                .map(|c| rewrite_expr(c, f))
                .collect(),
        },
        ExprKind::IfExp { test, body, orelse } => ExprKind::IfExp {
            test: Box::new(rewrite_expr(*test, f)),
            body: Box::new(rewrite_expr(*body, f)),
            orelse: Box::new(rewrite_expr(*orelse, f)),
        },
        ExprKind::List(items) => {
            ExprKind::List(items.into_iter().map(|i| rewrite_expr(i, f)).collect())
        }
        ExprKind::Tuple(items) => {
            ExprKind::Tuple(items.into_iter().map(|i| rewrite_expr(i, f)).collect())
        }
        ExprKind::Lambda { params, body } => ExprKind::Lambda {
            params,
            body: Box::new(rewrite_expr(*body, f)),
        },
        leaf => leaf,
    };
    f(Expr::new(kind, span))
}

#[cfg(test)]
mod tests {
    use super::*;
    use autograph_pylang::codegen::expr_to_source;

    #[test]
    fn gensym_unique() {
        let mut ctx = PassContext::new();
        let a = ctx.gensym("retval");
        let b = ctx.gensym("retval");
        assert_ne!(a, b);
        assert!(a.starts_with("retval__"));
    }

    #[test]
    fn ag_call_renders() {
        let e = ag_call("if_stmt", vec![Expr::name("c")], Span::synthetic());
        assert_eq!(expr_to_source(&e), "ag.if_stmt(c)");
        assert!(is_ag_intrinsic(
            &Expr::attr_path("ag", &["if_stmt"]),
            "if_stmt"
        ));
        assert!(!is_ag_intrinsic(&Expr::name("if_stmt"), "if_stmt"));
    }

    #[test]
    fn tuple_or_single_behaviour() {
        let one = tuple_or_single(vec![Expr::name("x")], Span::synthetic());
        assert_eq!(expr_to_source(&one), "x");
        let two = tuple_or_single(vec![Expr::name("x"), Expr::name("y")], Span::synthetic());
        assert_eq!(expr_to_source(&two), "(x, y)");
    }

    #[test]
    fn thunk_renders() {
        let t = thunk(Expr::name("x"), Span::synthetic());
        assert_eq!(expr_to_source(&t), "lambda: x");
    }
}
