//! # autograph-transforms
//!
//! The source-code-transformation passes of AutoGraph §7.2. Each pass is a
//! specialized, typically independent AST rewrite; together they convert
//! idiomatic imperative PyLite into a functional form in which every
//! staging-relevant construct is an overloadable `ag.*` call:
//!
//! | pass | rewrite |
//! |---|---|
//! | [`directives`] | recognizes `ag.set_element_type` / `ag.set_loop_options` |
//! | [`break_stmt`] | lowers `break` into guard variables + loop conditions |
//! | [`continue_stmt`] | lowers `continue` into guard variables + conditionals |
//! | [`return_stmt`] | lowers early `return` into a single trailing return |
//! | [`asserts`] | `assert c, m` → `ag.assert_stmt(c, m)` |
//! | [`lists`] | `l.append(x)` → `ag.list_append(l, x)`, `l.pop()` → `ag.list_pop(l)` |
//! | [`slices`] | `x[i] = y` → `x = ag.setitem(x, i, y)` |
//! | [`calls`] | `f(x)` → `ag.converted_call(f, x)` |
//! | [`control_flow`] | `if`/`while`/`for` and ternaries → `ag.if_stmt` / `ag.while_stmt` / `ag.for_stmt` |
//! | [`logical`] | `and`/`or`/`not`/`==`/`!=` → `ag.and_` / `ag.or_` / `ag.not_` / `ag.eq_` / `ag.not_eq_` |
//! | [`wrappers`] | marks converted functions with `@ag.autograph_artifact` |
//!
//! The [`pipeline`] module runs them in the paper's order; [`srcmap`]
//! provides the Appendix B source-map construction (every synthesized node
//! inherits the span of the user construct it replaced, so staging and
//! runtime errors point at original source lines).
//!
//! ## Example
//!
//! ```
//! use autograph_transforms::pipeline::{convert_module, ConversionConfig};
//! use autograph_pylang::{parse_module, codegen::ast_to_source};
//!
//! let m = parse_module("def f(x):\n    if x > 0:\n        x = x * x\n    return x\n")?;
//! let converted = convert_module(m, &ConversionConfig::default())?;
//! let out = ast_to_source(&converted.module);
//! assert!(out.contains("ag.if_stmt"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod asserts;
pub mod break_stmt;
pub mod calls;
pub mod context;
pub mod continue_stmt;
pub mod control_flow;
pub mod directives;
pub mod error;
pub mod lists;
pub mod logical;
pub mod pipeline;
pub mod return_stmt;
pub mod slices;
pub mod srcmap;
pub mod wrappers;

pub use context::PassContext;
pub use error::ConversionError;
pub use pipeline::{
    convert_module, ConversionConfig, ConversionPolicy, ConversionWarning, Converted,
};
