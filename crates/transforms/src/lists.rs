//! List idiom conversion (§7.2): `append` and `pop` calls are overloaded
//! with staged-aware intrinsics that use *value semantics*, so the same
//! code works on Python lists (eager) and on tensor lists (staged):
//!
//! * `l.append(x)` as a statement → `l = ag.list_append(l, x)`
//! * `v = l.pop()` → `(l, v) = ag.list_pop(l)`
//! * `l.pop()` as a statement → `(l, _) = ag.list_pop(l)` (fresh name)
//!
//! `ag.stack(l)` — the extra array idiom the paper adds — is already a
//! direct intrinsic call and passes through untouched.

use crate::context::{ag_call, PassContext};
use crate::error::ConversionError;
use autograph_pylang::ast::*;
use autograph_pylang::{Module, Span};

/// Run the list-conversion pass.
///
/// # Errors
///
/// Returns [`ConversionError`] when `append`/`pop` results are used in a
/// position the value-semantics rewrite cannot express (e.g. nested deep in
/// an expression).
pub fn run(module: Module, ctx: &mut PassContext) -> Result<Module, ConversionError> {
    let body = crate::context::rewrite_bodies_bottom_up(module.body, &mut |stmts| {
        let mut out = Vec::with_capacity(stmts.len());
        for s in stmts {
            out.extend(rewrite_stmt(s, ctx)?);
        }
        Ok(out)
    })?;
    Ok(Module { body })
}

/// Match `recv.append(arg)` or `recv.pop()` where `recv` is a simple name.
fn match_list_call(expr: &Expr) -> Option<(&str, &str, &[Expr], Span)> {
    if let ExprKind::Call { func, args, kwargs } = &expr.kind {
        if !kwargs.is_empty() {
            return None;
        }
        if let ExprKind::Attribute { value, attr } = &func.kind {
            if let ExprKind::Name(recv) = &value.kind {
                if attr == "append" && args.len() == 1 {
                    return Some((recv, "append", args, expr.span));
                }
                if attr == "pop" && args.is_empty() {
                    return Some((recv, "pop", args, expr.span));
                }
            }
        }
    }
    None
}

fn rewrite_stmt(stmt: Stmt, ctx: &mut PassContext) -> Result<Vec<Stmt>, ConversionError> {
    let span = stmt.span;
    match stmt.kind {
        // l.append(x)  =>  l = ag.list_append(l, x)
        StmtKind::ExprStmt(e) => {
            if let Some((recv, which, args, cspan)) = match_list_call(&e) {
                match which {
                    "append" => {
                        return Ok(vec![Stmt::new(
                            StmtKind::Assign {
                                target: Expr::new(ExprKind::Name(recv.to_string()), cspan),
                                value: ag_call(
                                    "list_append",
                                    vec![
                                        Expr::new(ExprKind::Name(recv.to_string()), cspan),
                                        args[0].clone(),
                                    ],
                                    cspan,
                                ),
                            },
                            span,
                        )]);
                    }
                    "pop" => {
                        let tmp = ctx.gensym("popval");
                        return Ok(vec![Stmt::new(
                            StmtKind::Assign {
                                target: Expr::new(
                                    ExprKind::Tuple(vec![
                                        Expr::new(ExprKind::Name(recv.to_string()), cspan),
                                        Expr::new(ExprKind::Name(tmp), cspan),
                                    ]),
                                    cspan,
                                ),
                                value: ag_call(
                                    "list_pop",
                                    vec![Expr::new(ExprKind::Name(recv.to_string()), cspan)],
                                    cspan,
                                ),
                            },
                            span,
                        )]);
                    }
                    _ => unreachable!(),
                }
            }
            Ok(vec![Stmt::new(StmtKind::ExprStmt(e), span)])
        }
        // v = l.pop()  =>  (l, v) = ag.list_pop(l)
        StmtKind::Assign { target, value } => {
            if let Some((recv, "pop", _, cspan)) = match_list_call(&value) {
                if matches!(target.kind, ExprKind::Name(_)) {
                    return Ok(vec![Stmt::new(
                        StmtKind::Assign {
                            target: Expr::new(
                                ExprKind::Tuple(vec![
                                    Expr::new(ExprKind::Name(recv.to_string()), cspan),
                                    target,
                                ]),
                                cspan,
                            ),
                            value: ag_call(
                                "list_pop",
                                vec![Expr::new(ExprKind::Name(recv.to_string()), cspan)],
                                cspan,
                            ),
                        },
                        span,
                    )]);
                }
            }
            // append/pop buried in an arbitrary expression cannot get value
            // semantics; report it like the paper's conversion errors.
            if contains_list_call(&value) {
                return Err(ConversionError::new(
                    "list append/pop results can only be used as a statement or simple assignment",
                    span,
                ));
            }
            Ok(vec![Stmt::new(StmtKind::Assign { target, value }, span)])
        }
        other => Ok(vec![Stmt::new(other, span)]),
    }
}

fn contains_list_call(expr: &Expr) -> bool {
    if match_list_call(expr).is_some() {
        return true;
    }
    match &expr.kind {
        ExprKind::Call { func, args, kwargs } => {
            contains_list_call(func)
                || args.iter().any(contains_list_call)
                || kwargs.iter().any(|(_, v)| contains_list_call(v))
        }
        ExprKind::BinOp { left, right, .. } => {
            contains_list_call(left) || contains_list_call(right)
        }
        ExprKind::UnaryOp { operand, .. } => contains_list_call(operand),
        ExprKind::BoolOp { values, .. } => values.iter().any(contains_list_call),
        ExprKind::Compare {
            left, comparators, ..
        } => contains_list_call(left) || comparators.iter().any(contains_list_call),
        ExprKind::IfExp { test, body, orelse } => {
            contains_list_call(test) || contains_list_call(body) || contains_list_call(orelse)
        }
        ExprKind::List(items) | ExprKind::Tuple(items) => items.iter().any(contains_list_call),
        ExprKind::Attribute { value, .. } => contains_list_call(value),
        ExprKind::Subscript { value, index } => {
            contains_list_call(value)
                || match &**index {
                    Index::Single(e) => contains_list_call(e),
                    Index::Slice { lower, upper } => {
                        lower.as_ref().map(contains_list_call).unwrap_or(false)
                            || upper.as_ref().map(contains_list_call).unwrap_or(false)
                    }
                }
        }
        ExprKind::Lambda { body, .. } => contains_list_call(body),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autograph_pylang::codegen::ast_to_source;
    use autograph_pylang::parse_module;

    fn convert(src: &str) -> String {
        let m = parse_module(src).unwrap();
        ast_to_source(&run(m, &mut PassContext::new()).unwrap())
    }

    #[test]
    fn append_statement() {
        assert_eq!(
            convert("outputs.append(output)\n"),
            "outputs = ag.list_append(outputs, output)\n"
        );
    }

    #[test]
    fn pop_assignment() {
        assert_eq!(convert("v = l.pop()\n"), "(l, v) = ag.list_pop(l)\n");
    }

    #[test]
    fn pop_statement_discards() {
        let out = convert("l.pop()\n");
        assert!(out.contains("(l, popval__1) = ag.list_pop(l)"), "{out}");
    }

    #[test]
    fn append_in_loop() {
        let out = convert("for i in xs:\n    acc.append(i * 2)\n");
        assert!(out.contains("acc = ag.list_append(acc, i * 2)"));
    }

    #[test]
    fn unrelated_methods_untouched() {
        let src = "x = obj.step(1)\nobj.pop(3)\n";
        assert_eq!(convert(src), src);
    }

    #[test]
    fn nested_append_rejected() {
        let m = parse_module("y = g(l.append(x))\n").unwrap();
        let err = run(m, &mut PassContext::new()).unwrap_err();
        assert!(
            err.to_string().contains("value semantics") || err.to_string().contains("statement")
        );
    }

    #[test]
    fn pop_on_attribute_receiver_untouched() {
        // only simple-name receivers are overloaded
        let src = "v = a.b.pop()\n";
        assert_eq!(convert(src), src);
    }
}
