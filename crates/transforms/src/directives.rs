//! Directive identification (§7.2): recognizes calls to AutoGraph
//! compilation directives (`ag.set_element_type`, `ag.set_loop_options`),
//! validates their arity, and rejects constructs the converter must not
//! accept (`global` / `nonlocal`, per Table 6).
//!
//! This pass runs first; it leaves directives in place for the runtime
//! (which applies `set_element_type` to staged lists) but guarantees later
//! passes see only well-formed ones.

use crate::context::PassContext;
use crate::error::ConversionError;
use autograph_pylang::ast::*;
use autograph_pylang::Module;

/// Known directives and their (min, max) positional arity.
const DIRECTIVES: &[(&str, usize, usize)] =
    &[("set_element_type", 2, 2), ("set_loop_options", 0, 3)];

/// Run the directives pass.
///
/// # Errors
///
/// Returns [`ConversionError`] for malformed directives or for
/// `global`/`nonlocal` statements.
pub fn run(module: Module, _ctx: &mut PassContext) -> Result<Module, ConversionError> {
    let body = crate::context::rewrite_bodies_bottom_up(module.body, &mut |stmts| {
        for s in &stmts {
            check_stmt(s)?;
        }
        Ok(stmts)
    })?;
    Ok(Module { body })
}

fn check_stmt(stmt: &Stmt) -> Result<(), ConversionError> {
    match &stmt.kind {
        StmtKind::Global(_) => Err(ConversionError::new(
            "'global' is not allowed in converted code (Table 6)",
            stmt.span,
        )),
        StmtKind::Nonlocal(_) => Err(ConversionError::new(
            "'nonlocal' is not allowed in converted code (Table 6)",
            stmt.span,
        )),
        StmtKind::ExprStmt(e) => check_directive(e),
        _ => Ok(()),
    }
}

fn check_directive(expr: &Expr) -> Result<(), ConversionError> {
    if let ExprKind::Call { func, args, .. } = &expr.kind {
        if let ExprKind::Attribute { value, attr } = &func.kind {
            if matches!(&value.kind, ExprKind::Name(n) if n == "ag") {
                if let Some((name, lo, hi)) = DIRECTIVES.iter().find(|(d, _, _)| d == attr).copied()
                {
                    if args.len() < lo || args.len() > hi {
                        return Err(ConversionError::new(
                            format!(
                                "directive ag.{name} expects {lo}..={hi} arguments, got {}",
                                args.len()
                            ),
                            expr.span,
                        ));
                    }
                    // set_element_type's first argument must be a symbol so
                    // the runtime can associate the annotation with a list.
                    if name == "set_element_type" && !matches!(args[0].kind, ExprKind::Name(_)) {
                        return Err(ConversionError::new(
                            "ag.set_element_type's first argument must be a variable name",
                            expr.span,
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use autograph_pylang::parse_module;

    fn run_src(src: &str) -> Result<Module, ConversionError> {
        run(parse_module(src).unwrap(), &mut PassContext::new())
    }

    #[test]
    fn valid_directives_pass() {
        assert!(run_src("ag.set_element_type(outputs, tf.float32)\n").is_ok());
        assert!(run_src("ag.set_loop_options()\n").is_ok());
    }

    #[test]
    fn bad_arity_rejected() {
        assert!(run_src("ag.set_element_type(outputs)\n").is_err());
        assert!(run_src("ag.set_element_type(a, b, c)\n").is_err());
    }

    #[test]
    fn non_symbol_target_rejected() {
        assert!(run_src("ag.set_element_type(f(), tf.float32)\n").is_err());
    }

    #[test]
    fn global_nonlocal_rejected_with_location() {
        let err = run_src("def f():\n    global x\n").unwrap_err();
        assert_eq!(err.span.line, 2);
        assert!(run_src("def f():\n    nonlocal y\n").is_err());
    }

    #[test]
    fn unrelated_ag_calls_pass() {
        assert!(run_src("y = ag.stack(l)\n").is_ok());
    }
}
