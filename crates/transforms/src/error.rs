//! Conversion errors (Appendix B: "conversion errors ... must indicate the
//! location in the converted code of the idiom that caused the error").

use autograph_pylang::Span;
use std::fmt;

/// An error raised during source-code transformation: the code is legal
/// PyLite but unsupported by AutoGraph.
#[derive(Debug, Clone, PartialEq)]
pub struct ConversionError {
    /// What went wrong, phrased so the user can remedy it.
    pub message: String,
    /// The location of the offending idiom in the user's original source.
    pub span: Span,
    /// Optional excerpt of the original source line.
    pub source_line: Option<String>,
}

impl ConversionError {
    /// Construct an error at a span.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        ConversionError {
            message: message.into(),
            span,
            source_line: None,
        }
    }

    /// Attach the user's source text so messages can quote the line.
    pub fn with_source(mut self, source: &str) -> Self {
        if !self.span.is_synthetic() {
            if let Some(line) = source.lines().nth(self.span.line as usize - 1) {
                self.source_line = Some(line.trim_end().to_string());
            }
        }
        self
    }
}

impl fmt::Display for ConversionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "conversion error at {}: {}", self.span, self.message)?;
        if let Some(line) = &self.source_line {
            write!(f, "\n    {} | {}", self.span.line, line)?;
        }
        Ok(())
    }
}

impl std::error::Error for ConversionError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_excerpt() {
        let e = ConversionError::new("yield is not supported", Span::new(2, 5))
            .with_source("def f():\n    yield 1\n");
        let s = e.to_string();
        assert!(s.contains("2:5"));
        assert!(s.contains("yield 1"));
    }

    #[test]
    fn synthetic_span_has_no_excerpt() {
        let e = ConversionError::new("oops", Span::synthetic()).with_source("x = 1\n");
        assert!(e.source_line.is_none());
    }
}
