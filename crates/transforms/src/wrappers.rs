//! Function wrappers (§7.2): the final pass decorates every converted
//! function with `ag.autograph_artifact`. The runtime uses the marker to
//! (a) skip re-conversion when a converted function flows back into
//! `ag.converted_call`, and (b) push a named function scope while staging,
//! which both names graph nodes readably and lets the error handlers of
//! Appendix B attribute failures to the right user function.

use crate::context::PassContext;
use crate::error::ConversionError;
use autograph_pylang::ast::*;
use autograph_pylang::Module;

/// Marker decorator attached to converted functions.
pub const ARTIFACT_MARKER: &str = "autograph_artifact";

/// Run the function-wrappers pass.
///
/// # Errors
///
/// Infallible in practice; `Result` for pipeline uniformity.
pub fn run(module: Module, _ctx: &mut PassContext) -> Result<Module, ConversionError> {
    let body = crate::context::rewrite_bodies_bottom_up(module.body, &mut |stmts| {
        Ok::<_, ConversionError>(
            stmts
                .into_iter()
                .map(|s| match s.kind {
                    StmtKind::FunctionDef {
                        name,
                        params,
                        body,
                        mut decorators,
                    } => {
                        let span = s.span;
                        if !decorators
                            .iter()
                            .any(|d| crate::context::is_ag_intrinsic(d, ARTIFACT_MARKER))
                        {
                            decorators.push(Expr::attr_path("ag", &[ARTIFACT_MARKER]));
                        }
                        Stmt::new(
                            StmtKind::FunctionDef {
                                name,
                                params,
                                body,
                                decorators,
                            },
                            span,
                        )
                    }
                    other => Stmt::new(other, s.span),
                })
                .collect(),
        )
    })?;
    Ok(Module { body })
}

/// Whether a function definition carries the converted-artifact marker.
pub fn is_artifact(decorators: &[Expr]) -> bool {
    decorators
        .iter()
        .any(|d| crate::context::is_ag_intrinsic(d, ARTIFACT_MARKER))
}

#[cfg(test)]
mod tests {
    use super::*;
    use autograph_pylang::codegen::ast_to_source;
    use autograph_pylang::parse_module;

    #[test]
    fn marker_added_everywhere() {
        let m =
            parse_module("def f(x):\n    def g(y):\n        return y\n    return g(x)\n").unwrap();
        let out = ast_to_source(&run(m, &mut PassContext::new()).unwrap());
        assert_eq!(out.matches("@ag.autograph_artifact").count(), 2, "{out}");
    }

    #[test]
    fn marker_idempotent() {
        let m = parse_module("@ag.autograph_artifact\ndef f(x):\n    return x\n").unwrap();
        let out = ast_to_source(&run(m, &mut PassContext::new()).unwrap());
        assert_eq!(out.matches("@ag.autograph_artifact").count(), 1);
    }

    #[test]
    fn is_artifact_helper() {
        let m = parse_module("@ag.autograph_artifact\ndef f():\n    pass\n").unwrap();
        if let StmtKind::FunctionDef { decorators, .. } = &m.body[0].kind {
            assert!(is_artifact(decorators));
        } else {
            panic!();
        }
        assert!(!is_artifact(&[Expr::name("other")]));
    }
}
