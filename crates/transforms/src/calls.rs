//! Function-call conversion (§7.2): every user function call is overloaded
//! with `ag.converted_call`, which at runtime decides to dynamically
//! convert the target, call it as-is, or replace it (for built-ins):
//!
//! * `f(a, x)` → `ag.converted_call(f, a, x)`
//! * `obj.meth(x)` → `ag.converted_call(obj.meth, x)`
//! * `print(x)` → `ag.print_(x)`; `len`/`range`/`int`/`float` likewise
//!   (Table 5's built-in conversions)
//! * `tf.*` and `ag.*` calls pass through — the whitelisted module and the
//!   operator namespace itself.

use crate::context::{rewrite_exprs, PassContext};
use crate::error::ConversionError;
use autograph_pylang::ast::*;
use autograph_pylang::Module;

/// Built-in functions that convert to dedicated intrinsics.
const BUILTINS: &[(&str, &str)] = &[
    ("print", "print_"),
    ("len", "len_"),
    ("range", "range_"),
    ("int", "int_"),
    ("float", "float_"),
    ("abs", "abs_"),
    ("min", "min_"),
    ("max", "max_"),
];

/// Run the call-conversion pass.
///
/// # Errors
///
/// Infallible in practice; `Result` for pipeline uniformity.
pub fn run(module: Module, _ctx: &mut PassContext) -> Result<Module, ConversionError> {
    let body = rewrite_exprs(module.body, &mut |expr| rewrite_call(expr));
    Ok(Module { body })
}

fn rewrite_call(expr: Expr) -> Expr {
    let span = expr.span;
    match expr.kind {
        ExprKind::Call { func, args, kwargs } => {
            if is_whitelisted(&func) {
                return Expr::new(ExprKind::Call { func, args, kwargs }, span);
            }
            if let ExprKind::Name(n) = &func.kind {
                if let Some((_, intrinsic)) = BUILTINS.iter().find(|(b, _)| b == n) {
                    return Expr::new(
                        ExprKind::Call {
                            func: Box::new(Expr::new(
                                ExprKind::Attribute {
                                    value: Box::new(Expr::new(ExprKind::Name("ag".into()), span)),
                                    attr: (*intrinsic).to_string(),
                                },
                                span,
                            )),
                            args,
                            kwargs,
                        },
                        span,
                    );
                }
            }
            let mut new_args = Vec::with_capacity(args.len() + 1);
            new_args.push(*func);
            new_args.extend(args);
            Expr::new(
                ExprKind::Call {
                    func: Box::new(Expr::new(
                        ExprKind::Attribute {
                            value: Box::new(Expr::new(ExprKind::Name("ag".into()), span)),
                            attr: "converted_call".into(),
                        },
                        span,
                    )),
                    args: new_args,
                    kwargs,
                },
                span,
            )
        }
        other => Expr::new(other, span),
    }
}

/// Whitelisted call targets: the `ag` operator namespace and the `tf`
/// module (the paper's whitelist "currently includes the TF module").
fn is_whitelisted(func: &Expr) -> bool {
    fn root_of(e: &Expr) -> Option<&str> {
        match &e.kind {
            ExprKind::Name(n) => Some(n),
            ExprKind::Attribute { value, .. } => root_of(value),
            _ => None,
        }
    }
    // Only attribute paths rooted at the module names are whitelisted;
    // a bare call to a variable named `tf` would still be converted.
    match &func.kind {
        ExprKind::Attribute { .. } => matches!(root_of(func), Some("tf") | Some("ag")),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autograph_pylang::codegen::ast_to_source;
    use autograph_pylang::parse_module;

    fn convert(src: &str) -> String {
        let m = parse_module(src).unwrap();
        ast_to_source(&run(m, &mut PassContext::new()).unwrap())
    }

    #[test]
    fn paper_example() {
        assert_eq!(
            convert("def f(a, x):\n    return a(x)\n"),
            "def f(a, x):\n    return ag.converted_call(a, x)\n"
        );
    }

    #[test]
    fn method_calls_converted() {
        assert_eq!(
            convert("y = obj.step(a, b)\n"),
            "y = ag.converted_call(obj.step, a, b)\n"
        );
    }

    #[test]
    fn tf_and_ag_whitelisted() {
        let src = "y = tf.matmul(a, b)\nz = ag.stack(l)\n";
        assert_eq!(convert(src), src);
    }

    #[test]
    fn builtins_replaced() {
        assert_eq!(convert("print(x)\n"), "ag.print_(x)\n");
        assert_eq!(convert("n = len(xs)\n"), "n = ag.len_(xs)\n");
        assert_eq!(
            convert("for i in range(10):\n    pass\n"),
            "for i in ag.range_(10):\n    pass\n"
        );
        assert_eq!(convert("v = float(i)\n"), "v = ag.float_(i)\n");
    }

    #[test]
    fn kwargs_preserved() {
        assert_eq!(
            convert("y = f(a, k=2)\n"),
            "y = ag.converted_call(f, a, k=2)\n"
        );
    }

    #[test]
    fn nested_calls_converted_inside_out() {
        assert_eq!(
            convert("y = f(g(x))\n"),
            "y = ag.converted_call(f, ag.converted_call(g, x))\n"
        );
    }

    #[test]
    fn call_of_call_result() {
        assert_eq!(
            convert("y = h(1)(2)\n"),
            "y = ag.converted_call(ag.converted_call(h, 1), 2)\n"
        );
    }

    #[test]
    fn variable_named_tf_not_whitelisted() {
        assert_eq!(convert("y = tf(x)\n"), "y = ag.converted_call(tf, x)\n");
    }
}
