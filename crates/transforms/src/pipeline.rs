//! The multi-pass conversion pipeline (§6 step 3, §7.2), running each
//! specialized pass in the paper's order of application:
//!
//! 1. directives
//! 2. break statements
//! 3. continue statements
//! 4. return statements
//! 5. assert statements
//! 6. lists
//! 7. slices
//! 8. function calls
//! 9. control flow
//! 10. ternary conditional expressions
//! 11. logical expressions
//! 12. function wrappers

use crate::context::PassContext;
use crate::error::ConversionError;
use crate::srcmap::SourceMap;
use autograph_obs as obs;
use autograph_pylang::{Module, Span, Stmt, StmtKind};

/// What to do when a construct is legal PyLite but unsupported by the
/// conversion passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConversionPolicy {
    /// Fail the whole conversion with a [`ConversionError`] at the
    /// offending construct (the historical behavior).
    #[default]
    Strict,
    /// Keep the offending top-level function unconverted — it still runs,
    /// op-by-op, in the eager interpreter — and record a
    /// [`ConversionWarning`] instead of failing. Functions that do convert
    /// are staged as usual, so a program degrades per-function, not
    /// all-or-nothing.
    FallbackToEager,
}

/// Options controlling conversion, the analog of `ag.convert()`'s keyword
/// arguments.
#[derive(Debug, Clone)]
pub struct ConversionConfig {
    /// Convert function calls to `ag.converted_call` so user functions are
    /// recursively converted at runtime (the paper's "recursive mode").
    pub convert_calls: bool,
    /// Convert `and`/`or`/`not`/`==`/`!=` into functional forms.
    pub convert_logical: bool,
    /// Convert control flow into functional forms.
    pub convert_control_flow: bool,
    /// What to do with unsupported constructs.
    pub policy: ConversionPolicy,
}

impl Default for ConversionConfig {
    fn default() -> Self {
        ConversionConfig {
            convert_calls: true,
            convert_logical: true,
            convert_control_flow: true,
            policy: ConversionPolicy::Strict,
        }
    }
}

/// A recorded degradation: a function that could not be converted and was
/// left to run eagerly under [`ConversionPolicy::FallbackToEager`].
#[derive(Debug, Clone, PartialEq)]
pub struct ConversionWarning {
    /// The top-level function that was left unconverted (`<module>` for
    /// module-level statements).
    pub function: String,
    /// Full line:col location of the construct that blocked conversion.
    pub span: Span,
    /// Why conversion failed.
    pub reason: String,
    /// The offending construct's source text, when the original source
    /// was available (see [`ConversionWarning::with_source`]).
    pub source_line: Option<String>,
}

impl ConversionWarning {
    /// Attach the user's source text so the warning can quote the
    /// offending construct (mirrors
    /// [`crate::ConversionError::with_source`]).
    pub fn with_source(mut self, source: &str) -> Self {
        if !self.span.is_synthetic() && self.source_line.is_none() {
            if let Some(line) = source.lines().nth(self.span.line as usize - 1) {
                self.source_line = Some(line.trim_end().to_string());
            }
        }
        self
    }
}

impl std::fmt::Display for ConversionWarning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "function '{}' falls back to eager execution: {} (at {})",
            self.function, self.reason, self.span
        )?;
        if let Some(line) = &self.source_line {
            write!(f, "\n    {} | {}", self.span.line, line)?;
        }
        Ok(())
    }
}

/// The result of converting a module: the rewritten AST plus the
/// generated-source map of Appendix B.
#[derive(Debug, Clone)]
pub struct Converted {
    /// The transformed module; ready for the AutoGraph runtime.
    pub module: Module,
    /// Map from generated-source lines back to original spans.
    pub source_map: SourceMap,
    /// Functions left unconverted under
    /// [`ConversionPolicy::FallbackToEager`] (always empty under
    /// [`ConversionPolicy::Strict`]).
    pub warnings: Vec<ConversionWarning>,
}

/// Convert a module through all passes.
///
/// # Errors
///
/// Under [`ConversionPolicy::Strict`], returns the first
/// [`ConversionError`] raised by any pass, located at the offending
/// construct in the user's original source. Under
/// [`ConversionPolicy::FallbackToEager`], unconvertible top-level
/// functions are kept verbatim and reported in
/// [`Converted::warnings`]; only parse-level impossibilities still error.
pub fn convert_module(
    module: Module,
    config: &ConversionConfig,
) -> Result<Converted, ConversionError> {
    match config.policy {
        ConversionPolicy::Strict => {
            let m = convert_stmts(module, config)?;
            let source_map = SourceMap::build(&m);
            Ok(Converted {
                module: m,
                source_map,
                warnings: Vec::new(),
            })
        }
        ConversionPolicy::FallbackToEager => convert_module_fallback(module, config),
    }
}

/// Run the full pass sequence over a module, failing on the first error.
fn convert_stmts(module: Module, config: &ConversionConfig) -> Result<Module, ConversionError> {
    let mut ctx = PassContext::new();
    let mut m = module;
    m = run_pass("directives", m, &mut ctx, crate::directives::run)?;
    m = run_pass("break_stmt", m, &mut ctx, crate::break_stmt::run)?;
    m = run_pass("continue_stmt", m, &mut ctx, crate::continue_stmt::run)?;
    m = run_pass("return_stmt", m, &mut ctx, crate::return_stmt::run)?;
    m = run_pass("asserts", m, &mut ctx, crate::asserts::run)?;
    m = run_pass("lists", m, &mut ctx, crate::lists::run)?;
    m = run_pass("slices", m, &mut ctx, crate::slices::run)?;
    if config.convert_calls {
        m = run_pass("calls", m, &mut ctx, crate::calls::run)?;
    }
    if config.convert_control_flow {
        m = run_pass("control_flow", m, &mut ctx, crate::control_flow::run)?;
        m = run_pass("ternary", m, &mut ctx, crate::control_flow::run_ternary)?;
    }
    if config.convert_logical {
        m = run_pass("logical", m, &mut ctx, crate::logical::run)?;
    }
    m = run_pass("wrappers", m, &mut ctx, crate::wrappers::run)?;
    Ok(m)
}

/// Graceful degradation: convert each top-level statement independently so
/// one unsupported function does not take down the whole module. Each
/// statement gets a fresh [`PassContext`]; generated temp names are
/// function-scoped, so restarting the gensym counter per statement is
/// safe.
fn convert_module_fallback(
    module: Module,
    config: &ConversionConfig,
) -> Result<Converted, ConversionError> {
    let mut out_body: Vec<Stmt> = Vec::with_capacity(module.body.len());
    let mut warnings = Vec::new();
    for stmt in module.body {
        let function = match &stmt.kind {
            StmtKind::FunctionDef { name, .. } => name.clone(),
            _ => "<module>".to_string(),
        };
        let single = Module {
            body: vec![stmt.clone()],
        };
        match convert_stmts(single, config) {
            Ok(m) => out_body.extend(m.body),
            Err(e) => {
                obs::count("transform", "eager_fallbacks", 1);
                warnings.push(ConversionWarning {
                    function,
                    span: e.span,
                    reason: e.message,
                    source_line: e.source_line,
                });
                out_body.push(stmt);
            }
        }
    }
    let m = Module { body: out_body };
    let source_map = SourceMap::build(&m);
    Ok(Converted {
        module: m,
        source_map,
        warnings,
    })
}

/// Run one pass, recording its wall time (span `transform_pass/<name>`)
/// and the statement-count growth it caused (`transform/stmts_added`,
/// `transform/ast_stmts_after`) when a recorder is installed. With
/// profiling off this is a direct call behind one atomic load.
fn run_pass(
    name: &'static str,
    m: Module,
    ctx: &mut PassContext,
    pass: impl FnOnce(Module, &mut PassContext) -> Result<Module, ConversionError>,
) -> Result<Module, ConversionError> {
    if !obs::enabled() {
        return pass(m, ctx);
    }
    let before = module_stmt_count(&m);
    let out = {
        let _span = obs::span("transform_pass", name);
        pass(m, ctx)?
    };
    let after = module_stmt_count(&out);
    obs::observe("transform", "ast_stmts_after", after as u64);
    obs::count(
        "transform",
        "stmts_added",
        after.saturating_sub(before) as u64,
    );
    Ok(out)
}

/// Recursive statement count — the AST-size metric reported per pass.
fn module_stmt_count(m: &Module) -> usize {
    fn count(stmts: &[Stmt]) -> usize {
        stmts
            .iter()
            .map(|s| {
                1 + match &s.kind {
                    StmtKind::FunctionDef { body, .. }
                    | StmtKind::While { body, .. }
                    | StmtKind::For { body, .. } => count(body),
                    StmtKind::If { body, orelse, .. } => count(body) + count(orelse),
                    _ => 0,
                }
            })
            .sum()
    }
    count(&m.body)
}

/// Convert source text end-to-end (parse, convert, render) — the
/// "stand-alone library performing source-to-source transformations" view
/// of AutoGraph. Returns the generated source.
///
/// # Errors
///
/// Returns parse errors (as [`ConversionError`] at the same location) and
/// conversion errors.
pub fn convert_source(source: &str, config: &ConversionConfig) -> Result<String, ConversionError> {
    let module = autograph_pylang::parse_module(source)
        .map_err(|e| ConversionError::new(e.message.clone(), e.span).with_source(source))?;
    let converted = convert_module(module, config).map_err(|e| e.with_source(source))?;
    Ok(autograph_pylang::codegen::ast_to_source(&converted.module))
}

#[cfg(test)]
mod tests {
    use super::*;
    use autograph_pylang::parse_module;

    fn convert(src: &str) -> String {
        convert_source(src, &ConversionConfig::default()).unwrap()
    }

    #[test]
    fn listing1_end_to_end() {
        let out = convert("def f(x):\n    if x > 0:\n        x = x * x\n    return x\n");
        assert!(out.contains("ag.if_stmt("), "{out}");
        assert!(out.contains("@ag.autograph_artifact"), "{out}");
        // generated code re-parses
        assert!(parse_module(&out).is_ok(), "{out}");
    }

    #[test]
    fn full_pipeline_on_complex_function() {
        let src = "\
def search(scores, max_len):
    result = []
    ag.set_element_type(result, tf.int32)
    i = 0
    while True:
        best = tf.argmax(scores[i], 0)
        result.append(best)
        i += 1
        if i >= max_len:
            break
    return ag.stack(result)
";
        let out = convert(src);
        assert!(!out.contains("break\n"), "{out}");
        assert!(out.contains("ag.while_stmt"), "{out}");
        assert!(out.contains("ag.list_append"), "{out}");
        assert!(parse_module(&out).is_ok(), "{out}");
    }

    #[test]
    fn pass_interaction_break_then_control_flow() {
        // the break pass creates `not break__ and cond` which logical must
        // then functionalize inside the generated loop_test
        let out = convert("def f(x):\n    while x > 0:\n        x = x - 1\n        if x == 3:\n            break\n    return x\n");
        assert!(out.contains("ag.and_(ag.not_(break"), "{out}");
        assert!(out.contains("ag.eq_("), "{out}");
        assert!(parse_module(&out).is_ok());
    }

    #[test]
    fn config_disables_passes() {
        let cfg = ConversionConfig {
            convert_calls: false,
            convert_logical: false,
            convert_control_flow: false,
            ..Default::default()
        };
        let out = convert_source(
            "def f(x):\n    if g(x) and h(x):\n        x = 1\n    return x\n",
            &cfg,
        )
        .unwrap();
        assert!(!out.contains("converted_call"));
        assert!(!out.contains("ag.and_"));
        assert!(!out.contains("ag.if_stmt"));
        assert!(out.contains("@ag.autograph_artifact"));
    }

    #[test]
    fn fallback_policy_keeps_unsupported_function_and_warns() {
        let src = "\
def bad():
    global x
    return x

def good(y):
    if y > 0:
        y = y * 2
    return y
";
        let cfg = ConversionConfig {
            policy: ConversionPolicy::FallbackToEager,
            ..Default::default()
        };
        let module = parse_module(src).unwrap();
        let conv = convert_module(module, &cfg).unwrap();
        assert_eq!(conv.warnings.len(), 1);
        assert_eq!(conv.warnings[0].function, "bad");
        assert!(conv.warnings[0].reason.contains("global"));
        let out = autograph_pylang::codegen::ast_to_source(&conv.module);
        // `good` converted; `bad` kept verbatim (no artifact decorator)
        assert!(out.contains("ag.if_stmt("), "{out}");
        assert!(out.contains("global x"), "{out}");
        assert!(parse_module(&out).is_ok(), "{out}");
    }

    #[test]
    fn strict_policy_never_warns() {
        let conv = convert_module(
            parse_module("def f(x):\n    return x\n").unwrap(),
            &ConversionConfig::default(),
        )
        .unwrap();
        assert!(conv.warnings.is_empty());
    }

    #[test]
    fn parse_errors_reported_with_location() {
        let err = convert_source("def f(:\n", &ConversionConfig::default()).unwrap_err();
        assert!(!err.span.is_synthetic());
    }

    #[test]
    fn conversion_error_bubbles_with_excerpt() {
        let err =
            convert_source("def f():\n    global x\n", &ConversionConfig::default()).unwrap_err();
        assert!(err.to_string().contains("global"));
        assert_eq!(err.span.line, 2);
        assert!(err.source_line.as_deref().unwrap().contains("global x"));
    }

    #[test]
    fn generated_code_is_stable_fixpoint_parseable() {
        // converting the dynamic_rnn-style function produces parseable code
        let src = "\
def dynamic_rnn(rnn_cell, input_data, initial_state, sequence_len):
    input_data = tf.transpose(input_data, (1, 0, 2))
    outputs = []
    ag.set_element_type(outputs, tf.float32)
    state = initial_state
    max_len = tf.reduce_max(sequence_len)
    for i in tf.range(max_len):
        prev_state = state
        output, state = rnn_cell(input_data[i], state)
        state = tf.where(i < sequence_len, state, prev_state)
        outputs.append(output)
    outputs = ag.stack(outputs)
    outputs = tf.transpose(outputs, (1, 0, 2))
    return outputs, state
";
        let out = convert(src);
        assert!(out.contains("ag.for_stmt"), "{out}");
        assert!(out.contains("ag.converted_call(rnn_cell"), "{out}");
        assert!(parse_module(&out).is_ok(), "{out}");
    }
}
