//! Logical-expression conversion (§7.2). Python cannot overload `and`,
//! `or`, `not` (they are control flow, not operators) and TensorFlow's
//! `Tensor` does not overload `==`/`!=` for compatibility reasons, so these
//! are replaced with overloadable functional forms:
//!
//! * `a and b` → `ag.and_(a, lambda: b)` (lazy, preserving short-circuit
//!   semantics — the paper lowers this to `tf.cond` when staged)
//! * `a or b` → `ag.or_(a, lambda: b)`
//! * `not a` → `ag.not_(a)`
//! * `a == b` → `ag.eq_(a, b)`, `a != b` → `ag.not_eq_(a, b)`
//!
//! Chained comparisons `a < b <= c` expand into a lazy conjunction of the
//! pairwise comparisons. (Like the paper's treatment of loop conditions,
//! the middle operand expression may be evaluated twice; this is the
//! documented deviation.)

use crate::context::{ag_call, thunk, PassContext};
use crate::error::ConversionError;
use autograph_pylang::ast::*;
use autograph_pylang::Module;

/// Run the logical-expression conversion pass.
///
/// # Errors
///
/// Infallible in practice; `Result` for pipeline uniformity.
pub fn run(module: Module, _ctx: &mut PassContext) -> Result<Module, ConversionError> {
    let body = crate::context::rewrite_exprs(module.body, &mut rewrite);
    Ok(Module { body })
}

fn rewrite(expr: Expr) -> Expr {
    let span = expr.span;
    match expr.kind {
        ExprKind::BoolOp { op, values } => {
            let name = match op {
                BoolOpKind::And => "and_",
                BoolOpKind::Or => "or_",
            };
            fold_lazy(name, values, span)
        }
        ExprKind::UnaryOp {
            op: UnaryOp::Not,
            operand,
        } => ag_call("not_", vec![*operand], span),
        ExprKind::Compare {
            left,
            ops,
            comparators,
        } => {
            if ops.len() == 1 {
                pairwise(
                    *left,
                    ops[0],
                    comparators.into_iter().next().expect("one comparator"),
                )
            } else {
                // a < b <= c  =>  and_(a < b, lambda: b <= c)
                let mut operands = vec![*left];
                operands.extend(comparators);
                let mut pairs = Vec::with_capacity(ops.len());
                for (i, op) in ops.iter().enumerate() {
                    pairs.push(pairwise(operands[i].clone(), *op, operands[i + 1].clone()));
                }
                fold_lazy("and_", pairs, span)
            }
        }
        other => Expr::new(other, span),
    }
}

/// Right-fold operands into nested lazy calls:
/// `[a, b, c]` → `ag.and_(a, lambda: ag.and_(b, lambda: c))`.
fn fold_lazy(name: &str, mut values: Vec<Expr>, span: autograph_pylang::Span) -> Expr {
    let mut acc = values.pop().expect("BoolOp has >= 2 operands");
    while let Some(v) = values.pop() {
        acc = ag_call(name, vec![v, thunk(acc, span)], span);
    }
    acc
}

fn pairwise(left: Expr, op: CmpOp, right: Expr) -> Expr {
    let span = left.span;
    match op {
        CmpOp::Eq => ag_call("eq_", vec![left, right], span),
        CmpOp::NotEq => ag_call("not_eq_", vec![left, right], span),
        other => Expr::new(
            ExprKind::Compare {
                left: Box::new(left),
                ops: vec![other],
                comparators: vec![right],
            },
            span,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autograph_pylang::codegen::ast_to_source;
    use autograph_pylang::parse_module;

    fn convert(src: &str) -> String {
        let m = parse_module(src).unwrap();
        ast_to_source(&run(m, &mut PassContext::new()).unwrap())
    }

    #[test]
    fn and_or_not() {
        assert_eq!(convert("r = a and b\n"), "r = ag.and_(a, lambda: b)\n");
        assert_eq!(convert("r = a or b\n"), "r = ag.or_(a, lambda: b)\n");
        assert_eq!(convert("r = not a\n"), "r = ag.not_(a)\n");
    }

    #[test]
    fn three_way_chain_nests_right() {
        assert_eq!(
            convert("r = a and b and c\n"),
            "r = ag.and_(a, lambda: ag.and_(b, lambda: c))\n"
        );
    }

    #[test]
    fn eq_and_not_eq() {
        assert_eq!(convert("r = a == b\n"), "r = ag.eq_(a, b)\n");
        assert_eq!(convert("r = a != b\n"), "r = ag.not_eq_(a, b)\n");
    }

    #[test]
    fn ordering_comparisons_stay_native() {
        let src = "r = a < b\ns = a >= b\n";
        assert_eq!(convert(src), src);
    }

    #[test]
    fn chained_comparison_expands() {
        assert_eq!(
            convert("r = 0 <= x < n\n"),
            "r = ag.and_(0 <= x, lambda: x < n)\n"
        );
    }

    #[test]
    fn chained_with_eq() {
        assert_eq!(
            convert("r = a == b == c\n"),
            "r = ag.and_(ag.eq_(a, b), lambda: ag.eq_(b, c))\n"
        );
    }

    #[test]
    fn is_and_in_stay_native() {
        let src = "r = x is None\ns = a in xs\n";
        assert_eq!(convert(src), src);
    }

    #[test]
    fn nested_inside_control_flow_tests() {
        let out = convert("def f(a, b):\n    while a and b:\n        a = g(a)\n    return a\n");
        assert!(out.contains("while ag.and_(a, lambda: b):"), "{out}");
    }

    #[test]
    fn not_in_loop_condition_from_break_pass() {
        // shape produced by the break pass
        let out = convert("while not done and c:\n    x = 1\n");
        assert!(
            out.contains("while ag.and_(ag.not_(done), lambda: c):"),
            "{out}"
        );
    }
}
