//! Slice conversion (§7.2). Slice *writes* mutate their target in Python;
//! TensorFlow requires value semantics, so `x[i] = y` is rewritten in-place
//! to `x = ag.setitem(x, i, y)`. Slice reads are overloadable through the
//! runtime's dynamic dispatch and pass through mechanically.
//!
//! This pass also desugars augmented assignment (`x += v` → `x = x + v`,
//! `x[i] += v` → `x[i] = x[i] + v` → setitem form) so later passes only see
//! plain assignments.

use crate::context::{ag_call, PassContext};
use crate::error::ConversionError;
use autograph_pylang::ast::*;
use autograph_pylang::Module;

/// Run the slice/augmented-assignment conversion pass.
///
/// # Errors
///
/// Returns [`ConversionError`] for slice-range writes (`x[a:b] = v`),
/// which neither Python-value nor staged semantics support here.
pub fn run(module: Module, _ctx: &mut PassContext) -> Result<Module, ConversionError> {
    let body = crate::context::rewrite_bodies_bottom_up(module.body, &mut |stmts| {
        let mut out = Vec::with_capacity(stmts.len());
        for s in stmts {
            out.push(rewrite_stmt(s)?);
        }
        Ok(out)
    })?;
    Ok(Module { body })
}

fn rewrite_stmt(stmt: Stmt) -> Result<Stmt, ConversionError> {
    let span = stmt.span;
    match stmt.kind {
        // Desugar aug-assign first so `x[i] += v` becomes a subscript write.
        StmtKind::AugAssign { target, op, value } => {
            let read = target.clone();
            let sum = Expr::new(
                ExprKind::BinOp {
                    op,
                    left: Box::new(read),
                    right: Box::new(value),
                },
                span,
            );
            rewrite_stmt(Stmt::new(StmtKind::Assign { target, value: sum }, span))
        }
        StmtKind::Assign { target, value } => match target.kind {
            ExprKind::Subscript { value: base, index } => {
                let idx = match *index {
                    Index::Single(e) => e,
                    Index::Slice { .. } => {
                        return Err(ConversionError::new(
                            "slice-range assignment (x[a:b] = v) is not supported; assign whole slices by value instead",
                            span,
                        ));
                    }
                };
                match &base.kind {
                    ExprKind::Name(_) | ExprKind::Attribute { .. } => {
                        let setitem = ag_call("setitem", vec![(*base).clone(), idx, value], span);
                        Ok(Stmt::new(
                            StmtKind::Assign {
                                target: *base,
                                value: setitem,
                            },
                            span,
                        ))
                    }
                    _ => Err(ConversionError::new(
                        "subscript assignment target must be a name or attribute",
                        span,
                    )),
                }
            }
            _ => Ok(Stmt::new(StmtKind::Assign { target, value }, span)),
        },
        other => Ok(Stmt::new(other, span)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autograph_pylang::codegen::ast_to_source;
    use autograph_pylang::parse_module;

    fn convert(src: &str) -> String {
        let m = parse_module(src).unwrap();
        ast_to_source(&run(m, &mut PassContext::new()).unwrap())
    }

    #[test]
    fn setitem_rewrite() {
        assert_eq!(convert("x[i] = y\n"), "x = ag.setitem(x, i, y)\n");
    }

    #[test]
    fn aug_assign_desugared() {
        assert_eq!(convert("x += 1\n"), "x = x + 1\n");
        assert_eq!(convert("x *= 2 + y\n"), "x = x * (2 + y)\n");
    }

    #[test]
    fn subscript_aug_assign() {
        assert_eq!(convert("x[i] += v\n"), "x = ag.setitem(x, i, x[i] + v)\n");
    }

    #[test]
    fn attribute_base_supported() {
        assert_eq!(convert("a.b[0] = v\n"), "a.b = ag.setitem(a.b, 0, v)\n");
    }

    #[test]
    fn slice_range_write_rejected() {
        let m = parse_module("x[1:3] = v\n").unwrap();
        assert!(run(m, &mut PassContext::new()).is_err());
    }

    #[test]
    fn slice_reads_untouched() {
        let src = "y = x[1:3]\nz = x[i]\n";
        assert_eq!(convert(src), src);
    }

    #[test]
    fn nested_bodies_processed() {
        let out = convert("def f(x):\n    while c:\n        x[0] += 1\n    return x\n");
        assert!(out.contains("x = ag.setitem(x, 0, x[0] + 1)"));
    }
}
