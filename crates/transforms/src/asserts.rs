//! Converts `assert` statements in-place to the overloadable functional
//! form `ag.assert_stmt(cond, message)` (§7.2). The runtime dispatches: a
//! Python boolean asserts immediately; a staged tensor lowers to a graph
//! assertion op.

use crate::context::{ag_call, PassContext};
use crate::error::ConversionError;
use autograph_pylang::ast::*;
use autograph_pylang::Module;

/// Run the assert-conversion pass.
///
/// # Errors
///
/// Infallible in practice; `Result` for pipeline uniformity.
pub fn run(module: Module, _ctx: &mut PassContext) -> Result<Module, ConversionError> {
    let body = crate::context::rewrite_bodies_bottom_up(module.body, &mut |stmts| {
        Ok::<_, ConversionError>(
            stmts
                .into_iter()
                .map(|s| match s.kind {
                    StmtKind::Assert { test, msg } => {
                        let span = s.span;
                        let msg = msg.unwrap_or(Expr::new(ExprKind::NoneLit, span));
                        Stmt::new(
                            StmtKind::ExprStmt(ag_call("assert_stmt", vec![test, msg], span)),
                            span,
                        )
                    }
                    other => Stmt::new(other, s.span),
                })
                .collect(),
        )
    })?;
    Ok(Module { body })
}

#[cfg(test)]
mod tests {
    use super::*;
    use autograph_pylang::codegen::ast_to_source;
    use autograph_pylang::parse_module;

    fn convert(src: &str) -> String {
        let m = parse_module(src).unwrap();
        ast_to_source(&run(m, &mut PassContext::new()).unwrap())
    }

    #[test]
    fn assert_with_message() {
        assert_eq!(
            convert("assert x > 0, 'bad x'\n"),
            "ag.assert_stmt(x > 0, 'bad x')\n"
        );
    }

    #[test]
    fn assert_without_message_gets_none() {
        assert_eq!(convert("assert ok\n"), "ag.assert_stmt(ok, None)\n");
    }

    #[test]
    fn nested_asserts_converted() {
        let out = convert("def f(x):\n    if c:\n        assert x\n    return x\n");
        assert!(out.contains("ag.assert_stmt(x, None)"));
    }
}
