//! Source-map construction (Appendix B).
//!
//! Two mechanisms keep errors attributable to user code:
//!
//! 1. **Span inheritance** — every pass stamps synthesized nodes with the
//!    span of the user construct they replaced, so the interpreter's
//!    staging/runtime errors carry original locations without any lookup.
//! 2. **Generated-source maps** — when the converted module is rendered
//!    back to text (`ast_to_source`) for inspection, [`SourceMap::build`]
//!    records which original line each generated line came from, so stack
//!    traces over generated code can be rewritten to point at user files.

use autograph_pylang::ast::{Module, Stmt, StmtKind};
use autograph_pylang::codegen::stmt_to_source;
use autograph_pylang::Span;

/// Maps lines of generated source back to original-source spans.
#[derive(Debug, Clone, Default)]
pub struct SourceMap {
    entries: Vec<(u32, Span)>, // (generated line, original span)
}

impl SourceMap {
    /// Build a map for a converted module, mirroring the deterministic
    /// line layout of [`autograph_pylang::codegen::ast_to_source`].
    pub fn build(module: &Module) -> SourceMap {
        let mut map = SourceMap::default();
        let mut line = 1u32;
        for stmt in &module.body {
            record_stmt(stmt, &mut line, &mut map);
        }
        map
    }

    /// The original span for a generated line, if that line came from user
    /// code (synthesized-only lines return the nearest preceding user
    /// span, matching how tracebacks attribute generated statements to the
    /// construct that produced them).
    pub fn lookup(&self, generated_line: u32) -> Option<Span> {
        let mut best: Option<Span> = None;
        for (line, span) in &self.entries {
            if *line > generated_line {
                break;
            }
            if !span.is_synthetic() {
                best = Some(*span);
            }
            if *line == generated_line && !span.is_synthetic() {
                return Some(*span);
            }
        }
        best
    }

    /// Number of mapped lines.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Rewrite a "generated line N" reference in an error message into an
    /// original-source location (the Appendix B error-rewriting step).
    pub fn rewrite_location(&self, generated_line: u32) -> String {
        match self.lookup(generated_line) {
            Some(span) => format!("original source {span}"),
            None => format!("generated code line {generated_line}"),
        }
    }
}

fn record_stmt(stmt: &Stmt, line: &mut u32, map: &mut SourceMap) {
    map.entries.push((*line, stmt.span));
    match &stmt.kind {
        StmtKind::FunctionDef {
            body, decorators, ..
        } => {
            // decorators + def line
            *line += decorators.len() as u32 + 1;
            for s in body {
                record_stmt(s, line, map);
            }
        }
        StmtKind::If { body, orelse, .. } => {
            *line += 1;
            for s in body {
                record_stmt(s, line, map);
            }
            if !orelse.is_empty() {
                *line += 1; // else:
                for s in orelse {
                    record_stmt(s, line, map);
                }
            }
        }
        StmtKind::While { body, .. } | StmtKind::For { body, .. } => {
            *line += 1;
            for s in body {
                record_stmt(s, line, map);
            }
        }
        _ => {
            // simple statements render as exactly the number of lines
            // stmt_to_source produces (normally 1)
            *line += stmt_to_source(stmt).lines().count() as u32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autograph_pylang::codegen::ast_to_source;
    use autograph_pylang::parse_module;

    #[test]
    fn identity_map_for_unconverted_code() {
        let src = "x = 1\ny = 2\nz = x + y\n";
        let m = parse_module(src).unwrap();
        let map = SourceMap::build(&m);
        for line in 1..=3u32 {
            assert_eq!(map.lookup(line).unwrap().line, line);
        }
    }

    #[test]
    fn nested_lines_tracked() {
        let src = "def f(x):\n    if x:\n        y = 1\n    return x\n";
        let m = parse_module(src).unwrap();
        let rendered = ast_to_source(&m);
        assert_eq!(rendered, src, "layout assumption");
        let map = SourceMap::build(&m);
        assert_eq!(map.lookup(3).unwrap().line, 3); // y = 1
        assert_eq!(map.lookup(4).unwrap().line, 4); // return
    }

    #[test]
    fn converted_code_lines_point_at_original() {
        let src = "def f(x):\n    if x > 0:\n        x = x * x\n    return x\n";
        let m = parse_module(src).unwrap();
        let conv =
            crate::pipeline::convert_module(m, &crate::pipeline::ConversionConfig::default())
                .unwrap();
        let rendered = ast_to_source(&conv.module);
        let map = &conv.source_map;
        // Every generated line should map to some original line 1..=4.
        for (i, _) in rendered.lines().enumerate() {
            if let Some(span) = map.lookup(i as u32 + 1) {
                assert!((1..=4).contains(&span.line), "line {} -> {span}", i + 1);
            }
        }
        // The ag.if_stmt call line maps to the original `if` at line 2.
        let call_line = rendered
            .lines()
            .position(|l| l.contains("ag.if_stmt"))
            .unwrap() as u32
            + 1;
        assert_eq!(map.lookup(call_line).unwrap().line, 2);
    }

    #[test]
    fn rewrite_location_message() {
        let m = parse_module("x = 1\n").unwrap();
        let map = SourceMap::build(&m);
        assert!(map.rewrite_location(1).contains("original source 1:1"));
        assert!(!map.is_empty());
    }
}
