//! End-to-end reference tests of the full conversion pipeline — the
//! paper's §10 engineering practice: "interactions between features are
//! tested in end-to-end reference tests". Each case pins the exact
//! generated source for a representative input; any pass-interaction
//! regression shows up as a readable diff.

use autograph_transforms::pipeline::{convert_source, ConversionConfig};

fn convert(src: &str) -> String {
    convert_source(src, &ConversionConfig::default()).expect("conversion")
}

#[test]
fn reference_listing1() {
    let got = convert("def f(x):\n    if x > 0:\n        x = x * x\n    return x\n");
    let want = "\
@ag.autograph_artifact
def f(x):
    @ag.autograph_artifact
    def if_true__1():
        x = x * x
        return x
    @ag.autograph_artifact
    def if_false__2():
        return x
    x = ag.if_stmt(x > 0, if_true__1, if_false__2)
    return x
";
    assert_eq!(got, want);
}

#[test]
fn reference_while_with_logical_test() {
    let got =
        convert("def f(x, eps):\n    while x > eps and x > 0:\n        x = f2(x)\n    return x\n");
    let want = "\
@ag.autograph_artifact
def f(x, eps):
    @ag.autograph_artifact
    def loop_test__1(x):
        return ag.and_(x > eps, lambda: x > 0)
    @ag.autograph_artifact
    def loop_body__2(x):
        x = ag.converted_call(f2, x)
        return (x,)
    (x,) = ag.while_stmt(loop_test__1, loop_body__2, (x,))
    return x
";
    assert_eq!(got, want);
}

#[test]
fn reference_for_with_break_and_append() {
    let got = convert(
        "def f(xs):\n    out = []\n    for v in xs:\n        if v > 9:\n            break\n        out.append(v)\n    return ag.stack(out)\n",
    );
    // break lowers to a guard; the loop body is masked; append becomes a
    // functional list op; everything then functionalizes.
    let want = "\
@ag.autograph_artifact
def f(xs):
    out = []
    break__1 = False
    @ag.autograph_artifact
    def for_body__8(v, break__1, out):
        @ag.autograph_artifact
        def if_true__6():
            @ag.autograph_artifact
            def if_true__2():
                break__1 = True
                return break__1
            @ag.autograph_artifact
            def if_false__3():
                return break__1
            break__1 = ag.if_stmt(v > 9, if_true__2, if_false__3)
            @ag.autograph_artifact
            def if_true__4():
                out = ag.list_append(out, v)
                return out
            @ag.autograph_artifact
            def if_false__5():
                return out
            out = ag.if_stmt(ag.not_(break__1), if_true__4, if_false__5)
            return (break__1, out)
        @ag.autograph_artifact
        def if_false__7():
            return (break__1, out)
        (break__1, out) = ag.if_stmt(ag.not_(break__1), if_true__6, if_false__7)
        return (break__1, out)
    (break__1, out) = ag.for_stmt(xs, for_body__8, (break__1, out))
    return ag.stack(out)
";
    assert_eq!(got, want);
}

#[test]
fn reference_early_return_structured() {
    let got = convert("def f(x):\n    if x > 0:\n        return g(x)\n    return h(x)\n");
    let want = "\
@ag.autograph_artifact
def f(x):
    retval__1 = ag.undefined('retval__1')
    @ag.autograph_artifact
    def if_true__2():
        retval__1 = ag.converted_call(g, x)
        return retval__1
    @ag.autograph_artifact
    def if_false__3():
        retval__1 = ag.converted_call(h, x)
        return retval__1
    retval__1 = ag.if_stmt(x > 0, if_true__2, if_false__3)
    return retval__1
";
    assert_eq!(got, want);
}

#[test]
fn reference_setitem_and_augassign() {
    let got = convert("def f(x, i):\n    x[i] += 1.0\n    return x\n");
    let want = "\
@ag.autograph_artifact
def f(x, i):
    x = ag.setitem(x, i, x[i] + 1.0)
    return x
";
    assert_eq!(got, want);
}

#[test]
fn reference_ternary_and_eq() {
    let got = convert("def f(a, b):\n    r = a if a == b else b\n    return r\n");
    let want = "\
@ag.autograph_artifact
def f(a, b):
    r = ag.if_stmt(ag.eq_(a, b), lambda: a, lambda: b)
    return r
";
    assert_eq!(got, want);
}

#[test]
fn reference_print_and_assert() {
    let got = convert("def f(x):\n    assert x > 0, 'positive'\n    print(x)\n    return x\n");
    let want = "\
@ag.autograph_artifact
def f(x):
    ag.assert_stmt(x > 0, 'positive')
    ag.print_(x)
    return x
";
    assert_eq!(got, want);
}

#[test]
fn reference_nested_function_conversion() {
    let got = convert(
        "def outer(x):\n    def inner(y):\n        if y > 0:\n            y = y - 1\n        return y\n    return inner(x)\n",
    );
    let want = "\
@ag.autograph_artifact
def outer(x):
    @ag.autograph_artifact
    def inner(y):
        @ag.autograph_artifact
        def if_true__1():
            y = y - 1
            return y
        @ag.autograph_artifact
        def if_false__2():
            return y
        y = ag.if_stmt(y > 0, if_true__1, if_false__2)
        return y
    return ag.converted_call(inner, x)
";
    assert_eq!(got, want);
}

#[test]
fn reference_continue_in_while() {
    let got = convert(
        "def f(n):\n    i = 0\n    s = 0\n    while i < n:\n        i = i + 1\n        if i % 2 == 0:\n            continue\n        s = s + i\n    return s\n",
    );
    // continue lowers to a guard + masked trailing statements, then the
    // whole loop functionalizes with (i, s) as state
    assert!(got.contains("continue__1 = False"), "{got}");
    assert!(
        got.contains("(continue__1, i, s)") || got.contains("(i, s)"),
        "{got}"
    );
    assert!(got.contains("ag.while_stmt"), "{got}");
    assert!(!got.contains("continue\n"), "{got}");
}

#[test]
fn reference_hyperparameter_if_still_functionalized_but_dispatches() {
    // conversion is type-blind: even a hyperparameter conditional becomes
    // ag.if_stmt; dynamic dispatch at runtime keeps it imperative
    let got =
        convert("def f(x, use_relu):\n    if use_relu:\n        x = tf.relu(x)\n    return x\n");
    assert!(got.contains("ag.if_stmt(use_relu"), "{got}");
    assert!(got.contains("tf.relu(x)"), "tf call not wrapped: {got}");
}
