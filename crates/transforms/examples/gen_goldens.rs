//! Developer tool: regenerate the golden outputs pinned by
//! `tests/reference.rs` after an intentional pipeline change.
//!
//! ```sh
//! cargo run -p autograph-transforms --example gen_goldens
//! ```

use autograph_transforms::pipeline::{convert_source, ConversionConfig};

fn main() {
    let cases: Vec<(&str, &str)> = vec![
        (
            "reference_listing1",
            "def f(x):\n    if x > 0:\n        x = x * x\n    return x\n",
        ),
        (
            "reference_while_with_logical_test",
            "def f(x, eps):\n    while x > eps and x > 0:\n        x = f2(x)\n    return x\n",
        ),
        (
            "reference_for_with_break_and_append",
            "def f(xs):\n    out = []\n    for v in xs:\n        if v > 9:\n            break\n        out.append(v)\n    return ag.stack(out)\n",
        ),
        (
            "reference_early_return_structured",
            "def f(x):\n    if x > 0:\n        return g(x)\n    return h(x)\n",
        ),
        (
            "reference_nested_function_conversion",
            "def outer(x):\n    def inner(y):\n        if y > 0:\n            y = y - 1\n        return y\n    return inner(x)\n",
        ),
    ];
    for (name, src) in cases {
        println!("===CASE {name}");
        print!(
            "{}",
            convert_source(src, &ConversionConfig::default()).expect("conversion")
        );
        println!("===END");
    }
}
