//! Environment-variable bootstrap: backward compatibility for the old
//! `PROFILE_NODES` hack.
//!
//! Setting `PROFILE_NODES=1` used to make the graph executor `eprintln!`
//! one `PROF <op> <ns>ns` line per kernel. The executors now call
//! [`maybe_init_from_env`] once per process instead; when the variable
//! is set (and no recorder was installed explicitly) it installs an
//! [`crate::AggregateRecorder`] in streaming mode, which emits the same
//! lines *and* aggregates the per-op summary, available through
//! [`installed_summary`].

use crate::metrics::AggregateRecorder;
use std::sync::{Arc, OnceLock};

static ENV_RECORDER: OnceLock<Option<Arc<AggregateRecorder>>> = OnceLock::new();

/// Install the `PROFILE_NODES` compatibility recorder if the variable is
/// set and nothing else was installed. Idempotent and cheap after the
/// first call (a single `OnceLock` load), so executors may call it on
/// every run.
pub fn maybe_init_from_env() {
    ENV_RECORDER.get_or_init(|| {
        let wants_profile =
            std::env::var_os("PROFILE_NODES").is_some_and(|v| !v.is_empty() && v != "0");
        if !wants_profile || crate::enabled() {
            return None;
        }
        let rec = Arc::new(AggregateRecorder::new().streaming());
        crate::install(rec.clone());
        Some(rec)
    });
}

/// The summary aggregated by the env-installed recorder, if
/// `PROFILE_NODES` activated one. Exporters (bench binaries) use this to
/// print the table at the end of a run.
pub fn installed_summary() -> Option<crate::Summary> {
    ENV_RECORDER
        .get()
        .and_then(|r| r.as_ref())
        .map(|r| r.summary())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_without_env_var_is_inert() {
        // The test harness never sets PROFILE_NODES; the bootstrap must
        // leave recording disabled and report no summary.
        std::env::remove_var("PROFILE_NODES");
        maybe_init_from_env();
        maybe_init_from_env(); // idempotent
        assert!(installed_summary().is_none());
    }
}
