//! In-memory aggregation: log-bucketed histograms, saturating counters,
//! and the per-op summary table exporter.

use crate::recorder::Recorder;
use std::collections::HashMap;
use std::sync::Mutex;

/// Number of histogram buckets: 16 exact small-value buckets plus 4
/// sub-buckets per power of two up to `u64::MAX`.
const BUCKETS: usize = 16 + 60 * 4;

/// A duration/value histogram with bounded (≤ 12.5%) relative error.
///
/// Values 0..16 are exact; larger values land in one of four
/// logarithmically spaced sub-buckets per power of two, so recording is
/// allocation-free and O(1) regardless of the value range.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[u64; BUCKETS]>,
    count: u64,
    /// Saturating sum of all recorded values.
    total: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

fn bucket_index(v: u64) -> usize {
    if v < 16 {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros() as usize; // >= 4
        let sub = ((v >> (exp - 2)) & 0b11) as usize;
        16 + (exp - 4) * 4 + sub
    }
}

fn bucket_representative(idx: usize) -> u64 {
    if idx < 16 {
        idx as u64
    } else {
        let exp = 4 + (idx - 16) / 4;
        let sub = ((idx - 16) % 4) as u64;
        let base = 1u64 << exp;
        let quarter = base / 4;
        // midpoint of the sub-bucket [base + sub*quarter, base + (sub+1)*quarter)
        base + sub * quarter + quarter / 2
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: Box::new([0; BUCKETS]),
            count: 0,
            total: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one value. Counts and totals saturate instead of wrapping.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] = self.buckets[bucket_index(v)].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.total = self.total.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of recorded values.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }

    /// Estimate the `q`-quantile.
    ///
    /// Contract (all cases defined, no bucket-boundary surprises):
    ///
    /// * empty histogram → `0` for every `q`;
    /// * `q <= 0.0` → the exact [`min`](Histogram::min);
    /// * `q >= 1.0` → the exact [`max`](Histogram::max);
    /// * a single recorded sample → that exact value for every `q`;
    /// * otherwise the bucket-representative answer, clamped to the
    ///   observed `[min, max]`, within the 12.5% bucket error.
    ///
    /// `q` values outside `[0, 1]` (including NaN) are clamped; NaN
    /// behaves as `q = 0.0`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // NaN fails both comparisons below and falls through to min.
        if q >= 1.0 {
            return self.max;
        }
        if q.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) || self.count == 1 {
            // q <= 0 (or NaN): exact minimum. A single sample has
            // min == max == the sample, so it is exact for any q too.
            return self.min;
        }
        // rank of the target observation, 1-based
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(n);
            if seen >= rank {
                return bucket_representative(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

/// One row of the summary table.
#[derive(Debug, Clone)]
pub struct SummaryRow {
    /// `category/name` key.
    pub key: String,
    /// Observations.
    pub count: u64,
    /// Total nanoseconds (or raw value sum for `observe` series).
    pub total_ns: u64,
    /// Mean value.
    pub mean_ns: f64,
    /// Estimated 99th percentile.
    pub p99_ns: u64,
    /// Largest observation.
    pub max_ns: u64,
}

/// A point-in-time aggregate snapshot: histogram rows plus counters.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    /// Histogram rows, sorted by total descending (self-time order).
    pub rows: Vec<SummaryRow>,
    /// Counter values by `category/name`.
    pub counters: Vec<(String, u64)>,
    /// Gauge `(last, max)` samples by `category/name`.
    pub gauges: Vec<(String, u64, u64)>,
}

impl Summary {
    /// Find a row by its `category/name` key.
    pub fn row(&self, key: &str) -> Option<&SummaryRow> {
        self.rows.iter().find(|r| r.key == key)
    }

    /// Find a counter by its `category/name` key.
    pub fn counter(&self, key: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| *v)
    }

    /// Find a gauge by its `category/name` key; returns `(last, max)`.
    pub fn gauge(&self, key: &str) -> Option<(u64, u64)> {
        self.gauges
            .iter()
            .find(|(k, _, _)| k == key)
            .map(|(_, last, max)| (*last, *max))
    }

    /// Render the human-readable table (count / total / mean / p99 per
    /// key, sorted by total time; counters below).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<40} {:>10} {:>14} {:>12} {:>12}\n",
            "span", "count", "total", "mean", "p99"
        ));
        out.push_str(&"-".repeat(92));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&format!(
                "{:<40} {:>10} {:>14} {:>12} {:>12}\n",
                r.key,
                r.count,
                fmt_ns(r.total_ns as f64),
                fmt_ns(r.mean_ns),
                fmt_ns(r.p99_ns as f64),
            ));
        }
        if !self.counters.is_empty() {
            out.push('\n');
            out.push_str(&format!("{:<40} {:>10}\n", "counter", "value"));
            out.push_str(&"-".repeat(51));
            out.push('\n');
            for (k, v) in &self.counters {
                out.push_str(&format!("{k:<40} {v:>10}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push('\n');
            out.push_str(&format!("{:<40} {:>12} {:>12}\n", "gauge", "last", "max"));
            out.push_str(&"-".repeat(66));
            out.push('\n');
            for (k, last, max) in &self.gauges {
                out.push_str(&format!("{k:<40} {last:>12} {max:>12}\n"));
            }
        }
        out
    }
}

/// Format nanoseconds with an adaptive unit.
fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

#[derive(Default)]
struct AggregateState {
    hists: HashMap<String, Histogram>,
    counters: HashMap<String, u64>,
    /// Gauges keep `(last sample, max sample)` per key.
    gauges: HashMap<String, (u64, u64)>,
    prints: Vec<String>,
}

/// The in-memory aggregate recorder: histograms per span/observe key,
/// saturating counters, optional print capture and optional streaming
/// of span lines to stderr (the `PROFILE_NODES` compatibility path).
#[derive(Default)]
pub struct AggregateRecorder {
    state: Mutex<AggregateState>,
    capture_prints: bool,
    stream_spans: bool,
}

impl AggregateRecorder {
    /// An aggregate recorder with no capture and no streaming.
    pub fn new() -> AggregateRecorder {
        AggregateRecorder::default()
    }

    /// Also capture `print`-op lines (tests assert on [`Self::printed`]).
    pub fn capture_prints(mut self) -> AggregateRecorder {
        self.capture_prints = true;
        self
    }

    /// Also stream `PROF <name> <ns>ns` lines to stderr per span, the
    /// old `PROFILE_NODES=1` output format.
    pub fn streaming(mut self) -> AggregateRecorder {
        self.stream_spans = true;
        self
    }

    /// Captured print lines, in emission order.
    pub fn printed(&self) -> Vec<String> {
        self.state
            .lock()
            .expect("obs aggregate lock")
            .prints
            .clone()
    }

    /// Snapshot the aggregates, rows sorted by total time descending.
    pub fn summary(&self) -> Summary {
        let state = self.state.lock().expect("obs aggregate lock");
        let mut rows: Vec<SummaryRow> = state
            .hists
            .iter()
            .map(|(key, h)| SummaryRow {
                key: key.clone(),
                count: h.count(),
                total_ns: h.total(),
                mean_ns: h.mean(),
                p99_ns: h.quantile(0.99),
                max_ns: h.max(),
            })
            .collect();
        rows.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.key.cmp(&b.key)));
        let mut counters: Vec<(String, u64)> = state
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        counters.sort();
        let mut gauges: Vec<(String, u64, u64)> = state
            .gauges
            .iter()
            .map(|(k, (last, max))| (k.clone(), *last, *max))
            .collect();
        gauges.sort();
        Summary {
            rows,
            counters,
            gauges,
        }
    }
}

impl Recorder for AggregateRecorder {
    fn span(&self, cat: &'static str, name: &str, _start_ns: u64, dur_ns: u64) {
        if self.stream_spans {
            eprintln!("PROF {name} {dur_ns}ns");
        }
        let mut state = self.state.lock().expect("obs aggregate lock");
        state
            .hists
            .entry(format!("{cat}/{name}"))
            .or_default()
            .record(dur_ns);
    }

    fn count(&self, cat: &'static str, name: &'static str, delta: u64) {
        let mut state = self.state.lock().expect("obs aggregate lock");
        let c = state.counters.entry(format!("{cat}/{name}")).or_insert(0);
        *c = c.saturating_add(delta);
    }

    fn observe(&self, cat: &'static str, name: &str, value: u64) {
        let mut state = self.state.lock().expect("obs aggregate lock");
        state
            .hists
            .entry(format!("{cat}/{name}"))
            .or_default()
            .record(value);
    }

    fn gauge(&self, cat: &'static str, name: &str, value: u64) {
        let mut state = self.state.lock().expect("obs aggregate lock");
        let g = state
            .gauges
            .entry(format!("{cat}/{name}"))
            .or_insert((0, 0));
        g.0 = value;
        g.1 = g.1.max(value);
    }

    fn print_line(&self, line: &str) -> bool {
        if !self.capture_prints {
            return false;
        }
        let mut state = self.state.lock().expect("obs aggregate lock");
        state.prints.push(line.to_string());
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_roundtrip_error_is_bounded() {
        for v in [0u64, 1, 5, 15, 16, 100, 1_000, 123_456, u64::MAX / 2] {
            let rep = bucket_representative(bucket_index(v));
            let err = (rep as f64 - v as f64).abs() / (v.max(1) as f64);
            assert!(err <= 0.125, "v={v} rep={rep} err={err}");
        }
    }

    #[test]
    fn exact_small_values() {
        let mut h = Histogram::new();
        for v in [3u64, 3, 3, 7] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.total(), 16);
        assert_eq!(h.mean(), 4.0);
        assert_eq!(h.min(), 3);
        assert_eq!(h.max(), 7);
        assert_eq!(h.quantile(0.5), 3);
        assert_eq!(h.quantile(1.0), 7);
        assert_eq!(h.quantile(0.0), 3);
    }

    #[test]
    fn percentiles_on_uniform_distribution() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.50) as f64;
        let p99 = h.quantile(0.99) as f64;
        assert!((p50 - 5_000.0).abs() / 5_000.0 <= 0.15, "p50={p50}");
        assert!((p99 - 9_900.0).abs() / 9_900.0 <= 0.15, "p99={p99}");
        assert!(h.quantile(0.999) <= h.max());
    }

    #[test]
    fn quantile_clamped_to_observed_range() {
        let mut h = Histogram::new();
        h.record(1_000);
        // one observation: every quantile is that observation's bucket,
        // clamped into [min, max]
        assert_eq!(h.quantile(0.99), 1_000);
        assert_eq!(h.quantile(0.01), 1_000);
    }

    #[test]
    fn quantile_contract_edge_cases() {
        // empty: 0 for every q
        let h = Histogram::new();
        for q in [-1.0, 0.0, 0.5, 1.0, 2.0, f64::NAN] {
            assert_eq!(h.quantile(q), 0);
        }
        // single sample: the exact value for every q, even when the
        // value would round to a bucket representative (1000 → 1056)
        let mut h = Histogram::new();
        h.record(1_000);
        for q in [-1.0, 0.0, 0.25, 0.5, 0.99, 1.0, 2.0, f64::NAN] {
            assert_eq!(h.quantile(q), 1_000, "q={q}");
        }
        // q=0.0 / q=1.0 are the exact min/max, not bucket boundaries
        let mut h = Histogram::new();
        for v in [17u64, 1_000, 123_456] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 17);
        assert_eq!(h.quantile(1.0), 123_456);
        assert_eq!(h.quantile(-0.5), 17);
        assert_eq!(h.quantile(1.5), 123_456);
        assert_eq!(h.quantile(f64::NAN), 17);
    }

    #[test]
    fn gauges_track_last_and_max() {
        let r = AggregateRecorder::new();
        r.gauge("mem", "live_bytes", 100);
        r.gauge("mem", "live_bytes", 700);
        r.gauge("mem", "live_bytes", 300);
        let s = r.summary();
        assert_eq!(s.gauge("mem/live_bytes"), Some((300, 700)));
        let table = s.render_table();
        assert!(table.contains("mem/live_bytes"), "{table}");
        assert!(table.contains("gauge"), "{table}");
    }

    #[test]
    fn counters_saturate_instead_of_wrapping() {
        let r = AggregateRecorder::new();
        r.count("c", "n", u64::MAX - 1);
        r.count("c", "n", 5);
        assert_eq!(r.summary().counter("c/n"), Some(u64::MAX));
        // histogram totals saturate too
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.total(), u64::MAX);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn summary_sorted_by_total_and_renders() {
        let r = AggregateRecorder::new();
        r.span("graph_op", "matmul", 0, 900);
        r.span("graph_op", "matmul", 0, 1_100);
        r.span("graph_op", "add", 0, 10);
        r.count("session", "plan_hit", 3);
        let s = r.summary();
        assert_eq!(s.rows[0].key, "graph_op/matmul");
        assert_eq!(s.rows[0].count, 2);
        assert_eq!(s.rows[0].total_ns, 2_000);
        let table = s.render_table();
        assert!(table.contains("graph_op/matmul"), "{table}");
        assert!(table.contains("session/plan_hit"), "{table}");
        assert!(table.contains("p99"), "{table}");
    }
}
