//! In-memory aggregation: log-bucketed histograms, saturating counters,
//! and the per-op summary table exporter — plus the lock-free
//! fixed-bucket primitives ([`ShardedCounter`], [`AtomicHistogram`])
//! the live `/metrics` exporter is built on.

use crate::recorder::Recorder;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Shards per [`ShardedCounter`]; must be a power of two so the lane
/// index reduces to a mask.
const COUNTER_SHARDS: usize = 8;

/// One cache line per shard so concurrent writers on different cores
/// never contend on the same line.
#[derive(Debug, Default)]
#[repr(align(64))]
struct PaddedU64(AtomicU64);

/// A monotonic counter sharded across cache lines.
///
/// [`add`](ShardedCounter::add) is a single relaxed `fetch_add` on the
/// shard picked by the caller's [`thread lane`](crate::thread_lane) —
/// no locks, no allocation — so it is safe on the serving hot path.
/// [`get`](ShardedCounter::get) sums the shards; under concurrent
/// writers the result is a consistent lower bound that never decreases
/// across successive reads (each shard is monotonic). Shards are plain
/// wrapping `u64`s — at one event per nanosecond that is ~585 years to
/// a wrap, so saturation logic is not worth a CAS loop here.
#[derive(Debug, Default)]
pub struct ShardedCounter {
    shards: [PaddedU64; COUNTER_SHARDS],
}

impl ShardedCounter {
    /// A zeroed counter.
    pub fn new() -> ShardedCounter {
        ShardedCounter::default()
    }

    /// Add `delta`. One relaxed atomic RMW, zero allocation.
    #[inline]
    pub fn add(&self, delta: u64) {
        let idx = crate::thread_lane() as usize & (COUNTER_SHARDS - 1);
        self.shards[idx].0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current total across all shards.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .fold(0u64, u64::saturating_add)
    }
}

/// Default latency buckets in nanoseconds: 50µs → 10s, roughly
/// logarithmic, matching the sub-millisecond-to-seconds range the
/// serving layer sees. The exporter renders these as Prometheus `le`
/// bounds in seconds.
pub const LATENCY_BUCKETS_NS: &[u64] = &[
    50_000,
    100_000,
    250_000,
    500_000,
    1_000_000,
    2_500_000,
    5_000_000,
    10_000_000,
    25_000_000,
    50_000_000,
    100_000_000,
    250_000_000,
    500_000_000,
    1_000_000_000,
    2_500_000_000,
    5_000_000_000,
    10_000_000_000,
];

/// Buckets for ratios expressed in permille (‰): deadline budget
/// consumed, utilization. 1000 = the full budget; >1000 = overrun.
pub const PERMILLE_BUCKETS: &[u64] = &[10, 25, 50, 100, 250, 500, 750, 900, 1000, 1500, 2000];

/// A fixed-bucket histogram recordable concurrently without locks.
///
/// `record` is two relaxed atomic `fetch_add`s (the bucket counter and
/// the sharded sum) and zero allocation. Bucket bounds are *inclusive*
/// upper bounds in ascending order; values above the last bound land in
/// the overflow bucket. Prometheus histogram semantics (`le` bounds,
/// cumulative buckets, `+Inf`) are derived at export time from a
/// [`snapshot`](AtomicHistogram::snapshot).
#[derive(Debug)]
pub struct AtomicHistogram {
    bounds: &'static [u64],
    /// `bounds.len() + 1` counters; the last is the overflow bucket.
    buckets: Box<[AtomicU64]>,
    sum: ShardedCounter,
}

impl AtomicHistogram {
    /// A histogram over `bounds` (inclusive upper bounds, ascending,
    /// non-empty — typically [`LATENCY_BUCKETS_NS`]).
    pub fn new(bounds: &'static [u64]) -> AtomicHistogram {
        debug_assert!(!bounds.is_empty());
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        let buckets = (0..bounds.len() + 1)
            .map(|_| AtomicU64::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        AtomicHistogram {
            bounds,
            buckets,
            sum: ShardedCounter::new(),
        }
    }

    /// Record one value. Two relaxed atomics, zero allocation.
    #[inline]
    pub fn record(&self, v: u64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.add(v);
    }

    /// The configured bucket bounds.
    pub fn bounds(&self) -> &'static [u64] {
        self.bounds
    }

    /// A point-in-time copy of the bucket counts and sum.
    ///
    /// Concurrent `record`s may or may not be included (each whole
    /// observation lands in exactly one bucket, so nothing is ever
    /// double-counted); the snapshot's count is derived from the bucket
    /// counts themselves and is therefore always internally consistent.
    pub fn snapshot(&self) -> HistSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistSnapshot {
            bounds: self.bounds,
            buckets,
            sum: self.sum.get(),
        }
    }
}

/// A point-in-time copy of an [`AtomicHistogram`]: per-bucket
/// (non-cumulative) counts, the value sum, and the bounds they were
/// recorded against.
#[derive(Debug, Clone)]
pub struct HistSnapshot {
    /// Inclusive upper bounds, ascending (the overflow bucket has no
    /// bound and is `buckets.last()`).
    pub bounds: &'static [u64],
    /// `bounds.len() + 1` per-bucket counts (last = overflow).
    pub buckets: Vec<u64>,
    /// Saturating sum of recorded values.
    pub sum: u64,
}

impl HistSnapshot {
    /// An empty snapshot over `bounds`.
    pub fn empty(bounds: &'static [u64]) -> HistSnapshot {
        HistSnapshot {
            bounds,
            buckets: vec![0; bounds.len() + 1],
            sum: 0,
        }
    }

    /// Total observations (the sum of the bucket counts).
    pub fn count(&self) -> u64 {
        self.buckets.iter().fold(0u64, |a, &b| a.saturating_add(b))
    }

    /// The observations that happened after `earlier` was taken:
    /// bucket-wise saturating subtraction. Both snapshots must share
    /// bounds. Used by the rolling SLO windows.
    pub fn delta_since(&self, earlier: &HistSnapshot) -> HistSnapshot {
        debug_assert_eq!(self.bounds.as_ptr(), earlier.bounds.as_ptr());
        let buckets = self
            .buckets
            .iter()
            .zip(earlier.buckets.iter())
            .map(|(&now, &then)| now.saturating_sub(then))
            .collect();
        HistSnapshot {
            bounds: self.bounds,
            buckets,
            sum: self.sum.saturating_sub(earlier.sum),
        }
    }

    /// Estimate the `q`-quantile by nearest rank over the buckets with
    /// linear interpolation inside the bucket. Returns 0 for an empty
    /// snapshot; observations in the overflow bucket report the last
    /// finite bound (the histogram cannot know how far past it they
    /// landed). `q` outside `[0, 1]` is clamped; NaN behaves as 0.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        // 1-based nearest rank: ceil(q * N), clamped into [1, N]
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let before = seen;
            seen = seen.saturating_add(n);
            if seen >= rank {
                if idx >= self.bounds.len() {
                    // overflow: no upper bound to interpolate toward
                    return self.bounds[self.bounds.len() - 1];
                }
                let lower = if idx == 0 { 0 } else { self.bounds[idx - 1] };
                let upper = self.bounds[idx];
                let into = (rank - before) as f64 / n as f64;
                return lower + ((upper - lower) as f64 * into) as u64;
            }
        }
        self.bounds[self.bounds.len() - 1]
    }

    /// Fraction of observations strictly above `threshold` (0.0 when
    /// empty). `threshold` should be one of the bucket bounds for an
    /// exact answer; otherwise the containing bucket counts as "over".
    pub fn frac_over(&self, threshold: u64) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        let cut = self.bounds.partition_point(|&b| b <= threshold);
        let over: u64 = self.buckets[cut..]
            .iter()
            .fold(0u64, |a, &b| a.saturating_add(b));
        over as f64 / count as f64
    }
}

/// Number of histogram buckets: 16 exact small-value buckets plus 4
/// sub-buckets per power of two up to `u64::MAX`.
const BUCKETS: usize = 16 + 60 * 4;

/// A duration/value histogram with bounded (≤ 12.5%) relative error.
///
/// Values 0..16 are exact; larger values land in one of four
/// logarithmically spaced sub-buckets per power of two, so recording is
/// allocation-free and O(1) regardless of the value range.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[u64; BUCKETS]>,
    count: u64,
    /// Saturating sum of all recorded values.
    total: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

fn bucket_index(v: u64) -> usize {
    if v < 16 {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros() as usize; // >= 4
        let sub = ((v >> (exp - 2)) & 0b11) as usize;
        16 + (exp - 4) * 4 + sub
    }
}

fn bucket_representative(idx: usize) -> u64 {
    if idx < 16 {
        idx as u64
    } else {
        let exp = 4 + (idx - 16) / 4;
        let sub = ((idx - 16) % 4) as u64;
        let base = 1u64 << exp;
        let quarter = base / 4;
        // midpoint of the sub-bucket [base + sub*quarter, base + (sub+1)*quarter)
        base + sub * quarter + quarter / 2
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: Box::new([0; BUCKETS]),
            count: 0,
            total: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one value. Counts and totals saturate instead of wrapping.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] = self.buckets[bucket_index(v)].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.total = self.total.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of recorded values.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }

    /// Estimate the `q`-quantile.
    ///
    /// Contract (all cases defined, no bucket-boundary surprises):
    ///
    /// * empty histogram → `0` for every `q`;
    /// * `q <= 0.0` → the exact [`min`](Histogram::min);
    /// * `q >= 1.0` → the exact [`max`](Histogram::max);
    /// * a single recorded sample → that exact value for every `q`;
    /// * otherwise the bucket-representative answer, clamped to the
    ///   observed `[min, max]`, within the 12.5% bucket error.
    ///
    /// `q` values outside `[0, 1]` (including NaN) are clamped; NaN
    /// behaves as `q = 0.0`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // NaN fails both comparisons below and falls through to min.
        if q >= 1.0 {
            return self.max;
        }
        if q.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) || self.count == 1 {
            // q <= 0 (or NaN): exact minimum. A single sample has
            // min == max == the sample, so it is exact for any q too.
            return self.min;
        }
        // rank of the target observation, 1-based
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(n);
            if seen >= rank {
                return bucket_representative(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

/// One row of the summary table.
#[derive(Debug, Clone)]
pub struct SummaryRow {
    /// `category/name` key.
    pub key: String,
    /// Observations.
    pub count: u64,
    /// Total nanoseconds (or raw value sum for `observe` series).
    pub total_ns: u64,
    /// Mean value.
    pub mean_ns: f64,
    /// Estimated 99th percentile.
    pub p99_ns: u64,
    /// Largest observation.
    pub max_ns: u64,
}

/// A point-in-time aggregate snapshot: histogram rows plus counters.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    /// Histogram rows, sorted by total descending (self-time order).
    pub rows: Vec<SummaryRow>,
    /// Counter values by `category/name`.
    pub counters: Vec<(String, u64)>,
    /// Gauge `(last, max)` samples by `category/name`.
    pub gauges: Vec<(String, u64, u64)>,
}

impl Summary {
    /// Find a row by its `category/name` key.
    pub fn row(&self, key: &str) -> Option<&SummaryRow> {
        self.rows.iter().find(|r| r.key == key)
    }

    /// Find a counter by its `category/name` key.
    pub fn counter(&self, key: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| *v)
    }

    /// Find a gauge by its `category/name` key; returns `(last, max)`.
    pub fn gauge(&self, key: &str) -> Option<(u64, u64)> {
        self.gauges
            .iter()
            .find(|(k, _, _)| k == key)
            .map(|(_, last, max)| (*last, *max))
    }

    /// Render the human-readable table (count / total / mean / p99 per
    /// key, sorted by total time; counters below).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<40} {:>10} {:>14} {:>12} {:>12}\n",
            "span", "count", "total", "mean", "p99"
        ));
        out.push_str(&"-".repeat(92));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&format!(
                "{:<40} {:>10} {:>14} {:>12} {:>12}\n",
                r.key,
                r.count,
                fmt_ns(r.total_ns as f64),
                fmt_ns(r.mean_ns),
                fmt_ns(r.p99_ns as f64),
            ));
        }
        if !self.counters.is_empty() {
            out.push('\n');
            out.push_str(&format!("{:<40} {:>10}\n", "counter", "value"));
            out.push_str(&"-".repeat(51));
            out.push('\n');
            for (k, v) in &self.counters {
                out.push_str(&format!("{k:<40} {v:>10}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push('\n');
            out.push_str(&format!("{:<40} {:>12} {:>12}\n", "gauge", "last", "max"));
            out.push_str(&"-".repeat(66));
            out.push('\n');
            for (k, last, max) in &self.gauges {
                out.push_str(&format!("{k:<40} {last:>12} {max:>12}\n"));
            }
        }
        out
    }
}

/// Format nanoseconds with an adaptive unit.
fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

#[derive(Default)]
struct AggregateState {
    hists: HashMap<String, Histogram>,
    counters: HashMap<String, u64>,
    /// Gauges keep `(last sample, max sample)` per key.
    gauges: HashMap<String, (u64, u64)>,
    prints: Vec<String>,
}

/// The in-memory aggregate recorder: histograms per span/observe key,
/// saturating counters, optional print capture and optional streaming
/// of span lines to stderr (the `PROFILE_NODES` compatibility path).
#[derive(Default)]
pub struct AggregateRecorder {
    state: Mutex<AggregateState>,
    capture_prints: bool,
    stream_spans: bool,
}

impl AggregateRecorder {
    /// An aggregate recorder with no capture and no streaming.
    pub fn new() -> AggregateRecorder {
        AggregateRecorder::default()
    }

    /// Also capture `print`-op lines (tests assert on [`Self::printed`]).
    pub fn capture_prints(mut self) -> AggregateRecorder {
        self.capture_prints = true;
        self
    }

    /// Also stream `PROF <name> <ns>ns` lines to stderr per span, the
    /// old `PROFILE_NODES=1` output format.
    pub fn streaming(mut self) -> AggregateRecorder {
        self.stream_spans = true;
        self
    }

    /// Captured print lines, in emission order.
    pub fn printed(&self) -> Vec<String> {
        self.state
            .lock()
            .expect("obs aggregate lock")
            .prints
            .clone()
    }

    /// Snapshot the aggregates, rows sorted by total time descending.
    pub fn summary(&self) -> Summary {
        let state = self.state.lock().expect("obs aggregate lock");
        let mut rows: Vec<SummaryRow> = state
            .hists
            .iter()
            .map(|(key, h)| SummaryRow {
                key: key.clone(),
                count: h.count(),
                total_ns: h.total(),
                mean_ns: h.mean(),
                p99_ns: h.quantile(0.99),
                max_ns: h.max(),
            })
            .collect();
        rows.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.key.cmp(&b.key)));
        let mut counters: Vec<(String, u64)> = state
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        counters.sort();
        let mut gauges: Vec<(String, u64, u64)> = state
            .gauges
            .iter()
            .map(|(k, (last, max))| (k.clone(), *last, *max))
            .collect();
        gauges.sort();
        Summary {
            rows,
            counters,
            gauges,
        }
    }
}

impl Recorder for AggregateRecorder {
    fn span(&self, cat: &'static str, name: &str, _start_ns: u64, dur_ns: u64) {
        if self.stream_spans {
            eprintln!("PROF {name} {dur_ns}ns");
        }
        let mut state = self.state.lock().expect("obs aggregate lock");
        state
            .hists
            .entry(format!("{cat}/{name}"))
            .or_default()
            .record(dur_ns);
    }

    fn count(&self, cat: &'static str, name: &'static str, delta: u64) {
        let mut state = self.state.lock().expect("obs aggregate lock");
        let c = state.counters.entry(format!("{cat}/{name}")).or_insert(0);
        *c = c.saturating_add(delta);
    }

    fn observe(&self, cat: &'static str, name: &str, value: u64) {
        let mut state = self.state.lock().expect("obs aggregate lock");
        state
            .hists
            .entry(format!("{cat}/{name}"))
            .or_default()
            .record(value);
    }

    fn gauge(&self, cat: &'static str, name: &str, value: u64) {
        let mut state = self.state.lock().expect("obs aggregate lock");
        let g = state
            .gauges
            .entry(format!("{cat}/{name}"))
            .or_insert((0, 0));
        g.0 = value;
        g.1 = g.1.max(value);
    }

    fn print_line(&self, line: &str) -> bool {
        if !self.capture_prints {
            return false;
        }
        let mut state = self.state.lock().expect("obs aggregate lock");
        state.prints.push(line.to_string());
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_roundtrip_error_is_bounded() {
        for v in [0u64, 1, 5, 15, 16, 100, 1_000, 123_456, u64::MAX / 2] {
            let rep = bucket_representative(bucket_index(v));
            let err = (rep as f64 - v as f64).abs() / (v.max(1) as f64);
            assert!(err <= 0.125, "v={v} rep={rep} err={err}");
        }
    }

    #[test]
    fn exact_small_values() {
        let mut h = Histogram::new();
        for v in [3u64, 3, 3, 7] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.total(), 16);
        assert_eq!(h.mean(), 4.0);
        assert_eq!(h.min(), 3);
        assert_eq!(h.max(), 7);
        assert_eq!(h.quantile(0.5), 3);
        assert_eq!(h.quantile(1.0), 7);
        assert_eq!(h.quantile(0.0), 3);
    }

    #[test]
    fn percentiles_on_uniform_distribution() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.50) as f64;
        let p99 = h.quantile(0.99) as f64;
        assert!((p50 - 5_000.0).abs() / 5_000.0 <= 0.15, "p50={p50}");
        assert!((p99 - 9_900.0).abs() / 9_900.0 <= 0.15, "p99={p99}");
        assert!(h.quantile(0.999) <= h.max());
    }

    #[test]
    fn quantile_clamped_to_observed_range() {
        let mut h = Histogram::new();
        h.record(1_000);
        // one observation: every quantile is that observation's bucket,
        // clamped into [min, max]
        assert_eq!(h.quantile(0.99), 1_000);
        assert_eq!(h.quantile(0.01), 1_000);
    }

    #[test]
    fn quantile_contract_edge_cases() {
        // empty: 0 for every q
        let h = Histogram::new();
        for q in [-1.0, 0.0, 0.5, 1.0, 2.0, f64::NAN] {
            assert_eq!(h.quantile(q), 0);
        }
        // single sample: the exact value for every q, even when the
        // value would round to a bucket representative (1000 → 1056)
        let mut h = Histogram::new();
        h.record(1_000);
        for q in [-1.0, 0.0, 0.25, 0.5, 0.99, 1.0, 2.0, f64::NAN] {
            assert_eq!(h.quantile(q), 1_000, "q={q}");
        }
        // q=0.0 / q=1.0 are the exact min/max, not bucket boundaries
        let mut h = Histogram::new();
        for v in [17u64, 1_000, 123_456] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 17);
        assert_eq!(h.quantile(1.0), 123_456);
        assert_eq!(h.quantile(-0.5), 17);
        assert_eq!(h.quantile(1.5), 123_456);
        assert_eq!(h.quantile(f64::NAN), 17);
    }

    #[test]
    fn gauges_track_last_and_max() {
        let r = AggregateRecorder::new();
        r.gauge("mem", "live_bytes", 100);
        r.gauge("mem", "live_bytes", 700);
        r.gauge("mem", "live_bytes", 300);
        let s = r.summary();
        assert_eq!(s.gauge("mem/live_bytes"), Some((300, 700)));
        let table = s.render_table();
        assert!(table.contains("mem/live_bytes"), "{table}");
        assert!(table.contains("gauge"), "{table}");
    }

    #[test]
    fn counters_saturate_instead_of_wrapping() {
        let r = AggregateRecorder::new();
        r.count("c", "n", u64::MAX - 1);
        r.count("c", "n", 5);
        assert_eq!(r.summary().counter("c/n"), Some(u64::MAX));
        // histogram totals saturate too
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.total(), u64::MAX);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn summary_sorted_by_total_and_renders() {
        let r = AggregateRecorder::new();
        r.span("graph_op", "matmul", 0, 900);
        r.span("graph_op", "matmul", 0, 1_100);
        r.span("graph_op", "add", 0, 10);
        r.count("session", "plan_hit", 3);
        let s = r.summary();
        assert_eq!(s.rows[0].key, "graph_op/matmul");
        assert_eq!(s.rows[0].count, 2);
        assert_eq!(s.rows[0].total_ns, 2_000);
        let table = s.render_table();
        assert!(table.contains("graph_op/matmul"), "{table}");
        assert!(table.contains("session/plan_hit"), "{table}");
        assert!(table.contains("p99"), "{table}");
    }

    // ---- AtomicHistogram / ShardedCounter edge cases ----

    #[test]
    fn sharded_counter_sums_across_threads_exactly() {
        let c = std::sync::Arc::new(ShardedCounter::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    c.add(1);
                }
            }));
        }
        for h in handles {
            h.join().expect("join");
        }
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn atomic_histogram_bucket_placement_and_overflow() {
        let h = AtomicHistogram::new(LATENCY_BUCKETS_NS);
        // exactly on a bound → that bucket (bounds are inclusive)
        h.record(50_000);
        // between bounds → the next bucket up
        h.record(60_000);
        // above the last bound → overflow bucket
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.buckets[0], 1, "50µs lands in the first bucket");
        assert_eq!(s.buckets[1], 1, "60µs lands in the 100µs bucket");
        assert_eq!(
            s.buckets[LATENCY_BUCKETS_NS.len()],
            1,
            "u64::MAX lands in the overflow bucket"
        );
        assert_eq!(s.count(), 3);
        // quantiles with mass in the overflow bucket report the last
        // finite bound — never a wrapped or invented value
        assert_eq!(s.quantile(1.0), *LATENCY_BUCKETS_NS.last().expect("bounds"));
    }

    #[test]
    fn atomic_histogram_zero_observations() {
        let h = AtomicHistogram::new(LATENCY_BUCKETS_NS);
        let s = h.snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.sum, 0);
        for q in [0.0, 0.5, 0.99, 1.0, f64::NAN] {
            assert_eq!(s.quantile(q), 0);
        }
        assert_eq!(s.frac_over(0), 0.0);
        // delta of two empty snapshots is empty
        let d = s.delta_since(&HistSnapshot::empty(LATENCY_BUCKETS_NS));
        assert_eq!(d.count(), 0);
    }

    #[test]
    fn atomic_histogram_concurrent_recording_sums_exactly() {
        let h = std::sync::Arc::new(AtomicHistogram::new(LATENCY_BUCKETS_NS));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let h = h.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..5_000u64 {
                    // spread across many buckets
                    h.record((t + 1) * 40_000 + i * 1_000);
                }
            }));
        }
        for h in handles {
            h.join().expect("join");
        }
        let s = h.snapshot();
        assert_eq!(
            s.count(),
            40_000,
            "every record lands in exactly one bucket"
        );
        let expected: u64 = (0..8u64)
            .flat_map(|t| (0..5_000u64).map(move |i| (t + 1) * 40_000 + i * 1_000))
            .sum();
        assert_eq!(s.sum, expected);
    }

    #[test]
    fn snapshot_while_recording_never_double_counts() {
        let h = std::sync::Arc::new(AtomicHistogram::new(LATENCY_BUCKETS_NS));
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut writers = Vec::new();
        for _ in 0..4 {
            let h = h.clone();
            let stop = stop.clone();
            writers.push(std::thread::spawn(move || {
                let mut n = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    h.record(1_000_000);
                    n += 1;
                }
                n
            }));
        }
        // snapshot continuously while writers hammer the histogram:
        // counts must be monotonic (no double-counting, no tearing)
        let mut last = 0u64;
        for _ in 0..200 {
            let c = h.snapshot().count();
            assert!(c >= last, "snapshot count went backwards: {last} -> {c}");
            last = c;
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let total: u64 = writers.into_iter().map(|w| w.join().expect("join")).sum();
        assert_eq!(h.snapshot().count(), total, "final count is exact");
    }

    #[test]
    fn hist_snapshot_delta_and_quantiles() {
        let h = AtomicHistogram::new(LATENCY_BUCKETS_NS);
        for _ in 0..90 {
            h.record(200_000); // 0.2ms → (100µs, 250µs] bucket
        }
        let early = h.snapshot();
        for _ in 0..10 {
            h.record(2_000_000_000); // 2s → (1s, 2.5s] bucket
        }
        let late = h.snapshot();
        let delta = late.delta_since(&early);
        assert_eq!(delta.count(), 10);
        assert_eq!(delta.sum, 20_000_000_000);
        // only the slow tail is in the delta window
        assert!(delta.quantile(0.5) > 1_000_000_000);
        // full snapshot: p50 in the fast bucket, p99+ in the slow one
        let p50 = late.quantile(0.50);
        assert!(
            (100_000..=250_000).contains(&p50),
            "p50={p50} expected in the 0.1–0.25ms bucket"
        );
        assert!(late.quantile(0.99) > 1_000_000_000);
        // SLO burn helper: 10% of requests exceed a 1s threshold
        let over = late.frac_over(1_000_000_000);
        assert!((over - 0.10).abs() < 1e-9, "over={over}");
    }

    #[test]
    fn quantile_interpolates_within_bucket() {
        let h = AtomicHistogram::new(LATENCY_BUCKETS_NS);
        for _ in 0..100 {
            h.record(150_000); // all mass in the (100µs, 250µs] bucket
        }
        let s = h.snapshot();
        let q10 = s.quantile(0.10);
        let q90 = s.quantile(0.90);
        assert!(
            (100_000..=250_000).contains(&q10) && (100_000..=250_000).contains(&q90),
            "quantiles stay inside the bucket: q10={q10} q90={q90}"
        );
        assert!(q10 < q90, "interpolation is monotonic in q");
    }
}
