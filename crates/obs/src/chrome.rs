//! Chrome-trace export: buffers complete (`ph: "X"`) events and writes
//! a JSON file loadable by `chrome://tracing` or Perfetto.

use crate::recorder::Recorder;
use crate::thread_lane;
use std::io::Write;
use std::path::Path;
use std::sync::Mutex;

/// Default cap on buffered events; one complete event is ~100 bytes of
/// JSON, so the default bounds a runaway trace near 100 MB.
pub const DEFAULT_MAX_EVENTS: usize = 1_000_000;

#[derive(Debug, Clone)]
struct TraceEvent {
    name: String,
    cat: &'static str,
    ts_ns: u64,
    dur_ns: u64,
    tid: u64,
}

#[derive(Debug, Default)]
struct TraceState {
    events: Vec<TraceEvent>,
    dropped: u64,
    counters: Vec<(u64, &'static str, String, u64)>, // (ts, cat, name, running total)
    gauges: Vec<(u64, &'static str, String, u64)>,   // (ts, cat, name, absolute value)
    totals: std::collections::HashMap<String, u64>,
}

/// Buffers span events (and counter updates) for Chrome-trace export.
#[derive(Debug)]
pub struct TraceRecorder {
    state: Mutex<TraceState>,
    max_events: usize,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        TraceRecorder::new()
    }
}

impl TraceRecorder {
    /// A recorder buffering up to [`DEFAULT_MAX_EVENTS`] span events.
    pub fn new() -> TraceRecorder {
        TraceRecorder::with_capacity(DEFAULT_MAX_EVENTS)
    }

    /// A recorder buffering at most `max_events` span events; further
    /// events are counted as dropped (reported in the trace metadata).
    pub fn with_capacity(max_events: usize) -> TraceRecorder {
        TraceRecorder {
            state: Mutex::new(TraceState::default()),
            max_events,
        }
    }

    /// Number of buffered span events.
    pub fn len(&self) -> usize {
        self.state.lock().expect("obs trace lock").events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Render the Chrome trace JSON document.
    pub fn to_json(&self) -> String {
        let state = self.state.lock().expect("obs trace lock");
        let mut out = String::with_capacity(128 + state.events.len() * 96);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        for e in &state.events {
            if !first {
                out.push(',');
            }
            first = false;
            // Chrome wants microseconds; fractional us keep ns precision
            out.push_str(&format!(
                "{{\"name\":{},\"cat\":{},\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3}}}",
                json_string(&e.name),
                json_string(e.cat),
                e.tid,
                e.ts_ns as f64 / 1e3,
                e.dur_ns as f64 / 1e3,
            ));
        }
        for (ts_ns, cat, name, value) in state.counters.iter().chain(state.gauges.iter()) {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":{},\"cat\":{},\"ph\":\"C\",\"pid\":1,\"ts\":{:.3},\"args\":{{\"value\":{}}}}}",
                json_string(name),
                json_string(cat),
                *ts_ns as f64 / 1e3,
                value,
            ));
        }
        // process/thread metadata ("M") events so chrome://tracing shows
        // thread names (serve-worker-N, par-worker-N, main) instead of
        // bare tids; lanes are registered lazily by thread_lane()
        if !first {
            out.push(',');
        }
        out.push_str(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"autograph\"}}",
        );
        for (lane, name) in crate::lane_names() {
            out.push_str(&format!(
                ",{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":{}}}}}",
                lane,
                json_string(&name),
            ));
        }
        out.push_str("],\"otherData\":{\"droppedEvents\":");
        out.push_str(&state.dropped.to_string());
        out.push_str("}}");
        out
    }

    /// Write the trace JSON to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().as_bytes())
    }
}

impl Recorder for TraceRecorder {
    fn span(&self, cat: &'static str, name: &str, start_ns: u64, dur_ns: u64) {
        let tid = thread_lane();
        let mut state = self.state.lock().expect("obs trace lock");
        if state.events.len() >= self.max_events {
            state.dropped += 1;
            return;
        }
        state.events.push(TraceEvent {
            name: name.to_string(),
            cat,
            ts_ns: start_ns,
            dur_ns,
            tid,
        });
    }

    fn count(&self, cat: &'static str, name: &'static str, delta: u64) {
        let ts = crate::now_ns();
        let mut state = self.state.lock().expect("obs trace lock");
        let key = format!("{cat}/{name}");
        let total = state.totals.entry(key).or_insert(0);
        *total = total.saturating_add(delta);
        let total = *total;
        if state.counters.len() < self.max_events {
            state.counters.push((ts, cat, name.to_string(), total));
        }
    }

    fn observe(&self, _cat: &'static str, _name: &str, _value: u64) {
        // distributions are an aggregate concern; traces keep spans only
    }

    fn gauge(&self, cat: &'static str, name: &str, value: u64) {
        let ts = crate::now_ns();
        let mut state = self.state.lock().expect("obs trace lock");
        if state.gauges.len() < self.max_events {
            state.gauges.push((ts, cat, name.to_string(), value));
        }
    }
}

/// Escape `s` as a JSON string literal (with quotes). Span names come
/// from user PyLite source (op names, print payloads), so every control
/// character, quote and backslash must survive: C0 controls and DEL get
/// `\uXXXX`, and U+2028/U+2029 are escaped too so the output stays safe
/// to embed in JavaScript-adjacent tooling.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 || c as u32 == 0x7f || c == '\u{2028}' || c == '\u{2029}' => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_json_parses_back_with_serde_json() {
        let t = TraceRecorder::new();
        t.span("graph_op", "matmul", 1_000, 2_500);
        t.span("graph_op", "weird \"name\"\n", 4_000, 10);
        t.count("session", "plan_miss", 1);
        let doc = serde_json::from_str(&t.to_json()).expect("valid JSON");
        let all = doc["traceEvents"].as_array().expect("traceEvents array");
        // metadata ("M") events are appended by the exporter; the
        // data events keep their order ahead of them
        let events: Vec<_> = all
            .iter()
            .filter(|e| e["ph"].as_str() != Some("M"))
            .collect();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0]["name"].as_str(), Some("matmul"));
        assert_eq!(events[0]["ph"].as_str(), Some("X"));
        assert_eq!(events[0]["ts"].as_f64(), Some(1.0)); // 1000ns = 1us
        assert_eq!(events[0]["dur"].as_f64(), Some(2.5));
        assert_eq!(events[1]["name"].as_str(), Some("weird \"name\"\n"));
        assert_eq!(events[2]["ph"].as_str(), Some("C"));
        assert_eq!(events[2]["args"]["value"].as_u64(), Some(1));
        assert_eq!(doc["otherData"]["droppedEvents"].as_u64(), Some(0));
        // the process is always named
        assert!(
            all.iter().any(
                |e| e["ph"].as_str() == Some("M") && e["name"].as_str() == Some("process_name")
            ),
            "process_name metadata event missing"
        );
    }

    #[test]
    fn named_threads_get_thread_name_metadata_events() {
        // touching thread_lane() from a named thread registers its lane;
        // registration is process-global, so any recorder exports it
        std::thread::Builder::new()
            .name("serve-worker-99".to_string())
            .spawn(crate::thread_lane)
            .expect("spawn")
            .join()
            .expect("join");
        let t = TraceRecorder::new();
        let doc = serde_json::from_str(&t.to_json()).expect("valid JSON");
        let events = doc["traceEvents"].as_array().expect("traceEvents array");
        let named = events.iter().any(|e| {
            e["ph"].as_str() == Some("M")
                && e["name"].as_str() == Some("thread_name")
                && e["args"]["name"].as_str() == Some("serve-worker-99")
                && e["tid"].as_u64().is_some()
        });
        assert!(named, "expected a thread_name M event for serve-worker-99");
    }

    #[test]
    fn dynamic_span_names_round_trip_through_serde_json() {
        // every C0 control char, DEL, quote/backslash combos, and the
        // JS line separators — the worst a user-derived op name can be
        let mut nasty = String::from("op \"x\\y\" \\\" \u{7f}\u{2028}\u{2029}");
        for b in 0u32..0x20 {
            nasty.push(char::from_u32(b).expect("C0 char"));
        }
        let t = TraceRecorder::new();
        t.span("graph_op", &nasty, 0, 1);
        t.gauge("mem", &nasty, 42);
        let doc = serde_json::from_str(&t.to_json()).expect("valid JSON");
        let all = doc["traceEvents"].as_array().expect("traceEvents array");
        let events: Vec<_> = all
            .iter()
            .filter(|e| e["ph"].as_str() != Some("M"))
            .collect();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0]["name"].as_str(), Some(nasty.as_str()));
        assert_eq!(events[1]["name"].as_str(), Some(nasty.as_str()));
        assert_eq!(events[1]["ph"].as_str(), Some("C"));
        assert_eq!(events[1]["args"]["value"].as_u64(), Some(42));
    }

    #[test]
    fn gauges_are_absolute_not_accumulating() {
        let t = TraceRecorder::new();
        t.gauge("sched", "queue_depth", 5);
        t.gauge("sched", "queue_depth", 3);
        let doc = serde_json::from_str(&t.to_json()).expect("valid JSON");
        let events = doc["traceEvents"].as_array().expect("traceEvents array");
        assert_eq!(events[0]["args"]["value"].as_u64(), Some(5));
        assert_eq!(events[1]["args"]["value"].as_u64(), Some(3));
    }

    #[test]
    fn capacity_cap_counts_drops() {
        let t = TraceRecorder::with_capacity(2);
        for i in 0..5 {
            t.span("c", "s", i, 1);
        }
        assert_eq!(t.len(), 2);
        let doc = serde_json::from_str(&t.to_json()).expect("valid JSON");
        assert_eq!(doc["otherData"]["droppedEvents"].as_u64(), Some(3));
    }

    #[test]
    fn write_to_creates_parseable_file() {
        let t = TraceRecorder::new();
        t.span("c", "s", 0, 42);
        let path = std::env::temp_dir().join("autograph_obs_chrome_test.json");
        t.write_to(&path).expect("write");
        let text = std::fs::read_to_string(&path).expect("read back");
        let doc = serde_json::from_str(&text).expect("valid JSON");
        assert_eq!(doc["traceEvents"][0]["dur"].as_f64(), Some(0.042));
        let _ = std::fs::remove_file(&path);
    }
}
