//! The [`Recorder`] trait and the streaming / fan-out implementations.

/// A sink for observability events. Implementations must be cheap and
/// thread-safe: the executor may emit spans from multiple threads.
pub trait Recorder: Send + Sync {
    /// A closed span: `cat/name` ran for `dur_ns`, starting at
    /// `start_ns` on the trace clock ([`crate::now_ns`]).
    fn span(&self, cat: &'static str, name: &str, start_ns: u64, dur_ns: u64);

    /// Bump the counter `cat/name` by `delta`.
    fn count(&self, cat: &'static str, name: &'static str, delta: u64);

    /// One observation of the distribution `cat/name`.
    fn observe(&self, cat: &'static str, name: &str, value: u64);

    /// An instantaneous level sample: `cat/name` is `value` *right now*
    /// (live bytes, queue depth, utilization‰). Unlike [`count`], a
    /// gauge is absolute, not accumulating. The default sink ignores it.
    ///
    /// [`count`]: Recorder::count
    fn gauge(&self, _cat: &'static str, _name: &str, _value: u64) {}

    /// Offer a `print`-op line. Return `true` to capture it (suppressing
    /// the default stdout write). The default sink captures nothing.
    fn print_line(&self, _line: &str) -> bool {
        false
    }
}

/// Prints one line per span as it closes, in the format the old
/// `PROFILE_NODES` env hack used (`PROF <name> <dur>ns` on stderr).
/// Optionally restricted to one category.
#[derive(Debug, Default)]
pub struct StreamingRecorder {
    only_cat: Option<&'static str>,
}

impl StreamingRecorder {
    /// Stream every span.
    pub fn new() -> StreamingRecorder {
        StreamingRecorder::default()
    }

    /// Stream only spans in `cat` (e.g. `"graph_op"` for the
    /// `PROFILE_NODES` compatibility output).
    pub fn only(cat: &'static str) -> StreamingRecorder {
        StreamingRecorder {
            only_cat: Some(cat),
        }
    }
}

impl Recorder for StreamingRecorder {
    fn span(&self, cat: &'static str, name: &str, _start_ns: u64, dur_ns: u64) {
        if self.only_cat.is_none_or(|c| c == cat) {
            eprintln!("PROF {name} {dur_ns}ns");
        }
    }

    fn count(&self, _cat: &'static str, _name: &'static str, _delta: u64) {}

    fn observe(&self, _cat: &'static str, _name: &str, _value: u64) {}
}

/// Forwards every event to each inner recorder. A print line counts as
/// captured if *any* inner recorder captures it.
pub struct FanoutRecorder {
    inner: Vec<std::sync::Arc<dyn Recorder>>,
}

impl FanoutRecorder {
    /// Compose `recorders` into one.
    pub fn new(recorders: Vec<std::sync::Arc<dyn Recorder>>) -> FanoutRecorder {
        FanoutRecorder { inner: recorders }
    }
}

impl Recorder for FanoutRecorder {
    fn span(&self, cat: &'static str, name: &str, start_ns: u64, dur_ns: u64) {
        for r in &self.inner {
            r.span(cat, name, start_ns, dur_ns);
        }
    }

    fn count(&self, cat: &'static str, name: &'static str, delta: u64) {
        for r in &self.inner {
            r.count(cat, name, delta);
        }
    }

    fn observe(&self, cat: &'static str, name: &str, value: u64) {
        for r in &self.inner {
            r.observe(cat, name, value);
        }
    }

    fn gauge(&self, cat: &'static str, name: &str, value: u64) {
        for r in &self.inner {
            r.gauge(cat, name, value);
        }
    }

    fn print_line(&self, line: &str) -> bool {
        let mut captured = false;
        for r in &self.inner {
            captured |= r.print_line(line);
        }
        captured
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::AggregateRecorder;
    use std::sync::Arc;

    #[test]
    fn fanout_reaches_all_and_ors_print_capture() {
        let a = Arc::new(AggregateRecorder::new());
        let b = Arc::new(AggregateRecorder::new().capture_prints());
        let fan = FanoutRecorder::new(vec![a.clone(), b.clone()]);
        fan.span("c", "s", 0, 10);
        fan.count("c", "n", 3);
        assert!(fan.print_line("x"), "one sink captures");
        assert_eq!(a.summary().row("c/s").unwrap().count, 1);
        assert_eq!(b.summary().counter("c/n"), Some(3));
        assert_eq!(b.printed(), vec!["x".to_string()]);
        assert!(a.printed().is_empty());
    }
}
