//! # autograph-obs
//!
//! The observability layer for the AutoGraph reproduction: structured
//! span timers, monotonic counters and duration histograms behind a
//! pluggable [`Recorder`], plus exporters — a human-readable summary
//! table sorted by self-time and a Chrome `chrome://tracing` JSON trace.
//!
//! ## Design
//!
//! Instrumented code calls the free functions in this crate
//! ([`span`], [`count`], [`observe`], [`emit_print`]). When no recorder
//! is installed every one of them is a **single branch on a relaxed
//! [`AtomicBool`]** — no allocation, no locking, no syscalls — so the
//! hot paths of the graph executor and eager runtime pay nothing in
//! normal operation. Installing a recorder ([`install`]) flips the flag
//! and routes events to it; [`uninstall`] flips it back.
//!
//! Three recorders ship with the crate:
//!
//! * [`AggregateRecorder`] — in-memory per-key histograms and counters;
//!   renders the per-op `count / total / mean / p99` summary table.
//! * [`TraceRecorder`] — buffers begin/end events and writes a Chrome
//!   trace (`chrome://tracing` / Perfetto "load trace" compatible).
//! * [`StreamingRecorder`] — prints one line per span as it closes
//!   (the old `PROFILE_NODES` output format).
//!
//! [`FanoutRecorder`] composes any of them. `PROFILE_NODES=1` keeps
//! working: [`env::maybe_init_from_env`] installs a streaming +
//! aggregate pair the first time an executor runs (see that module).

pub mod chrome;
pub mod env;
pub mod metrics;
pub mod recorder;

pub use chrome::TraceRecorder;
pub use metrics::{
    AggregateRecorder, AtomicHistogram, HistSnapshot, Histogram, ShardedCounter, Summary,
};
pub use recorder::{FanoutRecorder, Recorder, StreamingRecorder};

use std::borrow::Cow;
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static RECORDER: RwLock<Option<Arc<dyn Recorder>>> = RwLock::new(None);

/// Whether a recorder is installed. Inlined to a single relaxed atomic
/// load — the only cost instrumented code pays when profiling is off.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Install `recorder` as the process-wide sink and enable recording.
pub fn install(recorder: Arc<dyn Recorder>) {
    let mut slot = RECORDER.write().expect("obs recorder lock");
    *slot = Some(recorder);
    ENABLED.store(true, Ordering::Release);
}

/// Disable recording and return the previously installed recorder.
pub fn uninstall() -> Option<Arc<dyn Recorder>> {
    ENABLED.store(false, Ordering::Release);
    RECORDER.write().expect("obs recorder lock").take()
}

/// Run `f` against the installed recorder, if any.
#[inline]
pub fn with_recorder(f: impl FnOnce(&dyn Recorder)) {
    if !enabled() {
        return;
    }
    if let Ok(guard) = RECORDER.read() {
        if let Some(r) = guard.as_ref() {
            f(r.as_ref());
        }
    }
}

/// Nanoseconds since the first observability event in this process
/// (the trace epoch).
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

static LANE_NAMES: Mutex<Vec<(u64, String)>> = Mutex::new(Vec::new());

/// A small dense id for the current thread (Chrome traces want an
/// integer `tid`). On first call from a thread its OS thread name is
/// captured into the lane registry ([`lane_names`]) so trace exporters
/// can emit human-readable thread labels.
pub fn thread_lane() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static LANE: u64 = {
            let lane = NEXT.fetch_add(1, Ordering::Relaxed);
            let name = std::thread::current()
                .name()
                .map(str::to_string)
                .unwrap_or_else(|| format!("thread-{lane}"));
            if let Ok(mut names) = LANE_NAMES.lock() {
                names.push((lane, name));
            }
            lane
        };
    }
    LANE.with(|l| *l)
}

/// All `(lane, thread name)` pairs registered so far, in registration
/// order. Lanes are registered lazily the first time a thread calls
/// [`thread_lane`] (directly or via any recorder hook).
pub fn lane_names() -> Vec<(u64, String)> {
    LANE_NAMES.lock().map(|v| v.clone()).unwrap_or_default()
}

thread_local! {
    /// Request id the current thread is working on behalf of (0 = none).
    static REQUEST_CTX: Cell<u64> = const { Cell::new(0) };
}

/// The request id associated with the current thread, or 0 when none
/// was set. Serving layers set this around execution so recorders can
/// attribute executor spans back to the HTTP request that caused them.
#[inline]
pub fn request_ctx() -> u64 {
    REQUEST_CTX.with(|c| c.get())
}

/// Associate `id` with the current thread until the returned guard is
/// dropped (the previous value is restored, so nesting is safe).
#[must_use = "the request context is cleared when the guard drops"]
pub fn set_request_ctx(id: u64) -> RequestCtxGuard {
    let prev = REQUEST_CTX.with(|c| c.replace(id));
    RequestCtxGuard { prev }
}

/// Restores the prior request context on drop. See [`set_request_ctx`].
pub struct RequestCtxGuard {
    prev: u64,
}

impl Drop for RequestCtxGuard {
    fn drop(&mut self) {
        REQUEST_CTX.with(|c| c.set(self.prev));
    }
}

/// An open span: records `(category, name, start, duration)` to the
/// installed recorder when dropped.
#[must_use = "a span records its duration when dropped"]
pub struct Span {
    cat: &'static str,
    name: Cow<'static, str>,
    start_ns: u64,
    start: Instant,
}

impl Drop for Span {
    fn drop(&mut self) {
        let dur_ns = self.start.elapsed().as_nanos() as u64;
        let (cat, start_ns) = (self.cat, self.start_ns);
        let name = std::mem::replace(&mut self.name, Cow::Borrowed(""));
        with_recorder(|r| r.span(cat, &name, start_ns, dur_ns));
    }
}

/// Open a span with a `'static` name. Returns `None` (and does nothing
/// else) when no recorder is installed.
#[inline]
pub fn span(cat: &'static str, name: &'static str) -> Option<Span> {
    if !enabled() {
        return None;
    }
    Some(begin(cat, Cow::Borrowed(name)))
}

/// Open a span with a runtime-constructed name. The allocation happens
/// only when recording is enabled.
#[inline]
pub fn span_dyn(cat: &'static str, name: impl FnOnce() -> String) -> Option<Span> {
    if !enabled() {
        return None;
    }
    Some(begin(cat, Cow::Owned(name())))
}

fn begin(cat: &'static str, name: Cow<'static, str>) -> Span {
    Span {
        cat,
        name,
        start_ns: now_ns(),
        start: Instant::now(),
    }
}

/// Bump the monotonic counter `category/name` by `delta`.
#[inline]
pub fn count(cat: &'static str, name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    with_recorder(|r| r.count(cat, name, delta));
}

/// Record one observation of a value distribution (loop iteration
/// counts, tape lengths, size deltas, ...).
#[inline]
pub fn observe(cat: &'static str, name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    with_recorder(|r| r.observe(cat, name, value));
}

/// Record one observation under a runtime-constructed name. The name is
/// only built when a recorder is installed.
#[inline]
pub fn observe_dyn(cat: &'static str, name: impl FnOnce() -> String, value: u64) {
    if !enabled() {
        return;
    }
    let name = name();
    with_recorder(|r| r.observe(cat, &name, value));
}

/// Record an instantaneous level sample (live bytes, queue depth,
/// utilization). Gauges are absolute values, not accumulating counters;
/// the trace exporter renders them as Chrome counter lanes.
#[inline]
pub fn gauge(cat: &'static str, name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    with_recorder(|r| r.gauge(cat, name, value));
}

/// [`gauge`] with a runtime-constructed name (e.g. a per-worker lane
/// label). The name is only built when a recorder is installed.
#[inline]
pub fn gauge_dyn(cat: &'static str, name: impl FnOnce() -> String, value: u64) {
    if !enabled() {
        return;
    }
    let name = name();
    with_recorder(|r| r.gauge(cat, &name, value));
}

/// Offer a `print`-op line to the recorder. Returns `true` if the
/// recorder captured it (the caller must then *not* write it to
/// stdout), `false` when it should go to stdout as usual.
#[inline]
pub fn emit_print(line: &str) -> bool {
    if !enabled() {
        return false;
    }
    let mut captured = false;
    with_recorder(|r| captured = r.print_line(line));
    captured
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global recorder slot is process-wide, so exercise the full
    // install → record → uninstall cycle inside one test to avoid
    // cross-test interference.
    #[test]
    fn disabled_paths_are_inert_and_install_cycle_works() {
        assert!(!enabled());
        assert!(span("t", "noop").is_none());
        assert!(!emit_print("dropped"));
        count("t", "c", 1);
        observe("t", "o", 1);

        let agg = Arc::new(AggregateRecorder::new().capture_prints());
        install(agg.clone());
        assert!(enabled());
        {
            let _s = span("t", "work");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        count("t", "c", 2);
        observe("t", "o", 41);
        assert!(emit_print("captured line"));

        let prev = uninstall().expect("was installed");
        assert!(!enabled());
        drop(prev);

        let summary = agg.summary();
        let row = summary.row("t/work").expect("span row");
        assert_eq!(row.count, 1);
        assert!(
            row.total_ns >= 1_000_000,
            "slept ≥ 1ms, got {}",
            row.total_ns
        );
        assert_eq!(summary.counter("t/c"), Some(2));
        assert_eq!(agg.printed(), vec!["captured line".to_string()]);
        // values recorded after uninstall are dropped
        count("t", "c", 100);
        assert_eq!(agg.summary().counter("t/c"), Some(2));
    }

    #[test]
    fn request_ctx_nests_and_restores() {
        assert_eq!(request_ctx(), 0);
        {
            let _outer = set_request_ctx(7);
            assert_eq!(request_ctx(), 7);
            {
                let _inner = set_request_ctx(11);
                assert_eq!(request_ctx(), 11);
            }
            assert_eq!(request_ctx(), 7);
        }
        assert_eq!(request_ctx(), 0);
    }

    #[test]
    fn thread_lane_registers_thread_name() {
        let lane = std::thread::Builder::new()
            .name("lane-name-probe".to_string())
            .spawn(thread_lane)
            .expect("spawn")
            .join()
            .expect("join");
        let names = lane_names();
        let hit = names.iter().find(|(l, _)| *l == lane).expect("registered");
        assert_eq!(hit.1, "lane-name-probe");
    }
}
