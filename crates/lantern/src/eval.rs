//! The Lantern evaluator: executes compiled programs forward-only or with
//! reverse-mode automatic differentiation.
//!
//! The original Lantern implements backpropagation with delimited
//! continuations (`shift`/`reset`) compiled into C++ — each op's generated
//! code runs its forward computation, invokes the continuation for the
//! rest of the program, then updates its operands' gradients. Here the
//! continuations are reified: the forward pass pushes one backward closure
//! per differentiable op onto a stack, and after the forward value is
//! produced the stack unwinds in reverse — the identical computation in
//! the identical order (see the `Snippet` listing in §8).

use crate::compile::{CExpr, CFunc, LOp, Program};
use crate::value::LValue;
use crate::{LanternError, Result};
use autograph_tensor::{DType, Tensor};
use std::collections::HashMap;

type BackFn = Box<dyn FnOnce(&mut GradStore)>;

/// Accumulated adjoints by tape node id.
struct GradStore {
    grads: Vec<Option<Tensor>>,
}

impl GradStore {
    fn accumulate(&mut self, node: usize, g: Tensor) {
        let slot = &mut self.grads[node];
        *slot = Some(match slot.take() {
            Some(acc) => acc.add(&g).expect("gradient shapes agree"),
            None => g,
        });
    }
}

/// Reified continuation stack.
struct Tape {
    entries: Vec<(usize, BackFn)>, // (output node, backward)
    next_node: usize,
}

impl Tape {
    fn new() -> Tape {
        Tape {
            entries: Vec::new(),
            next_node: 0,
        }
    }

    fn node(&mut self) -> usize {
        let n = self.next_node;
        self.next_node += 1;
        n
    }
}

/// Sum `g` down to `target`'s shape (adjoint of broadcasting).
fn sum_to(g: &Tensor, target: &Tensor) -> Tensor {
    let mut out = g.clone();
    while out.rank() > target.rank() {
        out = out.reduce_sum(Some(0)).expect("reduce");
    }
    for ax in 0..target.rank() {
        if target.shape()[ax] == 1 && out.shape()[ax] != 1 {
            let summed = out.reduce_sum(Some(ax as isize)).expect("reduce");
            let mut shape = summed.shape().to_vec();
            shape.insert(ax, 1);
            out = summed.reshape(&shape).expect("reshape");
        }
    }
    out
}

/// Executes a compiled [`Program`].
#[derive(Debug)]
pub struct Engine {
    program: Program,
}

/// Best-effort human-readable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl Engine {
    /// Wrap a compiled program.
    pub fn new(program: Program) -> Engine {
        Engine { program }
    }

    /// The compiled program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Evaluate forward with tensor externs.
    ///
    /// # Errors
    ///
    /// Fails on missing externs/params or kernel errors.
    pub fn run(&self, externs: &[(&str, Tensor)], params: &[(&str, Tensor)]) -> Result<LValue> {
        let ext: Vec<(&str, LValue)> = externs
            .iter()
            .map(|(n, t)| (*n, LValue::tensor(t.clone())))
            .collect();
        self.run_values(&ext, params)
    }

    /// Evaluate forward with arbitrary extern values (trees, tuples).
    ///
    /// # Errors
    ///
    /// Fails on missing externs/params or kernel errors.
    pub fn run_values(
        &self,
        externs: &[(&str, LValue)],
        params: &[(&str, Tensor)],
    ) -> Result<LValue> {
        // panic isolation: interpreter + kernel panics become structured
        // errors instead of unwinding through the embedding application
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.run_values_inner(externs, params)
        }))
        .unwrap_or_else(|p| {
            Err(LanternError::new(format!(
                "evaluator panicked: {}",
                panic_message(p.as_ref())
            )))
        })
    }

    fn run_values_inner(
        &self,
        externs: &[(&str, LValue)],
        params: &[(&str, Tensor)],
    ) -> Result<LValue> {
        let (ext, par) = self.bind(externs, params, None)?;
        let mut ctx = Ctx {
            program: &self.program,
            externs: ext,
            params: par,
            tape: None,
        };
        let mut frame = vec![LValue::Unit; self.program.main.num_slots];
        ctx.eval(&self.program.main.body, &mut frame)
    }

    /// Evaluate and differentiate: returns the scalar loss and the
    /// gradient of each parameter, in `params` order.
    ///
    /// # Errors
    ///
    /// Fails when the program output is not a scalar tensor, or on any
    /// kernel error.
    pub fn grad(
        &self,
        externs: &[(&str, LValue)],
        params: &[(&str, Tensor)],
    ) -> Result<(Tensor, Vec<Tensor>)> {
        // the reified backward continuations index gradient slots and call
        // shape-sensitive kernels directly; isolate their panics too
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.grad_inner(externs, params)
        }))
        .unwrap_or_else(|p| {
            Err(LanternError::new(format!(
                "gradient evaluation panicked: {}",
                panic_message(p.as_ref())
            )))
        })
    }

    fn grad_inner(
        &self,
        externs: &[(&str, LValue)],
        params: &[(&str, Tensor)],
    ) -> Result<(Tensor, Vec<Tensor>)> {
        let mut tape = Tape::new();
        // parameters are tape leaves
        let param_nodes: Vec<usize> = (0..self.program.param_names.len())
            .map(|_| tape.node())
            .collect();
        let (ext, par) = self.bind(externs, params, Some(&param_nodes))?;
        let mut ctx = Ctx {
            program: &self.program,
            externs: ext,
            params: par,
            tape: Some(tape),
        };
        let mut frame = vec![LValue::Unit; self.program.main.num_slots];
        let out = ctx.eval(&self.program.main.body, &mut frame)?;
        let (loss, loss_node) = match out {
            LValue::Tensor(t, n) => (t, n),
            other => {
                return Err(LanternError::new(format!(
                    "grad needs a scalar tensor output, got {}",
                    other.kind()
                )))
            }
        };
        let tape = ctx.tape.take().expect("tape set above");
        let mut store = GradStore {
            grads: vec![None; tape.next_node],
        };
        if let Some(ln) = loss_node {
            store.grads[ln] = Some(Tensor::ones(DType::F32, loss.shape()));
            // unwind the reified continuations
            for (out_node, back) in tape.entries.into_iter().rev() {
                if store.grads[out_node].is_some() {
                    back(&mut store);
                }
            }
        }
        let grads = self
            .program
            .param_names
            .iter()
            .enumerate()
            .map(|(i, name)| {
                store.grads[param_nodes[i]].clone().unwrap_or_else(|| {
                    let shape = params
                        .iter()
                        .find(|(n, _)| n == name)
                        .map(|(_, t)| t.shape().to_vec())
                        .unwrap_or_default();
                    Tensor::zeros(DType::F32, &shape)
                })
            })
            .collect();
        Ok((loss, grads))
    }

    fn bind(
        &self,
        externs: &[(&str, LValue)],
        params: &[(&str, Tensor)],
        param_nodes: Option<&[usize]>,
    ) -> Result<(Vec<LValue>, Vec<LValue>)> {
        let emap: HashMap<&str, &LValue> = externs.iter().map(|(n, v)| (*n, v)).collect();
        let ext = self
            .program
            .extern_names
            .iter()
            .map(|n| {
                emap.get(n.as_str())
                    .map(|v| (*v).clone())
                    .ok_or_else(|| LanternError::new(format!("missing extern '{n}'")))
            })
            .collect::<Result<_>>()?;
        let pmap: HashMap<&str, &Tensor> = params.iter().map(|(n, t)| (*n, t)).collect();
        let par = self
            .program
            .param_names
            .iter()
            .enumerate()
            .map(|(i, n)| {
                let t = pmap
                    .get(n.as_str())
                    .ok_or_else(|| LanternError::new(format!("missing parameter '{n}'")))?;
                Ok(LValue::Tensor((*t).clone(), param_nodes.map(|ns| ns[i])))
            })
            .collect::<Result<_>>()?;
        Ok((ext, par))
    }
}

struct Ctx<'a> {
    program: &'a Program,
    externs: Vec<LValue>,
    params: Vec<LValue>,
    tape: Option<Tape>,
}

impl<'a> Ctx<'a> {
    fn eval(&mut self, e: &CExpr, frame: &mut Vec<LValue>) -> Result<LValue> {
        match e {
            CExpr::Scalar(v) => Ok(LValue::scalar(*v)),
            CExpr::Local(slot) => Ok(frame[*slot].clone()),
            CExpr::Extern(i) => Ok(self.externs[*i].clone()),
            CExpr::Param(i) => Ok(self.params[*i].clone()),
            CExpr::Let { slot, value, body } => {
                let v = self.eval(value, frame)?;
                frame[*slot] = v;
                self.eval(body, frame)
            }
            CExpr::If { cond, then, els } => {
                let c = self.eval(cond, frame)?.as_bool()?;
                if c {
                    self.eval(then, frame)
                } else {
                    self.eval(els, frame)
                }
            }
            CExpr::Call { func, args } => {
                let f: &CFunc = &self.program.funcs[*func];
                if args.len() != f.num_params {
                    return Err(LanternError::new(format!(
                        "function '{}' expects {} args, got {}",
                        f.name,
                        f.num_params,
                        args.len()
                    )));
                }
                let mut new_frame = vec![LValue::Unit; f.num_slots];
                for (i, a) in args.iter().enumerate() {
                    new_frame[i] = self.eval(a, frame)?;
                }
                self.eval(&f.body, &mut new_frame)
            }
            CExpr::Attr { value, field } => {
                let v = self.eval(value, frame)?;
                let rec = v.as_record()?;
                rec.fields
                    .get(field)
                    .cloned()
                    .ok_or_else(|| LanternError::new(format!("record has no field '{field}'")))
            }
            CExpr::Tuple(items) => Ok(LValue::Tuple(
                items
                    .iter()
                    .map(|i| self.eval(i, frame))
                    .collect::<Result<_>>()?,
            )),
            CExpr::TupleGet { value, index } => match self.eval(value, frame)? {
                LValue::Tuple(items) => items
                    .get(*index)
                    .cloned()
                    .ok_or_else(|| LanternError::new(format!("tuple index {index} out of range"))),
                other => Err(LanternError::new(format!(
                    "get on non-tuple {}",
                    other.kind()
                ))),
            },
            CExpr::Op { op, args } => match args.as_slice() {
                // common arities evaluate into stack slots (no allocation
                // on the compiled hot path)
                [a] => {
                    let va = self.eval(a, frame)?;
                    self.apply(*op, &[va])
                }
                [a, b] => {
                    let va = self.eval(a, frame)?;
                    let vb = self.eval(b, frame)?;
                    self.apply(*op, &[va, vb])
                }
                _ => {
                    let vals: Vec<LValue> = args
                        .iter()
                        .map(|a| self.eval(a, frame))
                        .collect::<Result<_>>()?;
                    self.apply(*op, &vals)
                }
            },
        }
    }

    fn apply(&mut self, op: LOp, vals: &[LValue]) -> Result<LValue> {
        use LOp::*;
        // boolean ops first (no AD)
        match op {
            And => return Ok(LValue::Bool(vals[0].as_bool()? && vals[1].as_bool()?)),
            Or => return Ok(LValue::Bool(vals[0].as_bool()? || vals[1].as_bool()?)),
            Not => return Ok(LValue::Bool(!vals[0].as_bool()?)),
            Lt | Le | Gt | Ge | EqOp => {
                let a = vals[0].as_tensor()?;
                let b = vals[1].as_tensor()?;
                let r = match op {
                    Lt => a.less(b)?,
                    Le => a.less_equal(b)?,
                    Gt => a.greater(b)?,
                    Ge => a.greater_equal(b)?,
                    _ => a.equal(b)?,
                };
                return Ok(LValue::Tensor(r, None));
            }
            _ => {}
        }

        // borrow tensors without allocating (hot path)
        let missing = || LanternError::new("missing operand");
        let t0 = match vals.first() {
            Some(v) => Some(v.as_tensor()?),
            None => None,
        };
        let t1 = match vals.get(1) {
            Some(v) => Some(v.as_tensor()?),
            None => None,
        };
        let a = t0.ok_or_else(missing);
        let b = t1.ok_or_else(missing);

        let out = match op {
            Add => a?.add(b?)?,
            Sub => a?.sub(b?)?,
            Mul => a?.mul(b?)?,
            Div => a?.div(b?)?,
            Neg => a?.neg()?,
            Exp => a?.exp()?,
            Log => a?.log()?,
            Tanh => a?.tanh()?,
            Sigmoid => a?.sigmoid()?,
            Relu => a?.relu()?,
            Square => a?.square()?,
            Sqrt => a?.sqrt()?,
            MatMul => a?.matmul(b?)?,
            Concat0 => {
                let ts: Result<Vec<Tensor>> = vals.iter().map(|v| v.as_tensor().cloned()).collect();
                Tensor::concat(&ts?, 0)?
            }
            Concat1 => {
                let ts: Result<Vec<Tensor>> = vals.iter().map(|v| v.as_tensor().cloned()).collect();
                Tensor::concat(&ts?, 1)?
            }
            ReduceSum => a?.reduce_sum(None)?,
            ReduceMean => a?.reduce_mean(None)?,
            SoftmaxXent => Tensor::softmax_cross_entropy(a?, b?)?,
            And | Or | Not | Lt | Le | Gt | Ge | EqOp => unreachable!("handled above"),
        };

        let Some(tape) = self.tape.as_mut() else {
            return Ok(LValue::Tensor(out, None));
        };
        let nodes: Vec<Option<usize>> = vals
            .iter()
            .map(|v| match v {
                LValue::Tensor(_, n) => *n,
                _ => None,
            })
            .collect();
        if nodes.iter().all(Option::is_none) {
            return Ok(LValue::Tensor(out, None));
        }
        let out_node = tape.node();
        let saved: Vec<Tensor> = vals
            .iter()
            .map(|v| v.as_tensor().expect("numeric op inputs").clone())
            .collect();
        let out_saved = out.clone();
        let back: BackFn = Box::new(move |store: &mut GradStore| {
            let g = store.grads[out_node].clone().expect("guarded by caller");
            let contribs: Vec<Option<Tensor>> = match op {
                Add => vec![Some(sum_to(&g, &saved[0])), Some(sum_to(&g, &saved[1]))],
                Sub => vec![
                    Some(sum_to(&g, &saved[0])),
                    Some(sum_to(&g.neg().expect("neg"), &saved[1])),
                ],
                Mul => vec![
                    Some(sum_to(&g.mul(&saved[1]).expect("mul"), &saved[0])),
                    Some(sum_to(&g.mul(&saved[0]).expect("mul"), &saved[1])),
                ],
                Div => {
                    let ga = g.div(&saved[1]).expect("div");
                    let gb = g
                        .mul(&saved[0])
                        .and_then(|t| t.div(&saved[1].square().expect("square")))
                        .and_then(|t| t.neg())
                        .expect("div grad");
                    vec![Some(sum_to(&ga, &saved[0])), Some(sum_to(&gb, &saved[1]))]
                }
                Neg => vec![Some(g.neg().expect("neg"))],
                Exp => vec![Some(g.mul(&out_saved).expect("mul"))],
                Log => vec![Some(g.div(&saved[0]).expect("div"))],
                Tanh => {
                    let one = Tensor::scalar_f32(1.0);
                    let d = one.sub(&out_saved.square().expect("sq")).expect("sub");
                    vec![Some(g.mul(&d).expect("mul"))]
                }
                Sigmoid => {
                    let one = Tensor::scalar_f32(1.0);
                    let d = out_saved
                        .mul(&one.sub(&out_saved).expect("sub"))
                        .expect("mul");
                    vec![Some(g.mul(&d).expect("mul"))]
                }
                Relu => {
                    let mask = saved[0]
                        .greater(&Tensor::scalar_f32(0.0))
                        .expect("cmp")
                        .cast(DType::F32);
                    vec![Some(g.mul(&mask).expect("mul"))]
                }
                Square => {
                    let two = Tensor::scalar_f32(2.0);
                    vec![Some(g.mul(&saved[0].mul(&two).expect("mul")).expect("mul"))]
                }
                Sqrt => {
                    let half = Tensor::scalar_f32(0.5);
                    vec![Some(
                        g.mul(&half).expect("mul").div(&out_saved).expect("div"),
                    )]
                }
                MatMul => {
                    let ga = g.matmul(&saved[1].t().expect("t")).expect("matmul");
                    let gb = saved[0].t().expect("t").matmul(&g).expect("matmul");
                    vec![Some(ga), Some(gb)]
                }
                Concat0 => {
                    let mut out_grads = Vec::with_capacity(saved.len());
                    let mut offset = 0i64;
                    for s in &saved {
                        let h = s.shape()[0] as i64;
                        out_grads.push(Some(
                            g.slice_axis0(Some(offset), Some(offset + h))
                                .expect("slice"),
                        ));
                        offset += h;
                    }
                    out_grads
                }
                Concat1 => {
                    let gt = g.t().expect("t");
                    let mut out_grads = Vec::with_capacity(saved.len());
                    let mut offset = 0i64;
                    for s in &saved {
                        let w = s.shape()[1] as i64;
                        let piece = gt
                            .slice_axis0(Some(offset), Some(offset + w))
                            .expect("slice");
                        out_grads.push(Some(piece.t().expect("t")));
                        offset += w;
                    }
                    out_grads
                }
                ReduceSum => vec![Some(
                    g.add(&Tensor::zeros(DType::F32, saved[0].shape()))
                        .expect("bcast"),
                )],
                ReduceMean => {
                    let n = saved[0].num_elements() as f32;
                    let b = g
                        .add(&Tensor::zeros(DType::F32, saved[0].shape()))
                        .expect("bcast");
                    vec![Some(b.div(&Tensor::scalar_f32(n)).expect("div"))]
                }
                SoftmaxXent => {
                    let sm = saved[0].softmax().expect("softmax");
                    let classes = *saved[0].shape().last().expect("rank 2");
                    let oh = saved[1].one_hot(classes).expect("one_hot");
                    let batch = saved[0].shape()[0].max(1) as f32;
                    let d = sm
                        .sub(&oh)
                        .and_then(|t| t.div(&Tensor::scalar_f32(batch)))
                        .expect("xent grad");
                    vec![Some(d.mul(&g).expect("mul")), None]
                }
                And | Or | Not | Lt | Le | Gt | Ge | EqOp => unreachable!(),
            };
            for (node, contrib) in nodes.iter().zip(contribs) {
                if let (Some(node), Some(contrib)) = (node, contrib) {
                    store.accumulate(*node, contrib);
                }
            }
        });
        tape.entries.push((out_node, back));
        Ok(LValue::Tensor(out, Some(out_node)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sexpr::parse;
    use crate::value::Record;

    fn engine(src: &str) -> Engine {
        Engine::new(Program::compile(&parse(src).unwrap()).unwrap())
    }

    #[test]
    fn factorial_recursion() {
        let e = engine(
            "(program (def fact (n) (if (le n 1) 1 (mul n (call fact (sub n 1))))) (call fact (extern n)))",
        );
        let out = e.run(&[("n", Tensor::scalar_f32(6.0))], &[]).unwrap();
        assert_eq!(out.as_tensor().unwrap().scalar_value_f32().unwrap(), 720.0);
    }

    #[test]
    fn tree_prod_recursion() {
        // the paper's §8 example: product of tree values with a base case
        let e = engine(
            "(program \
              (def tree_prod (base tree) \
                (if (attr tree is_empty) base \
                  (mul (mul (call tree_prod base (attr tree left)) \
                            (call tree_prod base (attr tree right))) \
                       (attr tree value)))) \
              (call tree_prod (extern base) (extern tree)))",
        );
        let leaf = LValue::Record(Record::new(vec![("is_empty", LValue::Bool(true))]));
        let node = |l: LValue, r: LValue, v: f32| {
            LValue::Record(Record::new(vec![
                ("is_empty", LValue::Bool(false)),
                ("left", l),
                ("right", r),
                ("value", LValue::scalar(v)),
            ]))
        };
        let tree = node(node(leaf.clone(), leaf.clone(), 2.0), leaf.clone(), 3.0);
        let out = e
            .run_values(&[("base", LValue::scalar(1.0)), ("tree", tree)], &[])
            .unwrap();
        assert_eq!(out.as_tensor().unwrap().scalar_value_f32().unwrap(), 6.0);
    }

    #[test]
    fn let_binding_and_tuples() {
        let e = engine("(program (let x (add 1 2) (get (tuple x (mul x x)) 1)))");
        let out = e.run(&[], &[]).unwrap();
        assert_eq!(out.as_tensor().unwrap().scalar_value_f32().unwrap(), 9.0);
    }

    #[test]
    fn grad_of_square() {
        // loss = (w * x)^2, dw = 2wx^2 = 2*3*4 = 24 at w=3, x=2
        let e = engine("(program (square (mul (param w) (extern x))))");
        let (loss, grads) = e
            .grad(
                &[("x", LValue::scalar(2.0))],
                &[("w", Tensor::scalar_f32(3.0))],
            )
            .unwrap();
        assert_eq!(loss.scalar_value_f32().unwrap(), 36.0);
        assert_eq!(grads[0].scalar_value_f32().unwrap(), 24.0);
    }

    #[test]
    fn grad_through_recursion() {
        // f(n) = w * f(n-1), f(0) = 1  =>  f(3) = w^3, df/dw = 3w^2
        let e = engine(
            "(program \
              (def f (n) (if (le n 0) 1 (mul (param w) (call f (sub n 1))))) \
              (call f (extern n)))",
        );
        let (loss, grads) = e
            .grad(
                &[("n", LValue::scalar(3.0))],
                &[("w", Tensor::scalar_f32(2.0))],
            )
            .unwrap();
        assert_eq!(loss.scalar_value_f32().unwrap(), 8.0);
        assert_eq!(grads[0].scalar_value_f32().unwrap(), 12.0);
    }

    #[test]
    fn grad_matmul_mse() {
        // loss = mean((x@w - y)^2)
        let e = engine(
            "(program (reduce_mean (square (sub (matmul (extern x) (param w)) (extern y)))))",
        );
        let x = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]).unwrap();
        let y = Tensor::from_vec(vec![1.0, 2.0], &[2, 1]).unwrap();
        let w = Tensor::from_vec(vec![0.0, 0.0], &[2, 1]).unwrap();
        let (loss, grads) = e
            .grad(
                &[("x", LValue::tensor(x)), ("y", LValue::tensor(y))],
                &[("w", w)],
            )
            .unwrap();
        assert!((loss.scalar_value_f32().unwrap() - 2.5).abs() < 1e-5);
        // d mean((xw-y)^2)/dw = 2/N * x^T(xw - y) = [-1, -2]
        let g = grads[0].as_f32().unwrap();
        assert!(
            (g[0] + 1.0).abs() < 1e-5 && (g[1] + 2.0).abs() < 1e-5,
            "{g:?}"
        );
    }

    #[test]
    fn grad_concat1() {
        // loss = sum(square(concat1(a, w))) — grad flows only into w
        let e = engine("(program (reduce_sum (square (concat1 (extern a) (param w)))))");
        let a = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
        let w = Tensor::from_vec(vec![3.0], &[1, 1]).unwrap();
        let (loss, grads) = e.grad(&[("a", LValue::tensor(a))], &[("w", w)]).unwrap();
        assert_eq!(loss.scalar_value_f32().unwrap(), 14.0);
        assert_eq!(grads[0].as_f32().unwrap(), &[6.0]);
    }

    #[test]
    fn missing_extern_or_param_errors() {
        let e = engine("(program (add (extern a) (param w)))");
        assert!(e.run(&[], &[("w", Tensor::scalar_f32(1.0))]).is_err());
        assert!(e.run(&[("a", Tensor::scalar_f32(1.0))], &[]).is_err());
    }

    #[test]
    fn grad_unused_param_is_zero() {
        let e = engine("(program (square (extern x)))");
        // `w` never interned -> param_names empty -> grads empty; make a
        // program where the param is reachable but untouched by the loss
        let e2 = engine("(program (let u (param w) (square (extern x))))");
        let (_, grads) = e2
            .grad(
                &[("x", LValue::scalar(2.0))],
                &[("w", Tensor::from_vec(vec![1.0, 1.0], &[2]).unwrap())],
            )
            .unwrap();
        assert_eq!(grads[0].as_f32().unwrap(), &[0.0, 0.0]);
        let _ = e;
    }

    #[test]
    fn bool_ops() {
        let e = engine("(program (if (and (lt 1 2) (not (gt 1 2))) 10 20))");
        assert_eq!(
            e.run(&[], &[])
                .unwrap()
                .as_tensor()
                .unwrap()
                .scalar_value_f32()
                .unwrap(),
            10.0
        );
    }

    #[test]
    fn deep_recursion_ok() {
        let e = engine(
            "(program (def f (n acc) (if (le n 0) acc (call f (sub n 1) (add acc 1)))) (call f (extern n) 0))",
        );
        // run on a dedicated thread with a large stack: recursion depth is
        // bounded by stack size, not by the IR (unlike TF graphs, which
        // cannot express this at all)
        let handle = std::thread::Builder::new()
            .stack_size(64 * 1024 * 1024)
            .spawn(move || {
                let out = e.run(&[("n", Tensor::scalar_f32(3000.0))], &[]).unwrap();
                out.as_tensor().unwrap().scalar_value_f32().unwrap()
            })
            .unwrap();
        assert_eq!(handle.join().unwrap(), 3000.0);
    }
}
