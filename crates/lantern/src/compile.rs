//! Compilation of S-expressions into a compact, pre-resolved instruction
//! tree: variable names become frame slots, function names become indices,
//! extern/param names become interned ids. This is the "efficient code"
//! half of the Lantern substitution — evaluation pays no name lookups and
//! no dynamic dispatch.

use crate::sexpr::SExpr;
use crate::{LanternError, Result};
use std::collections::HashMap;

/// Tensor operations of the Lantern IR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LOp {
    /// `a + b` (broadcasting).
    Add,
    /// `a - b`.
    Sub,
    /// `a * b`.
    Mul,
    /// `a / b`.
    Div,
    /// `-a`.
    Neg,
    /// `exp`.
    Exp,
    /// `ln`.
    Log,
    /// `tanh`.
    Tanh,
    /// `sigmoid`.
    Sigmoid,
    /// `relu`.
    Relu,
    /// `a²`.
    Square,
    /// `sqrt`.
    Sqrt,
    /// matrix product.
    MatMul,
    /// concat along axis 0.
    Concat0,
    /// concat along axis 1.
    Concat1,
    /// total sum.
    ReduceSum,
    /// total mean.
    ReduceMean,
    /// mean softmax cross-entropy `(logits, labels)`.
    SoftmaxXent,
    /// `a < b` (scalar bool).
    Lt,
    /// `a <= b`.
    Le,
    /// `a > b`.
    Gt,
    /// `a >= b`.
    Ge,
    /// `a == b`.
    EqOp,
    /// boolean and.
    And,
    /// boolean or.
    Or,
    /// boolean not.
    Not,
}

fn op_of(name: &str) -> Option<LOp> {
    Some(match name {
        "add" => LOp::Add,
        "sub" => LOp::Sub,
        "mul" => LOp::Mul,
        "div" => LOp::Div,
        "neg" => LOp::Neg,
        "exp" => LOp::Exp,
        "log" => LOp::Log,
        "tanh" => LOp::Tanh,
        "sigmoid" => LOp::Sigmoid,
        "relu" => LOp::Relu,
        "square" => LOp::Square,
        "sqrt" => LOp::Sqrt,
        "matmul" => LOp::MatMul,
        "concat0" => LOp::Concat0,
        "concat1" => LOp::Concat1,
        "reduce_sum" => LOp::ReduceSum,
        "reduce_mean" => LOp::ReduceMean,
        "softmax_xent" => LOp::SoftmaxXent,
        "lt" => LOp::Lt,
        "le" => LOp::Le,
        "gt" => LOp::Gt,
        "ge" => LOp::Ge,
        "eq" => LOp::EqOp,
        "and" => LOp::And,
        "or" => LOp::Or,
        "not" => LOp::Not,
        _ => return None,
    })
}

/// A compiled expression.
#[derive(Debug, Clone, PartialEq)]
pub enum CExpr {
    /// f32 scalar constant.
    Scalar(f32),
    /// Read frame slot.
    Local(usize),
    /// Read interned external input.
    Extern(usize),
    /// Read interned trainable parameter.
    Param(usize),
    /// `let slot = value in body`.
    Let {
        /// Destination slot.
        slot: usize,
        /// Bound value.
        value: Box<CExpr>,
        /// Body evaluated with the binding.
        body: Box<CExpr>,
    },
    /// Conditional.
    If {
        /// Condition (bool).
        cond: Box<CExpr>,
        /// Then branch.
        then: Box<CExpr>,
        /// Else branch.
        els: Box<CExpr>,
    },
    /// Primitive op application.
    Op {
        /// Which op.
        op: LOp,
        /// Arguments.
        args: Vec<CExpr>,
    },
    /// Call of a staged function — possibly recursive (the feature
    /// TensorFlow graphs lack).
    Call {
        /// Function index.
        func: usize,
        /// Arguments.
        args: Vec<CExpr>,
    },
    /// Record field access.
    Attr {
        /// Record expression.
        value: Box<CExpr>,
        /// Field name.
        field: String,
    },
    /// Tuple construction.
    Tuple(Vec<CExpr>),
    /// Tuple projection.
    TupleGet {
        /// Tuple expression.
        value: Box<CExpr>,
        /// Index.
        index: usize,
    },
}

/// A compiled function.
#[derive(Debug, Clone, PartialEq)]
pub struct CFunc {
    /// Name (diagnostics).
    pub name: String,
    /// Number of parameters (occupying slots `0..num_params`).
    pub num_params: usize,
    /// Total frame slots.
    pub num_slots: usize,
    /// Body expression.
    pub body: CExpr,
}

/// A compiled program: functions + a main expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Staged functions.
    pub funcs: Vec<CFunc>,
    /// The entry expression (as a zero-param function frame).
    pub main: CFunc,
    /// Interned external input names.
    pub extern_names: Vec<String>,
    /// Interned trainable parameter names.
    pub param_names: Vec<String>,
}

struct Compiler {
    func_names: HashMap<String, usize>,
    extern_names: Vec<String>,
    param_names: Vec<String>,
}

struct Scope {
    vars: Vec<(String, usize)>,
    next_slot: usize,
    max_slots: usize,
}

impl Scope {
    fn new(params: &[String]) -> Scope {
        Scope {
            vars: params
                .iter()
                .enumerate()
                .map(|(i, p)| (p.clone(), i))
                .collect(),
            next_slot: params.len(),
            max_slots: params.len(),
        }
    }

    fn lookup(&self, name: &str) -> Option<usize> {
        self.vars
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, s)| *s)
    }

    fn push(&mut self, name: &str) -> usize {
        let slot = self.next_slot;
        self.next_slot += 1;
        self.max_slots = self.max_slots.max(self.next_slot);
        self.vars.push((name.to_string(), slot));
        slot
    }

    fn pop(&mut self) {
        self.vars.pop();
        self.next_slot -= 1;
    }
}

impl Program {
    /// Compile a `(program (def ...)* main)` S-expression.
    ///
    /// # Errors
    ///
    /// Fails on malformed forms, unbound symbols, or unknown ops.
    pub fn compile(sexpr: &SExpr) -> Result<Program> {
        let items = sexpr
            .as_list()
            .filter(|l| l.first().and_then(SExpr::as_sym) == Some("program"))
            .ok_or_else(|| LanternError::new("expected (program ...)"))?;
        if items.len() < 2 {
            return Err(LanternError::new("program needs a main expression"));
        }
        let defs = &items[1..items.len() - 1];
        let main_expr = &items[items.len() - 1];

        let mut compiler = Compiler {
            func_names: HashMap::new(),
            extern_names: Vec::new(),
            param_names: Vec::new(),
        };

        // First pass: register function names so recursion resolves.
        let mut headers = Vec::new();
        for (i, d) in defs.iter().enumerate() {
            let parts = d
                .as_list()
                .filter(|l| l.first().and_then(SExpr::as_sym) == Some("def"))
                .ok_or_else(|| LanternError::new("expected (def name (params) body)"))?;
            if parts.len() != 4 {
                return Err(LanternError::new(
                    "def takes a name, a param list and a body",
                ));
            }
            let name = parts[1]
                .as_sym()
                .ok_or_else(|| LanternError::new("def name must be a symbol"))?;
            let params: Vec<String> = parts[2]
                .as_list()
                .ok_or_else(|| LanternError::new("def params must be a list"))?
                .iter()
                .map(|p| {
                    p.as_sym()
                        .map(str::to_string)
                        .ok_or_else(|| LanternError::new("def param must be a symbol"))
                })
                .collect::<Result<_>>()?;
            compiler.func_names.insert(name.to_string(), i);
            headers.push((name.to_string(), params, &parts[3]));
        }

        let mut funcs = Vec::new();
        for (name, params, body) in headers {
            let mut scope = Scope::new(&params);
            let body = compiler.compile_expr(body, &mut scope)?;
            funcs.push(CFunc {
                name,
                num_params: params.len(),
                num_slots: scope.max_slots,
                body,
            });
        }

        let mut main_scope = Scope::new(&[]);
        let main_body = compiler.compile_expr(main_expr, &mut main_scope)?;
        Ok(Program {
            funcs,
            main: CFunc {
                name: "<main>".into(),
                num_params: 0,
                num_slots: main_scope.max_slots,
                body: main_body,
            },
            extern_names: compiler.extern_names,
            param_names: compiler.param_names,
        })
    }
}

impl Compiler {
    fn intern(names: &mut Vec<String>, name: &str) -> usize {
        match names.iter().position(|n| n == name) {
            Some(i) => i,
            None => {
                names.push(name.to_string());
                names.len() - 1
            }
        }
    }

    fn compile_expr(&mut self, e: &SExpr, scope: &mut Scope) -> Result<CExpr> {
        match e {
            SExpr::Num(n) => Ok(CExpr::Scalar(*n as f32)),
            SExpr::Sym(name) => scope
                .lookup(name)
                .map(CExpr::Local)
                .ok_or_else(|| LanternError::new(format!("unbound symbol '{name}'"))),
            SExpr::List(items) => {
                let head = items
                    .first()
                    .and_then(SExpr::as_sym)
                    .ok_or_else(|| LanternError::new("expected an operator symbol"))?;
                match head {
                    "scalar" => {
                        let n = match items.get(1) {
                            Some(SExpr::Num(n)) => *n as f32,
                            _ => return Err(LanternError::new("(scalar N) needs a number")),
                        };
                        Ok(CExpr::Scalar(n))
                    }
                    "extern" => {
                        let name = items
                            .get(1)
                            .and_then(SExpr::as_sym)
                            .ok_or_else(|| LanternError::new("(extern name)"))?;
                        Ok(CExpr::Extern(Self::intern(&mut self.extern_names, name)))
                    }
                    "param" => {
                        let name = items
                            .get(1)
                            .and_then(SExpr::as_sym)
                            .ok_or_else(|| LanternError::new("(param name)"))?;
                        Ok(CExpr::Param(Self::intern(&mut self.param_names, name)))
                    }
                    "let" => {
                        if items.len() != 4 {
                            return Err(LanternError::new("(let name value body)"));
                        }
                        let name = items[1]
                            .as_sym()
                            .ok_or_else(|| LanternError::new("let name must be a symbol"))?;
                        let value = self.compile_expr(&items[2], scope)?;
                        let slot = scope.push(name);
                        let body = self.compile_expr(&items[3], scope)?;
                        scope.pop();
                        Ok(CExpr::Let {
                            slot,
                            value: Box::new(value),
                            body: Box::new(body),
                        })
                    }
                    "if" => {
                        if items.len() != 4 {
                            return Err(LanternError::new("(if cond then else)"));
                        }
                        Ok(CExpr::If {
                            cond: Box::new(self.compile_expr(&items[1], scope)?),
                            then: Box::new(self.compile_expr(&items[2], scope)?),
                            els: Box::new(self.compile_expr(&items[3], scope)?),
                        })
                    }
                    "call" => {
                        let fname = items
                            .get(1)
                            .and_then(SExpr::as_sym)
                            .ok_or_else(|| LanternError::new("(call f args...)"))?;
                        let func = *self.func_names.get(fname).ok_or_else(|| {
                            LanternError::new(format!("unknown function '{fname}'"))
                        })?;
                        let args = items[2..]
                            .iter()
                            .map(|a| self.compile_expr(a, scope))
                            .collect::<Result<_>>()?;
                        Ok(CExpr::Call { func, args })
                    }
                    "attr" => {
                        if items.len() != 3 {
                            return Err(LanternError::new("(attr value field)"));
                        }
                        let field = items[2]
                            .as_sym()
                            .ok_or_else(|| LanternError::new("attr field must be a symbol"))?;
                        Ok(CExpr::Attr {
                            value: Box::new(self.compile_expr(&items[1], scope)?),
                            field: field.to_string(),
                        })
                    }
                    "tuple" => Ok(CExpr::Tuple(
                        items[1..]
                            .iter()
                            .map(|a| self.compile_expr(a, scope))
                            .collect::<Result<_>>()?,
                    )),
                    "get" => {
                        let index = match items.get(2) {
                            Some(SExpr::Num(n)) => *n as usize,
                            _ => return Err(LanternError::new("(get tuple index)")),
                        };
                        Ok(CExpr::TupleGet {
                            value: Box::new(self.compile_expr(&items[1], scope)?),
                            index,
                        })
                    }
                    op_name => {
                        let op = op_of(op_name).ok_or_else(|| {
                            LanternError::new(format!("unknown lantern op '{op_name}'"))
                        })?;
                        let args = items[1..]
                            .iter()
                            .map(|a| self.compile_expr(a, scope))
                            .collect::<Result<Vec<_>>>()?;
                        Ok(CExpr::Op { op, args })
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sexpr::parse;

    #[test]
    fn compile_simple_program() {
        let p = Program::compile(&parse("(program (add (scalar 1) (scalar 2)))").unwrap()).unwrap();
        assert!(p.funcs.is_empty());
        assert!(matches!(p.main.body, CExpr::Op { op: LOp::Add, .. }));
    }

    #[test]
    fn compile_recursive_def() {
        let p = Program::compile(
            &parse("(program (def f (n) (if (le n 1) 1 (mul n (call f (sub n 1))))) (call f (extern n)))")
                .unwrap(),
        )
        .unwrap();
        assert_eq!(p.funcs.len(), 1);
        assert_eq!(p.funcs[0].num_params, 1);
        assert_eq!(p.extern_names, vec!["n"]);
        // the recursive call resolved to index 0
        fn find_call(e: &CExpr) -> bool {
            match e {
                CExpr::Call { func: 0, .. } => true,
                CExpr::If { cond, then, els } => {
                    find_call(cond) || find_call(then) || find_call(els)
                }
                CExpr::Op { args, .. } => args.iter().any(find_call),
                _ => false,
            }
        }
        assert!(find_call(&p.funcs[0].body));
    }

    #[test]
    fn let_allocates_slots() {
        let p = Program::compile(
            &parse("(program (def f (a) (let x (mul a a) (add x x))) (call f (scalar 2)))")
                .unwrap(),
        )
        .unwrap();
        assert_eq!(p.funcs[0].num_slots, 2); // a + x
    }

    #[test]
    fn let_shadowing_and_scoping() {
        // inner let shadows; after body, the name unbinds
        let src = "(program (let x 1 (add (let x 2 x) x)))";
        let p = Program::compile(&parse(src).unwrap()).unwrap();
        assert_eq!(p.main.num_slots, 2);
        // unbound after let
        assert!(Program::compile(&parse("(program (add (let x 1 x) x))").unwrap()).is_err());
    }

    #[test]
    fn unknown_symbols_and_ops_rejected() {
        assert!(Program::compile(&parse("(program zzz)").unwrap()).is_err());
        assert!(Program::compile(&parse("(program (frob 1 2))").unwrap()).is_err());
        assert!(Program::compile(&parse("(program (call nope 1))").unwrap()).is_err());
        assert!(Program::compile(&parse("(add 1 2)").unwrap()).is_err());
    }

    #[test]
    fn params_and_externs_interned_once() {
        let p = Program::compile(
            &parse("(program (add (param w) (add (param w) (extern x))))").unwrap(),
        )
        .unwrap();
        assert_eq!(p.param_names, vec!["w"]);
        assert_eq!(p.extern_names, vec!["x"]);
    }
}
