//! Runtime values of the Lantern evaluator.

use crate::{LanternError, Result};
use autograph_tensor::Tensor;
use std::collections::HashMap;
use std::rc::Rc;

/// A record value (e.g. a parse-tree node for TreeLSTM) with named fields.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Field values by name.
    pub fields: HashMap<String, LValue>,
}

impl Record {
    /// Build a record from field pairs.
    pub fn new(fields: Vec<(&str, LValue)>) -> Rc<Record> {
        Rc::new(Record {
            fields: fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        })
    }
}

/// A value in the Lantern evaluator. Tensors carry an optional gradient
/// tape node id (None while evaluating forward-only).
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// A tensor (possibly tracked for AD).
    Tensor(Tensor, Option<usize>),
    /// A boolean (control decisions).
    Bool(bool),
    /// A record / tree node.
    Record(Rc<Record>),
    /// A tuple of values.
    Tuple(Vec<LValue>),
    /// Absent value (e.g. empty subtree).
    Unit,
}

impl LValue {
    /// Wrap an untracked tensor.
    pub fn tensor(t: Tensor) -> LValue {
        LValue::Tensor(t, None)
    }

    /// Wrap a scalar.
    pub fn scalar(v: f32) -> LValue {
        LValue::Tensor(Tensor::scalar_f32(v), None)
    }

    /// View as tensor.
    ///
    /// # Errors
    ///
    /// Fails when the value is not a tensor.
    pub fn as_tensor(&self) -> Result<&Tensor> {
        match self {
            LValue::Tensor(t, _) => Ok(t),
            other => Err(LanternError::new(format!(
                "expected tensor, got {}",
                other.kind()
            ))),
        }
    }

    /// View as bool.
    ///
    /// # Errors
    ///
    /// Fails when the value is not a boolean (scalar bool tensors are
    /// accepted).
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            LValue::Bool(b) => Ok(*b),
            LValue::Tensor(t, _) => t
                .scalar_value_bool()
                .map_err(|e| LanternError::new(e.to_string())),
            other => Err(LanternError::new(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }

    /// View as record.
    ///
    /// # Errors
    ///
    /// Fails when the value is not a record.
    pub fn as_record(&self) -> Result<&Rc<Record>> {
        match self {
            LValue::Record(r) => Ok(r),
            other => Err(LanternError::new(format!(
                "expected record, got {}",
                other.kind()
            ))),
        }
    }

    /// Kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            LValue::Tensor(..) => "tensor",
            LValue::Bool(_) => "bool",
            LValue::Record(_) => "record",
            LValue::Tuple(_) => "tuple",
            LValue::Unit => "unit",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let v = LValue::scalar(2.0);
        assert_eq!(v.as_tensor().unwrap().scalar_value_f32().unwrap(), 2.0);
        assert!(v.as_bool().is_err());
        assert!(LValue::Bool(true).as_bool().unwrap());
        assert!(LValue::Unit.as_tensor().is_err());
    }

    #[test]
    fn bool_from_tensor() {
        let v = LValue::tensor(Tensor::scalar_bool(true));
        assert!(v.as_bool().unwrap());
    }

    #[test]
    fn record_fields() {
        let r = Record::new(vec![
            ("is_empty", LValue::Bool(false)),
            ("value", LValue::scalar(3.0)),
        ]);
        let v = LValue::Record(r);
        let rec = v.as_record().unwrap();
        assert_eq!(
            rec.fields["value"]
                .as_tensor()
                .unwrap()
                .scalar_value_f32()
                .unwrap(),
            3.0
        );
    }
}
