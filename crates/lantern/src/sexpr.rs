//! S-expression reading and printing — the textual IR that AutoGraph's
//! Lantern staging context emits (§8: "The Lantern back-end converts
//! Lisp-like S-expressions describing numeric operations into efficient
//! C++ code").

use crate::{LanternError, Result};
use std::fmt;

/// A parsed S-expression.
#[derive(Debug, Clone, PartialEq)]
pub enum SExpr {
    /// A bare symbol.
    Sym(String),
    /// A numeric literal.
    Num(f64),
    /// A parenthesized list.
    List(Vec<SExpr>),
}

impl SExpr {
    /// Shorthand: build a list.
    pub fn list(items: Vec<SExpr>) -> SExpr {
        SExpr::List(items)
    }

    /// Shorthand: build a symbol.
    pub fn sym(s: impl Into<String>) -> SExpr {
        SExpr::Sym(s.into())
    }

    /// The symbol text, if this is a symbol.
    pub fn as_sym(&self) -> Option<&str> {
        match self {
            SExpr::Sym(s) => Some(s),
            _ => None,
        }
    }

    /// The list items, if this is a list.
    pub fn as_list(&self) -> Option<&[SExpr]> {
        match self {
            SExpr::List(items) => Some(items),
            _ => None,
        }
    }
}

impl fmt::Display for SExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SExpr::Sym(s) => f.write_str(s),
            SExpr::Num(n) => write!(f, "{n}"),
            SExpr::List(items) => {
                f.write_str("(")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" ")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str(")")
            }
        }
    }
}

/// Parse one S-expression from text.
///
/// # Errors
///
/// Fails on unbalanced parentheses, empty input or trailing garbage.
pub fn parse(text: &str) -> Result<SExpr> {
    let mut tokens = tokenize(text);
    let expr = parse_expr(&mut tokens)?;
    if tokens.peek().is_some() {
        return Err(LanternError::new("trailing tokens after S-expression"));
    }
    Ok(expr)
}

fn tokenize(text: &str) -> std::iter::Peekable<std::vec::IntoIter<String>> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    for c in text.chars() {
        match c {
            '(' | ')' => {
                if !cur.is_empty() {
                    tokens.push(std::mem::take(&mut cur));
                }
                tokens.push(c.to_string());
            }
            c if c.is_whitespace() => {
                if !cur.is_empty() {
                    tokens.push(std::mem::take(&mut cur));
                }
            }
            c => cur.push(c),
        }
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    tokens.into_iter().peekable()
}

fn parse_expr(tokens: &mut std::iter::Peekable<std::vec::IntoIter<String>>) -> Result<SExpr> {
    match tokens.next() {
        None => Err(LanternError::new("unexpected end of S-expression")),
        Some(t) if t == "(" => {
            let mut items = Vec::new();
            loop {
                match tokens.peek() {
                    None => return Err(LanternError::new("unbalanced '('")),
                    Some(t) if t == ")" => {
                        tokens.next();
                        break;
                    }
                    _ => items.push(parse_expr(tokens)?),
                }
            }
            Ok(SExpr::List(items))
        }
        Some(t) if t == ")" => Err(LanternError::new("unbalanced ')'")),
        Some(t) => match t.parse::<f64>() {
            Ok(n) => Ok(SExpr::Num(n)),
            Err(_) => Ok(SExpr::Sym(t)),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trip() {
        let src = "(mul (add x 1) (call f y))";
        let e = parse(src).unwrap();
        assert_eq!(e.to_string(), src);
    }

    #[test]
    fn numbers_and_symbols() {
        let e = parse("(f 1 2.5 -3 foo)").unwrap();
        let items = e.as_list().unwrap();
        assert_eq!(items[1], SExpr::Num(1.0));
        assert_eq!(items[2], SExpr::Num(2.5));
        assert_eq!(items[3], SExpr::Num(-3.0));
        assert_eq!(items[4].as_sym(), Some("foo"));
    }

    #[test]
    fn nested_depth() {
        let e = parse("(a (b (c (d))))").unwrap();
        assert_eq!(e.to_string(), "(a (b (c (d))))");
    }

    #[test]
    fn errors() {
        assert!(parse("(a b").is_err());
        assert!(parse("a)").is_err());
        assert!(parse("(a) b").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn whitespace_flexible() {
        let e = parse("  ( add\n x\t y )  ").unwrap();
        assert_eq!(e.to_string(), "(add x y)");
    }
}
