//! Lantern backend errors.

use std::fmt;

/// Error from parsing, compiling or evaluating Lantern IR.
#[derive(Debug, Clone, PartialEq)]
pub struct LanternError {
    /// What went wrong.
    pub message: String,
}

impl LanternError {
    /// New error.
    pub fn new(message: impl Into<String>) -> Self {
        LanternError {
            message: message.into(),
        }
    }
}

impl fmt::Display for LanternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lantern error: {}", self.message)
    }
}

impl std::error::Error for LanternError {}

impl From<autograph_tensor::TensorError> for LanternError {
    fn from(e: autograph_tensor::TensorError) -> Self {
        LanternError::new(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            LanternError::new("unbound symbol 'x'").to_string(),
            "lantern error: unbound symbol 'x'"
        );
    }
}
