//! # autograph-lantern
//!
//! The alternate staging back-end of §8: a Lantern-style IR that supports
//! features absent from the TensorFlow-graph IR — most importantly
//! **re-entrant (recursive) staged function calls** — enabling recursive
//! models like TreeLSTM.
//!
//! AutoGraph-converted code, staged with the Lantern context, emits
//! Lisp-like **S-expressions** ([`sexpr`]). Those are compiled
//! ([`compile`]) into a compact closure-free instruction tree with
//! pre-resolved variable slots and function indices, then evaluated
//! ([`eval`]) either forward-only or with reverse-mode automatic
//! differentiation.
//!
//! The original Lantern generates C++ with continuation-passing-style
//! backpropagation (`shift`/`reset`); here the continuations are reified
//! as a stack of backward closures executed after the forward pass — the
//! same computation in the same order, without a C++ toolchain in the
//! loop (see DESIGN.md, substitution table). What matters for the paper's
//! Table 3 is preserved: recursion in the IR, and evaluation that does not
//! pay per-node interpretation or dispatch overhead.
//!
//! ## Example
//!
//! ```
//! use autograph_lantern::{compile::Program, eval::Engine, sexpr::parse};
//!
//! // factorial, staged as a recursive IR function
//! let src = "(program \
//!   (def fact (n) (if (le n (scalar 1)) (scalar 1) (mul n (call fact (sub n (scalar 1)))))) \
//!   (call fact (extern n)))";
//! let program = Program::compile(&parse(src)?)?;
//! let engine = Engine::new(program);
//! let out = engine.run(&[("n", autograph_tensor::Tensor::scalar_f32(5.0))], &[])?;
//! assert_eq!(out.as_tensor()?.scalar_value_f32()?, 120.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod compile;
pub mod error;
pub mod eval;
pub mod sexpr;
pub mod value;

pub use compile::Program;
pub use error::LanternError;
pub use eval::Engine;
pub use value::LValue;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, LanternError>;
