//! # autograph-par
//!
//! A process-wide persistent worker pool shared by the graph scheduler
//! (inter-op parallelism: independent graph nodes dispatched as tasks)
//! and the tensor kernels (intra-op parallelism: [`parallel_for`] over
//! row/element ranges).
//!
//! ## Design
//!
//! * **One global injector queue.** Tasks from every concurrent run — the
//!   top-level wavefront, nested `While`/`Cond` bodies, data-parallel
//!   kernel chunks — share a single FIFO. Workers are spawned once
//!   ([`configure`]) and park on a condvar when idle.
//! * **Helping, not blocking.** A thread that must wait for a set of
//!   tasks to finish ([`help_until`]) pops and executes queued tasks —
//!   any run's tasks — instead of sleeping. This is what makes nested
//!   scheduling deadlock-free: whenever a run is incomplete, its
//!   remaining work is either queued (any helper can pick it up) or
//!   already executing on some thread, so global progress is guaranteed
//!   even when every worker is itself waiting on a nested run.
//! * **Determinism-friendly.** The pool imposes no ordering of its own;
//!   callers express ordering through their own dependency counts. A
//!   [`parallel_for`] chunk is computed by exactly one thread with the
//!   same per-element order as the sequential loop, so results are
//!   bitwise identical to a single-threaded run.
//!
//! Observability: every task execution opens a `par/task` span (visible
//! as per-worker lanes in Chrome traces via `autograph-obs`), and each
//! injection records the queue depth to the `par/queue_depth` gauge.
//! When a run report is being collected ([`meter_begin`]) the pool also
//! meters per-thread busy time and task counts plus ready-queue depth
//! statistics, exposed through [`pool_snapshot`]; when no meter is
//! active those paths cost one relaxed atomic load each.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use autograph_faults as faults;
use autograph_obs as obs;
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// A unit of work: an erased function pointer applied to an erased state
/// pointer plus a small integer argument (typically a node or chunk id).
///
/// `Task` is deliberately not a boxed closure: runs borrow stack-local
/// state (graph, value slots, dependency counters) and erase the lifetime
/// when injecting; the soundness contract is documented on [`inject`].
pub struct Task {
    /// Erased pointer to the run state shared by a batch of tasks.
    pub data: *const (),
    /// Per-task argument (node id, chunk index, ...).
    pub arg: usize,
    /// Entry point: called exactly once as `run(data, arg)`.
    pub run: unsafe fn(*const (), usize),
}

// SAFETY: a Task is only a (pointer, fn) pair; the pointee is required by
// the `inject` contract to be shareable across threads until the task has
// executed.
unsafe impl Send for Task {}

struct Shared {
    queue: Mutex<VecDeque<Task>>,
    cv: Condvar,
    /// Worker threads spawned so far (workers never exit).
    spawned: Mutex<usize>,
    /// Thread budget: the largest `configure(n)` seen, including the
    /// caller thread. Kernels consult this to decide whether splitting
    /// work pays.
    budget: AtomicUsize,
}

fn shared() -> &'static Shared {
    static S: OnceLock<Shared> = OnceLock::new();
    S.get_or_init(|| Shared {
        queue: Mutex::new(VecDeque::new()),
        cv: Condvar::new(),
        spawned: Mutex::new(0),
        budget: AtomicUsize::new(1),
    })
}

/// Lock a pool mutex, shrugging off poisoning: pool state is only
/// mutated under the lock by straight-line code (no panics mid-update),
/// so a poisoned guard's contents are always consistent.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Number of hardware threads, with a floor of 1.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Current thread budget (1 = parallelism disabled). Monotonic: the
/// largest value ever passed to [`configure`].
pub fn threads() -> usize {
    shared().budget.load(Ordering::Relaxed).max(1)
}

/// Raise the pool's thread budget to `threads` (total, including the
/// calling thread) and spawn workers up to `threads - 1`. Budgets only
/// grow; `configure(1)` is a no-op. Workers are persistent — they park
/// when the queue is empty and are reused by every subsequent run.
pub fn configure(threads: usize) {
    let threads = threads.max(1);
    let s = shared();
    s.budget.fetch_max(threads, Ordering::Relaxed);
    let mut spawned = lock_unpoisoned(&s.spawned);
    while *spawned + 1 < threads {
        let idx = *spawned;
        let worker = std::thread::Builder::new()
            .name(format!("par-worker-{idx}"))
            .spawn(move || worker_loop(idx));
        if worker.is_err() {
            // can't get more OS threads: run degraded — callers always
            // help drain the queue themselves, so progress is unaffected
            obs::count("par", "spawn_failures", 1);
            break;
        }
        *spawned += 1;
    }
}

fn worker_loop(_idx: usize) {
    let s = shared();
    loop {
        let task = {
            let mut q = lock_unpoisoned(&s.queue);
            loop {
                if let Some(t) = q.pop_front() {
                    break t;
                }
                q = match s.cv.wait_timeout(q, Duration::from_millis(100)) {
                    Ok((guard, _)) => guard,
                    Err(poisoned) => poisoned.into_inner().0,
                };
            }
        };
        run_task(task);
    }
}

thread_local! {
    /// Task nesting depth on this thread: a task that waits by helping
    /// (`help_until`) runs further tasks *inside* its own execution.
    static TASK_DEPTH: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

fn run_task(task: Task) {
    let _span = obs::span("par", "task");
    let depth = TASK_DEPTH.with(|d| {
        let v = d.get();
        d.set(v + 1);
        v
    });
    // busy time is measured only for the outermost task on each thread:
    // nested tasks (run while helping) already elapse inside it, and
    // counting both would double-bill the thread beyond wall time
    let meter_start = if metering() && depth == 0 {
        Some(Instant::now())
    } else {
        None
    };
    // chaos-test hook: delay rules perturb task timing (never values);
    // one relaxed atomic load when no fault plan is installed
    faults::scheduler_delay("par", "task");
    // The pool must survive a panicking task: without this boundary a
    // panic would kill the worker thread (shrinking the pool forever) or
    // unwind through an unrelated caller helping from `help_until`.
    // Run-level bookkeeping is the task entry's job — both schedulers'
    // entries catch panics themselves and record a structured failure, so
    // a payload reaching this backstop has already been accounted for.
    let r = catch_unwind(AssertUnwindSafe(|| {
        // SAFETY: upheld by the `inject` caller — the task state is alive
        // and shareable until the task completes.
        unsafe { (task.run)(task.data, task.arg) };
    }));
    if r.is_err() {
        obs::count("par", "task_panics", 1);
    }
    if metering() {
        let stats = my_worker_stats();
        if let Some(t0) = meter_start {
            stats
                .busy_ns
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        stats.tasks.fetch_add(1, Ordering::Relaxed);
    }
    TASK_DEPTH.with(|d| d.set(d.get() - 1));
}

// ---- metering --------------------------------------------------------------

/// Per-thread task-execution statistics, registered lazily the first
/// time a thread runs a metered task.
struct WorkerStats {
    label: String,
    busy_ns: AtomicU64,
    tasks: AtomicU64,
}

#[derive(Default)]
struct MeterShared {
    /// One entry per thread that has ever executed a metered task
    /// (spawned workers and helping caller threads alike).
    workers: Mutex<Vec<Arc<WorkerStats>>>,
    queue_depth_max: AtomicU64,
    queue_depth_sum: AtomicU64,
    queue_samples: AtomicU64,
    injected_tasks: AtomicU64,
}

/// Nesting count of active meters; metering is on while any session or
/// harness holds a registration.
static METERING: AtomicUsize = AtomicUsize::new(0);

fn meter_shared() -> &'static MeterShared {
    static M: OnceLock<MeterShared> = OnceLock::new();
    M.get_or_init(MeterShared::default)
}

/// Whether pool metering is active — one relaxed atomic load.
#[inline(always)]
pub fn metering() -> bool {
    METERING.load(Ordering::Relaxed) > 0
}

/// Enable pool metering (ref-counted, so concurrent reporting sessions
/// compose). Pair with [`meter_end`].
pub fn meter_begin() {
    METERING.fetch_add(1, Ordering::Relaxed);
}

/// Release one metering registration.
pub fn meter_end() {
    METERING.fetch_sub(1, Ordering::Relaxed);
}

fn my_worker_stats() -> Arc<WorkerStats> {
    thread_local! {
        static MINE: std::cell::OnceCell<Arc<WorkerStats>> = const { std::cell::OnceCell::new() };
    }
    MINE.with(|cell| {
        Arc::clone(cell.get_or_init(|| {
            let label = std::thread::current()
                .name()
                .map(str::to_string)
                .unwrap_or_else(|| format!("caller-{}", obs::thread_lane()));
            let stats = Arc::new(WorkerStats {
                label,
                busy_ns: AtomicU64::new(0),
                tasks: AtomicU64::new(0),
            });
            lock_unpoisoned(&meter_shared().workers).push(Arc::clone(&stats));
            stats
        }))
    })
}

/// One thread's cumulative metered totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerSnapshot {
    /// Thread label (`par-worker-N` for pool workers, the thread name
    /// or `caller-<lane>` for helping threads).
    pub label: String,
    /// Nanoseconds spent executing tasks while metering was on.
    pub busy_ns: u64,
    /// Tasks executed while metering was on.
    pub tasks: u64,
}

/// Point-in-time metering totals; diff two snapshots to get a run's
/// worth of busy time, task counts and queue pressure.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolSnapshot {
    /// Per-thread totals, in registration order.
    pub workers: Vec<WorkerSnapshot>,
    /// Largest queue depth seen at injection.
    pub queue_depth_max: u64,
    /// Sum of queue depths sampled at each injection.
    pub queue_depth_sum: u64,
    /// Number of depth samples (injections while metered).
    pub queue_samples: u64,
    /// Tasks injected while metered.
    pub injected_tasks: u64,
}

/// Snapshot the cumulative metering counters. Cheap (a short lock plus
/// relaxed loads); counters only advance while metering is enabled.
pub fn pool_snapshot() -> PoolSnapshot {
    let m = meter_shared();
    let workers = lock_unpoisoned(&m.workers)
        .iter()
        .map(|w| WorkerSnapshot {
            label: w.label.clone(),
            busy_ns: w.busy_ns.load(Ordering::Relaxed),
            tasks: w.tasks.load(Ordering::Relaxed),
        })
        .collect();
    PoolSnapshot {
        workers,
        queue_depth_max: m.queue_depth_max.load(Ordering::Relaxed),
        queue_depth_sum: m.queue_depth_sum.load(Ordering::Relaxed),
        queue_samples: m.queue_samples.load(Ordering::Relaxed),
        injected_tasks: m.injected_tasks.load(Ordering::Relaxed),
    }
}

/// Push tasks onto the global queue and wake workers.
///
/// # Safety
///
/// For every task, `data` must point to state that (a) may be shared
/// across threads (`Sync`-like access discipline), and (b) outlives the
/// task's execution. The canonical pattern: the injecting thread keeps
/// the state alive on its stack and calls [`help_until`] with a predicate
/// that only becomes true after every injected task has finished running.
pub unsafe fn inject<I: IntoIterator<Item = Task>>(tasks: I) {
    let s = shared();
    let depth;
    let before;
    {
        let mut q = lock_unpoisoned(&s.queue);
        before = q.len() as u64;
        q.extend(tasks);
        depth = q.len() as u64;
    }
    obs::observe("par", "queue_depth", depth);
    if metering() {
        let m = meter_shared();
        m.queue_depth_max.fetch_max(depth, Ordering::Relaxed);
        m.queue_depth_sum.fetch_add(depth, Ordering::Relaxed);
        m.queue_samples.fetch_add(1, Ordering::Relaxed);
        m.injected_tasks
            .fetch_add(depth - before, Ordering::Relaxed);
    }
    s.cv.notify_all();
}

/// Pop and execute one queued task, if any. Returns whether a task ran.
pub fn try_run_one() -> bool {
    let task = lock_unpoisoned(&shared().queue).pop_front();
    match task {
        Some(t) => {
            run_task(t);
            true
        }
        None => false,
    }
}

/// Execute queued tasks until `done()` is true, yielding when the queue
/// is empty. This is the "wait by helping" primitive: callers never block
/// on in-flight work, they contribute to draining the queue, which makes
/// nested fork-join on the shared pool deadlock-free.
pub fn help_until(done: impl Fn() -> bool) {
    while !done() {
        if !try_run_one() {
            std::thread::yield_now();
        }
    }
}

/// Data-parallel for-loop over `0..n`, splitting into chunks of at least
/// `grain` items. Falls back to a plain sequential loop when the budget
/// is 1 or the range is too small to split. Each chunk is processed by
/// exactly one thread in ascending index order, so any output written
/// per-index is bitwise identical to the sequential loop.
///
/// Blocks until every chunk has completed. `body` may be called
/// concurrently from several threads with disjoint ranges.
pub fn parallel_for(n: usize, grain: usize, body: &(dyn Fn(Range<usize>) + Sync)) {
    let grain = grain.max(1);
    let t = threads();
    if t <= 1 || n <= grain {
        if n > 0 {
            body(0..n);
        }
        return;
    }
    // enough chunks for load balance, each at least `grain` items
    let chunk = grain.max(n.div_ceil(t * 4));
    let nchunks = n.div_ceil(chunk);

    struct ForJob<'a> {
        body: &'a (dyn Fn(Range<usize>) + Sync),
        n: usize,
        chunk: usize,
        nchunks: usize,
        next: AtomicUsize,
        live: AtomicUsize,
        /// Set when any chunk's body panicked; stops further claiming.
        panicked: AtomicBool,
        /// First captured panic payload, re-thrown on the calling thread.
        payload: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    }
    /// Claim and run chunks. Panic-safe: a panicking body marks the job
    /// failed and stores its payload instead of unwinding, so `live`
    /// bookkeeping below never deadlocks and sibling workers survive.
    fn claim(job: &ForJob<'_>) {
        loop {
            if job.panicked.load(Ordering::Acquire) {
                break;
            }
            let c = job.next.fetch_add(1, Ordering::Relaxed);
            if c >= job.nchunks {
                break;
            }
            let start = c * job.chunk;
            let range = start..(start + job.chunk).min(job.n);
            if let Err(p) = catch_unwind(AssertUnwindSafe(|| (job.body)(range))) {
                if let Ok(mut slot) = job.payload.lock() {
                    if slot.is_none() {
                        *slot = Some(p);
                    }
                }
                job.panicked.store(true, Ordering::Release);
                break;
            }
        }
    }
    unsafe fn entry(data: *const (), _arg: usize) {
        // SAFETY: `data` points at the ForJob on the injecting thread's
        // stack, kept alive until `live` reaches zero below. `claim`
        // cannot unwind, so the decrement always runs.
        let job = unsafe { &*(data as *const ForJob<'_>) };
        claim(job);
        job.live.fetch_sub(1, Ordering::Release);
    }

    let helpers = (t - 1).min(nchunks - 1);
    let job = ForJob {
        body,
        n,
        chunk,
        nchunks,
        next: AtomicUsize::new(0),
        live: AtomicUsize::new(helpers),
        panicked: AtomicBool::new(false),
        payload: Mutex::new(None),
    };
    // SAFETY: `job` lives on this stack frame; we do not return until
    // every helper task has decremented `live`, i.e. finished executing.
    unsafe {
        inject((0..helpers).map(|i| Task {
            data: &job as *const ForJob<'_> as *const (),
            arg: i,
            run: entry,
        }));
    }
    claim(&job);
    help_until(|| job.live.load(Ordering::Acquire) == 0);
    // re-throw the first body panic on the caller — same observable
    // behavior as the sequential loop, and the caller's catch_unwind
    // boundary (the graph executor's) converts it to a structured error
    let payload = job.payload.lock().unwrap_or_else(|p| p.into_inner()).take();
    if let Some(p) = payload {
        resume_unwind(p);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn sequential_fallback_when_unconfigured() {
        // budget may already be >1 if another test configured the pool;
        // a small n still runs inline
        let hits = AtomicU64::new(0);
        parallel_for(3, 8, &|r| {
            hits.fetch_add((r.end - r.start) as u64, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn parallel_for_covers_every_index_once() {
        configure(4);
        let n = 100_000;
        let slots: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        parallel_for(n, 1024, &|r| {
            for i in r {
                slots[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(slots.iter().all(|s| s.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_matches_sequential_bitwise() {
        configure(4);
        let n = 65_536;
        let f = |i: usize| ((i as f32) * 0.3).sin() * ((i as f32) + 1.0).sqrt();
        let mut seq = vec![0.0f32; n];
        for (i, s) in seq.iter_mut().enumerate() {
            *s = f(i);
        }
        let mut par = vec![0.0f32; n];
        let ptr = par.as_mut_ptr() as usize;
        parallel_for(n, 512, &|r| {
            for i in r {
                // SAFETY: disjoint ranges, each index written exactly once
                unsafe { *(ptr as *mut f32).add(i) = f(i) };
            }
        });
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn nested_parallel_for_does_not_deadlock() {
        configure(4);
        let total = AtomicU64::new(0);
        parallel_for(16, 1, &|outer| {
            for _ in outer {
                parallel_for(64, 4, &|inner| {
                    total.fetch_add((inner.end - inner.start) as u64, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 16 * 64);
    }

    /// Regression for pool poisoning: a panicking `parallel_for` body must
    /// (a) propagate the panic to the caller and (b) leave the worker pool
    /// fully functional for subsequent runs. Before panic isolation, the
    /// unwound helper skipped its `live` decrement and the caller hung in
    /// `help_until` forever.
    #[test]
    fn pool_survives_panicking_bodies_repeatedly() {
        // the expected panics fire on pool threads, whose stderr libtest
        // cannot capture — silence just those to keep test output readable
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let silent = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains("injected body panic"));
            if !silent {
                prev(info);
            }
        }));
        configure(4);
        let n = 4096;
        for iter in 0..50 {
            let r = catch_unwind(AssertUnwindSafe(|| {
                parallel_for(n, 16, &|r| {
                    for i in r {
                        if i == 1234 {
                            panic!("injected body panic (iter {iter})");
                        }
                    }
                });
            }));
            assert!(r.is_err(), "body panic must reach the caller");
            // the pool must still run a clean job to completion, covering
            // every index exactly once
            let slots: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            parallel_for(n, 16, &|r| {
                for i in r {
                    slots[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(slots.iter().all(|s| s.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn metering_accumulates_busy_time_and_tasks() {
        configure(4);
        meter_begin();
        let before = pool_snapshot();
        parallel_for(50_000, 256, &|r| {
            let mut acc = 0.0f64;
            for i in r {
                acc += (i as f64).sqrt();
            }
            std::hint::black_box(acc);
        });
        let after = pool_snapshot();
        meter_end();
        let tasks_before: u64 = before.workers.iter().map(|w| w.tasks).sum();
        let tasks_after: u64 = after.workers.iter().map(|w| w.tasks).sum();
        assert!(
            tasks_after > tasks_before,
            "helper tasks ran while metered: {tasks_before} -> {tasks_after}"
        );
        assert!(after.injected_tasks > before.injected_tasks);
        assert!(after.queue_samples > before.queue_samples);
        assert!(!after.workers.is_empty());
    }

    #[test]
    fn budget_is_monotonic() {
        configure(2);
        configure(1);
        assert!(threads() >= 2);
    }
}
