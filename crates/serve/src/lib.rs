//! Resilient graph serving for AutoGraph: a std-only HTTP/JSON server
//! that stages a PyLite program once per content hash and serves
//! concurrent `POST /run/<fn>` requests against the shared immutable
//! plans — with admission control, deadline propagation, load shedding,
//! per-function circuit breakers, graceful drain, and opportunistic
//! dynamic batching.
//!
//! The serving pipeline (each `→` is a module):
//!
//! ```text
//! HTTP bytes → http → json (wire tensors) → admission (shed or queue)
//!            → server workers → batch? → registry sessions → graph run
//! ```
//!
//! See `DESIGN.md` §"Serving & overload behavior" for the policy
//! rationale and `README.md` for the curl-able quickstart.

#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod admission;
pub mod batch;
pub mod breaker;
pub mod client;
pub mod error;
pub mod http;
pub mod json;
pub mod prom;
pub mod registry;
pub mod server;
pub mod telemetry;

pub use error::ServeError;
pub use registry::{reset_stage_memo, ModelRegistry, RegistryConfig};
pub use server::{DrainReport, Server, ServerConfig};
pub use telemetry::{RequestTrace, Telemetry, TelemetryConfig};
