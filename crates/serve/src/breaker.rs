//! A per-function circuit breaker: consecutive execution failures trip
//! the function into fast-fail, which costs one mutex lock instead of a
//! doomed graph run; after a cooldown a single half-open probe is let
//! through, and the cooldown doubles on every failed probe (capped).
//!
//! Policy notes:
//!
//! * Only **execution** failures count ([`crate::error::ServeError::trips_breaker`]):
//!   kernel faults and isolated panics. Deadline expiry, cancellation,
//!   and shedding are client-budget outcomes and leave the breaker
//!   untouched — a burst of impatient clients must not blacklist a
//!   healthy function.
//! * Failures count *consecutively*; any success resets the streak.
//!   Input-dependent errors therefore can trip the breaker under a
//!   stream of poisoned requests — by design: the fast-fail response is
//!   identical to the slow one, just cheaper, and the half-open probe
//!   re-admits real traffic the moment a request succeeds.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The admission decision for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admit {
    /// Closed (or a successful probe re-closed it): run normally.
    Yes,
    /// Half-open: this request is the probe. The caller MUST report the
    /// outcome via `on_success`/`on_failure`, otherwise the breaker
    /// stays half-open and keeps fast-failing everyone else.
    Probe,
    /// Open: fast-fail with the given retry hint.
    No {
        /// Time until the next probe slot.
        retry_after: Duration,
    },
}

#[derive(Debug)]
enum State {
    Closed {
        consecutive_failures: u32,
    },
    Open {
        until: Instant,
        cooldown: Duration,
    },
    /// A probe is in flight; everyone else fast-fails until it reports.
    HalfOpen {
        cooldown: Duration,
    },
}

/// The breaker. One per staged function.
#[derive(Debug)]
pub struct CircuitBreaker {
    state: Mutex<State>,
    threshold: u32,
    base_cooldown: Duration,
    max_cooldown: Duration,
}

impl CircuitBreaker {
    /// `threshold` consecutive failures trip the breaker; the first
    /// cooldown is `base_cooldown`, doubling per failed probe up to
    /// `max_cooldown`.
    pub fn new(threshold: u32, base_cooldown: Duration, max_cooldown: Duration) -> CircuitBreaker {
        CircuitBreaker {
            state: Mutex::new(State::Closed {
                consecutive_failures: 0,
            }),
            threshold: threshold.max(1),
            base_cooldown,
            max_cooldown,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Decide whether a request may execute.
    pub fn admit(&self) -> Admit {
        let mut st = self.lock();
        match &*st {
            State::Closed { .. } => Admit::Yes,
            State::HalfOpen { cooldown } => Admit::No {
                retry_after: *cooldown,
            },
            State::Open { until, cooldown } => {
                let now = Instant::now();
                if now >= *until {
                    let cd = *cooldown;
                    *st = State::HalfOpen { cooldown: cd };
                    Admit::Probe
                } else {
                    Admit::No {
                        retry_after: *until - now,
                    }
                }
            }
        }
    }

    /// Report a successful execution: closes from any state.
    pub fn on_success(&self) {
        *self.lock() = State::Closed {
            consecutive_failures: 0,
        };
    }

    /// Report a failed execution (only for failures where
    /// `ServeError::trips_breaker` holds).
    pub fn on_failure(&self) {
        let mut st = self.lock();
        match &*st {
            State::Closed {
                consecutive_failures,
            } => {
                let n = consecutive_failures + 1;
                if n >= self.threshold {
                    *st = State::Open {
                        until: Instant::now() + self.base_cooldown,
                        cooldown: self.base_cooldown,
                    };
                } else {
                    *st = State::Closed {
                        consecutive_failures: n,
                    };
                }
            }
            State::HalfOpen { cooldown } => {
                // failed probe: exponential backoff
                let next = (*cooldown * 2).min(self.max_cooldown);
                *st = State::Open {
                    until: Instant::now() + next,
                    cooldown: next,
                };
            }
            State::Open { .. } => {}
        }
    }

    /// Whether the breaker is currently open or probing (for `/stats`).
    pub fn is_open(&self) -> bool {
        !matches!(&*self.lock(), State::Closed { .. })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn breaker(threshold: u32, base_ms: u64) -> CircuitBreaker {
        CircuitBreaker::new(
            threshold,
            Duration::from_millis(base_ms),
            Duration::from_millis(base_ms * 8),
        )
    }

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let b = breaker(3, 20);
        b.on_failure();
        b.on_failure();
        assert_eq!(b.admit(), Admit::Yes, "below threshold stays closed");
        b.on_failure();
        assert!(matches!(b.admit(), Admit::No { .. }), "tripped at 3");
        assert!(b.is_open());
    }

    #[test]
    fn success_resets_the_streak() {
        let b = breaker(2, 20);
        b.on_failure();
        b.on_success();
        b.on_failure();
        assert_eq!(b.admit(), Admit::Yes);
    }

    #[test]
    fn half_open_probe_then_close_on_success() {
        let b = breaker(1, 10);
        b.on_failure();
        assert!(matches!(b.admit(), Admit::No { .. }));
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(b.admit(), Admit::Probe, "cooldown elapsed: one probe");
        assert!(
            matches!(b.admit(), Admit::No { .. }),
            "only one probe at a time"
        );
        b.on_success();
        assert_eq!(b.admit(), Admit::Yes);
        assert!(!b.is_open());
    }

    #[test]
    fn failed_probe_doubles_cooldown_up_to_cap() {
        let b = breaker(1, 10);
        b.on_failure(); // open, cooldown 10
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(b.admit(), Admit::Probe);
        b.on_failure(); // reopen, cooldown 20
        match b.admit() {
            Admit::No { retry_after } => {
                assert!(retry_after > Duration::from_millis(10), "{retry_after:?}")
            }
            other => panic!("{other:?}"),
        }
        // drive to the cap
        for _ in 0..6 {
            std::thread::sleep(Duration::from_millis(85));
            if let Admit::Probe = b.admit() {
                b.on_failure();
            }
        }
        match b.admit() {
            Admit::No { retry_after } => {
                assert!(retry_after <= Duration::from_millis(80), "{retry_after:?}")
            }
            Admit::Probe => {} // cap small enough that it elapsed — fine
            other => panic!("{other:?}"),
        }
    }
}
