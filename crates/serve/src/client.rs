//! A minimal blocking HTTP/1.1 client with keep-alive — just enough to
//! drive the server from the loadgen and the integration tests without
//! pulling in a real HTTP stack.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// One response.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Lower-cased header names with values.
    pub headers: Vec<(String, String)>,
    /// The body.
    pub body: Vec<u8>,
}

impl Response {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == lower)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A keep-alive connection to the server.
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Client {
    /// Connect.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            buf: Vec::new(),
        })
    }

    /// `POST /run/<fn>` with a JSON body and optional deadline header.
    ///
    /// # Errors
    ///
    /// Propagates socket errors and protocol violations.
    pub fn run(
        &mut self,
        function: &str,
        body: &str,
        deadline_ms: Option<u64>,
    ) -> io::Result<Response> {
        let extra = deadline_ms
            .map(|ms| format!("X-Deadline-Ms: {ms}\r\n"))
            .unwrap_or_default();
        self.request("POST", &format!("/run/{function}"), &extra, body)
    }

    /// An arbitrary request on the kept-alive connection.
    ///
    /// # Errors
    ///
    /// Propagates socket errors and protocol violations.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        extra_headers: &str,
        body: &str,
    ) -> io::Result<Response> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: serve\r\nContent-Length: {}\r\n{extra_headers}\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body.as_bytes())?;
        self.stream.flush()?;
        self.read_response()
    }

    /// Half-close the write side (provokes the server's peer-closed
    /// detection without dropping the read side).
    ///
    /// # Errors
    ///
    /// Propagates shutdown failures.
    pub fn shutdown_write(&mut self) -> io::Result<()> {
        self.stream.shutdown(std::net::Shutdown::Write)
    }

    fn fill(&mut self) -> io::Result<usize> {
        let mut chunk = [0u8; 4096];
        let n = self.stream.read(&mut chunk)?;
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(n)
    }

    fn read_response(&mut self) -> io::Result<Response> {
        let head_end = loop {
            if let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            if self.fill()? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF before response head",
                ));
            }
        };
        let head = String::from_utf8_lossy(&self.buf[..head_end]).into_owned();
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or("");
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad status line '{status_line}'"),
                )
            })?;
        let mut headers = Vec::new();
        for line in lines {
            if let Some((k, v)) = line.split_once(':') {
                headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
            }
        }
        let content_length: usize = headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(0);
        let body_start = head_end + 4;
        while self.buf.len() < body_start + content_length {
            if self.fill()? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF mid response body",
                ));
            }
        }
        let body = self.buf[body_start..body_start + content_length].to_vec();
        self.buf.drain(..body_start + content_length);
        Ok(Response {
            status,
            headers,
            body,
        })
    }
}

/// Poll `GET /healthz` until the server answers or `timeout` elapses.
/// Used by tests and `ci.sh` to sequence "server up, start load".
pub fn wait_ready(addr: &str, timeout: Duration) -> bool {
    let t0 = Instant::now();
    while t0.elapsed() < timeout {
        if let Ok(mut c) = Client::connect(addr) {
            if let Ok(resp) = c.request("GET", "/healthz", "", "") {
                if resp.status == 200 {
                    return true;
                }
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    false
}
