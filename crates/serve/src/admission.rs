//! Admission control: the bounded queue between connection threads and
//! executor workers, and the shed policy that keeps the server's latency
//! bounded under overload.
//!
//! ## Shed math
//!
//! Let `q` be the queue depth at arrival, `s` the EWMA service time of
//! the requested function, and `w` the number of workers. A new request
//! can expect to wait about `q·s/w` before a worker picks it up, then
//! run for about `s`. Admission refuses the request — **before** it
//! consumes queue space — when:
//!
//! * the queue is at capacity (`q ≥ max_depth`), or
//! * the request carries a deadline and `now + q·s/w + s` lands past
//!   it (`predicted_late`): the work would be wasted, so refuse now
//!   while the client can still retry elsewhere.
//!
//! Shed responses are `503` with `Retry-After` set from the predicted
//! drain time, so well-behaved clients back off proportionally to the
//! actual overload. Workers additionally drop requests whose deadline
//! expired *while queued* (`expired_in_queue`) — prediction is an
//! estimate; the deadline check at dequeue is exact.

use crate::error::ServeError;
use crate::registry::FnEntry;
use crate::telemetry::RequestTrace;
use autograph_graph::run::CancelToken;
use autograph_tensor::Tensor;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::SyncSender;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// One admitted request waiting for (or being handed to) a worker.
pub struct Job {
    /// The staged function to run.
    pub entry: Arc<FnEntry>,
    /// Decoded positional arguments.
    pub args: Vec<Tensor>,
    /// When the job entered the queue.
    pub enqueued: Instant,
    /// Absolute deadline (from `X-Deadline-Ms`, else the server default).
    pub deadline: Instant,
    /// Cancelled when the client disconnects.
    pub cancel: CancelToken,
    /// Where the worker sends the outcome; the connection thread blocks
    /// on the other end.
    pub resp: SyncSender<Result<Vec<Tensor>, ServeError>>,
    /// The request's trace context (id + sampled span collection).
    pub trace: Arc<RequestTrace>,
}

impl Job {
    /// Deadline budget left right now (zero when already expired).
    pub fn remaining(&self) -> Duration {
        self.deadline.saturating_duration_since(Instant::now())
    }
}

/// Running shed/admission counters (monotonic; exported via `/stats`).
#[derive(Default)]
pub struct AdmissionStats {
    /// Requests admitted into the queue.
    pub admitted: AtomicU64,
    /// Requests refused because the queue was full.
    pub shed_queue_full: AtomicU64,
    /// Requests refused because the predicted wait blew the deadline.
    pub shed_predicted_late: AtomicU64,
    /// Requests dropped at dequeue because the deadline had already
    /// expired while queued.
    pub expired_in_queue: AtomicU64,
    /// Requests refused because the server is draining.
    pub rejected_draining: AtomicU64,
}

struct Inner {
    queue: VecDeque<Job>,
    draining: bool,
}

/// The bounded admission queue.
pub struct AdmissionQueue {
    inner: Mutex<Inner>,
    nonempty: Condvar,
    max_depth: usize,
    workers: usize,
    /// Counters, shared with `/stats`.
    pub stats: AdmissionStats,
}

impl AdmissionQueue {
    /// A queue holding at most `max_depth` jobs, drained by `workers`
    /// executor threads (the worker count parameterizes the wait
    /// prediction, it does not spawn anything).
    pub fn new(max_depth: usize, workers: usize) -> AdmissionQueue {
        AdmissionQueue {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                draining: false,
            }),
            nonempty: Condvar::new(),
            max_depth: max_depth.max(1),
            workers: workers.max(1),
            stats: AdmissionStats::default(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Admit `job` or shed it. On `Err` the job's response channel is
    /// given the error; the caller only has to write the HTTP response.
    pub fn try_admit(&self, job: Job) -> Result<(), ServeError> {
        if let Err(fault) = autograph_faults::inject("serve", "admission") {
            autograph_obs::count("serve", "fault_admission", 1);
            return Err(ServeError::Shed {
                reason: format!("injected fault: {fault}"),
                retry_after_ms: 10,
            });
        }
        let mut inner = self.lock();
        if inner.draining {
            self.stats.rejected_draining.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Draining);
        }
        let q = inner.queue.len();
        if q >= self.max_depth {
            self.stats.shed_queue_full.fetch_add(1, Ordering::Relaxed);
            autograph_obs::count("serve", "shed_queue_full", 1);
            return Err(ServeError::Shed {
                reason: "queue_full".to_string(),
                retry_after_ms: self.predicted_drain_ms(&job, q),
            });
        }
        let service_ns = job.entry.ewma_service_ns.load(Ordering::Relaxed);
        if service_ns > 0 {
            // wait ≈ q·s/w, then the run itself takes ≈ s
            let predicted_ns =
                (q as u64).saturating_mul(service_ns) / self.workers as u64 + service_ns;
            if Duration::from_nanos(predicted_ns) > job.remaining() {
                self.stats
                    .shed_predicted_late
                    .fetch_add(1, Ordering::Relaxed);
                autograph_obs::count("serve", "shed_predicted_late", 1);
                return Err(ServeError::Shed {
                    reason: "predicted_late".to_string(),
                    retry_after_ms: self.predicted_drain_ms(&job, q),
                });
            }
        }
        self.stats.admitted.fetch_add(1, Ordering::Relaxed);
        autograph_obs::count("serve", "admitted", 1);
        autograph_obs::observe("serve", "queue_depth", (q + 1) as u64);
        inner.queue.push_back(job);
        drop(inner);
        self.nonempty.notify_one();
        Ok(())
    }

    /// `Retry-After` hint: about how long until the current queue drains.
    fn predicted_drain_ms(&self, job: &Job, q: usize) -> u64 {
        let service_ns = job.entry.ewma_service_ns.load(Ordering::Relaxed).max(1);
        let drain_ns = (q as u64).saturating_mul(service_ns) / self.workers as u64;
        (drain_ns / 1_000_000).max(1)
    }

    /// Block until a job is available. Returns `None` when the queue is
    /// draining and empty — the worker's signal to exit. Jobs whose
    /// deadline expired in the queue are answered 504 here and skipped.
    pub fn pop(&self) -> Option<Job> {
        let mut inner = self.lock();
        loop {
            if let Some(job) = inner.queue.pop_front() {
                if job.remaining() == Duration::ZERO && !job.cancel.is_cancelled() {
                    self.stats.expired_in_queue.fetch_add(1, Ordering::Relaxed);
                    autograph_obs::count("serve", "expired_in_queue", 1);
                    let waited = job.enqueued.elapsed();
                    let _ = job.resp.try_send(Err(ServeError::Shed {
                        reason: format!("expired_in_queue after {}ms", waited.as_millis()),
                        retry_after_ms: 50,
                    }));
                    continue;
                }
                return Some(job);
            }
            if inner.draining {
                return None;
            }
            inner = self
                .nonempty
                .wait_timeout(inner, Duration::from_millis(50))
                .map(|(g, _)| g)
                .unwrap_or_else(|p| p.into_inner().0);
        }
    }

    /// Pull up to `limit` additional queued jobs for the same function
    /// that are compatible with `probe` under the given predicate —
    /// the batcher's harvesting step. Jobs that fail the predicate stay
    /// queued in order.
    pub fn take_compatible(
        &self,
        probe: &Job,
        limit: usize,
        compatible: impl Fn(&Job) -> bool,
    ) -> Vec<Job> {
        let mut inner = self.lock();
        let mut taken = Vec::new();
        let mut i = 0;
        while i < inner.queue.len() && taken.len() < limit {
            let candidate = &inner.queue[i];
            if Arc::ptr_eq(&candidate.entry, &probe.entry)
                && candidate.remaining() > Duration::ZERO
                && !candidate.cancel.is_cancelled()
                && compatible(candidate)
            {
                if let Some(job) = inner.queue.remove(i) {
                    taken.push(job);
                    continue; // index i now holds the next element
                }
            }
            i += 1;
        }
        taken
    }

    /// Flip to draining: admission refuses new work, workers exit once
    /// the queue empties.
    pub fn start_drain(&self) {
        self.lock().draining = true;
        self.nonempty.notify_all();
    }

    /// Whether drain has been requested.
    pub fn is_draining(&self) -> bool {
        self.lock().draining
    }

    /// Current queue depth.
    pub fn depth(&self) -> usize {
        self.lock().queue.len()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::registry::{ModelRegistry, RegistryConfig};
    use std::sync::mpsc::sync_channel;

    fn test_entry() -> Arc<FnEntry> {
        let reg =
            ModelRegistry::load("def idq(x):\n    return x\n", &RegistryConfig::default()).unwrap();
        Arc::clone(reg.get("idq").unwrap())
    }

    fn job(entry: &Arc<FnEntry>, deadline: Duration) -> Job {
        let (tx, _rx) = sync_channel(1);
        Job {
            entry: Arc::clone(entry),
            args: vec![Tensor::scalar_f32(1.0)],
            enqueued: Instant::now(),
            deadline: Instant::now() + deadline,
            cancel: CancelToken::new(),
            resp: tx,
            trace: RequestTrace::detached("test"),
        }
    }

    #[test]
    fn admits_until_full_then_sheds() {
        let entry = test_entry();
        let q = AdmissionQueue::new(2, 1);
        assert!(q.try_admit(job(&entry, Duration::from_secs(5))).is_ok());
        assert!(q.try_admit(job(&entry, Duration::from_secs(5))).is_ok());
        match q.try_admit(job(&entry, Duration::from_secs(5))) {
            Err(ServeError::Shed { reason, .. }) => assert_eq!(reason, "queue_full"),
            other => panic!("expected shed, got {other:?}"),
        }
        assert_eq!(q.stats.shed_queue_full.load(Ordering::Relaxed), 1);
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn sheds_predicted_late_requests() {
        let entry = test_entry();
        entry.record_service_ns(50_000_000); // 50ms per run
        let q = AdmissionQueue::new(64, 1);
        for _ in 0..4 {
            assert!(q.try_admit(job(&entry, Duration::from_secs(5))).is_ok());
        }
        // 4 queued × 50ms + 50ms run ≫ 10ms budget
        match q.try_admit(job(&entry, Duration::from_millis(10))) {
            Err(ServeError::Shed { reason, .. }) => assert_eq!(reason, "predicted_late"),
            other => panic!("expected shed, got {other:?}"),
        }
        // a patient client still gets in
        assert!(q.try_admit(job(&entry, Duration::from_secs(5))).is_ok());
    }

    #[test]
    fn expired_jobs_are_answered_and_skipped_at_dequeue() {
        let entry = test_entry();
        let q = AdmissionQueue::new(8, 1);
        let (tx, rx) = sync_channel(1);
        let expired = Job {
            entry: Arc::clone(&entry),
            args: vec![],
            enqueued: Instant::now(),
            deadline: Instant::now() - Duration::from_millis(1),
            cancel: CancelToken::new(),
            resp: tx,
            trace: RequestTrace::detached("expired"),
        };
        q.lock().queue.push_back(expired);
        assert!(q.try_admit(job(&entry, Duration::from_secs(5))).is_ok());
        let live = q.pop().expect("live job");
        assert!(live.remaining() > Duration::ZERO);
        match rx.try_recv().unwrap() {
            Err(ServeError::Shed { reason, .. }) => {
                assert!(reason.starts_with("expired_in_queue"), "{reason}")
            }
            other => panic!("expected expired shed, got {other:?}"),
        }
    }

    #[test]
    fn drain_refuses_new_work_and_wakes_idle_workers() {
        let entry = test_entry();
        let q = Arc::new(AdmissionQueue::new(8, 1));
        let waiter = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(Duration::from_millis(20));
        q.start_drain();
        assert!(waiter.join().unwrap().is_none(), "drain wakes idle pop");
        assert!(matches!(
            q.try_admit(job(&entry, Duration::from_secs(5))),
            Err(ServeError::Draining)
        ));
        assert_eq!(q.stats.rejected_draining.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn take_compatible_harvests_same_entry_jobs_in_order() {
        let entry = test_entry();
        let other_reg = ModelRegistry::load(
            "def other(x):\n    return x + 1.0\n",
            &RegistryConfig::default(),
        )
        .unwrap();
        let other = Arc::clone(other_reg.get("other").unwrap());
        let q = AdmissionQueue::new(16, 1);
        q.try_admit(job(&entry, Duration::from_secs(5))).unwrap();
        q.try_admit(job(&other, Duration::from_secs(5))).unwrap();
        q.try_admit(job(&entry, Duration::from_secs(5))).unwrap();
        let probe = q.pop().unwrap();
        let taken = q.take_compatible(&probe, 8, |_| true);
        assert_eq!(taken.len(), 1, "only the same-entry job is harvested");
        assert!(Arc::ptr_eq(&taken[0].entry, &entry));
        assert_eq!(q.depth(), 1, "the other-entry job stays queued");
    }
}
