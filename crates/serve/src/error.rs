//! The service-level error taxonomy: every failure a request can hit maps
//! to exactly one [`ServeError`], which in turn maps to one HTTP status
//! and one structured JSON body (see [`crate::json::error_body`]).
//!
//! The split mirrors the shed policy: *client-budget* failures (shed,
//! deadline, cancel) are not the function's fault and never count against
//! its circuit breaker; *execution* failures (kernel faults, panics) do.

use autograph_graph::GraphError;
use std::fmt;

/// Why a request was refused or failed.
#[derive(Debug, Clone)]
pub enum ServeError {
    /// Admission refused the request before it entered the queue: the
    /// queue is full, or the predicted queue wait would consume the
    /// request's deadline budget. Retry after the hinted delay.
    Shed {
        /// Human-readable shed reason (`queue_full`, `predicted_late`,
        /// `expired_in_queue`, `overloaded`, or an injected-fault note).
        reason: String,
        /// Suggested client backoff, echoed as `Retry-After` (seconds,
        /// rounded up).
        retry_after_ms: u64,
    },
    /// The per-function circuit breaker is open: recent executions failed
    /// consecutively and the function is fast-failing while it cools off.
    BreakerOpen {
        /// Time until the next half-open probe is admitted.
        retry_after_ms: u64,
    },
    /// The server is draining (SIGTERM / admin drain): no new work.
    Draining,
    /// The run exceeded the request's propagated deadline while
    /// executing.
    DeadlineExceeded(GraphError),
    /// The client disconnected and the run was cancelled.
    Cancelled,
    /// Graph execution failed (kernel fault or isolated panic). Carries
    /// the structured `GraphError{kind,node,span}` for the response body.
    Graph(GraphError),
    /// Malformed request (bad JSON, wrong arity, bad dtype...).
    BadRequest(String),
    /// `POST /run/<fn>` for a function the loaded program doesn't define,
    /// or one that failed staging (the staging error is echoed).
    UnknownFunction(String),
    /// A server-side invariant broke (worker panic, response channel
    /// gone). Always a clean 500, never a hang.
    Internal(String),
}

impl ServeError {
    /// The HTTP status this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            ServeError::Shed { .. } | ServeError::BreakerOpen { .. } | ServeError::Draining => 503,
            ServeError::DeadlineExceeded(_) => 504,
            // nginx's convention for "client closed request"; nobody is
            // listening, but logs and tests see a distinct code
            ServeError::Cancelled => 499,
            ServeError::Graph(_) | ServeError::Internal(_) => 500,
            ServeError::BadRequest(_) => 400,
            ServeError::UnknownFunction(_) => 404,
        }
    }

    /// The `Retry-After` hint in milliseconds, when this error carries
    /// one.
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            ServeError::Shed { retry_after_ms, .. }
            | ServeError::BreakerOpen { retry_after_ms } => Some(*retry_after_ms),
            ServeError::Draining => Some(1000),
            _ => None,
        }
    }

    /// The machine-readable error kind for the JSON body.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::Shed { .. } => "shed",
            ServeError::BreakerOpen { .. } => "breaker_open",
            ServeError::Draining => "draining",
            ServeError::DeadlineExceeded(_) => "deadline_exceeded",
            ServeError::Cancelled => "cancelled",
            ServeError::Graph(e) => match e.kind {
                autograph_graph::ErrorKind::Panic => "panic",
                _ => "graph_error",
            },
            ServeError::BadRequest(_) => "bad_request",
            ServeError::UnknownFunction(_) => "unknown_function",
            ServeError::Internal(_) => "internal",
        }
    }

    /// The underlying [`GraphError`], when there is one (used to attach
    /// node/span/provenance info to the response body).
    pub fn graph_error(&self) -> Option<&GraphError> {
        match self {
            ServeError::DeadlineExceeded(e) | ServeError::Graph(e) => Some(e),
            _ => None,
        }
    }

    /// Whether this failure counts against the function's circuit
    /// breaker. Client-budget failures (shed/deadline/cancel/drain) and
    /// client mistakes do not; execution faults and panics do.
    pub fn trips_breaker(&self) -> bool {
        matches!(self, ServeError::Graph(_) | ServeError::Internal(_))
    }

    /// Classify a failed `Session::run_with_options`: cancellation and
    /// deadline expiry keep their identity, everything else is a graph
    /// execution failure.
    pub fn from_graph(e: GraphError) -> ServeError {
        if e.is_cancelled() {
            ServeError::Cancelled
        } else if e.is_deadline_exceeded() {
            ServeError::DeadlineExceeded(e)
        } else {
            ServeError::Graph(e)
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Shed {
                reason,
                retry_after_ms,
            } => write!(f, "request shed ({reason}); retry after {retry_after_ms}ms"),
            ServeError::BreakerOpen { retry_after_ms } => {
                write!(f, "circuit breaker open; next probe in {retry_after_ms}ms")
            }
            ServeError::Draining => f.write_str("server is draining"),
            ServeError::DeadlineExceeded(e) => write!(f, "{e}"),
            ServeError::Cancelled => f.write_str("client disconnected; run cancelled"),
            ServeError::Graph(e) => write!(f, "{e}"),
            ServeError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServeError::UnknownFunction(m) => write!(f, "unknown function: {m}"),
            ServeError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn status_mapping() {
        assert_eq!(
            ServeError::Shed {
                reason: "queue_full".into(),
                retry_after_ms: 10
            }
            .status(),
            503
        );
        assert_eq!(ServeError::BreakerOpen { retry_after_ms: 5 }.status(), 503);
        assert_eq!(ServeError::Draining.status(), 503);
        assert_eq!(
            ServeError::DeadlineExceeded(GraphError::deadline_exceeded(
                std::time::Duration::from_millis(5)
            ))
            .status(),
            504
        );
        assert_eq!(ServeError::Cancelled.status(), 499);
        assert_eq!(ServeError::Graph(GraphError::runtime("x")).status(), 500);
        assert_eq!(ServeError::BadRequest("x".into()).status(), 400);
        assert_eq!(ServeError::UnknownFunction("g".into()).status(), 404);
    }

    #[test]
    fn breaker_policy_excludes_client_budget_failures() {
        assert!(ServeError::Graph(GraphError::runtime("x")).trips_breaker());
        assert!(ServeError::Internal("x".into()).trips_breaker());
        assert!(!ServeError::Cancelled.trips_breaker());
        assert!(!ServeError::DeadlineExceeded(GraphError::deadline_exceeded(
            std::time::Duration::from_millis(5)
        ))
        .trips_breaker());
        assert!(!ServeError::Shed {
            reason: "q".into(),
            retry_after_ms: 1
        }
        .trips_breaker());
        assert!(!ServeError::BadRequest("x".into()).trips_breaker());
    }

    #[test]
    fn from_graph_classifies() {
        assert!(matches!(
            ServeError::from_graph(GraphError::cancelled()),
            ServeError::Cancelled
        ));
        assert!(matches!(
            ServeError::from_graph(GraphError::deadline_exceeded(
                std::time::Duration::from_millis(1)
            )),
            ServeError::DeadlineExceeded(_)
        ));
        assert!(matches!(
            ServeError::from_graph(GraphError::runtime("boom")),
            ServeError::Graph(_)
        ));
    }
}
