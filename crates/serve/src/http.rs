//! A deliberately small HTTP/1.1 layer over `std::net::TcpStream`: just
//! enough protocol for `POST /run/<fn>` + keep-alive + `curl`.
//!
//! No async runtime (the registry is unreachable, and the serving model
//! is thread-per-connection with a bounded connection count); the only
//! subtlety is that [`HttpConn`] does its **own** read buffering so that
//! pipelined bytes survive across keep-alive requests *and* the raw
//! stream stays available for [`TcpStream::peek`]-based disconnect
//! detection while a request is in flight.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Upper bound on the request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, ...
    pub method: String,
    /// The raw path (`/run/f`).
    pub path: String,
    /// Lower-cased header names with their values.
    pub headers: Vec<(String, String)>,
    /// The body (exactly `Content-Length` bytes).
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == lower)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .map(|v| v.eq_ignore_ascii_case("close"))
            .unwrap_or(false)
    }

    /// The `X-Deadline-Ms` header, when present and parseable.
    pub fn deadline_ms(&self) -> Option<u64> {
        self.header("x-deadline-ms")?.trim().parse().ok()
    }

    /// The client-supplied `X-Request-Id`, sanitized for echoing back in
    /// headers, logs and error JSON: only ASCII alphanumerics plus
    /// `-`, `_`, `.`, `:` survive, capped at 64 chars. `None` when the
    /// header is absent or nothing survives sanitization.
    pub fn request_id(&self) -> Option<String> {
        let raw = self.header("x-request-id")?;
        let cleaned: String = raw
            .chars()
            .filter(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.' | ':'))
            .take(64)
            .collect();
        if cleaned.is_empty() {
            None
        } else {
            Some(cleaned)
        }
    }
}

/// What went wrong while reading a request.
#[derive(Debug)]
pub enum ReadError {
    /// Clean EOF before any byte of a new request: keep-alive ended.
    Closed,
    /// A socket error mid-request.
    Io(io::Error),
    /// The peer sent something that is not HTTP, or blew a size limit.
    /// Respond 400 and close.
    Malformed(String),
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> ReadError {
        ReadError::Io(e)
    }
}

/// A connection wrapper owning the read buffer.
pub struct HttpConn {
    stream: TcpStream,
    buf: Vec<u8>,
    max_body: usize,
}

impl HttpConn {
    /// Wrap an accepted stream. `max_body` bounds `Content-Length`.
    pub fn new(stream: TcpStream, max_body: usize) -> HttpConn {
        HttpConn {
            stream,
            buf: Vec::new(),
            max_body,
        }
    }

    /// The underlying stream (for `peek`-based disconnect checks and
    /// for shutdown).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    fn fill(&mut self) -> io::Result<usize> {
        let mut chunk = [0u8; 4096];
        let n = self.stream.read(&mut chunk)?;
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(n)
    }

    /// Read one full request. `Err(Closed)` on clean EOF between
    /// requests, `Err(Malformed)` on protocol garbage.
    pub fn read_request(&mut self) -> Result<Request, ReadError> {
        // accumulate until the blank line ending the head
        let head_end = loop {
            if let Some(pos) = find_head_end(&self.buf) {
                break pos;
            }
            if self.buf.len() > MAX_HEAD_BYTES {
                return Err(ReadError::Malformed("request head too large".into()));
            }
            match self.fill() {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        Err(ReadError::Closed)
                    } else {
                        Err(ReadError::Malformed("EOF mid-request-head".into()))
                    }
                }
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    // read timeouts are only set while waiting between
                    // requests; treat as closed so the connection winds
                    // down instead of spinning
                    return Err(ReadError::Io(e));
                }
                Err(e) => return Err(ReadError::Io(e)),
            }
        };
        let head = String::from_utf8_lossy(&self.buf[..head_end]).into_owned();
        let body_start = head_end + 4; // past \r\n\r\n
        let mut lines = head.split("\r\n");
        let request_line = lines.next().unwrap_or("");
        let mut parts = request_line.split_whitespace();
        let (method, path) = match (parts.next(), parts.next()) {
            (Some(m), Some(p)) => (m.to_string(), p.to_string()),
            _ => {
                return Err(ReadError::Malformed(format!(
                    "bad request line '{request_line}'"
                )))
            }
        };
        let mut headers = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            match line.split_once(':') {
                Some((k, v)) => headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string())),
                None => return Err(ReadError::Malformed(format!("bad header line '{line}'"))),
            }
        }
        let content_length: usize = headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(0);
        if content_length > self.max_body {
            return Err(ReadError::Malformed(format!(
                "body of {content_length} bytes exceeds the {} byte limit",
                self.max_body
            )));
        }
        while self.buf.len() < body_start + content_length {
            match self.fill() {
                Ok(0) => return Err(ReadError::Malformed("EOF mid-body".into())),
                Ok(_) => {}
                Err(e) => return Err(ReadError::Io(e)),
            }
        }
        let body = self.buf[body_start..body_start + content_length].to_vec();
        // keep any pipelined bytes for the next request
        self.buf.drain(..body_start + content_length);
        Ok(Request {
            method,
            path,
            headers,
            body,
        })
    }

    /// Write a JSON response. `extra_headers` are `(name, value)` pairs
    /// appended verbatim (e.g. `Retry-After`).
    pub fn write_response(
        &mut self,
        status: u16,
        extra_headers: &[(&str, String)],
        body: &str,
    ) -> io::Result<()> {
        self.write_response_typed(status, "application/json", extra_headers, body)
    }

    /// Write a response with an explicit `Content-Type` (the `/metrics`
    /// exporter serves Prometheus text, not JSON).
    pub fn write_response_typed(
        &mut self,
        status: u16,
        content_type: &str,
        extra_headers: &[(&str, String)],
        body: &str,
    ) -> io::Result<()> {
        let reason = reason_phrase(status);
        let mut head = format!(
            "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n",
            body.len()
        );
        for (k, v) in extra_headers {
            head.push_str(k);
            head.push_str(": ");
            head.push_str(v);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body.as_bytes())?;
        self.stream.flush()
    }

    /// Non-destructively probe the connection: has the peer closed it?
    /// Uses `peek` with a short timeout so pipelined request bytes are
    /// left untouched. Returns `true` when the peer is gone.
    pub fn peer_closed(&self) -> bool {
        let mut probe = [0u8; 1];
        let prev = self.stream.read_timeout().ok().flatten();
        if self
            .stream
            .set_read_timeout(Some(Duration::from_millis(1)))
            .is_err()
        {
            return true;
        }
        let gone = matches!(self.stream.peek(&mut probe), Ok(0));
        let _ = self.stream.set_read_timeout(prev);
        gone
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        499 => "Client Closed Request",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Response",
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn parses_request_with_body_and_keepalive_pipelining() {
        let (mut client, server) = pair();
        let mut conn = HttpConn::new(server, 1024);
        client
            .write_all(
                b"POST /run/f HTTP/1.1\r\nContent-Length: 4\r\nX-Deadline-Ms: 250\r\n\r\nabcdGET /healthz HTTP/1.1\r\n\r\n",
            )
            .unwrap();
        let r1 = conn.read_request().unwrap();
        assert_eq!(r1.method, "POST");
        assert_eq!(r1.path, "/run/f");
        assert_eq!(r1.body, b"abcd");
        assert_eq!(r1.deadline_ms(), Some(250));
        // the pipelined second request must survive in the buffer
        let r2 = conn.read_request().unwrap();
        assert_eq!(r2.method, "GET");
        assert_eq!(r2.path, "/healthz");
        assert!(r2.body.is_empty());
    }

    #[test]
    fn request_id_is_sanitized_before_echoing() {
        let req = |id: &str| Request {
            method: "POST".to_string(),
            path: "/run/f".to_string(),
            headers: vec![("x-request-id".to_string(), id.to_string())],
            body: Vec::new(),
        };
        assert_eq!(
            req("abc-123_x.y:z").request_id().as_deref(),
            Some("abc-123_x.y:z")
        );
        // header-injection attempts and exotic bytes are stripped
        assert_eq!(
            req("evil\r\nSet-Cookie: x=1").request_id().as_deref(),
            Some("evilSet-Cookie:x1")
        );
        assert_eq!(req("\r\n\"<>{}").request_id(), None);
        // and length is capped
        let long = "a".repeat(200);
        assert_eq!(req(&long).request_id().map(|s| s.len()), Some(64));
        let none = Request {
            method: "POST".to_string(),
            path: "/run/f".to_string(),
            headers: vec![],
            body: Vec::new(),
        };
        assert_eq!(none.request_id(), None);
    }

    #[test]
    fn clean_eof_between_requests_is_closed() {
        let (client, server) = pair();
        let mut conn = HttpConn::new(server, 1024);
        drop(client);
        assert!(matches!(conn.read_request(), Err(ReadError::Closed)));
    }

    #[test]
    fn oversized_body_is_malformed() {
        let (mut client, server) = pair();
        let mut conn = HttpConn::new(server, 8);
        client
            .write_all(b"POST /run/f HTTP/1.1\r\nContent-Length: 100\r\n\r\n")
            .unwrap();
        assert!(matches!(conn.read_request(), Err(ReadError::Malformed(_))));
    }

    #[test]
    fn response_roundtrip() {
        let (mut client, server) = pair();
        let mut conn = HttpConn::new(server, 1024);
        conn.write_response(503, &[("Retry-After", "1".to_string())], "{\"x\":1}")
            .unwrap();
        drop(conn);
        let mut text = String::new();
        client.read_to_string(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.ends_with("{\"x\":1}"));
    }

    #[test]
    fn peer_closed_detection() {
        let (client, server) = pair();
        let conn = HttpConn::new(server, 1024);
        assert!(!conn.peer_closed());
        drop(client);
        assert!(conn.peer_closed());
    }
}
