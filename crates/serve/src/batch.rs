//! Dynamic batching: when a worker dequeues a job for a batchable
//! function and more same-function jobs are already queued, it stacks
//! their arguments along a fresh leading axis and amortizes one graph
//! run across the whole group.
//!
//! ## Legality
//!
//! Batching is **opportunistic and conservative**:
//!
//! * only functions the operator listed in `--batch-fns` (declared
//!   batch-legal: elementwise in the leading axis), and never stateful
//!   ones;
//! * members must agree on arity, dtypes and full argument shapes (the
//!   stacked run then differs from a member run only in the leading
//!   dim);
//! * after the batched run, every output's leading dim must equal the
//!   batch size — otherwise the result cannot be attributed back to
//!   members, the batch outcome is discarded, every member **falls back
//!   to an individual run**, and the function is marked non-batchable
//!   for the rest of the process (the declared legality was wrong;
//!   see `batch_disabled` in `/stats`).
//!
//! Scalar (rank-0) arguments are stacked into rank-1; rank-n into
//! rank-(n+1). Batched runs execute under the *maximum* member deadline
//! (a member with a tighter budget may get its answer late — admission
//! already vetted each member's budget against one service time, and a
//! batch is cheaper than a solo run, so this is rarely binding) and
//! without a cancel token (one client's disconnect must not cancel the
//! other members' work).

use crate::admission::Job;
use autograph_tensor::Tensor;

/// Whether `candidate`'s arguments can join a batch led by `leader`:
/// same arity, and argument-wise same dtype and shape.
pub fn compatible(leader: &Job, candidate: &Job) -> bool {
    leader.args.len() == candidate.args.len()
        && leader
            .args
            .iter()
            .zip(candidate.args.iter())
            .all(|(a, b)| a.dtype() == b.dtype() && a.shape() == b.shape())
}

/// Stack the members' `i`-th arguments along a new leading axis.
///
/// # Errors
///
/// Propagates tensor stacking errors (shape/dtype mismatch — prevented
/// by [`compatible`], but the kernel re-checks).
pub fn stack_args(members: &[Job]) -> Result<Vec<Tensor>, String> {
    let arity = members.first().map(|j| j.args.len()).unwrap_or(0);
    let mut out = Vec::with_capacity(arity);
    for i in 0..arity {
        let parts: Vec<Tensor> = members.iter().map(|j| j.args[i].clone()).collect();
        out.push(Tensor::stack(&parts).map_err(|e| e.to_string())?);
    }
    Ok(out)
}

/// Split a batched run's outputs back into per-member outputs.
///
/// Returns `None` when any output's leading dim does not equal the
/// batch size — the declared batch-legality was wrong and the caller
/// must fall back to individual runs.
pub fn split_outputs(outputs: &[Tensor], batch: usize) -> Option<Vec<Vec<Tensor>>> {
    for t in outputs {
        let shape = t.shape();
        if shape.first().copied() != Some(batch) {
            return None;
        }
    }
    let mut per_member: Vec<Vec<Tensor>> = (0..batch).map(|_| Vec::new()).collect();
    for t in outputs {
        for (m, slot) in per_member.iter_mut().enumerate() {
            // member m's slice [m, m+1), then drop the leading axis
            let slice = t.slice_axis0(Some(m as i64), Some(m as i64 + 1)).ok()?;
            let inner: Vec<usize> = slice.shape()[1..].to_vec();
            slot.push(slice.reshape(&inner).ok()?);
        }
    }
    Some(per_member)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::error::ServeError;
    use crate::registry::{ModelRegistry, RegistryConfig};
    use autograph_graph::run::CancelToken;
    use std::sync::mpsc::sync_channel;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    fn job_with(args: Vec<Tensor>) -> Job {
        let reg =
            ModelRegistry::load("def bt(x):\n    return x\n", &RegistryConfig::default()).unwrap();
        let (tx, _rx) = sync_channel::<Result<Vec<Tensor>, ServeError>>(1);
        Job {
            entry: Arc::clone(reg.get("bt").unwrap()),
            args,
            enqueued: Instant::now(),
            deadline: Instant::now() + Duration::from_secs(5),
            cancel: CancelToken::new(),
            resp: tx,
            trace: crate::telemetry::RequestTrace::detached("test"),
        }
    }

    #[test]
    fn compatible_requires_same_shape_and_dtype() {
        let a = job_with(vec![Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap()]);
        let b = job_with(vec![Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap()]);
        let c = job_with(vec![Tensor::from_vec(vec![3.0], &[1]).unwrap()]);
        let d = job_with(vec![Tensor::scalar_i64(3)]);
        assert!(compatible(&a, &b));
        assert!(!compatible(&a, &c), "different shape");
        assert!(!compatible(&a, &d), "different dtype");
    }

    #[test]
    fn stack_then_split_roundtrips_scalars() {
        let members = vec![
            job_with(vec![Tensor::scalar_f32(1.0)]),
            job_with(vec![Tensor::scalar_f32(2.0)]),
            job_with(vec![Tensor::scalar_f32(3.0)]),
        ];
        let stacked = stack_args(&members).unwrap();
        assert_eq!(stacked[0].shape(), &[3]);
        let per = split_outputs(&stacked, 3).unwrap();
        assert_eq!(per.len(), 3);
        for (i, outs) in per.iter().enumerate() {
            assert_eq!(outs[0].scalar_value_f32().unwrap(), (i + 1) as f32);
            assert!(outs[0].shape().is_empty(), "leading axis dropped");
        }
    }

    #[test]
    fn stack_then_split_roundtrips_vectors() {
        let members = vec![
            job_with(vec![Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap()]),
            job_with(vec![Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap()]),
        ];
        let stacked = stack_args(&members).unwrap();
        assert_eq!(stacked[0].shape(), &[2, 2]);
        let per = split_outputs(&stacked, 2).unwrap();
        assert_eq!(per[1][0].shape(), &[2]);
        assert_eq!(per[1][0].as_f32().unwrap(), &[3.0, 4.0]);
    }

    #[test]
    fn split_refuses_wrong_leading_dim() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        assert!(split_outputs(&[t], 2).is_none(), "leading dim 3 ≠ batch 2");
        let scalar = Tensor::scalar_f32(1.0);
        assert!(split_outputs(&[scalar], 2).is_none(), "rank-0 output");
    }
}
