//! Prometheus text exposition: a tiny writer for `GET /metrics` and a
//! strict parser used by the loadgen and CI to validate what the server
//! serves.
//!
//! Only the subset of the text format this server emits is supported:
//! `# HELP` / `# TYPE` comments, `counter` / `gauge` / `histogram`
//! families, and samples of the form `name{label="value",...} 1.23`.
//! Histograms follow the standard convention — cumulative `_bucket`
//! series with `le` bounds ending in `+Inf`, plus `_sum` and `_count`.

use autograph_obs::metrics::HistSnapshot;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Escape a label value (`\`, `"`, newline — per the exposition format).
fn escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Builds the exposition document family by family.
#[derive(Default)]
pub struct PromWriter {
    out: String,
}

impl PromWriter {
    /// An empty document.
    pub fn new() -> PromWriter {
        PromWriter::default()
    }

    /// Start a family: emits `# HELP` and `# TYPE`.
    pub fn family(&mut self, name: &str, kind: &str, help: &str) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// One sample with `(label, value)` pairs (empty slice = no labels).
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.out.push_str(name);
        self.push_labels(labels, None);
        // u64-valued counters must not lose precision through f64
        if value.fract() == 0.0 && value.abs() < 9e15 {
            let _ = writeln!(self.out, " {}", value as i64);
        } else {
            let _ = writeln!(self.out, " {value}");
        }
    }

    /// A full histogram family member from a snapshot: cumulative
    /// `_bucket` samples (bounds are ns, exported as seconds), `_sum`,
    /// `_count`.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)], snap: &HistSnapshot) {
        let mut cum = 0u64;
        for (i, bound) in snap.bounds.iter().enumerate() {
            cum = cum.saturating_add(snap.buckets[i]);
            let le = *bound as f64 / 1e9;
            self.out.push_str(name);
            self.out.push_str("_bucket");
            self.push_labels(labels, Some(&format!("{le}")));
            let _ = writeln!(self.out, " {cum}");
        }
        cum = cum.saturating_add(snap.buckets[snap.bounds.len()]);
        self.out.push_str(name);
        self.out.push_str("_bucket");
        self.push_labels(labels, Some("+Inf"));
        let _ = writeln!(self.out, " {cum}");
        self.out.push_str(name);
        self.out.push_str("_sum");
        self.push_labels(labels, None);
        let _ = writeln!(self.out, " {}", snap.sum as f64 / 1e9);
        self.out.push_str(name);
        self.out.push_str("_count");
        self.push_labels(labels, None);
        let _ = writeln!(self.out, " {cum}");
    }

    /// Like [`histogram`](PromWriter::histogram) but for dimensionless
    /// bucket bounds (permille histograms): `le` is the raw bound.
    pub fn histogram_raw(&mut self, name: &str, labels: &[(&str, &str)], snap: &HistSnapshot) {
        let mut cum = 0u64;
        for (i, bound) in snap.bounds.iter().enumerate() {
            cum = cum.saturating_add(snap.buckets[i]);
            self.out.push_str(name);
            self.out.push_str("_bucket");
            self.push_labels(labels, Some(&bound.to_string()));
            let _ = writeln!(self.out, " {cum}");
        }
        cum = cum.saturating_add(snap.buckets[snap.bounds.len()]);
        self.out.push_str(name);
        self.out.push_str("_bucket");
        self.push_labels(labels, Some("+Inf"));
        let _ = writeln!(self.out, " {cum}");
        self.out.push_str(name);
        self.out.push_str("_sum");
        self.push_labels(labels, None);
        let _ = writeln!(self.out, " {}", snap.sum);
        self.out.push_str(name);
        self.out.push_str("_count");
        self.push_labels(labels, None);
        let _ = writeln!(self.out, " {cum}");
    }

    fn push_labels(&mut self, labels: &[(&str, &str)], le: Option<&str>) {
        if labels.is_empty() && le.is_none() {
            return;
        }
        self.out.push('{');
        let mut first = true;
        for (k, v) in labels {
            if !first {
                self.out.push(',');
            }
            first = false;
            let _ = write!(self.out, "{k}=\"{}\"", escape_label(v));
        }
        if let Some(le) = le {
            if !first {
                self.out.push(',');
            }
            let _ = write!(self.out, "le=\"{le}\"");
        }
        self.out.push('}');
    }

    /// The finished document.
    pub fn finish(self) -> String {
        self.out
    }
}

/// One parsed sample: metric name, raw label block (`{a="b"}` or empty),
/// value.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Metric name (including `_bucket`/`_sum`/`_count` suffixes).
    pub name: String,
    /// The label block exactly as serialized (stable across scrapes).
    pub labels: String,
    /// Parsed value.
    pub value: f64,
}

/// A parsed and validated scrape.
#[derive(Debug)]
pub struct Scrape {
    /// Samples in document order.
    pub samples: Vec<Sample>,
    /// `# TYPE` declarations: family name → kind.
    pub types: HashMap<String, String>,
}

impl Scrape {
    /// Look up one sample by name + exact label block.
    pub fn value(&self, name: &str, labels: &str) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels == labels)
            .map(|s| s.value)
    }

    /// Whether a family was declared (via `# TYPE`).
    pub fn has_family(&self, name: &str) -> bool {
        self.types.contains_key(name)
    }

    /// All samples that must be monotonic across scrapes: counters,
    /// and every histogram `_bucket`/`_sum`/`_count` series. Keyed by
    /// `name + labels`.
    pub fn monotonic_samples(&self) -> HashMap<String, f64> {
        let mut out = HashMap::new();
        for s in &self.samples {
            let family = base_family(&s.name);
            let kind = self.types.get(family).map(String::as_str);
            let monotonic = match kind {
                Some("counter") => true,
                Some("histogram") => {
                    s.name.ends_with("_bucket")
                        || s.name.ends_with("_sum")
                        || s.name.ends_with("_count")
                }
                _ => false,
            };
            if monotonic {
                out.insert(format!("{}{}", s.name, s.labels), s.value);
            }
        }
        out
    }
}

fn base_family(name: &str) -> &str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stripped) = name.strip_suffix(suffix) {
            return stripped;
        }
    }
    name
}

fn valid_metric_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Parse one exposition document and validate it:
///
/// * every line is a `# HELP`/`# TYPE` comment or a well-formed sample;
/// * every sample's family has a preceding `# TYPE`;
/// * metric names are legal;
/// * histogram `_bucket` series are cumulative (non-decreasing in
///   document order), end at `le="+Inf"`, and `_count` equals the
///   `+Inf` bucket.
///
/// # Errors
///
/// A human-readable description of the first violation.
pub fn parse_and_validate(text: &str) -> Result<Scrape, String> {
    let mut samples = Vec::new();
    let mut types: HashMap<String, String> = HashMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.splitn(2, ' ');
            let name = parts.next().unwrap_or_default();
            let kind = parts.next().unwrap_or_default();
            if !valid_metric_name(name) {
                return Err(format!("line {n}: bad family name in TYPE: '{name}'"));
            }
            if !matches!(
                kind,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(format!("line {n}: unknown type '{kind}'"));
            }
            types.insert(name.to_string(), kind.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or other comment
        }
        // sample: name[{labels}] value
        let (name_labels, value_str) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {n}: no value: '{line}'"))?;
        let value: f64 = value_str
            .parse()
            .map_err(|_| format!("line {n}: bad value '{value_str}'"))?;
        let (name, labels) = match name_labels.find('{') {
            Some(brace) => {
                if !name_labels.ends_with('}') {
                    return Err(format!("line {n}: unterminated label block"));
                }
                (&name_labels[..brace], &name_labels[brace..])
            }
            None => (name_labels, ""),
        };
        if !valid_metric_name(name) {
            return Err(format!("line {n}: bad metric name '{name}'"));
        }
        if !types.contains_key(base_family(name)) {
            return Err(format!("line {n}: sample '{name}' has no preceding # TYPE"));
        }
        samples.push(Sample {
            name: name.to_string(),
            labels: labels.to_string(),
            value,
        });
    }
    validate_histograms(&samples, &types)?;
    Ok(Scrape { samples, types })
}

/// Labels of a `_bucket` sample without the `le` pair — the series key.
fn series_key(labels: &str) -> String {
    let inner = labels.trim_start_matches('{').trim_end_matches('}');
    let kept: Vec<&str> = inner
        .split(',')
        .filter(|kv| !kv.starts_with("le="))
        .collect();
    kept.join(",")
}

fn le_value(labels: &str) -> Option<String> {
    let inner = labels.trim_start_matches('{').trim_end_matches('}');
    inner
        .split(',')
        .find(|kv| kv.starts_with("le="))
        .map(|kv| kv.trim_start_matches("le=").trim_matches('"').to_string())
}

fn validate_histograms(samples: &[Sample], types: &HashMap<String, String>) -> Result<(), String> {
    // (family, series key) → (last cumulative value, saw +Inf, inf value)
    let mut series: HashMap<(String, String), (f64, bool, f64)> = HashMap::new();
    for s in samples {
        if !s.name.ends_with("_bucket") {
            continue;
        }
        let family = base_family(&s.name).to_string();
        if types.get(&family).map(String::as_str) != Some("histogram") {
            return Err(format!("'{}' has buckets but is not a histogram", s.name));
        }
        let le = le_value(&s.labels)
            .ok_or_else(|| format!("'{}{}' bucket has no le label", s.name, s.labels))?;
        let key = (family.clone(), series_key(&s.labels));
        let entry = series.entry(key).or_insert((f64::NEG_INFINITY, false, 0.0));
        if s.value < entry.0 {
            return Err(format!(
                "histogram '{family}' buckets not cumulative at le=\"{le}\" ({} < {})",
                s.value, entry.0
            ));
        }
        entry.0 = s.value;
        if le == "+Inf" {
            entry.1 = true;
            entry.2 = s.value;
        }
    }
    for ((family, key), (_, saw_inf, inf_value)) in &series {
        if !saw_inf {
            return Err(format!("histogram '{family}' series {{{key}}} lacks +Inf"));
        }
        // _count must equal the +Inf bucket
        let count = samples
            .iter()
            .find(|s| s.name == format!("{family}_count") && series_key(&s.labels) == *key);
        match count {
            Some(c) if (c.value - inf_value).abs() < 0.5 => {}
            Some(c) => {
                return Err(format!(
                    "histogram '{family}' _count {} != +Inf bucket {}",
                    c.value, inf_value
                ))
            }
            None => return Err(format!("histogram '{family}' has no _count")),
        }
    }
    Ok(())
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use autograph_obs::metrics::{AtomicHistogram, LATENCY_BUCKETS_NS};

    #[test]
    fn writer_output_round_trips_through_the_parser() {
        let h = AtomicHistogram::new(LATENCY_BUCKETS_NS);
        h.record(200_000);
        h.record(3_000_000);
        h.record(u64::MAX); // overflow bucket
        let mut w = PromWriter::new();
        w.family("autograph_requests_total", "counter", "requests by class");
        w.sample(
            "autograph_requests_total",
            &[("fn", "score"), ("class", "2xx")],
            41.0,
        );
        w.family("autograph_queue_depth", "gauge", "queued jobs");
        w.sample("autograph_queue_depth", &[], 3.0);
        w.family(
            "autograph_request_latency_seconds",
            "histogram",
            "end-to-end latency",
        );
        w.histogram(
            "autograph_request_latency_seconds",
            &[("fn", "score")],
            &h.snapshot(),
        );
        let text = w.finish();
        let scrape = parse_and_validate(&text).expect("valid exposition");
        assert_eq!(
            scrape.value("autograph_requests_total", "{fn=\"score\",class=\"2xx\"}"),
            Some(41.0)
        );
        assert_eq!(scrape.value("autograph_queue_depth", ""), Some(3.0));
        assert_eq!(
            scrape.value("autograph_request_latency_seconds_count", "{fn=\"score\"}"),
            Some(3.0)
        );
        assert!(scrape.has_family("autograph_request_latency_seconds"));
        // counters + histogram series are all monotonic candidates
        let mono = scrape.monotonic_samples();
        assert!(mono.len() > LATENCY_BUCKETS_NS.len());
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_and_validate("not a metric line").is_err());
        assert!(parse_and_validate("x 1.0").is_err(), "no TYPE");
        assert!(
            parse_and_validate("# TYPE x counter\nx nope").is_err(),
            "bad value"
        );
        assert!(
            parse_and_validate("# TYPE x frobnicator\nx 1").is_err(),
            "bad kind"
        );
    }

    #[test]
    fn parser_rejects_non_cumulative_histograms() {
        let bad = "\
# TYPE h histogram
h_bucket{le=\"0.1\"} 5
h_bucket{le=\"+Inf\"} 3
h_sum 1
h_count 3
";
        let err = parse_and_validate(bad).unwrap_err();
        assert!(err.contains("not cumulative"), "{err}");
        let missing_inf = "\
# TYPE h histogram
h_bucket{le=\"0.1\"} 5
h_sum 1
h_count 5
";
        let err = parse_and_validate(missing_inf).unwrap_err();
        assert!(err.contains("+Inf"), "{err}");
        let count_mismatch = "\
# TYPE h histogram
h_bucket{le=\"0.1\"} 5
h_bucket{le=\"+Inf\"} 5
h_sum 1
h_count 7
";
        let err = parse_and_validate(count_mismatch).unwrap_err();
        assert!(err.contains("_count"), "{err}");
    }

    #[test]
    fn label_values_are_escaped() {
        let mut w = PromWriter::new();
        w.family("m", "counter", "test");
        w.sample("m", &[("fn", "we\"ird\\name\n")], 1.0);
        let text = w.finish();
        assert!(text.contains("fn=\"we\\\"ird\\\\name\\n\""), "{text}");
        parse_and_validate(&text).expect("escaped labels still parse");
    }
}
