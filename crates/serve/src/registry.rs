//! The model registry: load a PyLite program, stage **every** top-level
//! function once, and hold the immutable optimized graphs that concurrent
//! requests run against.
//!
//! Staging is keyed by content hash (FNV-1a over source + conversion
//! flags): loading byte-identical source a second time — another
//! `--program` flag, a test re-boot — reuses the staged entries instead
//! of re-running lex/parse/convert/stage/optimize.
//!
//! ## Concurrency model
//!
//! `Runtime` is single-threaded (`Rc` inside), so staging happens on the
//! loading thread; what comes out — `Graph`, `Tensor`, output ids — is
//! `Send + Sync` and immutable. Each worker that needs to *run* a
//! function checks a [`Session`] out of the entry's store:
//!
//! * **stateless** functions (no graph variables) use a session *pool*:
//!   up to one session per concurrent worker, each holding its own plan
//!   cache over the shared immutable graph;
//! * **stateful** functions (graph variables ⇒ `Assign` nodes) pin a
//!   single session behind a mutex so variable updates keep program
//!   order — concurrent requests serialize, which is the only sound
//!   default.

use crate::breaker::CircuitBreaker;
use autograph_graph::artifact::{ByteReader, ByteWriter, CompiledUnit};
use autograph_graph::ir::NodeId;
use autograph_graph::{Graph, Session};
use autograph_planstore::{self as planstore, Load, PlanStore};
use autograph_pylang::ast::StmtKind;
use autograph_runtime::runtime::GraphArg;
use autograph_runtime::Runtime;
use autograph_tensor::Tensor;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

// The FNV-1a staging-memo hash historically lived here; it is now the
// shared definition in `autograph-planstore`, so the in-process memo and
// the on-disk cache key can never diverge.
pub use autograph_planstore::content_hash;

/// Where an entry's sessions live (see the module docs).
enum SessionStore {
    /// Stateless: a free-list of sessions over the shared graph.
    Pool(Mutex<Vec<Session>>),
    /// Stateful: one session, runs serialize.
    Single(Box<Mutex<Session>>),
}

/// One servable staged function.
pub struct FnEntry {
    /// The function's name (the `<fn>` in `POST /run/<fn>`).
    pub name: String,
    /// Placeholder names, in declaration order.
    pub arg_names: Vec<String>,
    /// The optimized immutable graph.
    pub graph: Graph,
    /// Fetch ids for the function's outputs.
    pub outputs: Vec<NodeId>,
    /// Whether the function returned a tuple.
    pub tuple_result: bool,
    /// Whether the graph carries variables (forces the single-session
    /// store and disables batching).
    pub stateful: bool,
    /// Whether dynamic batching is allowed for this function (config
    /// opt-in AND stateless).
    pub batchable: AtomicBool,
    /// Per-function circuit breaker.
    pub breaker: CircuitBreaker,
    /// EWMA of per-request service time in ns (shed-prediction input);
    /// 0 until the first completed run.
    pub ewma_service_ns: AtomicU64,
    sessions: SessionStore,
    exec_threads: usize,
    /// The staged unit (optimized graph + lowered VM program); every
    /// session this entry builds gets the program pre-installed, so a
    /// warm boot never re-lowers bytecode.
    unit: Arc<CompiledUnit>,
}

impl FnEntry {
    /// Update the service-time estimate: `ewma ← 7/8·ewma + 1/8·sample`
    /// (first sample seeds it directly).
    pub fn record_service_ns(&self, sample_ns: u64) {
        let prev = self.ewma_service_ns.load(Ordering::Relaxed);
        let next = if prev == 0 {
            sample_ns
        } else {
            prev - prev / 8 + sample_ns / 8
        };
        self.ewma_service_ns.store(next, Ordering::Relaxed);
    }

    fn build_session(&self) -> Session {
        let mut sess = Session::new(self.graph.clone());
        sess.set_threads(self.exec_threads);
        // pre-seed the plan cache with the already-lowered program;
        // install failure is impossible for a unit staged from this
        // graph, but degrade to lazy compilation rather than panic
        let _ = sess.install_compiled(&self.unit);
        sess
    }

    /// Run `f` with a session checked out of this entry's store.
    ///
    /// Pool entries: the session is returned to the pool only when `f`
    /// returns normally — if `f` unwinds (a panic that escaped every
    /// kernel boundary), the possibly-inconsistent session is dropped
    /// rather than recycled, so one poisoned run can never contaminate a
    /// later request. Single (stateful) entries serialize on the mutex;
    /// a poisoned mutex is recovered into a fresh state via
    /// `into_inner` semantics.
    pub fn with_session<R>(&self, f: impl FnOnce(&mut Session) -> R) -> R {
        match &self.sessions {
            SessionStore::Single(slot) => {
                let mut sess = slot.lock().unwrap_or_else(|p| p.into_inner());
                f(&mut sess)
            }
            SessionStore::Pool(pool) => {
                let mut sess = {
                    let mut free = pool.lock().unwrap_or_else(|p| p.into_inner());
                    free.pop()
                }
                .unwrap_or_else(|| self.build_session());
                let out = f(&mut sess);
                // only reached when `f` did not unwind
                pool.lock().unwrap_or_else(|p| p.into_inner()).push(sess);
                out
            }
        }
    }
}

/// Tuning for entry construction.
pub struct RegistryConfig {
    /// Threads each session runs with (1 on small containers: the
    /// serving layer gets its parallelism across requests, not within a
    /// kernel).
    pub exec_threads: usize,
    /// Function names dynamic batching may coalesce (stacking along the
    /// leading axis must be sound for them — see DESIGN.md); `None`
    /// means batching is off for every function.
    pub batch_fns: Option<Vec<String>>,
    /// Breaker: consecutive execution failures before fast-fail.
    pub breaker_threshold: u32,
    /// Breaker: first cooldown (doubles per failed probe).
    pub breaker_cooldown: Duration,
    /// Persistent plan-cache directory (`--plan-cache`); `None` falls
    /// back to `AUTOGRAPH_PLAN_CACHE`, and neither set means staging is
    /// memoized in-process only.
    pub plan_cache: Option<PathBuf>,
}

impl Default for RegistryConfig {
    fn default() -> RegistryConfig {
        RegistryConfig {
            exec_threads: 1,
            batch_fns: None,
            breaker_threshold: 5,
            breaker_cooldown: Duration::from_millis(100),
            plan_cache: None,
        }
    }
}

/// A function the loader could not stage; requests for it get a 404
/// carrying the staging error.
pub struct FailedFn {
    /// Function name.
    pub name: String,
    /// The staging error, verbatim.
    pub error: String,
}

/// The loaded program: every stageable function, staged once.
pub struct ModelRegistry {
    /// Content hash of (source, flags).
    pub hash: u64,
    /// The program source (error bodies echo offending lines from it).
    pub source: Arc<str>,
    /// Servable functions.
    pub entries: Vec<Arc<FnEntry>>,
    /// Functions that failed staging.
    pub failed: Vec<FailedFn>,
    by_name: HashMap<String, usize>,
}

impl ModelRegistry {
    /// Load source and stage every top-level function. Staged artifacts
    /// for an identical (source, flags) pair are reused process-wide.
    ///
    /// # Errors
    ///
    /// Fails when the source does not parse/convert at all; individual
    /// functions that fail *staging* are recorded in `failed` instead.
    pub fn load(source: &str, config: &RegistryConfig) -> Result<ModelRegistry, String> {
        let flags = format!(
            "exec_threads={};v1",
            config.exec_threads // staging itself is thread-independent, but the
                                // cache key stays honest if that ever changes
        );
        let hash = content_hash(source, &flags);
        let store = match &config.plan_cache {
            Some(dir) => PlanStore::open(dir)
                .map_err(|e| format!("plan cache dir {}: {e}", dir.display()))
                .map(Some)?,
            None => PlanStore::from_env(),
        };
        let staged = staged_for_hash(hash, source, &flags, store.as_ref())?;
        let mut entries = Vec::new();
        let mut failed = Vec::new();
        let mut by_name = HashMap::new();
        for item in staged.iter() {
            match item {
                StagedFn::Ok(s) => {
                    let stateful = !s.graph.variables.is_empty();
                    let batchable = !stateful
                        && config
                            .batch_fns
                            .as_ref()
                            .is_some_and(|fns| fns.iter().any(|f| f == &s.name));
                    let sessions = if stateful {
                        SessionStore::Single(Box::new(Mutex::new({
                            let mut sess = Session::new(s.graph.clone());
                            sess.set_threads(config.exec_threads);
                            let _ = sess.install_compiled(&s.unit);
                            sess
                        })))
                    } else {
                        SessionStore::Pool(Mutex::new(Vec::new()))
                    };
                    by_name.insert(s.name.clone(), entries.len());
                    entries.push(Arc::new(FnEntry {
                        name: s.name.clone(),
                        arg_names: s.arg_names.clone(),
                        graph: s.graph.clone(),
                        outputs: s.outputs.clone(),
                        tuple_result: s.tuple_result,
                        stateful,
                        batchable: AtomicBool::new(batchable),
                        breaker: CircuitBreaker::new(
                            config.breaker_threshold,
                            config.breaker_cooldown,
                            config.breaker_cooldown * 32,
                        ),
                        ewma_service_ns: AtomicU64::new(0),
                        sessions,
                        exec_threads: config.exec_threads,
                        unit: Arc::clone(&s.unit),
                    }));
                }
                StagedFn::Failed { name, error } => failed.push(FailedFn {
                    name: name.clone(),
                    error: error.clone(),
                }),
            }
        }
        Ok(ModelRegistry {
            hash,
            source: Arc::from(source),
            entries,
            failed,
            by_name,
        })
    }

    /// Look up a servable function by name.
    pub fn get(&self, name: &str) -> Option<&Arc<FnEntry>> {
        self.by_name.get(name).map(|i| &self.entries[*i])
    }

    /// The staging error for a function that loaded but failed to
    /// stage, if that is why `get` missed.
    pub fn staging_error(&self, name: &str) -> Option<&str> {
        self.failed
            .iter()
            .find(|f| f.name == name)
            .map(|f| f.error.as_str())
    }
}

/// One staged function as cached per content hash.
enum StagedFn {
    Ok(StagedEntry),
    Failed { name: String, error: String },
}

struct StagedEntry {
    name: String,
    arg_names: Vec<String>,
    graph: Graph,
    outputs: Vec<NodeId>,
    tuple_result: bool,
    unit: Arc<CompiledUnit>,
}

/// The in-process staged-program memo.
static STAGE_MEMO: Mutex<Option<HashMap<u64, Arc<Vec<StagedFn>>>>> = Mutex::new(None);

/// Drop the in-process staging memo, forcing the next load to consult
/// the persistent store (or stage cold). Tests use this to simulate a
/// fresh process without actually restarting one.
pub fn reset_stage_memo() {
    let mut cache = STAGE_MEMO.lock().unwrap_or_else(|p| p.into_inner());
    *cache = None;
}

/// Process-wide staged-program cache: hash → staged functions. Staging
/// is deterministic, so the first loader wins and later identical loads
/// are free ("staged once per content-hash"). When a persistent store
/// is configured, a memo miss consults the on-disk bundle before
/// staging cold — the warm-restart path — and a cold stage writes the
/// bundle back.
fn staged_for_hash(
    hash: u64,
    source: &str,
    flags: &str,
    store: Option<&PlanStore>,
) -> Result<Arc<Vec<StagedFn>>, String> {
    {
        let cache = STAGE_MEMO.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(hit) = cache.as_ref().and_then(|m| m.get(&hash)) {
            autograph_obs::count("serve", "stage_cache_hit", 1);
            return Ok(Arc::clone(hit));
        }
    }
    let disk_key = planstore::cache_key(source, flags, planstore::VERSION_TAG, exec_mode_str());
    if let Some(store) = store {
        if let Load::Hit { payload, .. } = store.load(disk_key) {
            match decode_bundle(&payload) {
                Ok(staged) => {
                    autograph_obs::count("serve", "stage_cache_hit", 1);
                    autograph_obs::count("serve", "stage_cache_disk_hit", 1);
                    let staged = Arc::new(staged);
                    let mut cache = STAGE_MEMO.lock().unwrap_or_else(|p| p.into_inner());
                    return Ok(Arc::clone(
                        cache
                            .get_or_insert_with(HashMap::new)
                            .entry(hash)
                            .or_insert(staged),
                    ));
                }
                Err(e) => planstore::note_corrupt(&e),
            }
        }
    }
    autograph_obs::count("serve", "stage_cache_miss", 1);
    let staged = Arc::new(stage_all(source)?);
    if let Some(store) = store {
        if store.save(disk_key, &encode_bundle(&staged)).is_err() {
            autograph_obs::count("planstore", "plan_cache_write_failed", 1);
        }
    }
    let mut cache = STAGE_MEMO.lock().unwrap_or_else(|p| p.into_inner());
    Ok(Arc::clone(
        cache
            .get_or_insert_with(HashMap::new)
            .entry(hash)
            .or_insert(staged),
    ))
}

/// The exec-mode axis of the disk key (an interp-mode process keys its
/// artifacts apart from a VM-mode one).
fn exec_mode_str() -> &'static str {
    match autograph_graph::session::default_exec_mode() {
        autograph_graph::ExecMode::Vm => "vm",
        autograph_graph::ExecMode::Interp => "interp",
    }
}

// ---------------------------------------------------------------------
// On-disk bundle: every staged function of one program under one key

fn encode_bundle(staged: &[StagedFn]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u64(staged.len() as u64);
    for item in staged {
        match item {
            StagedFn::Ok(s) => {
                w.u8(0);
                w.str(&s.name);
                w.u64(s.arg_names.len() as u64);
                for a in &s.arg_names {
                    w.str(a);
                }
                w.u8(u8::from(s.tuple_result));
                s.unit.encode_into(&mut w);
            }
            StagedFn::Failed { name, error } => {
                w.u8(1);
                w.str(name);
                w.str(error);
            }
        }
    }
    w.into_bytes()
}

fn decode_bundle(payload: &[u8]) -> Result<Vec<StagedFn>, String> {
    let mut r = ByteReader::new(payload);
    let n = r.count()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        match r.u8()? {
            0 => {
                let name = r.str()?;
                let nargs = r.count()?;
                let mut arg_names = Vec::with_capacity(nargs);
                for _ in 0..nargs {
                    arg_names.push(r.str()?);
                }
                let tuple_result = match r.u8()? {
                    0 => false,
                    1 => true,
                    t => return Err(format!("invalid tuple_result tag {t}")),
                };
                let unit = Arc::new(CompiledUnit::decode_from(&mut r)?);
                out.push(StagedFn::Ok(StagedEntry {
                    name,
                    arg_names,
                    graph: unit.graph.clone(),
                    outputs: unit.outputs.clone(),
                    tuple_result,
                    unit,
                }));
            }
            1 => {
                let name = r.str()?;
                let error = r.str()?;
                out.push(StagedFn::Failed { name, error });
            }
            t => return Err(format!("invalid bundle entry tag {t}")),
        }
    }
    if !r.is_done() {
        return Err("trailing bytes after staged bundle".to_string());
    }
    Ok(out)
}

/// Stage every top-level function of `source` (on the calling thread —
/// `Runtime` is not `Send`).
fn stage_all(source: &str) -> Result<Vec<StagedFn>, String> {
    let _s = autograph_obs::span("serve", "stage_program");
    let module = autograph_pylang::parse_module(source).map_err(|e| e.to_string())?;
    // param names per function, from the AST
    let mut fns: Vec<(String, Vec<String>)> = Vec::new();
    for stmt in &module.body {
        if let StmtKind::FunctionDef { name, params, .. } = &stmt.kind {
            fns.push((
                name.clone(),
                params.iter().map(|p| p.name.clone()).collect(),
            ));
        }
    }
    if fns.is_empty() {
        return Err("program defines no functions".to_string());
    }
    let mut out = Vec::with_capacity(fns.len());
    for (name, arg_names) in fns {
        // a fresh Runtime per function: staging mutates interpreter
        // state, and a failed stage must not poison the next one
        let staged = Runtime::load(source, true)
            .map_err(|e| e.to_string())
            .and_then(|mut rt| {
                rt.stage_to_graph(
                    &name,
                    arg_names
                        .iter()
                        .map(|n| GraphArg::Placeholder(n.clone()))
                        .collect(),
                )
                .map_err(|e| e.to_string())
            });
        match staged {
            Ok(s) => {
                let _o = autograph_obs::span("serve", "optimize");
                let (graph, outputs, _trace) =
                    autograph_graph::optimize::optimize(&s.graph, &s.outputs);
                if let Err(e) = autograph_graph::shapes::validate(&graph) {
                    out.push(StagedFn::Failed {
                        name,
                        error: e.to_string(),
                    });
                    continue;
                }
                let unit = match CompiledUnit::build(graph, outputs) {
                    Ok(u) => Arc::new(u),
                    Err(e) => {
                        out.push(StagedFn::Failed {
                            name,
                            error: e.to_string(),
                        });
                        continue;
                    }
                };
                out.push(StagedFn::Ok(StagedEntry {
                    name,
                    arg_names,
                    graph: unit.graph.clone(),
                    outputs: unit.outputs.clone(),
                    tuple_result: s.tuple_result,
                    unit,
                }));
            }
            Err(error) => out.push(StagedFn::Failed { name, error }),
        }
    }
    Ok(out)
}

/// Shorthand for tests/bins: feeds from arg names + tensors.
pub fn feeds<'a>(names: &'a [String], args: &[Tensor]) -> Vec<(&'a str, Tensor)> {
    names
        .iter()
        .map(String::as_str)
        .zip(args.iter().cloned())
        .collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    const SRC: &str = "\
def double(x):
    return x * 2.0

def counter(x):
    v = tf.Variable(1.0)
    return x + v
";

    #[test]
    fn stages_all_functions_and_detects_statefulness() {
        let reg = ModelRegistry::load(SRC, &RegistryConfig::default()).unwrap();
        let d = reg.get("double").expect("double staged");
        assert!(!d.stateful);
        assert_eq!(d.arg_names, vec!["x".to_string()]);
        // `counter` may or may not stage depending on tf.Variable
        // support; either way lookups behave
        assert!(reg.get("nope").is_none());
    }

    #[test]
    fn content_hash_cache_reuses_staging() {
        let cfg = RegistryConfig::default();
        let src = "def h(x):\n    return x + 41.0\n";
        let a = ModelRegistry::load(src, &cfg).unwrap();
        let b = ModelRegistry::load(src, &cfg).unwrap();
        assert_eq!(a.hash, b.hash);
        // both registries serve the same staged graph object tree
        assert_eq!(
            a.get("h").unwrap().graph.nodes.len(),
            b.get("h").unwrap().graph.nodes.len()
        );
    }

    #[test]
    fn sessions_run_the_staged_function() {
        let reg = ModelRegistry::load(SRC, &RegistryConfig::default()).unwrap();
        let d = reg.get("double").unwrap();
        let out = d
            .with_session(|sess| {
                sess.run(
                    &feeds(&d.arg_names, &[Tensor::scalar_f32(21.0)]),
                    &d.outputs,
                )
            })
            .unwrap();
        assert_eq!(out[0].scalar_value_f32().unwrap(), 42.0);
    }

    #[test]
    fn ewma_seeds_then_smooths() {
        let reg =
            ModelRegistry::load("def f(x):\n    return x\n", &RegistryConfig::default()).unwrap();
        let e = reg.get("f").unwrap();
        e.record_service_ns(8000);
        assert_eq!(e.ewma_service_ns.load(Ordering::Relaxed), 8000);
        e.record_service_ns(0);
        assert_eq!(e.ewma_service_ns.load(Ordering::Relaxed), 7000);
    }

    #[test]
    fn unstageable_function_is_recorded_not_fatal() {
        // data-dependent branch with inconsistent values fails staging
        let src = "\
def good(x):
    return x + 1.0

def bad(x):
    if x > 0.0:
        y = x
    return y
";
        let reg = ModelRegistry::load(src, &RegistryConfig::default()).unwrap();
        assert!(reg.get("good").is_some());
        assert!(reg.get("bad").is_none());
        assert!(reg.staging_error("bad").is_some());
    }
}
