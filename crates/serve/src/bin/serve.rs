//! `autograph-serve`: load a PyLite program, stage every function, and
//! serve `POST /run/<fn>` until SIGTERM (or SIGINT), then drain
//! gracefully: stop accepting, finish in-flight work up to the drain
//! deadline, exit 0 when everything finished cleanly.
//!
//! ```text
//! autograph-serve --program examples/serve/mlp.pylite \
//!     --addr 127.0.0.1:0 --addr-file /tmp/serve.addr \
//!     --workers 2 --queue-depth 64 --deadline-ms 1000 \
//!     --batch-fns predict --max-batch 8
//! ```
//!
//! `--addr-file` writes the *bound* address (resolving `:0`) once the
//! server is listening — the handshake `ci.sh` and tests use instead of
//! fixed ports.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use autograph_serve::{ModelRegistry, RegistryConfig, Server, ServerConfig, TelemetryConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Set by the signal handler; the main loop polls it.
static TERM: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    unsafe extern "C" fn on_term(_sig: i32) {
        TERM.store(true, Ordering::SeqCst);
    }
    // libc is already linked through std; declaring `signal` directly
    // avoids a dependency the offline registry could not provide
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_term as *const () as usize);
        signal(SIGINT, on_term as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

struct Args {
    program: String,
    addr: String,
    addr_file: Option<String>,
    workers: usize,
    queue_depth: usize,
    max_connections: usize,
    deadline_ms: u64,
    max_body: usize,
    batch_fns: Vec<String>,
    max_batch: usize,
    exec_threads: usize,
    breaker_threshold: u32,
    breaker_cooldown_ms: u64,
    plan_cache: Option<String>,
    drain_deadline_ms: u64,
    trace_sample: u64,
    trace_ring: usize,
    slo_ms: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: autograph-serve --program FILE [--addr HOST:PORT] [--addr-file FILE]\n\
         \x20  [--workers N] [--queue-depth N] [--max-connections N] [--deadline-ms N]\n\
         \x20  [--max-body BYTES] [--batch-fns f,g] [--max-batch N] [--exec-threads N]\n\
         \x20  [--breaker-threshold N] [--breaker-cooldown-ms N] [--plan-cache DIR]\n\
         \x20  [--drain-deadline-ms N] [--trace-sample N] [--trace-ring N] [--slo-ms N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        program: String::new(),
        addr: "127.0.0.1:0".to_string(),
        addr_file: None,
        workers: 2,
        queue_depth: 64,
        max_connections: 64,
        deadline_ms: 10_000,
        max_body: 8 * 1024 * 1024,
        batch_fns: Vec::new(),
        max_batch: 16,
        exec_threads: 1,
        breaker_threshold: 5,
        breaker_cooldown_ms: 100,
        plan_cache: None,
        drain_deadline_ms: 5_000,
        trace_sample: 0,
        trace_ring: 64,
        slo_ms: 25,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            match it.next() {
                Some(v) => v,
                None => {
                    eprintln!("{name} needs a value");
                    usage()
                }
            }
        };
        match flag.as_str() {
            "--program" => args.program = value("--program"),
            "--addr" => args.addr = value("--addr"),
            "--addr-file" => args.addr_file = Some(value("--addr-file")),
            "--workers" => args.workers = parse_num(&value("--workers"), "--workers"),
            "--queue-depth" => {
                args.queue_depth = parse_num(&value("--queue-depth"), "--queue-depth")
            }
            "--max-connections" => {
                args.max_connections = parse_num(&value("--max-connections"), "--max-connections")
            }
            "--deadline-ms" => {
                args.deadline_ms = parse_num(&value("--deadline-ms"), "--deadline-ms")
            }
            "--max-body" => args.max_body = parse_num(&value("--max-body"), "--max-body"),
            "--batch-fns" => {
                args.batch_fns = value("--batch-fns")
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect()
            }
            "--max-batch" => args.max_batch = parse_num(&value("--max-batch"), "--max-batch"),
            "--exec-threads" => {
                args.exec_threads = parse_num(&value("--exec-threads"), "--exec-threads")
            }
            "--breaker-threshold" => {
                args.breaker_threshold =
                    parse_num(&value("--breaker-threshold"), "--breaker-threshold")
            }
            "--breaker-cooldown-ms" => {
                args.breaker_cooldown_ms =
                    parse_num(&value("--breaker-cooldown-ms"), "--breaker-cooldown-ms")
            }
            "--plan-cache" => args.plan_cache = Some(value("--plan-cache")),
            "--drain-deadline-ms" => {
                args.drain_deadline_ms =
                    parse_num(&value("--drain-deadline-ms"), "--drain-deadline-ms")
            }
            "--trace-sample" => {
                args.trace_sample = parse_num(&value("--trace-sample"), "--trace-sample")
            }
            "--trace-ring" => args.trace_ring = parse_num(&value("--trace-ring"), "--trace-ring"),
            "--slo-ms" => args.slo_ms = parse_num(&value("--slo-ms"), "--slo-ms"),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag '{other}'");
                usage()
            }
        }
    }
    if args.program.is_empty() {
        eprintln!("--program is required");
        usage()
    }
    args
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    match s.parse() {
        Ok(v) => v,
        Err(_) => {
            eprintln!("{flag}: '{s}' is not a number");
            usage()
        }
    }
}

fn main() {
    let args = parse_args();
    autograph_obs::env::maybe_init_from_env();
    autograph_faults::maybe_init_from_env();
    install_signal_handlers();

    let source = match std::fs::read_to_string(&args.program) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {}: {e}", args.program);
            std::process::exit(1);
        }
    };
    let reg_cfg = RegistryConfig {
        exec_threads: args.exec_threads.max(1),
        batch_fns: if args.batch_fns.is_empty() {
            None
        } else {
            Some(args.batch_fns.clone())
        },
        breaker_threshold: args.breaker_threshold,
        breaker_cooldown: Duration::from_millis(args.breaker_cooldown_ms),
        plan_cache: args.plan_cache.clone().map(std::path::PathBuf::from),
    };
    let registry = match ModelRegistry::load(&source, &reg_cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot load {}: {e}", args.program);
            std::process::exit(1);
        }
    };
    eprintln!(
        "loaded {} (content hash {:016x}): {} function(s) staged, {} failed",
        args.program,
        registry.hash,
        registry.entries.len(),
        registry.failed.len()
    );
    for e in &registry.entries {
        eprintln!(
            "  {}({}){}{}",
            e.name,
            e.arg_names.join(", "),
            if e.stateful { " [stateful]" } else { "" },
            if e.batchable.load(Ordering::Relaxed) {
                " [batchable]"
            } else {
                ""
            }
        );
    }
    for f in &registry.failed {
        eprintln!("  {} UNSTAGEABLE: {}", f.name, f.error);
    }
    if registry.entries.is_empty() {
        eprintln!("nothing servable; exiting");
        std::process::exit(1);
    }

    let cfg = ServerConfig {
        addr: args.addr.clone(),
        workers: args.workers.max(1),
        queue_depth: args.queue_depth.max(1),
        max_connections: args.max_connections.max(1),
        default_deadline: Duration::from_millis(args.deadline_ms),
        max_body: args.max_body,
        max_batch: args.max_batch.max(1),
        telemetry: TelemetryConfig {
            trace_sample: args.trace_sample,
            trace_ring: args.trace_ring.max(1),
            slo_ms: args.slo_ms,
        },
    };
    let server = match Server::start(registry, cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind {}: {e}", args.addr);
            std::process::exit(1);
        }
    };
    let addr = server.addr();
    eprintln!("serving on http://{addr} (SIGTERM drains)");
    if let Some(path) = &args.addr_file {
        // written only once the socket is live: the readiness handshake
        if let Err(e) = std::fs::write(path, addr.to_string()) {
            eprintln!("cannot write addr file {path}: {e}");
            std::process::exit(1);
        }
    }

    while !TERM.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!(
        "signal received; draining (deadline {}ms)",
        args.drain_deadline_ms
    );
    let report = server.shutdown(Duration::from_millis(args.drain_deadline_ms));
    if report.clean {
        eprintln!("drained cleanly");
    } else {
        eprintln!(
            "drain deadline hit with {} request(s) in flight",
            report.abandoned
        );
        std::process::exit(1);
    }
}
