//! `autograph-loadgen`: closed-loop load generator for `autograph-serve`.
//!
//! N client threads hammer one function over keep-alive connections and
//! the tool reports admitted-request latency percentiles, throughput,
//! and shed/error rates — both human-readable and as a `BENCH_serve.json`
//! section the `autograph-report diff` perf gate consumes:
//!
//! * `p50_ms` / `p99_ms` — gate **lower-is-better** (admitted requests
//!   only: shed responses are the server *keeping* its latency promise,
//!   not breaking it);
//! * `throughput_rps` — gates **higher-is-better**;
//! * `all_ok` — **must-hold** bool: no 5xx, no transport errors;
//! * `shed_fraction` and the raw counters stay informational.
//!
//! `--json FILE --key threads_4` merges the section into an existing
//! file, so `ci.sh` can run several burst shapes into one artifact.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use autograph_serve::client::{wait_ready, Client};
use autograph_serve::prom::{self, Scrape};
use autograph_serve::server::REQUIRED_METRIC_FAMILIES;
use serde_json::Value;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    addr: Option<String>,
    addr_file: Option<String>,
    function: String,
    body: String,
    threads: usize,
    requests: usize,
    deadline_ms: Option<u64>,
    warmup: usize,
    json: Option<String>,
    key: String,
    scrape_metrics: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: autograph-loadgen (--addr HOST:PORT | --addr-file FILE) --function NAME\n\
         \x20  [--body JSON] [--threads N] [--requests N] [--deadline-ms N] [--warmup N]\n\
         \x20  [--json FILE] [--key SECTION] [--scrape-metrics]"
    );
    std::process::exit(2);
}

/// Latency percentile by the **nearest-rank** definition: over `N`
/// ascending values, the p-th percentile is the value at 1-based rank
/// `⌈p·N⌉` (clamped to `[1, N]`) — an actually-observed sample, never
/// an interpolation. Input is ascending microseconds; the result is
/// milliseconds. Empty input yields 0.
fn percentile_ms(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let n = sorted_us.len();
    let rank = ((p * n as f64).ceil() as usize).clamp(1, n);
    sorted_us[rank - 1] as f64 / 1000.0
}

/// `GET /metrics` and strictly parse/validate the exposition document.
fn scrape_metrics(addr: &str) -> Result<Scrape, String> {
    let mut c = Client::connect(addr).map_err(|e| format!("connect for /metrics: {e}"))?;
    let resp = c
        .request("GET", "/metrics", "", "")
        .map_err(|e| format!("GET /metrics: {e}"))?;
    if resp.status != 200 {
        return Err(format!("/metrics returned {}", resp.status));
    }
    prom::parse_and_validate(&resp.text())
}

/// Cross-scrape invariants: every required family is present after the
/// burst, and no counter (or histogram bucket/sum/count) went backwards.
fn check_scrapes(before: &Scrape, after: &Scrape) -> Result<(), String> {
    for fam in REQUIRED_METRIC_FAMILIES {
        if !after.has_family(fam) {
            return Err(format!("required metric family '{fam}' is missing"));
        }
    }
    let earlier = before.monotonic_samples();
    for (key, v_after) in after.monotonic_samples() {
        if let Some(v_before) = earlier.get(&key) {
            if v_after < *v_before {
                return Err(format!(
                    "counter '{key}' went backwards across scrapes: {v_before} -> {v_after}"
                ));
            }
        }
    }
    Ok(())
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: None,
        addr_file: None,
        function: String::new(),
        body: "{\"args\":[1.0]}".to_string(),
        threads: 2,
        requests: 50,
        deadline_ms: None,
        warmup: 5,
        json: None,
        key: "run".to_string(),
        scrape_metrics: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            match it.next() {
                Some(v) => v,
                None => {
                    eprintln!("{name} needs a value");
                    usage()
                }
            }
        };
        match flag.as_str() {
            "--addr" => args.addr = Some(value("--addr")),
            "--addr-file" => args.addr_file = Some(value("--addr-file")),
            "--function" => args.function = value("--function"),
            "--body" => args.body = value("--body"),
            "--threads" => args.threads = parse_num(&value("--threads"), "--threads"),
            "--requests" => args.requests = parse_num(&value("--requests"), "--requests"),
            "--deadline-ms" => {
                args.deadline_ms = Some(parse_num(&value("--deadline-ms"), "--deadline-ms"))
            }
            "--warmup" => args.warmup = parse_num(&value("--warmup"), "--warmup"),
            "--json" => args.json = Some(value("--json")),
            "--key" => args.key = value("--key"),
            "--scrape-metrics" => args.scrape_metrics = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag '{other}'");
                usage()
            }
        }
    }
    if args.function.is_empty() {
        eprintln!("--function is required");
        usage()
    }
    args
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    match s.parse() {
        Ok(v) => v,
        Err(_) => {
            eprintln!("{flag}: '{s}' is not a number");
            usage()
        }
    }
}

#[derive(Default)]
struct Counters {
    ok: AtomicU64,
    shed: AtomicU64,        // 503
    deadline: AtomicU64,    // 504
    client_4xx: AtomicU64,  // 4xx incl. 499
    server_5xx: AtomicU64,  // 500 (real failures)
    transport: AtomicU64,   // socket-level trouble
    id_mismatch: AtomicU64, // X-Request-Id echo didn't match what we sent
}

fn main() {
    let args = parse_args();
    let addr = match (&args.addr, &args.addr_file) {
        (Some(a), _) => a.clone(),
        (None, Some(path)) => {
            // the server writes the file only once its socket is live;
            // poll so `autograph-serve ... & autograph-loadgen ...` works
            let t0 = std::time::Instant::now();
            loop {
                match std::fs::read_to_string(path) {
                    Ok(s) if !s.trim().is_empty() => break s.trim().to_string(),
                    _ if t0.elapsed() > Duration::from_secs(10) => {
                        eprintln!("addr file {path} never appeared");
                        std::process::exit(1);
                    }
                    _ => std::thread::sleep(Duration::from_millis(50)),
                }
            }
        }
        (None, None) => usage(),
    };
    if !wait_ready(&addr, Duration::from_secs(10)) {
        eprintln!("server at {addr} never became ready");
        std::process::exit(1);
    }

    // warmup primes session pools and the EWMA the shed policy uses
    if args.warmup > 0 {
        if let Ok(mut c) = Client::connect(&addr) {
            for _ in 0..args.warmup {
                let _ = c.run(&args.function, &args.body, args.deadline_ms);
            }
        }
    }

    // scrape /metrics before the burst so the post-burst scrape can
    // assert counters only ever moved forward
    let scrape_before = if args.scrape_metrics {
        match scrape_metrics(&addr) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("pre-burst /metrics scrape failed: {e}");
                std::process::exit(1);
            }
        }
    } else {
        None
    };

    let counters = Arc::new(Counters::default());
    let t0 = Instant::now();
    let handles: Vec<_> = (0..args.threads.max(1))
        .map(|ti| {
            let addr = addr.clone();
            let function = args.function.clone();
            let body = args.body.clone();
            let deadline_ms = args.deadline_ms;
            let requests = args.requests;
            let counters = Arc::clone(&counters);
            std::thread::spawn(move || {
                let run_path = format!("/run/{function}");
                let mut latencies_us: Vec<u64> = Vec::with_capacity(requests);
                let mut client = Client::connect(&addr).ok();
                for seq in 0..requests {
                    let c = match client.as_mut() {
                        Some(c) => c,
                        None => match Client::connect(&addr) {
                            Ok(c) => {
                                client = Some(c);
                                match client.as_mut() {
                                    Some(c) => c,
                                    None => continue,
                                }
                            }
                            Err(_) => {
                                counters.transport.fetch_add(1, Ordering::Relaxed);
                                continue;
                            }
                        },
                    };
                    // every request carries a propagatable id the server
                    // echoes back and threads through its span tree
                    let req_id = format!("lg-{ti}-{seq}");
                    let mut extra = format!("X-Request-Id: {req_id}\r\n");
                    if let Some(ms) = deadline_ms {
                        extra.push_str(&format!("X-Deadline-Ms: {ms}\r\n"));
                    }
                    let rt0 = Instant::now();
                    match c.request("POST", &run_path, &extra, &body) {
                        Ok(resp) => {
                            if resp.header("x-request-id") != Some(req_id.as_str()) {
                                counters.id_mismatch.fetch_add(1, Ordering::Relaxed);
                            }
                            match resp.status {
                                200 => {
                                    counters.ok.fetch_add(1, Ordering::Relaxed);
                                    latencies_us
                                        .push(rt0.elapsed().as_micros().min(u128::from(u64::MAX))
                                            as u64);
                                }
                                503 => {
                                    counters.shed.fetch_add(1, Ordering::Relaxed);
                                }
                                504 => {
                                    counters.deadline.fetch_add(1, Ordering::Relaxed);
                                }
                                s if (400..500).contains(&s) => {
                                    counters.client_4xx.fetch_add(1, Ordering::Relaxed);
                                }
                                _ => {
                                    counters.server_5xx.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            // honor Retry-After so a shedding server sees
                            // well-behaved backoff, not a stampede
                            if resp.status == 503 {
                                if let Some(secs) = resp
                                    .header("retry-after")
                                    .and_then(|v| v.parse::<u64>().ok())
                                {
                                    std::thread::sleep(Duration::from_millis(
                                        (secs * 1000).min(200),
                                    ));
                                }
                            }
                        }
                        Err(_) => {
                            counters.transport.fetch_add(1, Ordering::Relaxed);
                            client = None; // reconnect next iteration
                        }
                    }
                }
                latencies_us
            })
        })
        .collect();
    let mut latencies_us: Vec<u64> = Vec::new();
    for h in handles {
        if let Ok(mut l) = h.join() {
            latencies_us.append(&mut l);
        }
    }
    let wall = t0.elapsed();

    latencies_us.sort_unstable();
    let p50_ms = percentile_ms(&latencies_us, 0.50);
    let p99_ms = percentile_ms(&latencies_us, 0.99);
    let mean_ms = if latencies_us.is_empty() {
        0.0
    } else {
        latencies_us.iter().sum::<u64>() as f64 / latencies_us.len() as f64 / 1000.0
    };
    let ok = counters.ok.load(Ordering::Relaxed);
    let shed = counters.shed.load(Ordering::Relaxed);
    let deadline = counters.deadline.load(Ordering::Relaxed);
    let client_4xx = counters.client_4xx.load(Ordering::Relaxed);
    let server_5xx = counters.server_5xx.load(Ordering::Relaxed);
    let transport = counters.transport.load(Ordering::Relaxed);
    let id_mismatch = counters.id_mismatch.load(Ordering::Relaxed);
    let total = ok + shed + deadline + client_4xx + server_5xx + transport;
    let throughput_rps = ok as f64 / wall.as_secs_f64().max(1e-9);
    let shed_fraction = if total == 0 {
        0.0
    } else {
        shed as f64 / total as f64
    };
    let all_ok = server_5xx == 0 && transport == 0 && id_mismatch == 0;

    // the post-burst scrape must parse, carry every required family, and
    // show every counter at-or-above its pre-burst value
    let metrics_ok = match (&scrape_before, args.scrape_metrics) {
        (Some(before), true) => match scrape_metrics(&addr) {
            Ok(after) => match check_scrapes(before, &after) {
                Ok(()) => {
                    eprintln!(
                        "metrics: {} samples, {} families, counters monotonic",
                        after.samples.len(),
                        after.types.len()
                    );
                    Some(true)
                }
                Err(e) => {
                    eprintln!("metrics validation failed: {e}");
                    Some(false)
                }
            },
            Err(e) => {
                eprintln!("post-burst /metrics scrape failed: {e}");
                Some(false)
            }
        },
        _ => None,
    };

    println!(
        "loadgen {}x{} on {} ({}): {} ok, {} shed, {} deadline, {} 4xx, {} 5xx, {} transport",
        args.threads,
        args.requests,
        args.function,
        addr,
        ok,
        shed,
        deadline,
        client_4xx,
        server_5xx,
        transport
    );
    println!(
        "  latency ms (admitted, nearest-rank): p50 {p50_ms:.3}  p99 {p99_ms:.3}  mean {mean_ms:.3}  |  {throughput_rps:.1} req/s  shed {:.1}%",
        shed_fraction * 100.0
    );
    println!(
        "  request ids lg-0-0 .. lg-{}-{} propagated; {} echo mismatch(es)",
        args.threads.max(1) - 1,
        args.requests.saturating_sub(1),
        id_mismatch
    );

    let mut section = format!(
        "{{\"threads\": {}, \"requests_per_thread\": {}, \"p50_ms\": {p50_ms:.6}, \"p99_ms\": {p99_ms:.6}, \"mean_ms\": {mean_ms:.6}, \"throughput_rps\": {throughput_rps:.6}, \"shed_fraction\": {shed_fraction:.6}, \"completed\": {ok}, \"shed\": {shed}, \"deadline_504\": {deadline}, \"client_4xx\": {client_4xx}, \"server_5xx\": {server_5xx}, \"transport\": {transport}, \"all_ok\": {all_ok}",
        args.threads, args.requests
    );
    if let Some(mok) = metrics_ok {
        section.push_str(&format!(", \"metrics_ok\": {mok}"));
    }
    section.push('}');
    if let Some(path) = &args.json {
        let merged = merge_section(path, &args.key, &section);
        match std::fs::write(path, merged) {
            Ok(()) => eprintln!("wrote {path} (section '{}')", args.key),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if !all_ok || metrics_ok == Some(false) {
        std::process::exit(1);
    }
}

/// Merge `section` (a JSON object literal) under `key` into the file's
/// existing top-level object, preserving other sections.
fn merge_section(path: &str, key: &str, section: &str) -> String {
    let existing = std::fs::read_to_string(path)
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok());
    let mut out = String::from("{\n  \"bench\": \"serve\"");
    if let Some(Value::Object(map)) = existing {
        for (k, v) in &map {
            if k == key || k == "bench" {
                continue;
            }
            out.push_str(",\n  \"");
            out.push_str(k);
            out.push_str("\": ");
            let mut buf = String::new();
            autograph_serve::json::write_value(v, &mut buf);
            out.push_str(&buf);
        }
    }
    out.push_str(",\n  \"");
    out.push_str(key);
    out.push_str("\": ");
    out.push_str(section);
    out.push_str("\n}\n");
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::percentile_ms;

    #[test]
    fn nearest_rank_matches_the_definition() {
        // canonical nearest-rank example: N=5, p95 → rank ⌈0.95·5⌉ = 5
        let v = [15_000, 20_000, 35_000, 40_000, 50_000];
        assert_eq!(percentile_ms(&v, 0.05), 15.0); // rank ⌈0.25⌉ = 1
        assert_eq!(percentile_ms(&v, 0.30), 20.0); // rank ⌈1.5⌉ = 2
        assert_eq!(percentile_ms(&v, 0.40), 20.0); // rank 2 exactly
        assert_eq!(percentile_ms(&v, 0.50), 35.0); // rank ⌈2.5⌉ = 3
        assert_eq!(percentile_ms(&v, 0.95), 50.0); // rank ⌈4.75⌉ = 5
        assert_eq!(percentile_ms(&v, 1.00), 50.0); // rank 5
    }

    #[test]
    fn percentile_always_returns_an_observed_sample() {
        let v: Vec<u64> = (1..=100).map(|i| i * 1000).collect();
        for p in [0.01, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let got = percentile_ms(&v, p);
            assert!(
                v.iter().any(|&us| us as f64 / 1000.0 == got),
                "p{p} = {got} is not an observed value"
            );
        }
        // p99 over 100 samples is exactly the 99th value (rank 99)
        assert_eq!(percentile_ms(&v, 0.99), 99.0);
    }

    #[test]
    fn percentile_edge_cases() {
        assert_eq!(percentile_ms(&[], 0.5), 0.0);
        assert_eq!(percentile_ms(&[7_000], 0.0), 7.0); // rank clamps to 1
        assert_eq!(percentile_ms(&[7_000], 1.0), 7.0);
        assert_eq!(percentile_ms(&[1_000, 2_000], 0.0), 1.0);
    }
}
