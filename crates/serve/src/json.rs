//! The wire format: tensors and errors as JSON.
//!
//! ## Tensor encoding
//!
//! ```json
//! {"dtype": "f32", "shape": [2, 3], "data": [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]}
//! ```
//!
//! `dtype` is `f32` (default), `i64`, or `bool`; `shape` `[]` is a
//! scalar; `data` is the row-major flat buffer. A bare JSON number is
//! shorthand for an `f32` scalar, a bare `true`/`false` for a `bool`
//! scalar. Non-finite floats round-trip as the strings `"NaN"`,
//! `"Infinity"`, `"-Infinity"` (strict JSON has no literals for them).
//!
//! f32 payloads are emitted with Rust's shortest-round-trip formatting,
//! so a value parsed back from a response is **bitwise identical** to
//! the tensor the server computed — the serving layer's differential
//! tests compare against direct `Session::run` at the bit level.
//!
//! ## Error encoding
//!
//! ```json
//! {"error": {"kind": "graph_error", "status": 500,
//!            "message": "graph execution error: ... (node 'matmul_3')",
//!            "node": "matmul_3", "line": 4, "col": 9,
//!            "source_line": "    y = tf.matmul(a, b)"}}
//! ```
//!
//! `node`/`line`/`col`/`source_line` appear when the underlying
//! `GraphError` carries attribution (the provenance machinery of the
//! explain layer); budget errors (`shed`, `deadline_exceeded`, ...) carry
//! `retry_after_ms` instead.

use crate::error::ServeError;
use autograph_tensor::{DType, Tensor};
use serde_json::Value;

/// Escape a string for embedding in a JSON document.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format one f32 so that parsing the text back yields the same bits.
/// Rust's `{}` prints the shortest decimal that round-trips; NaN and the
/// infinities become strings (strict JSON has no literal for them).
fn fmt_f32(v: f32, out: &mut String) {
    if v.is_nan() {
        out.push_str("\"NaN\"");
    } else if v == f32::INFINITY {
        out.push_str("\"Infinity\"");
    } else if v == f32::NEG_INFINITY {
        out.push_str("\"-Infinity\"");
    } else {
        out.push_str(&format!("{v}"));
        // `1` would parse back as an integer-looking float; that is fine,
        // the decoder always narrows through f64 to f32
    }
}

/// Serialize one tensor into the wire object.
pub fn write_tensor(t: &Tensor, out: &mut String) {
    out.push_str("{\"dtype\":\"");
    out.push_str(match t.dtype() {
        DType::F32 => "f32",
        DType::I64 => "i64",
        DType::Bool => "bool",
    });
    out.push_str("\",\"shape\":[");
    for (i, d) in t.shape().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&d.to_string());
    }
    out.push_str("],\"data\":[");
    match t.dtype() {
        DType::F32 => {
            for (i, v) in t.as_f32().unwrap_or(&[]).iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                fmt_f32(*v, out);
            }
        }
        DType::I64 => {
            for (i, v) in t.as_i64().unwrap_or(&[]).iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&v.to_string());
            }
        }
        DType::Bool => {
            for (i, v) in t.as_bool().unwrap_or(&[]).iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(if *v { "true" } else { "false" });
            }
        }
    }
    out.push_str("]}");
}

/// The success response body: `{"outputs": [<tensor>, ...]}`.
pub fn outputs_body(outputs: &[Tensor]) -> String {
    let mut out = String::from("{\"outputs\":[");
    for (i, t) in outputs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_tensor(t, &mut out);
    }
    out.push_str("]}");
    out
}

/// The error response body (see the module docs for the schema).
/// `source` is the loaded program's text, used to echo the offending
/// line when the error carries a span. `request_id` (when the error
/// belongs to a traced `/run` request) is echoed so a failing response
/// can be correlated with its `/debug/trace` span tree and log lines.
pub fn error_body(err: &ServeError, source: Option<&str>, request_id: Option<&str>) -> String {
    let mut out = String::from("{\"error\":{\"kind\":\"");
    out.push_str(err.kind());
    out.push_str("\",\"status\":");
    out.push_str(&err.status().to_string());
    out.push_str(",\"message\":\"");
    out.push_str(&escape(&err.to_string()));
    out.push('"');
    if let Some(id) = request_id {
        out.push_str(",\"request_id\":\"");
        out.push_str(&escape(id));
        out.push('"');
    }
    if let Some(ms) = err.retry_after_ms() {
        out.push_str(&format!(",\"retry_after_ms\":{ms}"));
    }
    if let Some(ge) = err.graph_error() {
        if let Some(node) = &ge.node {
            out.push_str(&format!(",\"node\":\"{}\"", escape(node)));
        }
        if let Some(span) = &ge.span {
            out.push_str(&format!(",\"line\":{},\"col\":{}", span.line, span.col));
            if let Some(src) = source {
                if let Some(text) = src.lines().nth(span.line.saturating_sub(1) as usize) {
                    out.push_str(&format!(",\"source_line\":\"{}\"", escape(text)));
                }
            }
        }
    }
    out.push_str("}}");
    out
}

fn parse_f32(v: &Value) -> Result<f32, String> {
    match v {
        Value::Number(n) => Ok(*n as f32),
        Value::String(s) => match s.as_str() {
            "NaN" => Ok(f32::NAN),
            "Infinity" => Ok(f32::INFINITY),
            "-Infinity" => Ok(f32::NEG_INFINITY),
            other => Err(format!("'{other}' is not an f32")),
        },
        _ => Err("expected a number".to_string()),
    }
}

/// Decode one tensor from its wire object (or scalar shorthand).
pub fn parse_tensor(v: &Value) -> Result<Tensor, String> {
    match v {
        Value::Number(n) => Ok(Tensor::scalar_f32(*n as f32)),
        Value::Bool(b) => Ok(Tensor::scalar_bool(*b)),
        Value::Object(_) => {
            let dtype = match v.get("dtype").and_then(Value::as_str) {
                None | Some("f32") => DType::F32,
                Some("i64") => DType::I64,
                Some("bool") => DType::Bool,
                Some(other) => return Err(format!("unknown dtype '{other}'")),
            };
            let shape: Vec<usize> = match v.get("shape") {
                Some(Value::Array(dims)) => dims
                    .iter()
                    .map(|d| {
                        d.as_u64()
                            .map(|u| u as usize)
                            .ok_or_else(|| "shape dims must be non-negative integers".to_string())
                    })
                    .collect::<Result<_, _>>()?,
                _ => return Err("tensor object needs a \"shape\" array".to_string()),
            };
            let data = match v.get("data") {
                Some(Value::Array(items)) => items,
                _ => return Err("tensor object needs a \"data\" array".to_string()),
            };
            let expected: usize = shape.iter().product();
            if data.len() != expected {
                return Err(format!(
                    "shape {shape:?} wants {expected} elements, data has {}",
                    data.len()
                ));
            }
            let t = match dtype {
                DType::F32 => Tensor::from_vec(
                    data.iter().map(parse_f32).collect::<Result<Vec<_>, _>>()?,
                    &shape,
                ),
                DType::I64 => Tensor::from_vec_i64(
                    data.iter()
                        .map(|d| d.as_i64().ok_or_else(|| "expected an i64".to_string()))
                        .collect::<Result<Vec<_>, _>>()?,
                    &shape,
                ),
                DType::Bool => Tensor::from_vec_bool(
                    data.iter()
                        .map(|d| d.as_bool().ok_or_else(|| "expected a bool".to_string()))
                        .collect::<Result<Vec<_>, _>>()?,
                    &shape,
                ),
            };
            t.map_err(|e| e.to_string())
        }
        _ => Err("argument must be a number, bool, or tensor object".to_string()),
    }
}

/// Decode a `POST /run/<fn>` body: `{"args": [<tensor>, ...]}`.
pub fn parse_run_request(body: &str) -> Result<Vec<Tensor>, String> {
    let doc = serde_json::from_str(body).map_err(|e| format!("invalid JSON: {e}"))?;
    let args = match doc.get("args") {
        Some(Value::Array(items)) => items,
        _ => return Err("request body needs an \"args\" array".to_string()),
    };
    args.iter()
        .enumerate()
        .map(|(i, a)| parse_tensor(a).map_err(|e| format!("args[{i}]: {e}")))
        .collect()
}

/// Decode a success response body back into tensors (client side; also
/// what the differential tests use for bit-level comparison).
pub fn parse_outputs(body: &str) -> Result<Vec<Tensor>, String> {
    let doc = serde_json::from_str(body).map_err(|e| format!("invalid JSON: {e}"))?;
    let outs = match doc.get("outputs") {
        Some(Value::Array(items)) => items,
        _ => return Err("response body has no \"outputs\" array".to_string()),
    };
    outs.iter()
        .enumerate()
        .map(|(i, o)| parse_tensor(o).map_err(|e| format!("outputs[{i}]: {e}")))
        .collect()
}

/// Serialize a parsed [`Value`] back to JSON text (the vendored
/// serde_json is parse-only; loadgen uses this to merge bench sections).
pub fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => {
            if n.fract() == 0.0 && n.abs() < 9e15 {
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&format!("{n}"));
            }
        }
        Value::String(s) => {
            out.push('"');
            out.push_str(&escape(s));
            out.push('"');
        }
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                out.push_str(&escape(k));
                out.push_str("\":");
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn roundtrip(t: &Tensor) -> Tensor {
        let mut s = String::new();
        write_tensor(t, &mut s);
        let doc = serde_json::from_str(&s).unwrap();
        parse_tensor(&doc).unwrap()
    }

    #[test]
    fn f32_roundtrip_is_bitwise() {
        let vals = vec![
            0.0f32,
            -0.0,
            1.0,
            0.1,
            1.0 / 3.0,
            f32::MIN_POSITIVE,
            f32::MAX,
            -2.5e-7,
            std::f32::consts::PI,
        ];
        let t = Tensor::from_vec(vals.clone(), &[vals.len()]).unwrap();
        let back = roundtrip(&t);
        for (a, b) in t.as_f32().unwrap().iter().zip(back.as_f32().unwrap()) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }
    }

    #[test]
    fn non_finite_roundtrip() {
        let t = Tensor::from_vec(vec![f32::NAN, f32::INFINITY, f32::NEG_INFINITY], &[3]).unwrap();
        let back = roundtrip(&t);
        let b = back.as_f32().unwrap();
        assert!(b[0].is_nan());
        assert_eq!(b[1], f32::INFINITY);
        assert_eq!(b[2], f32::NEG_INFINITY);
    }

    #[test]
    fn i64_and_bool_roundtrip() {
        let t = Tensor::from_vec_i64(vec![-3, 0, 9_000_000_000], &[3]).unwrap();
        assert_eq!(roundtrip(&t).as_i64().unwrap(), t.as_i64().unwrap());
        let t = Tensor::from_vec_bool(vec![true, false], &[2]).unwrap();
        assert_eq!(roundtrip(&t).as_bool().unwrap(), t.as_bool().unwrap());
    }

    #[test]
    fn scalar_shorthand() {
        let doc = serde_json::from_str(
            "{\"args\": [2.5, true, {\"dtype\":\"i64\",\"shape\":[],\"data\":[7]}]}",
        )
        .unwrap();
        let args: Vec<Tensor> = match doc.get("args").unwrap() {
            Value::Array(items) => items.iter().map(|a| parse_tensor(a).unwrap()).collect(),
            _ => panic!(),
        };
        assert_eq!(args[0].scalar_value_f32().unwrap(), 2.5);
        assert_eq!(args[1].as_bool().unwrap(), &[true]);
        assert_eq!(args[2].as_i64().unwrap(), &[7]);
    }

    #[test]
    fn run_request_errors_are_located() {
        assert!(parse_run_request("{}").unwrap_err().contains("args"));
        let e = parse_run_request("{\"args\":[{\"shape\":[2],\"data\":[1.0]}]}").unwrap_err();
        assert!(e.contains("args[0]"), "{e}");
        assert!(e.contains("wants 2 elements"), "{e}");
    }

    #[test]
    fn outputs_body_parses_back() {
        let t1 = Tensor::from_vec(vec![1.5, -2.5], &[2]).unwrap();
        let t2 = Tensor::scalar_i64(4);
        let body = outputs_body(&[t1.clone(), t2.clone()]);
        let outs = parse_outputs(&body).unwrap();
        assert_eq!(outs[0].as_f32().unwrap(), t1.as_f32().unwrap());
        assert_eq!(outs[1].as_i64().unwrap(), t2.as_i64().unwrap());
    }

    #[test]
    fn error_body_carries_attribution() {
        use autograph_graph::GraphError;
        use autograph_pylang::Span;
        let ge = GraphError::runtime("division by zero")
            .at_node("div_3")
            .at_span(Span::new(2, 5));
        let body = error_body(
            &ServeError::Graph(ge),
            Some("def f(x):\n    return x / 0.0\n"),
            Some("req-42"),
        );
        let doc = serde_json::from_str(&body).unwrap();
        let err = doc.get("error").unwrap();
        assert_eq!(err.get("kind").unwrap().as_str().unwrap(), "graph_error");
        assert_eq!(err.get("status").unwrap().as_u64().unwrap(), 500);
        assert_eq!(err.get("request_id").unwrap().as_str().unwrap(), "req-42");
        assert_eq!(err.get("node").unwrap().as_str().unwrap(), "div_3");
        assert_eq!(err.get("line").unwrap().as_u64().unwrap(), 2);
        assert_eq!(
            err.get("source_line").unwrap().as_str().unwrap(),
            "    return x / 0.0"
        );
    }

    #[test]
    fn shed_body_carries_retry_after() {
        let body = error_body(
            &ServeError::Shed {
                reason: "queue_full".into(),
                retry_after_ms: 40,
            },
            None,
            None,
        );
        let doc = serde_json::from_str(&body).unwrap();
        let err = doc.get("error").unwrap();
        assert_eq!(err.get("kind").unwrap().as_str().unwrap(), "shed");
        assert_eq!(err.get("retry_after_ms").unwrap().as_u64().unwrap(), 40);
    }

    #[test]
    fn write_value_roundtrips() {
        let text = "{\"a\":[1,2.5,\"x\\n\"],\"b\":{\"c\":true,\"d\":null}}";
        let doc = serde_json::from_str(text).unwrap();
        let mut out = String::new();
        write_value(&doc, &mut out);
        let re = serde_json::from_str(&out).unwrap();
        assert_eq!(doc, re);
    }
}
