//! The server proper: acceptor, connection threads, executor workers,
//! and the drain choreography that ties SIGTERM to "finish what you
//! started, refuse the rest".
//!
//! ## Thread anatomy
//!
//! ```text
//! acceptor ── spawns ──► connection thread (≤ max_connections)
//!                          │  parse HTTP, decode args, breaker check
//!                          │  try_admit ──► AdmissionQueue ◄── pop ── worker × N
//!                          │                                     │ batch? run graph
//!                          ◄───────────── mpsc response ─────────┘
//! ```
//!
//! Connection threads never execute graphs; workers never touch
//! sockets. The queue between them is the only coupling, so overload
//! shows up as queue depth — which admission turns into 503s — instead
//! of unbounded thread pileup or latency.

use crate::admission::{AdmissionQueue, Job};
use crate::batch;
use crate::breaker::Admit;
use crate::error::ServeError;
use crate::http::{HttpConn, ReadError, Request};
use crate::json;
use crate::prom::PromWriter;
use crate::registry::{feeds, FnEntry, ModelRegistry};
use crate::telemetry::{FnMetrics, RequestTrace, Telemetry, TelemetryConfig};
use autograph_graph::run::{CancelToken, RunOptions};
use autograph_obs::{FanoutRecorder, Recorder};
use autograph_tensor::Tensor;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning. `Default` is sized for a small container.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Executor workers (graph runs in flight).
    pub workers: usize,
    /// Admission queue capacity.
    pub queue_depth: usize,
    /// Concurrent connections; beyond this, accepts are refused at the
    /// socket (the listener simply stops accepting).
    pub max_connections: usize,
    /// Deadline applied when a request carries no `X-Deadline-Ms`.
    pub default_deadline: Duration,
    /// Largest accepted request body.
    pub max_body: usize,
    /// Largest batch the worker will assemble (which functions are
    /// batchable at all is decided at registry load, see
    /// [`crate::registry::RegistryConfig::batch_fns`]).
    pub max_batch: usize,
    /// Telemetry plane tuning (trace sampling, ring size, SLO).
    pub telemetry: TelemetryConfig,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_depth: 64,
            max_connections: 64,
            default_deadline: Duration::from_secs(10),
            max_body: 8 * 1024 * 1024,
            max_batch: 16,
            telemetry: TelemetryConfig::default(),
        }
    }
}

/// Counters beyond admission's, exported via `/stats`.
#[derive(Default)]
pub struct ServerStats {
    /// Responses written, by class.
    pub resp_2xx: AtomicU64,
    /// 4xx responses (bad request / unknown function / cancelled-499).
    pub resp_4xx: AtomicU64,
    /// 5xx responses (shed, breaker, graph errors, deadline).
    pub resp_5xx: AtomicU64,
    /// Batched runs executed.
    pub batches: AtomicU64,
    /// Total members across batched runs.
    pub batch_members: AtomicU64,
    /// Batched runs that fell back to individual execution.
    pub batch_fallbacks: AtomicU64,
    /// Runs cancelled because the client disconnected.
    pub cancelled: AtomicU64,
    /// Worker panics contained into 500s.
    pub worker_panics: AtomicU64,
}

struct Shared {
    registry: ModelRegistry,
    queue: AdmissionQueue,
    cfg: ServerConfig,
    draining: AtomicBool,
    conns: AtomicUsize,
    inflight: AtomicUsize,
    stats: ServerStats,
    started: Instant,
    tel: Arc<Telemetry>,
}

/// A running server. Dropping it without [`Server::shutdown`] aborts
/// ungracefully (threads are detached); call `shutdown` for the drain
/// path.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    acceptor: Option<JoinHandle<()>>,
    /// Whether this server installed the telemetry recorder (sampling
    /// on), plus whatever recorder was installed before, to restore at
    /// shutdown.
    recorder_installed: bool,
    prev_recorder: Option<Arc<dyn Recorder>>,
}

/// What `shutdown` observed.
#[derive(Debug)]
pub struct DrainReport {
    /// Whether all in-flight work finished inside the drain deadline.
    pub clean: bool,
    /// Requests still in flight when the deadline hit (0 when clean).
    pub abandoned: usize,
}

impl Server {
    /// Bind, spawn workers + acceptor, and start serving `registry`.
    ///
    /// # Errors
    ///
    /// Propagates socket bind failures.
    pub fn start(registry: ModelRegistry, cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let queue = AdmissionQueue::new(cfg.queue_depth, cfg.workers.max(1));
        let fn_names: Vec<String> = registry.entries.iter().map(|e| e.name.clone()).collect();
        let tel = Telemetry::new(&fn_names, cfg.telemetry.clone());
        // the tensor ledger feeds the live/peak bytes gauges in /metrics
        autograph_tensor::mem::track_begin();
        // Tracing needs the executor's obs spans, and any installed
        // recorder drops the bytecode VM into its exact fallback — so the
        // telemetry recorder only goes in when sampling is actually on,
        // composed with (and later restored to) whatever was installed.
        let mut recorder_installed = false;
        let mut prev_recorder = None;
        if cfg.telemetry.trace_sample > 0 {
            let prev = autograph_obs::uninstall();
            let tel_rec: Arc<dyn Recorder> = Arc::clone(&tel) as Arc<dyn Recorder>;
            let installed: Arc<dyn Recorder> = match &prev {
                Some(p) => Arc::new(FanoutRecorder::new(vec![Arc::clone(p), tel_rec])),
                None => tel_rec,
            };
            autograph_obs::install(installed);
            recorder_installed = true;
            prev_recorder = prev;
        }
        let shared = Arc::new(Shared {
            registry,
            queue,
            cfg,
            draining: AtomicBool::new(false),
            conns: AtomicUsize::new(0),
            inflight: AtomicUsize::new(0),
            stats: ServerStats::default(),
            started: Instant::now(),
            tel,
        });
        let workers = (0..shared.cfg.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
            })
            .collect::<io::Result<Vec<_>>>()?;
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("serve-acceptor".to_string())
                .spawn(move || accept_loop(&listener, &shared))?
        };
        Ok(Server {
            addr,
            shared,
            workers,
            acceptor: Some(acceptor),
            recorder_installed,
            prev_recorder,
        })
    }

    /// The bound address (real port even when configured as `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begin refusing new work without blocking: the acceptor stops,
    /// admission answers 503 `draining`. Idempotent.
    pub fn start_drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.queue.start_drain();
    }

    /// Graceful shutdown: stop accepting, let queued + in-flight work
    /// finish for up to `drain_deadline`, then return what happened.
    pub fn shutdown(mut self, drain_deadline: Duration) -> DrainReport {
        self.start_drain();
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        let t0 = Instant::now();
        // workers exit once the queue is drained
        for w in self.workers.drain(..) {
            let remaining = drain_deadline.saturating_sub(t0.elapsed());
            if remaining.is_zero() {
                break; // abandoned threads are detached, not joined
            }
            let _ = w.join();
        }
        // connection threads finish writing responses
        while self.shared.inflight.load(Ordering::SeqCst) > 0 && t0.elapsed() < drain_deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let abandoned = self.shared.inflight.load(Ordering::SeqCst);
        // restore whatever recorder was installed before this server
        if self.recorder_installed {
            let _ = autograph_obs::uninstall();
            if let Some(prev) = self.prev_recorder.take() {
                autograph_obs::install(prev);
            }
        }
        DrainReport {
            clean: abandoned == 0,
            abandoned,
        }
    }

    /// Render `/stats` (also used by tests and the loadgen).
    pub fn stats_json(&self) -> String {
        stats_json(&self.shared)
    }

    /// Render `/metrics` (the Prometheus text document).
    pub fn metrics_text(&self) -> String {
        metrics_text(&self.shared)
    }

    /// The server's telemetry plane.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.shared.tel
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        if shared.draining.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.conns.load(Ordering::SeqCst) >= shared.cfg.max_connections {
                    // refuse at the door with a shed, not a hang
                    let mut conn = HttpConn::new(stream, 0);
                    let err = ServeError::Shed {
                        reason: "connection_limit".to_string(),
                        retry_after_ms: 100,
                    };
                    let _ = conn.write_response(
                        err.status(),
                        &retry_headers(&err),
                        &json::error_body(&err, None, None),
                    );
                    continue;
                }
                shared.conns.fetch_add(1, Ordering::SeqCst);
                let conn_shared = Arc::clone(shared);
                let spawned = std::thread::Builder::new()
                    .name("serve-conn".to_string())
                    .spawn(move || {
                        connection_loop(stream, &conn_shared);
                        conn_shared.conns.fetch_sub(1, Ordering::SeqCst);
                    });
                if spawned.is_err() {
                    shared.conns.fetch_sub(1, Ordering::SeqCst);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                // idle tick doubles as the window-ring rotation heartbeat
                shared.tel.maybe_rotate();
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn retry_headers(err: &ServeError) -> Vec<(&'static str, String)> {
    match err.retry_after_ms() {
        // Retry-After is whole seconds; round up so "10ms" isn't "0"
        Some(ms) => vec![("Retry-After", ms.div_ceil(1000).max(1).to_string())],
        None => Vec::new(),
    }
}

fn connection_loop(stream: TcpStream, shared: &Arc<Shared>) {
    // Nagle + the peer's delayed ACK would add ~40ms to every
    // keep-alive response written as head + body; send eagerly
    let _ = stream.set_nodelay(true);
    // short read timeout so idle keep-alive connections notice drain
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut conn = HttpConn::new(stream, shared.cfg.max_body);
    loop {
        let req = match conn.read_request() {
            Ok(r) => r,
            Err(ReadError::Closed) => return,
            Err(ReadError::Io(e))
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shared.draining.load(Ordering::SeqCst) {
                    return; // idle connection during drain: close
                }
                continue;
            }
            Err(ReadError::Io(_)) => return,
            Err(ReadError::Malformed(m)) => {
                let err = ServeError::BadRequest(m);
                let _ = conn.write_response(err.status(), &[], &json::error_body(&err, None, None));
                return;
            }
        };
        let wants_close = req.wants_close();
        shared.inflight.fetch_add(1, Ordering::SeqCst);
        let keep = handle_request(&mut conn, &req, shared);
        shared.inflight.fetch_sub(1, Ordering::SeqCst);
        if !keep || wants_close {
            return;
        }
    }
}

/// Route and answer one request. Returns whether to keep the connection.
fn handle_request(conn: &mut HttpConn, req: &Request, shared: &Arc<Shared>) -> bool {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            let draining = shared.draining.load(Ordering::SeqCst);
            let body = format!(
                "{{\"status\":\"{}\",\"uptime_ms\":{}}}",
                if draining { "draining" } else { "ok" },
                shared.started.elapsed().as_millis()
            );
            conn.write_response(if draining { 503 } else { 200 }, &[], &body)
                .is_ok()
        }
        ("GET", "/stats") => conn.write_response(200, &[], &stats_json(shared)).is_ok(),
        ("GET", "/metrics") => conn
            .write_response_typed(200, "text/plain; version=0.0.4", &[], &metrics_text(shared))
            .is_ok(),
        ("GET", path) if path == "/debug/trace" || path.starts_with("/debug/trace?") => {
            let n = path
                .split_once('?')
                .and_then(|(_, q)| q.split('&').find_map(|kv| kv.strip_prefix("n=")))
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(shared.cfg.telemetry.trace_ring);
            conn.write_response(200, &[], &shared.tel.traces_json(n))
                .is_ok()
        }
        ("POST", "/admin/drain") => {
            shared.draining.store(true, Ordering::SeqCst);
            shared.queue.start_drain();
            conn.write_response(200, &[], "{\"status\":\"draining\"}")
                .is_ok()
        }
        ("POST", path) if path.starts_with("/run/") => {
            let name = &path["/run/".len()..];
            let trace = shared.tel.begin_request(req.request_id(), name);
            let budget = req
                .deadline_ms()
                .map(Duration::from_millis)
                .unwrap_or(shared.cfg.default_deadline);
            let t0 = Instant::now();
            let result = run_request(conn, req, name, shared, &trace, budget);
            write_run_response(conn, shared, &trace, t0, budget, result)
        }
        (_, path) if path.starts_with("/run/") => {
            let err = ServeError::BadRequest(format!("{} not allowed on {path}", req.method));
            let _ = conn.write_response(405, &[], &json::error_body(&err, None, None));
            true
        }
        _ => {
            let err = ServeError::UnknownFunction(format!("no route for {}", req.path));
            let _ = conn.write_response(err.status(), &[], &json::error_body(&err, None, None));
            true
        }
    }
}

fn write_run_response(
    conn: &mut HttpConn,
    shared: &Arc<Shared>,
    trace: &Arc<RequestTrace>,
    t0: Instant,
    budget: Duration,
    result: Result<Vec<Tensor>, ServeError>,
) -> bool {
    let respond_start = autograph_obs::now_ns();
    let result = match autograph_faults::inject("serve", "respond") {
        Ok(()) => result,
        Err(fault) => {
            autograph_obs::count("serve", "fault_respond", 1);
            Err(ServeError::Internal(format!("injected fault: {fault}")))
        }
    };
    let (status, mut headers, body) = match &result {
        Ok(outputs) => {
            shared.stats.resp_2xx.fetch_add(1, Ordering::Relaxed);
            (200u16, Vec::new(), json::outputs_body(outputs))
        }
        Err(err) => {
            let status = err.status();
            if status >= 500 {
                shared.stats.resp_5xx.fetch_add(1, Ordering::Relaxed);
            } else {
                shared.stats.resp_4xx.fetch_add(1, Ordering::Relaxed);
            }
            if matches!(err, ServeError::Cancelled) {
                shared.stats.cancelled.fetch_add(1, Ordering::Relaxed);
            }
            let body = json::error_body(err, Some(&shared.registry.source), Some(&trace.id));
            (status, retry_headers(err), body)
        }
    };
    headers.push(("X-Request-Id", trace.id.clone()));
    let total_ns = t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
    shared.tel.latency_all.record(total_ns);
    if let Some(m) = shared.tel.for_fn(&trace.fn_name) {
        m.count_status(status);
        m.latency.record(total_ns);
        let budget_ns = (budget.as_nanos().min(u128::from(u64::MAX)) as u64).max(1);
        m.budget_permille
            .record(total_ns.saturating_mul(1000) / budget_ns);
    }
    let keep = conn.write_response(status, &headers, &body).is_ok();
    trace.phase_from("respond", respond_start);
    shared.tel.finish_request(trace, status, total_ns);
    // a cancelled run means the client is gone anyway
    keep && !matches!(result, Err(ServeError::Cancelled))
}

/// Decode, admit and await one `POST /run/<fn>`.
fn run_request(
    conn: &HttpConn,
    req: &Request,
    name: &str,
    shared: &Arc<Shared>,
    trace: &Arc<RequestTrace>,
    budget: Duration,
) -> Result<Vec<Tensor>, ServeError> {
    let decode_start = autograph_obs::now_ns();
    let entry = match shared.registry.get(name) {
        Some(e) => Arc::clone(e),
        None => {
            let detail = match shared.registry.staging_error(name) {
                Some(err) => format!("'{name}' failed staging: {err}"),
                None => format!("'{name}' is not defined by the loaded program"),
            };
            return Err(ServeError::UnknownFunction(detail));
        }
    };
    let body = std::str::from_utf8(&req.body)
        .map_err(|_| ServeError::BadRequest("request body is not UTF-8".to_string()))?;
    let args = json::parse_run_request(body).map_err(ServeError::BadRequest)?;
    if args.len() != entry.arg_names.len() {
        return Err(ServeError::BadRequest(format!(
            "'{name}' takes {} argument(s), got {}",
            entry.arg_names.len(),
            args.len()
        )));
    }
    trace.phase_from("decode", decode_start);
    // fast-fail before consuming queue space
    match entry.breaker.admit() {
        Admit::Yes | Admit::Probe => {}
        Admit::No { retry_after } => {
            return Err(ServeError::BreakerOpen {
                retry_after_ms: retry_after.as_millis() as u64,
            })
        }
    }
    let admit_start = autograph_obs::now_ns();
    let now = Instant::now();
    let cancel = CancelToken::new();
    let (tx, rx) = sync_channel(1);
    shared.queue.try_admit(Job {
        entry,
        args,
        enqueued: now,
        deadline: now + budget,
        cancel: cancel.clone(),
        resp: tx,
        trace: Arc::clone(trace),
    })?;
    trace.phase_from("admit", admit_start);
    await_result(conn, &rx, cancel, now + budget)
}

/// Wait for the worker's answer while watching the socket for client
/// disconnect (which cancels the run).
fn await_result(
    conn: &HttpConn,
    rx: &Receiver<Result<Vec<Tensor>, ServeError>>,
    cancel: CancelToken,
    deadline: Instant,
) -> Result<Vec<Tensor>, ServeError> {
    // hard cap: the graph run enforces the deadline itself, this bound
    // only guards against a lost worker — a hung connection is the one
    // failure mode this server must never exhibit
    let hard_cap = deadline + Duration::from_secs(10);
    loop {
        match rx.recv_timeout(Duration::from_millis(25)) {
            Ok(result) => return result,
            Err(RecvTimeoutError::Disconnected) => {
                return Err(ServeError::Internal(
                    "worker dropped the response channel".to_string(),
                ))
            }
            Err(RecvTimeoutError::Timeout) => {
                if !cancel.is_cancelled() && conn.peer_closed() {
                    cancel.cancel();
                    // keep waiting: the worker will answer Cancelled
                }
                if Instant::now() > hard_cap {
                    return Err(ServeError::Internal(
                        "run overran its deadline and the hard cap".to_string(),
                    ));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// workers

/// Record how long a job sat queued — called exactly once per job, at
/// the moment a worker takes ownership of it (pop or batch harvest).
fn note_dequeue(shared: &Arc<Shared>, job: &Job) {
    let waited_ns = job.enqueued.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
    if let Some(m) = shared.tel.for_fn(&job.entry.name) {
        m.queue_wait.record(waited_ns);
    }
    job.trace.phase(
        "queue_wait",
        autograph_obs::now_ns().saturating_sub(waited_ns),
        waited_ns,
    );
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        note_dequeue(shared, &job);
        let batchable = job.entry.batchable.load(Ordering::Relaxed)
            && !job.entry.stateful
            && shared.cfg.max_batch > 1
            && autograph_faults::inject("serve", "batcher").is_ok();
        if batchable {
            let members = {
                let mut m = vec![job];
                let probe = &m[0];
                let assembly_start = autograph_obs::now_ns();
                let taken = shared
                    .queue
                    .take_compatible(probe, shared.cfg.max_batch - 1, |c| {
                        batch::compatible(probe, c)
                    });
                probe.trace.phase_from("batch_assembly", assembly_start);
                for t in &taken {
                    note_dequeue(shared, t);
                }
                m.extend(taken);
                m
            };
            if members.len() > 1 {
                run_batch(shared, members);
                continue;
            }
            run_single(
                shared,
                members
                    .into_iter()
                    .next()
                    .unwrap_or_else(|| unreachable!("members built from vec![job]")),
            );
        } else {
            run_single(shared, job);
        }
    }
}

/// Execute one job on its own; report to breaker, EWMA, telemetry and
/// the waiting connection.
fn run_single(shared: &Arc<Shared>, job: Job) {
    let fnm = shared.tel.for_fn(&job.entry.name).cloned();
    // while the ctx guard lives, executor obs spans closing on this
    // thread are attributed to this request's trace
    let _ctx = job
        .trace
        .sampled
        .then(|| autograph_obs::set_request_ctx(job.trace.num));
    let t0 = Instant::now();
    let run_start = autograph_obs::now_ns();
    let occupancy = fnm.as_ref().map(FnMetrics::running_guard);
    let result = execute(
        shared,
        &job.entry,
        &job.args,
        job.remaining(),
        Some(&job.cancel),
        Some(&job.trace),
    );
    drop(occupancy);
    let run_ns = t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
    if let Some(m) = &fnm {
        m.run.record(run_ns);
    }
    job.trace.phase("run", run_start, run_ns);
    finish(&job, t0, result);
}

/// Execute a coalesced batch; fall back to individual runs when the
/// batch shape contract does not hold.
fn run_batch(shared: &Arc<Shared>, members: Vec<Job>) {
    let n = members.len();
    shared.stats.batches.fetch_add(1, Ordering::Relaxed);
    shared
        .stats
        .batch_members
        .fetch_add(n as u64, Ordering::Relaxed);
    autograph_obs::observe("serve", "batch_size", n as u64);
    let entry = Arc::clone(&members[0].entry);
    // the batch runs under the most generous member deadline and no
    // cancel token: one client's disconnect must not fail the others
    let budget = members
        .iter()
        .map(Job::remaining)
        .max()
        .unwrap_or(Duration::ZERO);
    let fnm = shared.tel.for_fn(&entry.name).cloned();
    let t0 = Instant::now();
    let run_start = autograph_obs::now_ns();
    let occupancy = fnm.as_ref().map(FnMetrics::running_guard);
    let outcome = batch::stack_args(&members)
        .map_err(ServeError::Internal)
        .and_then(|stacked| execute(shared, &entry, &stacked, budget, None, None));
    drop(occupancy);
    let run_ns = t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
    match outcome {
        Ok(outputs) => match batch::split_outputs(&outputs, n) {
            Some(per_member) => {
                // one VM run served the whole batch: record it once
                if let Some(m) = &fnm {
                    m.run.record(run_ns);
                }
                for (job, outs) in members.iter().zip(per_member) {
                    job.trace.phase("run", run_start, run_ns);
                    finish(job, t0, Ok(outs));
                }
            }
            None => {
                // declared batch-legality was wrong: learn and fall back
                entry.batchable.store(false, Ordering::Relaxed);
                autograph_obs::count("serve", "batch_disabled", 1);
                fallback_individual(shared, members);
            }
        },
        Err(_) => fallback_individual(shared, members),
    }
}

fn fallback_individual(shared: &Arc<Shared>, members: Vec<Job>) {
    shared.stats.batch_fallbacks.fetch_add(1, Ordering::Relaxed);
    for job in members {
        run_single(shared, job);
    }
}

/// One guarded graph run: deadline + optional cancel, panics contained.
fn execute(
    shared: &Arc<Shared>,
    entry: &Arc<FnEntry>,
    args: &[Tensor],
    budget: Duration,
    cancel: Option<&CancelToken>,
    trace: Option<&Arc<RequestTrace>>,
) -> Result<Vec<Tensor>, ServeError> {
    let mut options = RunOptions::default().with_deadline(budget);
    if let Some(c) = cancel {
        options = options.with_cancel(c.clone());
    }
    let checkout_start = autograph_obs::now_ns();
    let run = catch_unwind(AssertUnwindSafe(|| {
        entry.with_session(|sess| {
            // with_session blocks while the pool is exhausted; the gap
            // between these two timestamps is that contention
            if let Some(t) = trace {
                t.phase_from("session_checkout", checkout_start);
            }
            sess.run_with_options(&feeds(&entry.arg_names, args), &entry.outputs, &options)
        })
    }));
    match run {
        Ok(Ok(outputs)) => Ok(outputs),
        Ok(Err(e)) => Err(ServeError::from_graph(e)),
        Err(panic) => {
            // the panicked-through session was dropped, not repooled
            shared.stats.worker_panics.fetch_add(1, Ordering::Relaxed);
            autograph_obs::count("serve", "worker_panic", 1);
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "worker panicked".to_string());
            Err(ServeError::Internal(format!("panic in graph run: {msg}")))
        }
    }
}

/// Report a job's outcome: breaker bookkeeping, EWMA update, response.
fn finish(job: &Job, t0: Instant, result: Result<Vec<Tensor>, ServeError>) {
    match &result {
        Ok(_) => {
            job.entry.breaker.on_success();
            job.entry
                .record_service_ns(t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
        }
        Err(e) if e.trips_breaker() => job.entry.breaker.on_failure(),
        Err(_) => {} // client-budget outcome: breaker untouched
    }
    // the connection thread may have given up (hard cap) — ignore
    let _ = job.resp.try_send(result);
}

// ---------------------------------------------------------------------
// stats

fn stats_json(shared: &Arc<Shared>) -> String {
    let a = &shared.queue.stats;
    let s = &shared.stats;
    let mut out = String::with_capacity(1024);
    out.push_str("{\"uptime_ms\":");
    out.push_str(&shared.started.elapsed().as_millis().to_string());
    out.push_str(",\"draining\":");
    out.push_str(if shared.draining.load(Ordering::SeqCst) {
        "true"
    } else {
        "false"
    });
    out.push_str(",\"connections\":");
    out.push_str(&shared.conns.load(Ordering::SeqCst).to_string());
    out.push_str(",\"inflight\":");
    out.push_str(&shared.inflight.load(Ordering::SeqCst).to_string());
    out.push_str(",\"queue_depth\":");
    out.push_str(&shared.queue.depth().to_string());
    for (name, v) in [
        ("admitted", a.admitted.load(Ordering::Relaxed)),
        ("shed_queue_full", a.shed_queue_full.load(Ordering::Relaxed)),
        (
            "shed_predicted_late",
            a.shed_predicted_late.load(Ordering::Relaxed),
        ),
        (
            "expired_in_queue",
            a.expired_in_queue.load(Ordering::Relaxed),
        ),
        (
            "rejected_draining",
            a.rejected_draining.load(Ordering::Relaxed),
        ),
        ("resp_2xx", s.resp_2xx.load(Ordering::Relaxed)),
        ("resp_4xx", s.resp_4xx.load(Ordering::Relaxed)),
        ("resp_5xx", s.resp_5xx.load(Ordering::Relaxed)),
        ("batches", s.batches.load(Ordering::Relaxed)),
        ("batch_members", s.batch_members.load(Ordering::Relaxed)),
        ("batch_fallbacks", s.batch_fallbacks.load(Ordering::Relaxed)),
        ("cancelled", s.cancelled.load(Ordering::Relaxed)),
        ("worker_panics", s.worker_panics.load(Ordering::Relaxed)),
    ] {
        out.push_str(",\"");
        out.push_str(name);
        out.push_str("\":");
        out.push_str(&v.to_string());
    }
    out.push_str(",\"functions\":[");
    for (i, e) in shared.registry.entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        out.push_str(&json::escape(&e.name));
        out.push_str("\",\"stateful\":");
        out.push_str(if e.stateful { "true" } else { "false" });
        out.push_str(",\"batchable\":");
        out.push_str(if e.batchable.load(Ordering::Relaxed) {
            "true"
        } else {
            "false"
        });
        out.push_str(",\"breaker_open\":");
        out.push_str(if e.breaker.is_open() { "true" } else { "false" });
        out.push_str(",\"ewma_service_us\":");
        out.push_str(&(e.ewma_service_ns.load(Ordering::Relaxed) / 1000).to_string());
        if let Some(m) = shared.tel.for_fn(&e.name) {
            out.push_str(",\"running\":");
            out.push_str(&m.running.load(Ordering::Relaxed).to_string());
            out.push_str(",\"running_peak\":");
            out.push_str(&m.running_peak.load(Ordering::Relaxed).to_string());
        }
        out.push('}');
    }
    out.push_str("],\"windows\":");
    out.push_str(&shared.tel.windows_json());
    out.push('}');
    out
}

// ---------------------------------------------------------------------
// /metrics

/// Metric families the CI scrape validator and the loadgen assert are
/// present in every `/metrics` response.
pub const REQUIRED_METRIC_FAMILIES: &[&str] = &[
    "autograph_requests_total",
    "autograph_request_latency_seconds",
    "autograph_queue_wait_seconds",
    "autograph_run_seconds",
    "autograph_deadline_budget_consumed_permille",
    "autograph_queue_depth",
    "autograph_admitted_total",
    "autograph_shed_total",
    "autograph_sessions_running",
    "autograph_tensor_live_bytes",
    "autograph_plan_cache_total",
];

/// Render the Prometheus text document for `GET /metrics`. Every value
/// is read with relaxed loads — the scrape never blocks the hot path.
fn metrics_text(shared: &Arc<Shared>) -> String {
    shared.tel.maybe_rotate();
    let a = &shared.queue.stats;
    let s = &shared.stats;
    let mut w = PromWriter::new();
    w.family(
        "autograph_uptime_seconds",
        "gauge",
        "seconds since server start",
    );
    w.sample(
        "autograph_uptime_seconds",
        &[],
        shared.started.elapsed().as_secs_f64(),
    );
    w.family(
        "autograph_requests_total",
        "counter",
        "completed /run responses by function and status class",
    );
    for m in shared.tel.fns() {
        for (class, c) in [
            ("2xx", &m.resp_2xx),
            ("4xx", &m.resp_4xx),
            ("5xx", &m.resp_5xx),
        ] {
            w.sample(
                "autograph_requests_total",
                &[("fn", &m.name), ("class", class)],
                c.get() as f64,
            );
        }
    }
    w.family(
        "autograph_request_latency_seconds",
        "histogram",
        "end-to-end /run latency by function (route dispatch to response written)",
    );
    for m in shared.tel.fns() {
        w.histogram(
            "autograph_request_latency_seconds",
            &[("fn", &m.name)],
            &m.latency.snapshot(),
        );
    }
    w.family(
        "autograph_queue_wait_seconds",
        "histogram",
        "time jobs spent in the admission queue before a worker took them",
    );
    for m in shared.tel.fns() {
        w.histogram(
            "autograph_queue_wait_seconds",
            &[("fn", &m.name)],
            &m.queue_wait.snapshot(),
        );
    }
    w.family(
        "autograph_run_seconds",
        "histogram",
        "graph/VM execution self-time by function (session run only)",
    );
    for m in shared.tel.fns() {
        w.histogram(
            "autograph_run_seconds",
            &[("fn", &m.name)],
            &m.run.snapshot(),
        );
    }
    w.family(
        "autograph_deadline_budget_consumed_permille",
        "histogram",
        "deadline budget consumed at response time, permille of the request budget",
    );
    for m in shared.tel.fns() {
        w.histogram_raw(
            "autograph_deadline_budget_consumed_permille",
            &[("fn", &m.name)],
            &m.budget_permille.snapshot(),
        );
    }
    w.family(
        "autograph_request_latency_all_seconds",
        "histogram",
        "end-to-end /run latency across all functions (feeds the rolling windows)",
    );
    w.histogram(
        "autograph_request_latency_all_seconds",
        &[],
        &shared.tel.latency_all.snapshot(),
    );
    w.family(
        "autograph_sessions_running",
        "gauge",
        "sessions currently checked out executing, by function",
    );
    for m in shared.tel.fns() {
        w.sample(
            "autograph_sessions_running",
            &[("fn", &m.name)],
            m.running.load(Ordering::Relaxed) as f64,
        );
    }
    w.family(
        "autograph_sessions_running_peak",
        "gauge",
        "high-water mark of concurrently executing sessions, by function",
    );
    for m in shared.tel.fns() {
        w.sample(
            "autograph_sessions_running_peak",
            &[("fn", &m.name)],
            m.running_peak.load(Ordering::Relaxed) as f64,
        );
    }
    w.family(
        "autograph_queue_depth",
        "gauge",
        "jobs in the admission queue",
    );
    w.sample("autograph_queue_depth", &[], shared.queue.depth() as f64);
    w.family("autograph_connections", "gauge", "open client connections");
    w.sample(
        "autograph_connections",
        &[],
        shared.conns.load(Ordering::SeqCst) as f64,
    );
    w.family(
        "autograph_inflight",
        "gauge",
        "requests currently being handled",
    );
    w.sample(
        "autograph_inflight",
        &[],
        shared.inflight.load(Ordering::SeqCst) as f64,
    );
    w.family(
        "autograph_draining",
        "gauge",
        "1 while the server is refusing new work",
    );
    w.sample(
        "autograph_draining",
        &[],
        if shared.draining.load(Ordering::SeqCst) {
            1.0
        } else {
            0.0
        },
    );
    w.family(
        "autograph_admitted_total",
        "counter",
        "requests admitted into the queue",
    );
    w.sample(
        "autograph_admitted_total",
        &[],
        a.admitted.load(Ordering::Relaxed) as f64,
    );
    w.family(
        "autograph_shed_total",
        "counter",
        "requests refused by admission control, by reason",
    );
    w.sample(
        "autograph_shed_total",
        &[("reason", "queue_full")],
        a.shed_queue_full.load(Ordering::Relaxed) as f64,
    );
    w.sample(
        "autograph_shed_total",
        &[("reason", "predicted_late")],
        a.shed_predicted_late.load(Ordering::Relaxed) as f64,
    );
    w.family(
        "autograph_expired_in_queue_total",
        "counter",
        "jobs whose deadline expired while queued",
    );
    w.sample(
        "autograph_expired_in_queue_total",
        &[],
        a.expired_in_queue.load(Ordering::Relaxed) as f64,
    );
    w.family(
        "autograph_rejected_draining_total",
        "counter",
        "requests refused because the server was draining",
    );
    w.sample(
        "autograph_rejected_draining_total",
        &[],
        a.rejected_draining.load(Ordering::Relaxed) as f64,
    );
    for (name, help, v) in [
        (
            "autograph_batches_total",
            "batched runs executed",
            s.batches.load(Ordering::Relaxed),
        ),
        (
            "autograph_batch_members_total",
            "total members across batched runs",
            s.batch_members.load(Ordering::Relaxed),
        ),
        (
            "autograph_batch_fallbacks_total",
            "batched runs that fell back to individual execution",
            s.batch_fallbacks.load(Ordering::Relaxed),
        ),
        (
            "autograph_cancelled_total",
            "runs cancelled because the client disconnected",
            s.cancelled.load(Ordering::Relaxed),
        ),
        (
            "autograph_worker_panics_total",
            "worker panics contained into 500s",
            s.worker_panics.load(Ordering::Relaxed),
        ),
        (
            "autograph_sampled_traces_total",
            "requests sampled for span-tree tracing",
            shared.tel.sampled_total.get(),
        ),
    ] {
        w.family(name, "counter", help);
        w.sample(name, &[], v as f64);
    }
    w.family(
        "autograph_breaker_open",
        "gauge",
        "1 while the function's circuit breaker is open",
    );
    for e in shared.registry.entries.iter() {
        w.sample(
            "autograph_breaker_open",
            &[("fn", &e.name)],
            if e.breaker.is_open() { 1.0 } else { 0.0 },
        );
    }
    let plan = autograph_planstore::stats();
    w.family(
        "autograph_plan_cache_total",
        "counter",
        "persistent plan-store events by kind (hit/miss/corrupt/write)",
    );
    for (event, v) in [
        ("hit", plan.hits),
        ("miss", plan.misses),
        ("corrupt", plan.corrupt),
        ("write", plan.writes),
    ] {
        w.sample("autograph_plan_cache_total", &[("event", event)], v as f64);
    }
    w.family(
        "autograph_plan_cache_bytes_total",
        "counter",
        "persistent plan-store bytes by direction",
    );
    for (dir, v) in [("read", plan.bytes_read), ("written", plan.bytes_written)] {
        w.sample(
            "autograph_plan_cache_bytes_total",
            &[("direction", dir)],
            v as f64,
        );
    }
    w.family(
        "autograph_plan_cache_load_seconds_total",
        "counter",
        "wall time spent loading + validating persistent plan artifacts",
    );
    w.sample(
        "autograph_plan_cache_load_seconds_total",
        &[],
        plan.load_ns as f64 / 1e9,
    );
    let mem = autograph_tensor::mem::snapshot();
    w.family(
        "autograph_tensor_live_bytes",
        "gauge",
        "bytes currently held by tensor buffers (ledger)",
    );
    w.sample("autograph_tensor_live_bytes", &[], mem.live_bytes as f64);
    w.family(
        "autograph_tensor_peak_bytes",
        "gauge",
        "high-water mark of live tensor bytes",
    );
    w.sample("autograph_tensor_peak_bytes", &[], mem.peak_bytes as f64);
    w.family(
        "autograph_tensor_allocated_bytes_total",
        "counter",
        "cumulative tensor bytes allocated",
    );
    w.sample(
        "autograph_tensor_allocated_bytes_total",
        &[],
        mem.allocated_bytes as f64,
    );
    w.family(
        "autograph_tensor_freed_bytes_total",
        "counter",
        "cumulative tensor bytes freed",
    );
    w.sample(
        "autograph_tensor_freed_bytes_total",
        &[],
        mem.freed_bytes as f64,
    );
    w.finish()
}
