//! The live telemetry plane: request-scoped tracing, per-function
//! metrics, rolling SLO windows, and the bounded ring of sampled
//! request span-trees behind `GET /debug/trace`.
//!
//! ## Cost model
//!
//! Metric recording is always on and is a handful of relaxed atomics
//! per request ([`ShardedCounter`] / [`AtomicHistogram`] — no locks, no
//! allocation on the hot path). *Tracing* is sampled: with
//! `trace_sample == 0` every per-request tracing decision is one branch
//! on `RequestTrace::sampled`. When a request IS sampled, its phase
//! breakdown (admission → queue → batch assembly → session checkout →
//! run → response serialization) is collected under a small per-request
//! mutex, and the executor's own obs spans are attributed to it through
//! the thread-local [`obs request context`](autograph_obs::request_ctx)
//! — [`Telemetry`] implements [`Recorder`] for exactly that purpose and
//! is only installed when sampling is enabled (installing any recorder
//! also drops the bytecode VM into its exact op-by-op fallback, so
//! sampling-off must stay recorder-free).

use autograph_obs::metrics::{
    AtomicHistogram, HistSnapshot, ShardedCounter, LATENCY_BUCKETS_NS, PERMILLE_BUCKETS,
};
use autograph_obs::Recorder;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Window ring capacity: one histogram snapshot per second, 5 minutes
/// plus the in-progress second.
const WINDOW_SLOTS: usize = 301;

/// Most phases a single trace will hold (executor spans included);
/// beyond this they are dropped, never reallocated unbounded.
const MAX_PHASES: usize = 512;

/// Telemetry tuning, part of [`crate::ServerConfig`].
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Sample 1-in-N requests for span-tree tracing (0 = off). With
    /// sampling off the per-request tracing cost is a single branch.
    pub trace_sample: u64,
    /// How many finished sampled traces `/debug/trace` retains.
    pub trace_ring: usize,
    /// Latency SLO threshold (ms) the rolling windows report burn
    /// against (burn = fraction over SLO ÷ a 1% error budget).
    pub slo_ms: u64,
}

impl Default for TelemetryConfig {
    fn default() -> TelemetryConfig {
        TelemetryConfig {
            trace_sample: 0,
            trace_ring: 64,
            slo_ms: 25,
        }
    }
}

/// Lock-free per-function counters and histograms (all values in ns
/// unless stated otherwise). One of these per registry entry, fixed at
/// server start, so the hot path indexes a vector — no map lookups
/// under a lock.
pub struct FnMetrics {
    /// The function name (label value in `/metrics`).
    pub name: String,
    /// 2xx responses.
    pub resp_2xx: ShardedCounter,
    /// 4xx responses.
    pub resp_4xx: ShardedCounter,
    /// 5xx responses.
    pub resp_5xx: ShardedCounter,
    /// End-to-end request latency (route dispatch → response written).
    pub latency: AtomicHistogram,
    /// Time spent queued before a worker picked the job up.
    pub queue_wait: AtomicHistogram,
    /// Graph/VM execution time (the session run itself).
    pub run: AtomicHistogram,
    /// Deadline budget consumed at response time, in permille of the
    /// request's budget (1000 = the whole budget).
    pub budget_permille: AtomicHistogram,
    /// Sessions currently checked out running this function.
    pub running: AtomicU64,
    /// High-water mark of `running` (pool occupancy peak).
    pub running_peak: AtomicU64,
}

impl FnMetrics {
    fn new(name: &str) -> FnMetrics {
        FnMetrics {
            name: name.to_string(),
            resp_2xx: ShardedCounter::new(),
            resp_4xx: ShardedCounter::new(),
            resp_5xx: ShardedCounter::new(),
            latency: AtomicHistogram::new(LATENCY_BUCKETS_NS),
            queue_wait: AtomicHistogram::new(LATENCY_BUCKETS_NS),
            run: AtomicHistogram::new(LATENCY_BUCKETS_NS),
            budget_permille: AtomicHistogram::new(PERMILLE_BUCKETS),
            running: AtomicU64::new(0),
            running_peak: AtomicU64::new(0),
        }
    }

    /// Count one response of the given status class.
    pub fn count_status(&self, status: u16) {
        match status {
            200..=299 => self.resp_2xx.add(1),
            400..=499 => self.resp_4xx.add(1),
            _ => self.resp_5xx.add(1),
        }
    }

    /// RAII occupancy bump while a session is checked out.
    pub fn running_guard(self: &Arc<FnMetrics>) -> RunningGuard {
        let now = self.running.fetch_add(1, Ordering::Relaxed) + 1;
        self.running_peak.fetch_max(now, Ordering::Relaxed);
        RunningGuard {
            m: Arc::clone(self),
        }
    }
}

/// Decrements [`FnMetrics::running`] on drop.
pub struct RunningGuard {
    m: Arc<FnMetrics>,
}

impl Drop for RunningGuard {
    fn drop(&mut self) {
        self.m.running.fetch_sub(1, Ordering::Relaxed);
    }
}

/// One timed phase (or attributed executor span) of a sampled request.
#[derive(Debug, Clone)]
pub struct Phase {
    /// Phase name (`queue_wait`, `run`, ...) or the executor span's
    /// `cat/name`.
    pub name: String,
    /// Start on the obs trace clock ([`autograph_obs::now_ns`]).
    pub start_ns: u64,
    /// Duration.
    pub dur_ns: u64,
    /// The recording thread's lane ([`autograph_obs::thread_lane`]).
    pub lane: u64,
}

/// The per-request trace context, threaded (as an `Arc`) from route
/// dispatch through admission, the worker, and back to the response
/// writer. Always carries the request id; phase recording is a no-op
/// unless the request was sampled.
pub struct RequestTrace {
    /// The stable request id (client-supplied `X-Request-Id` after
    /// sanitization, else generated `req-<n>`).
    pub id: String,
    /// Process-unique numeric id; the key the obs request context
    /// carries so executor spans find their trace.
    pub num: u64,
    /// The requested function.
    pub fn_name: String,
    /// Request arrival on the obs trace clock.
    pub start_ns: u64,
    /// Whether this request's span tree is being collected.
    pub sampled: bool,
    phases: Mutex<Vec<Phase>>,
}

impl RequestTrace {
    /// An unsampled trace with the given id — for tests and tools that
    /// need a `Job` without a server.
    pub fn detached(id: &str) -> Arc<RequestTrace> {
        Arc::new(RequestTrace {
            id: id.to_string(),
            num: 0,
            fn_name: String::new(),
            start_ns: autograph_obs::now_ns(),
            sampled: false,
            phases: Mutex::new(Vec::new()),
        })
    }

    /// Record a phase that started at `start_ns` (obs clock) and just
    /// ended. One branch when the request is not sampled.
    pub fn phase_from(&self, name: &str, start_ns: u64) {
        if !self.sampled {
            return;
        }
        let dur = autograph_obs::now_ns().saturating_sub(start_ns);
        self.push_phase(name, start_ns, dur);
    }

    /// Record a fully-specified phase (for durations measured with
    /// `Instant` rather than the obs clock).
    pub fn phase(&self, name: &str, start_ns: u64, dur_ns: u64) {
        if !self.sampled {
            return;
        }
        self.push_phase(name, start_ns, dur_ns);
    }

    fn push_phase(&self, name: &str, start_ns: u64, dur_ns: u64) {
        let lane = autograph_obs::thread_lane();
        let mut phases = self.phases.lock().unwrap_or_else(|p| p.into_inner());
        if phases.len() < MAX_PHASES {
            phases.push(Phase {
                name: name.to_string(),
                start_ns,
                dur_ns,
                lane,
            });
        }
    }

    fn take_phases(&self) -> Vec<Phase> {
        std::mem::take(&mut *self.phases.lock().unwrap_or_else(|p| p.into_inner()))
    }
}

/// A completed sampled request, as retained by the trace ring.
pub struct FinishedTrace {
    /// Request id.
    pub id: String,
    /// Requested function.
    pub fn_name: String,
    /// Final HTTP status.
    pub status: u16,
    /// End-to-end duration.
    pub total_ns: u64,
    /// Phase breakdown + attributed executor spans.
    pub phases: Vec<Phase>,
    /// Arrival on the obs clock.
    pub start_ns: u64,
}

struct Windows {
    /// One global-latency snapshot per elapsed second, newest last.
    ring: VecDeque<HistSnapshot>,
}

/// Computed stats for one rolling window (all ns).
pub struct WindowStats {
    /// Window length actually covered (≤ requested; short after boot).
    pub covered_s: u64,
    /// Requests completed in the window.
    pub count: u64,
    /// p50 latency.
    pub p50_ns: u64,
    /// p90 latency.
    pub p90_ns: u64,
    /// p99 latency.
    pub p99_ns: u64,
    /// Fraction of requests over the SLO threshold.
    pub over_slo: f64,
}

/// The telemetry plane. One per [`crate::Server`], shared with every
/// connection and worker thread.
pub struct Telemetry {
    /// Tuning (sampling rate, ring size, SLO threshold).
    pub cfg: TelemetryConfig,
    started: Instant,
    next_id: AtomicU64,
    /// Requests sampled for tracing.
    pub sampled_total: ShardedCounter,
    fns: Vec<Arc<FnMetrics>>,
    by_name: HashMap<String, usize>,
    /// End-to-end latency across all `/run` requests; feeds the rolling
    /// windows.
    pub latency_all: AtomicHistogram,
    windows: Mutex<Windows>,
    last_rotate_s: AtomicU64,
    inflight: Mutex<HashMap<u64, Arc<RequestTrace>>>,
    ring: Mutex<VecDeque<FinishedTrace>>,
}

impl Telemetry {
    /// Build the plane for the functions of `registry`.
    pub fn new(fn_names: &[String], cfg: TelemetryConfig) -> Arc<Telemetry> {
        let fns: Vec<Arc<FnMetrics>> = fn_names
            .iter()
            .map(|n| Arc::new(FnMetrics::new(n)))
            .collect();
        let by_name = fn_names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i))
            .collect();
        Arc::new(Telemetry {
            cfg,
            started: Instant::now(),
            next_id: AtomicU64::new(0),
            sampled_total: ShardedCounter::new(),
            fns,
            by_name,
            latency_all: AtomicHistogram::new(LATENCY_BUCKETS_NS),
            windows: Mutex::new(Windows {
                ring: VecDeque::with_capacity(WINDOW_SLOTS),
            }),
            last_rotate_s: AtomicU64::new(0),
            inflight: Mutex::new(HashMap::new()),
            ring: Mutex::new(VecDeque::new()),
        })
    }

    /// Per-function metrics, in registry order.
    pub fn fns(&self) -> &[Arc<FnMetrics>] {
        &self.fns
    }

    /// Metrics for one function.
    pub fn for_fn(&self, name: &str) -> Option<&Arc<FnMetrics>> {
        self.by_name.get(name).map(|i| &self.fns[*i])
    }

    /// Open a trace for an arriving `/run` request. `header_id` is the
    /// sanitized client-supplied id, if any.
    pub fn begin_request(&self, header_id: Option<String>, fn_name: &str) -> Arc<RequestTrace> {
        let num = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let id = header_id.unwrap_or_else(|| format!("req-{num}"));
        let sampled = self.cfg.trace_sample > 0 && num.is_multiple_of(self.cfg.trace_sample);
        let trace = Arc::new(RequestTrace {
            id,
            num,
            fn_name: fn_name.to_string(),
            start_ns: autograph_obs::now_ns(),
            sampled,
            phases: Mutex::new(Vec::new()),
        });
        if sampled {
            self.sampled_total.add(1);
            self.inflight
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .insert(num, Arc::clone(&trace));
        }
        trace
    }

    /// Close a trace: if sampled, move it into the `/debug/trace` ring.
    pub fn finish_request(&self, trace: &Arc<RequestTrace>, status: u16, total_ns: u64) {
        if !trace.sampled {
            return;
        }
        self.inflight
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .remove(&trace.num);
        let finished = FinishedTrace {
            id: trace.id.clone(),
            fn_name: trace.fn_name.clone(),
            status,
            total_ns,
            phases: trace.take_phases(),
            start_ns: trace.start_ns,
        };
        let mut ring = self.ring.lock().unwrap_or_else(|p| p.into_inner());
        while ring.len() >= self.cfg.trace_ring.max(1) {
            ring.pop_front();
        }
        ring.push_back(finished);
    }

    /// Rotate the window ring when a second boundary has passed. Called
    /// opportunistically (acceptor tick, stats endpoints); cheap no-op
    /// within a second.
    pub fn maybe_rotate(&self) {
        let now_s = self.started.elapsed().as_secs();
        let last = self.last_rotate_s.load(Ordering::Relaxed);
        if now_s <= last
            || self
                .last_rotate_s
                .compare_exchange(last, now_s, Ordering::Relaxed, Ordering::Relaxed)
                .is_err()
        {
            return;
        }
        let snap = self.latency_all.snapshot();
        let mut w = self.windows.lock().unwrap_or_else(|p| p.into_inner());
        // fill skipped seconds with the same snapshot so "N seconds ago"
        // stays an index; bounded by the ring size
        let gap = (now_s - last).min(WINDOW_SLOTS as u64);
        for _ in 0..gap {
            if w.ring.len() >= WINDOW_SLOTS {
                w.ring.pop_front();
            }
            w.ring.push_back(snap.clone());
        }
    }

    /// Stats over the trailing `window_s` seconds.
    pub fn window_stats(&self, window_s: u64) -> WindowStats {
        let current = self.latency_all.snapshot();
        let (baseline, covered_s) = {
            let w = self.windows.lock().unwrap_or_else(|p| p.into_inner());
            let len = w.ring.len() as u64;
            if len >= window_s {
                (w.ring[(len - window_s) as usize].clone(), window_s)
            } else if let Some(front) = w.ring.front() {
                (front.clone(), len.max(1))
            } else {
                (
                    HistSnapshot::empty(LATENCY_BUCKETS_NS),
                    self.started.elapsed().as_secs().clamp(1, window_s),
                )
            }
        };
        let delta = current.delta_since(&baseline);
        let slo_ns = self.cfg.slo_ms.saturating_mul(1_000_000);
        WindowStats {
            covered_s,
            count: delta.count(),
            p50_ns: delta.quantile(0.50),
            p90_ns: delta.quantile(0.90),
            p99_ns: delta.quantile(0.99),
            over_slo: delta.frac_over(slo_ns),
        }
    }

    /// The `/stats` `windows` subtree: a stable JSON schema —
    /// `{"slo_ms":N,"10s":{...},"1m":{...},"5m":{...}}` where each
    /// window object has `covered_s`, `count`, `rate_rps`, `p50_ms`,
    /// `p90_ms`, `p99_ms`, `over_slo_frac`, `slo_burn` (fraction over
    /// SLO ÷ a 1% error budget).
    pub fn windows_json(&self) -> String {
        self.maybe_rotate();
        let mut out = String::from("{\"slo_ms\":");
        out.push_str(&self.cfg.slo_ms.to_string());
        for (label, secs) in [("10s", 10u64), ("1m", 60), ("5m", 300)] {
            let s = self.window_stats(secs);
            let rate = s.count as f64 / s.covered_s.max(1) as f64;
            out.push_str(&format!(
                ",\"{label}\":{{\"covered_s\":{},\"count\":{},\"rate_rps\":{:.3},\
                 \"p50_ms\":{:.3},\"p90_ms\":{:.3},\"p99_ms\":{:.3},\
                 \"over_slo_frac\":{:.6},\"slo_burn\":{:.3}}}",
                s.covered_s,
                s.count,
                rate,
                s.p50_ns as f64 / 1e6,
                s.p90_ns as f64 / 1e6,
                s.p99_ns as f64 / 1e6,
                s.over_slo,
                s.over_slo / 0.01,
            ));
        }
        out.push('}');
        out
    }

    /// The last `n` sampled request span-trees as a Chrome-trace JSON
    /// document (one `X` event per phase, `args.request_id` on every
    /// event, `M` metadata naming threads).
    pub fn traces_json(&self, n: usize) -> String {
        let ring = self.ring.lock().unwrap_or_else(|p| p.into_inner());
        let take = ring.len().saturating_sub(n.max(1));
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        for t in ring.iter().skip(take) {
            let esc_id = crate::json::escape(&t.id);
            let esc_fn = crate::json::escape(&t.fn_name);
            if !first {
                out.push(',');
            }
            first = false;
            // one umbrella event for the whole request
            out.push_str(&format!(
                "{{\"name\":\"request {esc_fn}\",\"cat\":\"request\",\"ph\":\"X\",\"pid\":1,\
                 \"tid\":0,\"ts\":{:.3},\"dur\":{:.3},\
                 \"args\":{{\"request_id\":\"{esc_id}\",\"status\":{}}}}}",
                t.start_ns as f64 / 1e3,
                t.total_ns as f64 / 1e3,
                t.status,
            ));
            for p in &t.phases {
                out.push_str(&format!(
                    ",{{\"name\":\"{}\",\"cat\":\"phase\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
                     \"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"request_id\":\"{esc_id}\"}}}}",
                    crate::json::escape(&p.name),
                    p.lane,
                    p.start_ns as f64 / 1e3,
                    p.dur_ns as f64 / 1e3,
                ));
            }
        }
        if !first {
            out.push(',');
        }
        out.push_str(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"autograph-serve\"}}",
        );
        for (lane, name) in autograph_obs::lane_names() {
            out.push_str(&format!(
                ",{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{lane},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                crate::json::escape(&name),
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Executor spans reach their request's trace through this impl: the
/// worker sets the obs request context around the session run, and any
/// span closing on that thread lands here with the context still set.
/// Installed as the process recorder only when sampling is on.
impl Recorder for Telemetry {
    fn span(&self, cat: &'static str, name: &str, start_ns: u64, dur_ns: u64) {
        let ctx = autograph_obs::request_ctx();
        if ctx == 0 {
            return;
        }
        let trace = {
            let inflight = self.inflight.lock().unwrap_or_else(|p| p.into_inner());
            inflight.get(&ctx).cloned()
        };
        if let Some(t) = trace {
            t.phase(&format!("{cat}/{name}"), start_ns, dur_ns);
        }
    }

    fn count(&self, _cat: &'static str, _name: &'static str, _delta: u64) {}

    fn observe(&self, _cat: &'static str, _name: &str, _value: u64) {}
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn tel(sample: u64) -> Arc<Telemetry> {
        Telemetry::new(
            &["f".to_string()],
            TelemetryConfig {
                trace_sample: sample,
                trace_ring: 4,
                slo_ms: 25,
            },
        )
    }

    #[test]
    fn ids_honor_header_else_generate() {
        let t = tel(0);
        let a = t.begin_request(Some("client-7".to_string()), "f");
        assert_eq!(a.id, "client-7");
        assert!(!a.sampled, "sampling off");
        let b = t.begin_request(None, "f");
        assert!(b.id.starts_with("req-"), "{}", b.id);
        assert_ne!(a.num, b.num);
    }

    #[test]
    fn sampling_collects_phases_and_ring_is_bounded() {
        let t = tel(1);
        for i in 0..6 {
            let tr = t.begin_request(None, "f");
            assert!(tr.sampled);
            tr.phase("queue_wait", 0, 1_000);
            t.finish_request(&tr, 200, 5_000);
            let ring = t.ring.lock().unwrap();
            assert!(ring.len() <= 4, "ring bounded, i={i}");
        }
        let doc = t.traces_json(10);
        let parsed: serde_json::Value = serde_json::from_str(&doc).expect("valid JSON");
        let events = parsed["traceEvents"].as_array().expect("events");
        // 4 retained requests × (umbrella + 1 phase) + metadata
        let umbrella = events
            .iter()
            .filter(|e| e["cat"].as_str() == Some("request"))
            .count();
        assert_eq!(umbrella, 4);
        assert!(events
            .iter()
            .filter(|e| e["ph"].as_str() != Some("M"))
            .all(|e| e["args"]["request_id"].as_str().is_some()));
    }

    #[test]
    fn recorder_attributes_spans_via_request_ctx() {
        let t = tel(1);
        let tr = t.begin_request(None, "f");
        {
            let _ctx = autograph_obs::set_request_ctx(tr.num);
            t.span("graph_op", "matmul", 10, 20);
        }
        t.span("graph_op", "unattributed", 10, 20); // ctx cleared: dropped
        t.finish_request(&tr, 200, 100);
        let ring = t.ring.lock().unwrap();
        let phases = &ring.back().unwrap().phases;
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].name, "graph_op/matmul");
    }

    #[test]
    fn windows_report_counts_and_percentiles() {
        let t = tel(0);
        for _ in 0..100 {
            t.latency_all.record(5_000_000); // 5ms
        }
        let s = t.window_stats(10);
        assert_eq!(s.count, 100);
        assert!(
            s.p50_ns > 1_000_000 && s.p50_ns <= 10_000_000,
            "{}",
            s.p50_ns
        );
        assert_eq!(s.over_slo, 0.0, "5ms < 25ms SLO");
        let json = t.windows_json();
        for key in [
            "\"10s\"", "\"1m\"", "\"5m\"", "slo_ms", "p99_ms", "slo_burn",
        ] {
            assert!(json.contains(key), "{key} missing from {json}");
        }
        let parsed: Result<serde_json::Value, _> = serde_json::from_str(&json);
        assert!(parsed.is_ok(), "windows JSON parses: {json}");
    }

    #[test]
    fn unsampled_requests_skip_phase_collection() {
        let t = tel(0);
        let tr = t.begin_request(None, "f");
        tr.phase("queue_wait", 0, 1_000);
        assert!(tr.phases.lock().unwrap().is_empty());
        t.finish_request(&tr, 200, 100); // no-op, must not panic
        assert_eq!(t.ring.lock().unwrap().len(), 0);
    }
}
