//! The eager execution context: dynamic dispatch plus optional tape
//! recording.

use crate::registry::{default_registry, OpDef};
use crate::tape::Tape;
use crate::{panic_message, EagerError, Result};
use autograph_faults as faults;
use autograph_obs as obs;
use autograph_tensor::Tensor;
use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A tensor value in the eager runtime, optionally tracked on the active
/// tape.
#[derive(Debug, Clone)]
pub struct EagerTensor {
    tensor: Tensor,
    node: Option<usize>,
}

impl EagerTensor {
    /// The underlying dense tensor.
    pub fn tensor(&self) -> &Tensor {
        &self.tensor
    }

    /// The tape node id, if this value is tracked.
    pub fn node(&self) -> Option<usize> {
        self.node
    }

    /// Unwrap into the dense tensor.
    pub fn into_tensor(self) -> Tensor {
        self.tensor
    }
}

impl From<Tensor> for EagerTensor {
    fn from(tensor: Tensor) -> Self {
        EagerTensor { tensor, node: None }
    }
}

/// The eager runtime: an op registry and an optional recording tape.
///
/// Dispatch goes name → registry → boxed kernel on every call; this per-op
/// indirection is the interpretive overhead the paper's benchmarks measure
/// against staged graphs.
pub struct Eager {
    registry: HashMap<String, OpDef>,
    tape: RefCell<Option<Tape>>,
}

impl Default for Eager {
    fn default() -> Self {
        Eager::new()
    }
}

impl Eager {
    /// Create a context with the default op registry.
    pub fn new() -> Eager {
        Eager {
            registry: default_registry(),
            tape: RefCell::new(None),
        }
    }

    /// Dispatch an op by name.
    ///
    /// # Errors
    ///
    /// Fails for unknown ops or kernel errors.
    pub fn op(&self, name: &str, inputs: &[&EagerTensor]) -> Result<EagerTensor> {
        // one relaxed atomic load when profiling is off; the span name
        // allocates only when a recorder is installed
        let _span = if obs::enabled() {
            obs::count("eager", "dispatches", 1);
            obs::span_dyn("eager_op", || name.to_string())
        } else {
            None
        };
        // per-op memory attribution: when both profiling and the tensor
        // memory ledger are active, report this thread's allocation delta
        // across the dispatch under the op's name
        let alloc0 = if obs::enabled() && autograph_tensor::mem::tracking() {
            Some(autograph_tensor::mem::thread_allocated())
        } else {
            None
        };
        let _mem_guard = alloc0.map(|before| {
            scopeguard(move || {
                let delta = autograph_tensor::mem::thread_allocated().wrapping_sub(before);
                obs::observe_dyn("eager_mem", || name.to_string(), delta);
            })
        });
        let def = self
            .registry
            .get(name)
            .ok_or_else(|| EagerError::new("unknown op").in_op(name))?;
        let raw: Vec<Tensor> = inputs.iter().map(|t| t.tensor.clone()).collect();
        // Panic isolation: registry kernels index their input slice directly
        // (so an arity mistake panics) and some panic on malformed shapes;
        // convert any unwind into a structured per-op error rather than
        // letting it tear through the caller. The chaos-test inject (one
        // relaxed atomic load when no plan is installed) sits inside the
        // boundary so injected panics exercise it too.
        let out = catch_unwind(AssertUnwindSafe(|| -> Result<Tensor> {
            faults::inject("eager", name).map_err(|e| EagerError::new(e.to_string()))?;
            (def.forward)(&raw)
        }))
        .map_err(|p| {
            EagerError::new(format!("kernel panicked: {}", panic_message(p.as_ref()))).in_op(name)
        })?
        .map_err(|e| EagerError::new(e.message).in_op(name))?;

        let mut tape_ref = self.tape.borrow_mut();
        if let Some(tape) = tape_ref.as_mut() {
            if def.backward.is_some() && inputs.iter().any(|t| t.node.is_some()) {
                let node = tape.record(
                    name,
                    inputs.iter().map(|t| t.node).collect(),
                    raw,
                    out.clone(),
                );
                return Ok(EagerTensor {
                    tensor: out,
                    node: Some(node),
                });
            }
        }
        Ok(EagerTensor {
            tensor: out,
            node: None,
        })
    }

    /// Begin recording a fresh tape (dropping any previous one).
    pub fn start_tape(&self) {
        *self.tape.borrow_mut() = Some(Tape::new());
    }

    /// Stop recording and discard the tape.
    pub fn stop_tape(&self) {
        *self.tape.borrow_mut() = None;
    }

    /// Whether a tape is active.
    pub fn is_taping(&self) -> bool {
        self.tape.borrow().is_some()
    }

    /// Mark a tensor as a differentiation root (a trainable parameter).
    ///
    /// # Errors
    ///
    /// Fails if no tape is active.
    pub fn watch(&self, t: &EagerTensor) -> Result<EagerTensor> {
        let mut tape_ref = self.tape.borrow_mut();
        let tape = tape_ref
            .as_mut()
            .ok_or_else(|| EagerError::new("watch() requires an active tape"))?;
        Ok(EagerTensor {
            tensor: t.tensor.clone(),
            node: Some(tape.watch()),
        })
    }

    /// Compute gradients of `loss` with respect to `wrt`, consuming the
    /// active tape. Untracked parameters yield zero gradients of their own
    /// shape.
    ///
    /// # Errors
    ///
    /// Fails if no tape is active, the loss is untracked, or an op on the
    /// path has no gradient.
    pub fn gradient(&self, loss: &EagerTensor, wrt: &[&EagerTensor]) -> Result<Vec<Tensor>> {
        let tape = self
            .tape
            .borrow_mut()
            .take()
            .ok_or_else(|| EagerError::new("gradient() requires an active tape"))?;
        let loss_node = loss
            .node
            .ok_or_else(|| EagerError::new("loss is not tracked on the tape"))?;
        let wrt_nodes: Vec<usize> = wrt
            .iter()
            .map(|t| {
                t.node
                    .ok_or_else(|| EagerError::new("parameter is not watched on the tape"))
            })
            .collect::<Result<_>>()?;
        let grads = {
            obs::observe("eager", "tape_len", tape.len() as u64);
            let _span = obs::span("eager", "tape_backward");
            // backward rules run user-shaped tensors through the registry's
            // gradient closures; isolate their panics like forward kernels
            catch_unwind(AssertUnwindSafe(|| {
                tape.gradient(&self.registry, loss_node, loss.tensor.shape(), &wrt_nodes)
            }))
            .map_err(|p| {
                EagerError::new(format!(
                    "backward pass panicked: {}",
                    panic_message(p.as_ref())
                ))
            })??
        };
        Ok(grads
            .into_iter()
            .zip(wrt)
            .map(|(g, w)| {
                g.unwrap_or_else(|| Tensor::zeros(autograph_tensor::DType::F32, w.tensor.shape()))
            })
            .collect())
    }

    // ---- common shorthands (still dispatched through the registry) -------

    /// `a + b`.
    pub fn add(&self, a: &EagerTensor, b: &EagerTensor) -> Result<EagerTensor> {
        self.op("add", &[a, b])
    }

    /// `a - b`.
    pub fn sub(&self, a: &EagerTensor, b: &EagerTensor) -> Result<EagerTensor> {
        self.op("sub", &[a, b])
    }

    /// `a * b`.
    pub fn mul(&self, a: &EagerTensor, b: &EagerTensor) -> Result<EagerTensor> {
        self.op("mul", &[a, b])
    }

    /// `a @ b`.
    pub fn matmul(&self, a: &EagerTensor, b: &EagerTensor) -> Result<EagerTensor> {
        self.op("matmul", &[a, b])
    }

    /// `tanh(a)`.
    pub fn tanh(&self, a: &EagerTensor) -> Result<EagerTensor> {
        self.op("tanh", &[a])
    }

    /// `sigmoid(a)`.
    pub fn sigmoid(&self, a: &EagerTensor) -> Result<EagerTensor> {
        self.op("sigmoid", &[a])
    }
}

/// Runs `f` on drop — used so per-op memory attribution fires on every
/// exit path of a dispatch, error returns included.
struct DropGuard<F: FnOnce()>(Option<F>);

impl<F: FnOnce()> Drop for DropGuard<F> {
    fn drop(&mut self) {
        if let Some(f) = self.0.take() {
            f()
        }
    }
}

fn scopeguard<F: FnOnce()>(f: F) -> DropGuard<F> {
    DropGuard(Some(f))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar(v: f32) -> EagerTensor {
        EagerTensor::from(Tensor::scalar_f32(v))
    }

    #[test]
    fn dispatch_and_unknown_op() {
        let e = Eager::new();
        let out = e.op("add", &[&scalar(1.0), &scalar(2.0)]).unwrap();
        assert_eq!(out.tensor().scalar_value_f32().unwrap(), 3.0);
        assert!(e.op("frobnicate", &[]).is_err());
    }

    #[test]
    fn arity_panic_is_isolated_as_error() {
        // "add" indexes x[1]; calling it with one input used to panic out
        // of the dispatcher — now it must come back as a structured error
        let e = Eager::new();
        let err = e.op("add", &[&scalar(1.0)]).unwrap_err();
        assert_eq!(err.op.as_deref(), Some("add"));
        assert!(err.message.contains("kernel panicked"), "{}", err.message);
    }

    #[test]
    fn gradient_of_simple_function() {
        // loss = sum((w*x - y)^2), dw = 2x(wx - y)
        let e = Eager::new();
        e.start_tape();
        let w = e.watch(&scalar(2.0)).unwrap();
        let x = scalar(3.0);
        let y = scalar(10.0);
        let pred = e.mul(&w, &x).unwrap();
        let err = e.sub(&pred, &y).unwrap();
        let loss = e.op("square", &[&err]).unwrap();
        let grads = e.gradient(&loss, &[&w]).unwrap();
        // 2 * 3 * (6 - 10) = -24
        assert_eq!(grads[0].scalar_value_f32().unwrap(), -24.0);
        assert!(!e.is_taping(), "gradient consumes the tape");
    }

    #[test]
    fn tape_lifecycle_errors() {
        let e = Eager::new();
        assert!(e.watch(&scalar(1.0)).is_err());
        e.start_tape();
        let w = e.watch(&scalar(1.0)).unwrap();
        let loss = e.mul(&w, &w).unwrap();
        e.stop_tape();
        assert!(e.gradient(&loss, &[&w]).is_err());
    }

    #[test]
    fn untracked_path_gives_zero_grad() {
        let e = Eager::new();
        e.start_tape();
        let w = e.watch(&scalar(1.0)).unwrap();
        let loss = {
            // loss does not depend on w2
            e.mul(&w, &w).unwrap()
        };
        let w2 = e
            .watch(&EagerTensor::from(Tensor::zeros(
                autograph_tensor::DType::F32,
                &[3],
            )))
            .unwrap();
        let grads = e.gradient(&loss, &[&w2]).unwrap();
        assert_eq!(grads[0].shape(), &[3]);
        assert_eq!(grads[0].as_f32().unwrap(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn no_tape_means_no_tracking() {
        let e = Eager::new();
        let a = scalar(1.0);
        let out = e.add(&a, &a).unwrap();
        assert!(out.node().is_none());
    }

    #[test]
    fn linear_regression_converges() {
        // end-to-end eager training sanity: fit y = 3x
        let e = Eager::new();
        let xs = EagerTensor::from(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4, 1]).unwrap());
        let ys = EagerTensor::from(Tensor::from_vec(vec![3.0, 6.0, 9.0, 12.0], &[4, 1]).unwrap());
        let mut w = Tensor::from_vec(vec![0.0], &[1, 1]).unwrap();
        for _ in 0..200 {
            e.start_tape();
            let wt = e.watch(&EagerTensor::from(w.clone())).unwrap();
            let pred = e.matmul(&xs, &wt).unwrap();
            let err = e.sub(&pred, &ys).unwrap();
            let sq = e.op("square", &[&err]).unwrap();
            let loss = e.op("reduce_mean", &[&sq]).unwrap();
            let grads = e.gradient(&loss, &[&wt]).unwrap();
            let step = grads[0].mul(&Tensor::scalar_f32(0.02)).unwrap();
            w = w.sub(&step).unwrap();
        }
        assert!((w.as_f32().unwrap()[0] - 3.0).abs() < 0.05, "w = {w:?}");
    }
}
