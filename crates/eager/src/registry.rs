//! The eager op registry: name → boxed forward kernel + optional backward
//! rule. The string-keyed lookup and boxed indirection are deliberate —
//! they model the per-op dispatch cost of real eager runtimes.

use crate::{EagerError, Result};
use autograph_tensor::{DType, Tensor};
use std::collections::HashMap;

/// Forward kernel: tensors in, tensor out.
pub type ForwardFn = Box<dyn Fn(&[Tensor]) -> Result<Tensor> + Send + Sync>;

/// Backward rule: `(grad_out, inputs, output)` → per-input gradient
/// (None for non-differentiable inputs).
pub type BackwardFn =
    Box<dyn Fn(&Tensor, &[Tensor], &Tensor) -> Result<Vec<Option<Tensor>>> + Send + Sync>;

/// One registered operation.
pub struct OpDef {
    /// Forward computation.
    pub forward: ForwardFn,
    /// Gradient rule, when the op is differentiable.
    pub backward: Option<BackwardFn>,
}

/// Build the full default registry.
pub fn default_registry() -> HashMap<String, OpDef> {
    let mut r: HashMap<String, OpDef> = HashMap::new();

    fn op(
        r: &mut HashMap<String, OpDef>,
        name: &str,
        fwd: impl Fn(&[Tensor]) -> Result<Tensor> + Send + Sync + 'static,
        bwd: Option<BackwardFn>,
    ) {
        r.insert(
            name.to_string(),
            OpDef {
                forward: Box::new(fwd),
                backward: bwd,
            },
        );
    }

    fn bwd(
        f: impl Fn(&Tensor, &[Tensor], &Tensor) -> Result<Vec<Option<Tensor>>> + Send + Sync + 'static,
    ) -> Option<BackwardFn> {
        Some(Box::new(f))
    }

    /// Sum `g` down to `target`'s shape (adjoint of broadcasting).
    fn sum_to(g: &Tensor, target: &Tensor) -> Result<Tensor> {
        let mut out = g.clone();
        while out.rank() > target.rank() {
            out = out.reduce_sum(Some(0))?;
        }
        for ax in 0..target.rank() {
            if target.shape()[ax] == 1 && out.shape()[ax] != 1 {
                let summed = out.reduce_sum(Some(ax as isize))?;
                let mut shape = summed.shape().to_vec();
                shape.insert(ax, 1);
                out = summed.reshape(&shape)?;
            }
        }
        Ok(out)
    }

    op(
        &mut r,
        "add",
        |x| Ok(x[0].add(&x[1])?),
        bwd(|g, x, _| Ok(vec![Some(sum_to(g, &x[0])?), Some(sum_to(g, &x[1])?)])),
    );
    op(
        &mut r,
        "sub",
        |x| Ok(x[0].sub(&x[1])?),
        bwd(|g, x, _| {
            Ok(vec![
                Some(sum_to(g, &x[0])?),
                Some(sum_to(&g.neg()?, &x[1])?),
            ])
        }),
    );
    op(
        &mut r,
        "mul",
        |x| Ok(x[0].mul(&x[1])?),
        bwd(|g, x, _| {
            Ok(vec![
                Some(sum_to(&g.mul(&x[1])?, &x[0])?),
                Some(sum_to(&g.mul(&x[0])?, &x[1])?),
            ])
        }),
    );
    op(
        &mut r,
        "div",
        |x| Ok(x[0].div(&x[1])?),
        bwd(|g, x, _| {
            let ga = g.div(&x[1])?;
            let gb = g.mul(&x[0])?.div(&x[1].square()?)?.neg()?;
            Ok(vec![Some(sum_to(&ga, &x[0])?), Some(sum_to(&gb, &x[1])?)])
        }),
    );
    op(
        &mut r,
        "pow",
        |x| Ok(x[0].pow(&x[1])?),
        bwd(|g, x, y| {
            let one = Tensor::scalar_f32(1.0);
            let pm1 = x[1].sub(&one)?;
            let ga = g.mul(&x[1].mul(&x[0].pow(&pm1)?)?)?;
            let gb = g.mul(&y.mul(&x[0].log()?)?)?;
            Ok(vec![Some(sum_to(&ga, &x[0])?), Some(sum_to(&gb, &x[1])?)])
        }),
    );
    op(
        &mut r,
        "neg",
        |x| Ok(x[0].neg()?),
        bwd(|g, _, _| Ok(vec![Some(g.neg()?)])),
    );
    op(
        &mut r,
        "abs",
        |x| Ok(x[0].abs()?),
        bwd(|g, x, _| {
            let pos = x[0].greater_equal(&Tensor::scalar_f32(0.0))?;
            Ok(vec![Some(Tensor::select(&pos, g, &g.neg()?)?)])
        }),
    );
    op(
        &mut r,
        "square",
        |x| Ok(x[0].square()?),
        bwd(|g, x, _| Ok(vec![Some(g.mul(&x[0].mul(&Tensor::scalar_f32(2.0))?)?)])),
    );
    op(
        &mut r,
        "sqrt",
        |x| Ok(x[0].sqrt()?),
        bwd(|g, _, y| Ok(vec![Some(g.mul(&Tensor::scalar_f32(0.5))?.div(y)?)])),
    );
    op(
        &mut r,
        "exp",
        |x| Ok(x[0].exp()?),
        bwd(|g, _, y| Ok(vec![Some(g.mul(y)?)])),
    );
    op(
        &mut r,
        "log",
        |x| Ok(x[0].log()?),
        bwd(|g, x, _| Ok(vec![Some(g.div(&x[0])?)])),
    );
    op(
        &mut r,
        "tanh",
        |x| Ok(x[0].tanh()?),
        bwd(|g, _, y| {
            let one = Tensor::scalar_f32(1.0);
            Ok(vec![Some(g.mul(&one.sub(&y.square()?)?)?)])
        }),
    );
    op(
        &mut r,
        "sigmoid",
        |x| Ok(x[0].sigmoid()?),
        bwd(|g, _, y| {
            let one = Tensor::scalar_f32(1.0);
            Ok(vec![Some(g.mul(&y.mul(&one.sub(y)?)?)?)])
        }),
    );
    op(
        &mut r,
        "relu",
        |x| Ok(x[0].relu()?),
        bwd(|g, x, _| {
            let mask = x[0].greater(&Tensor::scalar_f32(0.0))?.cast(DType::F32);
            Ok(vec![Some(g.mul(&mask)?)])
        }),
    );
    op(
        &mut r,
        "matmul",
        |x| Ok(x[0].matmul(&x[1])?),
        bwd(|g, x, _| {
            let ga = g.matmul(&x[1].t()?)?;
            let gb = x[0].t()?.matmul(g)?;
            Ok(vec![Some(ga), Some(gb)])
        }),
    );
    op(
        &mut r,
        "maximum",
        |x| Ok(x[0].maximum(&x[1])?),
        bwd(|g, x, _| {
            let m = x[0].greater_equal(&x[1])?.cast(DType::F32);
            let one = Tensor::scalar_f32(1.0);
            let ga = g.mul(&m)?;
            let gb = g.mul(&one.sub(&m)?)?;
            Ok(vec![Some(sum_to(&ga, &x[0])?), Some(sum_to(&gb, &x[1])?)])
        }),
    );
    op(
        &mut r,
        "minimum",
        |x| Ok(x[0].minimum(&x[1])?),
        bwd(|g, x, _| {
            let m = x[0].less_equal(&x[1])?.cast(DType::F32);
            let one = Tensor::scalar_f32(1.0);
            let ga = g.mul(&m)?;
            let gb = g.mul(&one.sub(&m)?)?;
            Ok(vec![Some(sum_to(&ga, &x[0])?), Some(sum_to(&gb, &x[1])?)])
        }),
    );
    op(
        &mut r,
        "reduce_sum",
        |x| Ok(x[0].reduce_sum(None)?),
        bwd(|g, x, _| Ok(vec![Some(g.add(&Tensor::zeros(DType::F32, x[0].shape()))?)])),
    );
    op(
        &mut r,
        "reduce_mean",
        |x| Ok(x[0].reduce_mean(None)?),
        bwd(|g, x, _| {
            let n = x[0].num_elements() as f32;
            let b = g.add(&Tensor::zeros(DType::F32, x[0].shape()))?;
            Ok(vec![Some(b.div(&Tensor::scalar_f32(n))?)])
        }),
    );
    /// Adjoint of an axis reduction: insert the reduced dim back as
    /// size 1, then broadcast `g` up to the input's shape.
    fn expand_axis_grad(g: &Tensor, input: &Tensor, axis: &Tensor) -> Result<(Tensor, usize)> {
        let rank = input.rank() as i64;
        let mut ax = axis.scalar_value_i64()?;
        if ax < 0 {
            ax += rank;
        }
        if ax < 0 || ax >= rank {
            return Err(EagerError::new(format!(
                "reduction axis {ax} out of range for rank {rank}"
            )));
        }
        let ax = ax as usize;
        let mut shape = g.shape().to_vec();
        shape.insert(ax, 1);
        let ge = g.reshape(&shape)?;
        let gb = ge.add(&Tensor::zeros(DType::F32, input.shape()))?;
        Ok((gb, input.shape()[ax]))
    }

    // Axis reductions take the axis as a second (non-differentiable)
    // scalar-i64 input so the tape can replay them like any other op.
    op(
        &mut r,
        "reduce_sum_axis",
        |x| Ok(x[0].reduce_sum(Some(x[1].scalar_value_i64()? as isize))?),
        bwd(|g, x, _| {
            let (gb, _) = expand_axis_grad(g, &x[0], &x[1])?;
            Ok(vec![Some(gb), None])
        }),
    );
    op(
        &mut r,
        "reduce_mean_axis",
        |x| Ok(x[0].reduce_mean(Some(x[1].scalar_value_i64()? as isize))?),
        bwd(|g, x, _| {
            let (gb, n) = expand_axis_grad(g, &x[0], &x[1])?;
            Ok(vec![Some(gb.div(&Tensor::scalar_f32(n as f32))?), None])
        }),
    );
    op(
        &mut r,
        "softmax_cross_entropy",
        |x| Ok(Tensor::softmax_cross_entropy(&x[0], &x[1])?),
        bwd(|g, x, _| {
            let sm = x[0].softmax()?;
            let classes = *x[0]
                .shape()
                .last()
                .ok_or_else(|| EagerError::new("softmax_cross_entropy backward: rank-0 logits"))?;
            let oh = x[1].one_hot(classes)?;
            let batch = x[0].shape()[0].max(1) as f32;
            let d = sm.sub(&oh)?.div(&Tensor::scalar_f32(batch))?;
            Ok(vec![Some(d.mul(g)?), None])
        }),
    );
    op(
        &mut r,
        "select",
        |x| Ok(Tensor::select(&x[0], &x[1], &x[2])?),
        bwd(|g, x, _| {
            let zero = Tensor::zeros(DType::F32, g.shape());
            let ga = Tensor::select(&x[0], g, &zero)?;
            let gb = Tensor::select(&x[0], &zero, g)?;
            Ok(vec![
                None,
                Some(sum_to(&ga, &x[1])?),
                Some(sum_to(&gb, &x[2])?),
            ])
        }),
    );
    op(
        &mut r,
        "concat1",
        |x| Ok(Tensor::concat(x, 1)?),
        bwd(|g, x, _| {
            let mut grads = Vec::with_capacity(x.len());
            let mut offset = 0i64;
            for xi in x {
                if xi.rank() < 2 {
                    return Err(EagerError::new(
                        "concat1 backward: inputs must be rank >= 2",
                    ));
                }
                let w = xi.shape()[1] as i64;
                // slice along axis 1 via transpose + slice_axis0
                let gt = g.t()?;
                let piece = gt.slice_axis0(Some(offset), Some(offset + w))?;
                grads.push(Some(piece.t()?));
                offset += w;
            }
            Ok(grads)
        }),
    );
    op(
        &mut r,
        "concat0",
        |x| Ok(Tensor::concat(x, 0)?),
        bwd(|g, x, _| {
            let mut grads = Vec::with_capacity(x.len());
            let mut offset = 0i64;
            for xi in x {
                let h = xi.shape()[0] as i64;
                grads.push(Some(g.slice_axis0(Some(offset), Some(offset + h))?));
                offset += h;
            }
            Ok(grads)
        }),
    );
    op(&mut r, "softmax", |x| Ok(x[0].softmax()?), None);
    op(&mut r, "log_softmax", |x| Ok(x[0].log_softmax()?), None);

    // ---- non-differentiable / structural ops ------------------------------
    op(&mut r, "less", |x| Ok(x[0].less(&x[1])?), None);
    op(&mut r, "less_equal", |x| Ok(x[0].less_equal(&x[1])?), None);
    op(&mut r, "greater", |x| Ok(x[0].greater(&x[1])?), None);
    op(
        &mut r,
        "greater_equal",
        |x| Ok(x[0].greater_equal(&x[1])?),
        None,
    );
    op(&mut r, "equal", |x| Ok(x[0].equal(&x[1])?), None);
    op(&mut r, "not_equal", |x| Ok(x[0].not_equal(&x[1])?), None);
    op(
        &mut r,
        "logical_and",
        |x| Ok(x[0].logical_and(&x[1])?),
        None,
    );
    op(&mut r, "logical_or", |x| Ok(x[0].logical_or(&x[1])?), None);
    op(&mut r, "logical_not", |x| Ok(x[0].logical_not()?), None);
    op(&mut r, "floordiv", |x| Ok(x[0].floordiv(&x[1])?), None);
    op(&mut r, "mod", |x| Ok(x[0].rem(&x[1])?), None);
    op(&mut r, "reduce_max", |x| Ok(x[0].reduce_max(None)?), None);
    op(&mut r, "reduce_min", |x| Ok(x[0].reduce_min(None)?), None);
    op(&mut r, "reduce_all", |x| Ok(x[0].reduce_all(None)?), None);
    op(&mut r, "reduce_any", |x| Ok(x[0].reduce_any(None)?), None);
    op(&mut r, "gather", |x| Ok(x[0].gather(&x[1])?), None);
    op(&mut r, "stack", |x| Ok(Tensor::stack(x)?), None);
    op(
        &mut r,
        "range",
        |x| Ok(Tensor::range_i64(x[0].scalar_value_i64()?)),
        None,
    );
    op(
        &mut r,
        "shape",
        |x| {
            let s: Vec<i64> = x[0].shape().iter().map(|&d| d as i64).collect();
            let n = s.len();
            Ok(Tensor::from_vec_i64(s, &[n])?)
        },
        None,
    );
    op(
        &mut r,
        "index",
        |x| Ok(x[0].index_axis0(x[1].scalar_value_i64()?)?),
        None,
    );
    op(
        &mut r,
        "setitem",
        |x| Ok(x[0].set_index_axis0(x[1].scalar_value_i64()?, &x[2])?),
        None,
    );
    op(&mut r, "argmax", |x| Ok(x[0].argmax(-1)?), None);
    op(&mut r, "top_k_values_1", |x| Ok(x[0].top_k(1)?.0), None);
    op(
        &mut r,
        "identity",
        |x| Ok(x[0].clone()),
        bwd(|g, _, _| Ok(vec![Some(g.clone())])),
    );

    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_core_ops() {
        let r = default_registry();
        for name in [
            "add",
            "matmul",
            "tanh",
            "softmax_cross_entropy",
            "gather",
            "concat1",
        ] {
            assert!(r.contains_key(name), "missing {name}");
        }
        assert!(r["add"].backward.is_some());
        assert!(r["less"].backward.is_none());
    }

    #[test]
    fn forward_kernels_work() {
        let r = default_registry();
        let a = Tensor::scalar_f32(2.0);
        let b = Tensor::scalar_f32(5.0);
        let out = (r["mul"].forward)(&[a, b]).unwrap();
        assert_eq!(out.scalar_value_f32().unwrap(), 10.0);
    }

    #[test]
    fn backward_rule_shapes() {
        let r = default_registry();
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::scalar_f32(3.0);
        let out = (r["add"].forward)(&[a.clone(), b.clone()]).unwrap();
        let g = Tensor::ones(DType::F32, &[2]);
        let grads = (r["add"].backward.as_ref().unwrap())(&g, &[a, b], &out).unwrap();
        assert_eq!(grads[0].as_ref().unwrap().shape(), &[2]);
        // broadcast grad reduced back to scalar
        assert_eq!(grads[1].as_ref().unwrap().shape(), &[] as &[usize]);
        assert_eq!(grads[1].as_ref().unwrap().scalar_value_f32().unwrap(), 2.0);
    }

    #[test]
    fn axis_reduction_backward_expands_and_scales() {
        let r = default_registry();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let ax = Tensor::scalar_i64(-2); // negative axis == axis 0
        let out = (r["reduce_mean_axis"].forward)(&[x.clone(), ax.clone()]).unwrap();
        assert_eq!(out.shape(), &[3]);
        assert_eq!(out.as_f32().unwrap(), &[2.5, 3.5, 4.5]);
        let g = Tensor::from_vec(vec![10.0, 20.0, 30.0], &[3]).unwrap();
        let grads =
            (r["reduce_mean_axis"].backward.as_ref().unwrap())(&g, &[x.clone(), ax], &out).unwrap();
        // each input element contributes 1/2 of its column's grad
        let gx = grads[0].as_ref().unwrap();
        assert_eq!(gx.shape(), &[2, 3]);
        assert_eq!(gx.as_f32().unwrap(), &[5.0, 10.0, 15.0, 5.0, 10.0, 15.0]);
        assert!(grads[1].is_none(), "the axis input is not differentiable");

        let ax1 = Tensor::scalar_i64(1);
        let out = (r["reduce_sum_axis"].forward)(&[x.clone(), ax1.clone()]).unwrap();
        assert_eq!(out.as_f32().unwrap(), &[6.0, 15.0]);
        let g = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let grads = (r["reduce_sum_axis"].backward.as_ref().unwrap())(&g, &[x, ax1], &out).unwrap();
        let gx = grads[0].as_ref().unwrap();
        assert_eq!(gx.as_f32().unwrap(), &[1.0, 1.0, 1.0, 2.0, 2.0, 2.0]);

        // out-of-range axis is a structured error, not a panic
        let bad = Tensor::scalar_i64(7);
        let x2 = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        assert!((r["reduce_sum_axis"].forward)(&[x2, bad]).is_err());
    }

    #[test]
    fn concat1_backward_splits() {
        let r = default_registry();
        let a = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
        let b = Tensor::from_vec(vec![3.0], &[1, 1]).unwrap();
        let out = (r["concat1"].forward)(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(out.shape(), &[1, 3]);
        let g = Tensor::from_vec(vec![10.0, 20.0, 30.0], &[1, 3]).unwrap();
        let grads = (r["concat1"].backward.as_ref().unwrap())(&g, &[a, b], &out).unwrap();
        assert_eq!(grads[0].as_ref().unwrap().as_f32().unwrap(), &[10.0, 20.0]);
        assert_eq!(grads[1].as_ref().unwrap().as_f32().unwrap(), &[30.0]);
    }
}
