//! # autograph-eager
//!
//! An imperative, op-by-op execution runtime — the "TensorFlow Eager" /
//! "PyTorch" baseline of the paper's evaluation. Every operation goes
//! through a dynamic dispatch registry (name lookup, boxed kernels,
//! per-op allocation), faithfully reproducing the cost structure that
//! makes eager execution slower than a compiled graph plan: the work per
//! op is the same, the *per-op overhead* is paid on every call, every run.
//!
//! Gradients are computed with a [`tape`]-based reverse-mode autodiff
//! (`tf.GradientTape` / PyTorch autograd analog), which re-records on
//! every execution — exactly the "retracing on every execution" cost the
//! paper contrasts with staged graphs.
//!
//! ## Example
//!
//! ```
//! use autograph_eager::{Eager, EagerTensor};
//! use autograph_tensor::Tensor;
//!
//! let eager = Eager::new();
//! let x = EagerTensor::from(Tensor::scalar_f32(3.0));
//! let y = eager.op("mul", &[&x, &x])?;
//! assert_eq!(y.tensor().scalar_value_f32()?, 9.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod context;
pub mod registry;
pub mod tape;

pub use context::{Eager, EagerTensor};
pub use tape::Tape;

use autograph_tensor::TensorError;
use std::fmt;

/// Error from eager execution.
#[derive(Debug, Clone, PartialEq)]
pub struct EagerError {
    /// What failed.
    pub message: String,
    /// The op being dispatched, if any.
    pub op: Option<String>,
}

impl EagerError {
    /// New error with a message.
    pub fn new(message: impl Into<String>) -> Self {
        EagerError {
            message: message.into(),
            op: None,
        }
    }

    /// Attach the op name.
    pub fn in_op(mut self, op: &str) -> Self {
        self.op = Some(op.to_string());
        self
    }
}

impl fmt::Display for EagerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "eager execution error")?;
        if let Some(op) = &self.op {
            write!(f, " in op '{op}'")?;
        }
        write!(f, ": {}", self.message)
    }
}

impl std::error::Error for EagerError {}

impl From<TensorError> for EagerError {
    fn from(e: TensorError) -> Self {
        EagerError::new(e.to_string())
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, EagerError>;

/// Best-effort human-readable message from a caught panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
