//! Tape-based reverse-mode autodiff for the eager runtime.
//!
//! While the tape is active, every differentiable dispatched op appends an
//! entry recording its inputs, output and node ids. `Tape::gradient`
//! replays the entries in reverse, applying each op's backward rule. A new
//! tape must be recorded for every execution — the per-run retracing cost
//! the paper attributes to imperative systems.

use crate::registry::OpDef;
use crate::{EagerError, Result};
use autograph_tensor::Tensor;
use std::collections::HashMap;

/// One recorded operation.
#[derive(Debug)]
pub struct TapeEntry {
    /// Registry name of the op.
    pub op: String,
    /// Tape node ids of the inputs (None = not watched / constant).
    pub input_nodes: Vec<Option<usize>>,
    /// Input values (cheap Arc clones).
    pub inputs: Vec<Tensor>,
    /// Output value.
    pub output: Tensor,
    /// Tape node id of the output.
    pub output_node: usize,
}

/// A gradient tape: watched tensors plus recorded ops.
#[derive(Debug, Default)]
pub struct Tape {
    entries: Vec<TapeEntry>,
    next_node: usize,
}

impl Tape {
    /// A fresh, empty tape.
    pub fn new() -> Tape {
        Tape::default()
    }

    /// Allocate a node id (for watched leaf tensors).
    pub fn watch(&mut self) -> usize {
        let id = self.next_node;
        self.next_node += 1;
        id
    }

    /// Record one op; returns the output's node id.
    pub fn record(
        &mut self,
        op: &str,
        input_nodes: Vec<Option<usize>>,
        inputs: Vec<Tensor>,
        output: Tensor,
    ) -> usize {
        let output_node = self.watch();
        self.entries.push(TapeEntry {
            op: op.to_string(),
            input_nodes,
            inputs,
            output,
            output_node,
        });
        output_node
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Compute gradients of the (scalar) node `loss_node` with respect to
    /// `wrt_nodes`, looking backward rules up in `registry`.
    ///
    /// # Errors
    ///
    /// Fails when a recorded op on the differentiation path has no
    /// backward rule.
    pub fn gradient(
        &self,
        registry: &HashMap<String, OpDef>,
        loss_node: usize,
        loss_shape: &[usize],
        wrt_nodes: &[usize],
    ) -> Result<Vec<Option<Tensor>>> {
        let mut grads: HashMap<usize, Tensor> = HashMap::new();
        grads.insert(
            loss_node,
            Tensor::ones(autograph_tensor::DType::F32, loss_shape),
        );

        for entry in self.entries.iter().rev() {
            let Some(g) = grads.get(&entry.output_node).cloned() else {
                continue;
            };
            if entry.input_nodes.iter().all(|n| n.is_none()) {
                continue;
            }
            let def = registry
                .get(&entry.op)
                .ok_or_else(|| EagerError::new("op vanished from registry").in_op(&entry.op))?;
            let backward = def
                .backward
                .as_ref()
                .ok_or_else(|| EagerError::new("op has no gradient rule").in_op(&entry.op))?;
            let input_grads = backward(&g, &entry.inputs, &entry.output)
                .map_err(|e| EagerError::new(e.message).in_op(&entry.op))?;
            for (node, grad) in entry.input_nodes.iter().zip(input_grads) {
                if let (Some(node), Some(grad)) = (node, grad) {
                    match grads.remove(node) {
                        Some(acc) => {
                            grads.insert(*node, acc.add(&grad)?);
                        }
                        None => {
                            grads.insert(*node, grad);
                        }
                    }
                }
            }
        }

        Ok(wrt_nodes.iter().map(|n| grads.get(n).cloned()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::default_registry;

    #[test]
    fn records_and_differentiates_chain() {
        // y = (x * x) + x ; dy/dx = 2x + 1 = 7 at x=3
        let reg = default_registry();
        let mut tape = Tape::new();
        let x = Tensor::scalar_f32(3.0);
        let xn = tape.watch();

        let xx = x.mul(&x).unwrap();
        let xxn = tape.record(
            "mul",
            vec![Some(xn), Some(xn)],
            vec![x.clone(), x.clone()],
            xx.clone(),
        );
        let y = xx.add(&x).unwrap();
        let yn = tape.record("add", vec![Some(xxn), Some(xn)], vec![xx, x], y);

        let grads = tape.gradient(&reg, yn, &[], &[xn]).unwrap();
        assert_eq!(grads[0].as_ref().unwrap().scalar_value_f32().unwrap(), 7.0);
    }

    #[test]
    fn unwatched_inputs_skipped() {
        let reg = default_registry();
        let mut tape = Tape::new();
        let a = Tensor::scalar_f32(2.0);
        let b = Tensor::scalar_f32(4.0);
        let out = a.mul(&b).unwrap();
        let n = tape.record("mul", vec![None, None], vec![a, b], out);
        // nothing watched — gradient of n w.r.t. a fresh node is None
        let w = tape.watch();
        let grads = tape.gradient(&reg, n, &[], &[w]).unwrap();
        assert!(grads[0].is_none());
    }

    #[test]
    fn missing_backward_rule_errors() {
        let reg = default_registry();
        let mut tape = Tape::new();
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let an = tape.watch();
        let out = a.less(&Tensor::scalar_f32(1.5)).unwrap();
        let n = tape.record(
            "less",
            vec![Some(an), None],
            vec![a.clone(), Tensor::scalar_f32(1.5)],
            out,
        );
        let err = tape.gradient(&reg, n, &[2], &[an]).unwrap_err();
        assert!(err.to_string().contains("no gradient rule"));
    }

    #[test]
    fn fan_in_accumulates() {
        // z = x*y + x ; dz/dx = y + 1, dz/dy = x
        let reg = default_registry();
        let mut tape = Tape::new();
        let x = Tensor::scalar_f32(3.0);
        let y = Tensor::scalar_f32(5.0);
        let (xn, yn) = (tape.watch(), tape.watch());
        let xy = x.mul(&y).unwrap();
        let xyn = tape.record(
            "mul",
            vec![Some(xn), Some(yn)],
            vec![x.clone(), y.clone()],
            xy.clone(),
        );
        let z = xy.add(&x).unwrap();
        let zn = tape.record("add", vec![Some(xyn), Some(xn)], vec![xy, x], z);
        let grads = tape.gradient(&reg, zn, &[], &[xn, yn]).unwrap();
        assert_eq!(grads[0].as_ref().unwrap().scalar_value_f32().unwrap(), 6.0);
        assert_eq!(grads[1].as_ref().unwrap().scalar_value_f32().unwrap(), 3.0);
    }
}
