#!/usr/bin/env bash
# Local CI: what must be green before merging.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --release --workspace

echo "== cargo test"
cargo test -q --workspace

echo "CI OK"
