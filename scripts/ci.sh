#!/usr/bin/env bash
# Local CI: what must be green before merging.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

# error paths must not panic: the fault-injection crate, the worker
# pool, the serving layer (which must turn every failure into a
# structured HTTP response, never an abort), and the plan store (a
# corrupt cache artifact must fall back to cold staging, never abort)
# ban unwrap/expect crate-wide; the graph executors (exec.rs, sched.rs)
# carry the same module-level #![deny], which the workspace clippy pass
# above enforces
echo "== cargo clippy (no unwrap/expect in fault, executor & serving paths)"
cargo clippy -p autograph-faults -p autograph-par -p autograph-serve -p autograph-planstore --no-deps -- \
    -D warnings -D clippy::unwrap_used -D clippy::expect_used

echo "== cargo build --release"
cargo build --release --workspace

# the suite runs twice: once forced sequential, once through the
# parallel wavefront scheduler — both must be green and the differential
# / determinism tests assert the outputs are bitwise identical
echo "== cargo test (AUTOGRAPH_THREADS=1)"
AUTOGRAPH_THREADS=1 cargo test -q --workspace

echo "== cargo test (AUTOGRAPH_THREADS=4)"
AUTOGRAPH_THREADS=4 cargo test -q --workspace

# chaos suite: deterministic fault injection over the differential corpus,
# two seed families (each test internally covers threads 1 and 4 and a
# second derived seed) — every injected fault must surface as a structured
# Err, and non-faulted reruns must stay bitwise identical
for seed in 7 982451653; do
    echo "== cargo test chaos (AUTOGRAPH_CHAOS_SEED=$seed)"
    AUTOGRAPH_CHAOS_SEED=$seed cargo test -q --test chaos
done

# generative differential fuzzing: a bounded, fully deterministic seed
# range (same seeds -> same programs, bitwise) through every oracle —
# eager vs graph at threads 1 and 4, Lantern where the op set allows,
# bitwise determinism, restaging, and finite-difference gradient checks.
# Any divergence minimizes and fails the build; triaged reproducers live
# in tests/regressions/ and are replayed below.
echo "== genprog fuzz (seeds 0..500, all oracles)"
cargo run --release -q -p genprog -- fuzz --seeds 0..500

# committed reproducers replay clean at threads 1 and 4 (the regressions
# test also runs as part of the workspace suites above; this replay keeps
# the fuzzer's own CLI path exercised)
echo "== genprog replay (tests/regressions/)"
cargo run --release -q -p genprog -- replay tests/regressions/*.pylite

# explain gate: the provenance layer must attribute >=95% of executed
# node self-time back to source lines on all three example programs (a
# control-flow-heavy loop, a matmul-heavy MLP, and a fusion-heavy
# elementwise chain whose kernels the bytecode VM fuses — attribution
# must survive the fused-kernel cost splits), and emit parseable DOT.
# autograph-explain exits nonzero below --min-coverage.
echo "== explain gate (annotated source + DOT, >=95% attribution)"
cargo run --release -q -p autograph-explain -- examples/explain/rnn_loop.pylite \
    --feed x=vec:0.5,1.5,-0.25,2.0 \
    --min-coverage 95 --dot target/explain_rnn_loop.dot >/dev/null
cargo run --release -q -p autograph-explain -- examples/explain/fused_elementwise.pylite \
    --feed x=vec:0.5,1.5,-0.25,2.0 \
    --min-coverage 95 --dot target/explain_fused_elementwise.dot >/dev/null
cargo run --release -q -p autograph-explain -- examples/explain/mlp_matmul.pylite \
    --feed x=mat:4x4:1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16 \
    --feed w1=mat:4x4:0.1,0.2,0.1,0.0,0.3,0.1,0.2,0.1,0.0,0.1,0.3,0.2,0.1,0.0,0.1,0.2 \
    --feed w2=mat:4x4:0.2,0.1,0.0,0.1,0.1,0.2,0.1,0.0,0.0,0.1,0.2,0.1,0.1,0.0,0.1,0.2 \
    --min-coverage 95 --dot target/explain_mlp_matmul.dot >/dev/null
for dot in target/explain_rnn_loop.dot target/explain_fused_elementwise.dot \
           target/explain_mlp_matmul.dot; do
    head -1 "$dot" | grep -q '^digraph' || { echo "FAIL: $dot is not a digraph"; exit 1; }
done

echo "== bench artifacts (BENCH_table1.json + BENCH_parallel.json + BENCH_report.json)"
cargo run --release -q -p autograph-bench --bin table1 -- \
    --runs 5 --threads 4 \
    --json BENCH_parallel.json \
    --json-table BENCH_table1.json \
    --report BENCH_report.json

# Stage bench: cold staging vs warm plan-cache restore on a fresh
# on-disk store. The bin itself is a gate: it exits nonzero unless the
# warm path skipped the staging pipeline entirely (asserted via obs
# spans), reproduced the cold results bitwise, and came in at least 5x
# faster; BENCH_stage.json additionally diffs against the committed
# baseline below.
echo "== stage bench (plan-cache cold vs warm -> BENCH_stage.json)"
rm -rf target/plan-cache-bench BENCH_stage.json
cargo run --release -q -p autograph-bench --bin stage_bench -- \
    --runs 5 --cache-dir target/plan-cache-bench --json BENCH_stage.json

# Serving bench: boot autograph-serve on an ephemeral port (the
# --addr-file handshake avoids port races), burst it with the load
# generator at 1 and 4 client threads into one BENCH_serve.json, then
# SIGTERM it — the server must drain cleanly (exit 0) or the gate fails.
# The server boots with trace sampling OFF (the default), so the
# throughput gate below also certifies the telemetry plane's
# sampling-off overhead against the pre-telemetry baselines. Each burst
# runs with --scrape-metrics: the loadgen scrapes GET /metrics before
# and after, validates the exposition with the strict Prometheus-text
# parser, asserts every required family is present and that counters
# never go backwards, and exits nonzero (failing CI) otherwise.
echo "== serve bench (autograph-serve + autograph-loadgen -> BENCH_serve.json)"
rm -f target/serve.addr BENCH_serve.json
target/release/autograph-serve --program examples/serve/mlp.pylite \
    --addr-file target/serve.addr --workers 2 --queue-depth 64 \
    --deadline-ms 5000 --batch-fns score --max-batch 8 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT
target/release/autograph-loadgen --addr-file target/serve.addr \
    --function score --body '{"args":[0.5]}' \
    --threads 1 --requests 300 --deadline-ms 5000 \
    --scrape-metrics \
    --json BENCH_serve.json --key threads_1
target/release/autograph-loadgen --addr-file target/serve.addr \
    --function score --body '{"args":[0.5]}' \
    --threads 4 --requests 300 --deadline-ms 5000 \
    --scrape-metrics \
    --json BENCH_serve.json --key threads_4
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || { echo "FAIL: autograph-serve did not drain cleanly"; exit 1; }
trap - EXIT

# Perf-regression gate: diff fresh bench results against the committed
# baselines. Tolerances are deliberately WIDE (rel 60%, and wider for the
# most timing-sensitive metrics): CI runs on shared, often single-CPU
# machines where run-to-run noise of 2x is routine. The gate exists to
# catch order-of-magnitude regressions and structural breaks (metric
# disappeared, determinism bit flipped, speedup collapsed), not 10%
# drifts. The serve latency tolerances are the widest: 300% relative on
# p50/p99 (up to 4x the baseline) plus a 5ms absolute floor — baseline
# percentiles are sub-millisecond, where a single scheduler hiccup on a
# busy 1-CPU runner is a four-digit relative "regression"; `all_ok`
# (every request answered, zero transport errors) and throughput_rps
# are the load-bearing serve gates. Regenerate baselines on a quiet
# machine with:
#   scripts/ci.sh --update-baselines   (or copy BENCH_*.json to baselines/)
GATED_BASELINES=(BENCH_table1.json BENCH_parallel.json BENCH_report.json BENCH_serve.json BENCH_stage.json)
if [[ "${1:-}" == "--update-baselines" ]]; then
    echo "== updating committed baselines (baselines/)"
    mkdir -p baselines
    for b in "${GATED_BASELINES[@]}"; do
        cp "$b" "baselines/$b"
    done
else
    # a gate that silently skips because its baseline vanished is no
    # gate at all: missing baselines fail loudly
    for b in "${GATED_BASELINES[@]}"; do
        [[ -f "baselines/$b" ]] || {
            echo "FAIL: gated baseline baselines/$b is missing —"
            echo "      regenerate with scripts/ci.sh --update-baselines on a quiet machine"
            exit 1
        }
    done
    echo "== perf-regression gate (autograph-report diff vs baselines/)"
    cargo run --release -q -p autograph-report --bin autograph-report -- \
        diff baselines/BENCH_table1.json BENCH_table1.json --tol-pct 60
    cargo run --release -q -p autograph-report --bin autograph-report -- \
        diff baselines/BENCH_parallel.json BENCH_parallel.json \
        --tol-pct 60 --tol speedup=75 --tol seconds=75
    cargo run --release -q -p autograph-report --bin autograph-report -- \
        diff baselines/BENCH_report.json BENCH_report.json --tol-pct 60
    cargo run --release -q -p autograph-report --bin autograph-report -- \
        diff baselines/BENCH_serve.json BENCH_serve.json \
        --tol-pct 75 --abs 5 --tol p50_ms=300 --tol p99_ms=300 --tol mean_ms=300 \
        --tol throughput_rps=75
    # the load-bearing stage gates are the booleans (staging skipped,
    # bitwise identity) and warm_speedup; raw ms are noise-prone
    cargo run --release -q -p autograph-report --bin autograph-report -- \
        diff baselines/BENCH_stage.json BENCH_stage.json \
        --tol-pct 75 --abs 5 --tol warm_speedup=80 --tol cold_ms=300 --tol warm_ms=300
fi

echo "CI OK"
