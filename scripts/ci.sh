#!/usr/bin/env bash
# Local CI: what must be green before merging.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --release --workspace

# the suite runs twice: once forced sequential, once through the
# parallel wavefront scheduler — both must be green and the differential
# / determinism tests assert the outputs are bitwise identical
echo "== cargo test (AUTOGRAPH_THREADS=1)"
AUTOGRAPH_THREADS=1 cargo test -q --workspace

echo "== cargo test (AUTOGRAPH_THREADS=4)"
AUTOGRAPH_THREADS=4 cargo test -q --workspace

echo "== parallel executor baseline (BENCH_parallel.json)"
cargo run --release -q -p autograph-bench --bin table1 -- \
    --runs 5 --threads 4 --json BENCH_parallel.json

echo "CI OK"
