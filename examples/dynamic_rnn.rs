//! The §9 dynamic RNN: one imperative source, four execution strategies
//! (Table 1's configurations), all agreeing numerically.
//!
//! ```sh
//! cargo run --release --example dynamic_rnn
//! ```

use autograph::prelude::*;
use autograph_models::rnn;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (batch, time, feat, hidden) = (8, 32, 8, 32);
    let weights = rnn::RnnWeights::new(feat, hidden, 42);
    let inputs = rnn::inputs(batch, time, feat, hidden, 7);

    println!("--- the imperative source (the paper's §9 snippet) ---");
    println!("{}", rnn::DYNAMIC_RNN_SRC);

    // 1. Eager: interpreted op by op.
    let mut rt = rnn::runtime(&weights, false)?;
    let t0 = Instant::now();
    let (out_eager, _) = rnn::run_eager(&mut rt, &inputs)?;
    println!("eager run:        {:?}  (per call)", t0.elapsed());

    // 2. Official fused kernel.
    let (out_official, _) = rnn::official(&weights, &inputs)?;

    // 3. AutoGraph: convert + stage once, run many times.
    let mut rt = rnn::runtime(&weights, true)?;
    let t0 = Instant::now();
    let staged = rnn::stage_autograph(&mut rt)?;
    println!("convert + stage:  {:?}  (once)", t0.elapsed());
    let mut sess = Session::new(staged.graph);
    let feeds = [
        ("input_data", inputs.input_data.clone()),
        ("initial_state", inputs.initial_state.clone()),
        ("sequence_len", inputs.sequence_len.clone()),
    ];
    let t0 = Instant::now();
    let out = sess.run(&feeds, &staged.outputs)?;
    println!("staged run:       {:?}  (per call)", t0.elapsed());

    // 4. Handwritten graph (Appendix A style).
    let (g, fetches) = rnn::build_handwritten(&weights);
    let mut sess2 = Session::new(g);
    let out2 = sess2.run(&feeds, &fetches)?;

    // All four agree.
    let max_diff = |a: &Tensor, b: &Tensor| -> f32 {
        a.as_f32()
            .unwrap()
            .iter()
            .zip(b.as_f32().unwrap())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max)
    };
    println!(
        "max |eager - official|    = {:.2e}",
        max_diff(&out_eager, &out_official)
    );
    println!(
        "max |staged - official|   = {:.2e}",
        max_diff(&out[0], &out_official)
    );
    println!(
        "max |handwritten - staged| = {:.2e}",
        max_diff(&out2[0], &out[0])
    );
    Ok(())
}
