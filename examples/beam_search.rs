//! Beam search (Appendix D.1): idiomatic `while True:` + data-dependent
//! `break`, lowered by the break pass and staged into a single in-graph
//! loop that stops early when all beams emit EOS.
//!
//! ```sh
//! cargo run --release --example beam_search
//! ```

use autograph::prelude::*;
use autograph_models::beam;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = beam::BeamConfig {
        beam: 4,
        vocab: 50,
        hidden: 16,
        eos: 0,
    };
    let weights = beam::BeamWeights::new(&cfg, 4);
    let init = beam::init_state(&cfg, 9);

    println!("--- the imperative beam search (two breaks) ---");
    println!("{}", beam::BEAM_SRC);

    // What conversion does to the breaks:
    let converted = convert_source(beam::BEAM_SRC)?;
    let loop_line = converted
        .lines()
        .find(|l| l.contains("ag.while_stmt"))
        .unwrap_or("");
    println!("--- after conversion, the loop is functional ---");
    println!("... {} ...\n", loop_line.trim());

    // Eager run
    let mut rt = beam::runtime(&cfg, false)?;
    let (tokens, scores) = beam::run_eager(&mut rt, &weights, &init, 12)?;
    println!(
        "eager:  {} steps, best score {:.3}",
        tokens.shape()[0],
        scores.as_f32()?[0]
    );

    // Staged run
    let mut rt2 = beam::runtime(&cfg, true)?;
    let staged = beam::stage(&mut rt2, &weights)?;
    let mut sess = Session::new(staged.graph);
    let out = sess.run(
        &[
            ("init_state", init.clone()),
            ("max_len", Tensor::scalar_i64(12)),
        ],
        &staged.outputs,
    )?;
    println!(
        "staged: {} steps, best score {:.3}",
        out[0].shape()[0],
        out[1].as_f32()?[0]
    );
    assert_eq!(out[0].as_i64()?, tokens.as_i64()?);
    println!("\ntoken matrix (steps x beams):");
    for step in 0..out[0].shape()[0] {
        let row = out[0].index_axis0(step as i64)?;
        println!("  step {step}: {:?}", row.as_i64()?);
    }
    Ok(())
}
