//! Quickstart: the paper's Listing 1, end to end.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use autograph::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let src = "\
def f(x):
    if x > 0:
        x = x * x
    return x
";
    println!("--- original (imperative) source ---\n{src}");

    // Source-to-source view: inspect what the converter produces (§10:
    // \"the generated code can be inspected, and even modified\").
    let converted = convert_source(src)?;
    println!("--- converted source ---\n{converted}");

    // Load with conversion (the @ag.convert() decorator analog).
    let mut rt = Runtime::load(src, true)?;

    // Dynamic dispatch, case 1: a Python int executes imperatively.
    let y = rt.call("f", vec![Value::Int(3)])?;
    println!("f(3) dispatched imperatively      = {}", y.render());

    // Dynamic dispatch, case 2: an eager tensor also runs imperatively.
    let y = rt.call("f", vec![Value::tensor(Tensor::scalar_f32(-4.0))])?;
    println!("f(tensor -4.0) eager              = {}", y.render());

    // Dynamic dispatch, case 3: a placeholder stages tf.cond into a graph.
    let staged = rt.stage_to_graph("f", vec![GraphArg::Placeholder("x".into())])?;
    println!(
        "staged graph: {} nodes (including a Cond)",
        staged.graph.deep_len()
    );
    let mut sess = Session::new(staged.graph);
    for v in [5.0f32, -5.0] {
        let out = sess.run(&[("x", Tensor::scalar_f32(v))], &staged.outputs)?;
        println!(
            "session.run(x = {v:>4})             = {}",
            out[0].scalar_value_f32()?
        );
    }
    Ok(())
}
