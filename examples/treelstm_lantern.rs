//! Recursive TreeLSTM staged to the Lantern backend (§8, Table 3):
//! a recursive model TensorFlow graphs cannot express, staged once into an
//! S-expression IR with a *single* definition per function, then trained
//! with CPS-style reverse-mode AD.
//!
//! ```sh
//! cargo run --release --example treelstm_lantern
//! ```

use autograph_models::data::random_tree_lantern;
use autograph_models::treelstm;
use autograph_tensor::{Rng64, Tensor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dim = 8;
    let mut weights = treelstm::TreeWeights::new(dim, 2, 11);

    println!("--- the recursive imperative model ---");
    println!("{}", treelstm::TREELSTM_SRC);

    let program = treelstm::stage_lantern(&weights)?;
    println!("--- staged Lantern functions (recursion preserved) ---");
    for f in &program.funcs {
        println!("(def {} ...)  [{} params]", f.name, f.num_params);
    }
    println!("note: tree_lstm appears once, despite two recursive call sites\n");

    let engine = autograph_lantern::Engine::new(program);
    let mut rng = Rng64::new(21);
    let trees: Vec<_> = (0..8)
        .map(|_| random_tree_lantern(&mut rng, 6, dim))
        .collect();
    let labels: Vec<Tensor> = (0..8)
        .map(|i| Tensor::from_vec_i64(vec![(i % 2) as i64], &[1]).expect("label"))
        .collect();

    for epoch in 0..10 {
        let mut total = 0.0;
        for (tree, label) in trees.iter().zip(&labels) {
            total += treelstm::lantern_train_step(&engine, tree, label, &mut weights, 0.1)?;
        }
        println!("epoch {epoch}: mean loss {:.4}", total / trees.len() as f32);
    }
    Ok(())
}
