//! A tour of AutoGraph's three error classes (Appendix B) and how each is
//! attributed to the user's original source.
//!
//! ```sh
//! cargo run --release --example errors_tour
//! ```

use autograph::prelude::*;

fn main() {
    println!("=== 1. conversion errors (unsupported idiom, legal PyLite) ===\n");
    let src = "\
def f(x):
    total = 0
    global counter
    return total
";
    println!("{src}");
    match autograph::convert_source(src) {
        Err(e) => println!("-> {}\n", e.with_source(src)),
        Ok(_) => unreachable!("global must be rejected"),
    }

    println!("=== 2. staging errors (detected while building the graph) ===\n");
    // 2a. a branch that doesn't define a value on every path
    let src = "\
def f(x):
    if x > 0:
        y = x * 2.0
    return y
";
    println!("{src}");
    let mut rt = Runtime::load(src, true).expect("load");
    match rt.stage_to_graph("f", vec![GraphArg::Placeholder("x".into())]) {
        Err(e) => println!("-> {e}\n"),
        Ok(_) => unreachable!(),
    }

    // 2b. statically-provable shape mismatch, caught at compile time
    let src = "\
def g(x):
    h = tf.matmul(x, w1)
    return tf.matmul(h, w2)
";
    println!("{src}");
    let mut rt = Runtime::load(src, true).expect("load");
    rt.globals
        .set("w1", Value::tensor(Tensor::zeros(DType::F32, &[8, 16])));
    rt.globals
        .set("w2", Value::tensor(Tensor::zeros(DType::F32, &[10, 4]))); // 16 != 10
    match rt.compile("g", &["x"]) {
        Err(e) => println!("-> {e}\n"),
        Ok(_) => unreachable!(),
    }

    println!("=== 3. runtime errors (staged IR execution) ===\n");
    let src = "\
def h(x):
    assert x > 0.0, 'x must be positive'
    return tf.sqrt(x)
";
    println!("{src}");
    let mut rt = Runtime::load(src, true).expect("load");
    let staged = rt
        .stage_to_graph("h", vec![GraphArg::Placeholder("x".into())])
        .expect("stage");
    let mut sess = Session::new(staged.graph);
    let ok = sess
        .run(&[("x", Tensor::scalar_f32(9.0))], &staged.outputs)
        .expect("run");
    println!("h(9.0) = {}", ok[0].scalar_value_f32().expect("scalar"));
    match sess.run(&[("x", Tensor::scalar_f32(-1.0))], &staged.outputs) {
        Err(e) => println!("h(-1.0) -> {e}"),
        Ok(_) => unreachable!(),
    }
}
