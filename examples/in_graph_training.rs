//! In-graph training (Table 2): the entire SGD loop — data indexing,
//! forward pass, symbolic gradients, parameter updates — staged into one
//! graph and executed with a single `Session::run`.
//!
//! ```sh
//! cargo run --release --example in_graph_training
//! ```

use autograph::prelude::*;
use autograph_models::data::synthetic_mnist;
use autograph_models::mnist;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let batch = 64;
    let steps = 300;
    let (images, labels) = synthetic_mnist(mnist::NUM_BATCHES, batch, 99);
    let params = mnist::LinearParams::new(1);

    let x0 = images.index_axis0(0)?;
    let y0 = labels.index_axis0(0)?;
    println!("initial loss: {:.4}", mnist::loss_on(&params, &x0, &y0)?);

    println!("\n--- the imperative training loop ---");
    println!(
        "{}",
        mnist::TRAIN_SRC.split("def train_eager").next().unwrap()
    );

    // Convert + stage the whole loop, gradients included.
    let mut rt = mnist::runtime(true)?;
    let staged = mnist::stage_autograph(&mut rt)?;
    println!(
        "staged training graph: {} nodes (one While with tf.gradients inside)",
        staged.graph.deep_len()
    );

    let mut sess = Session::new(staged.graph);
    let t0 = std::time::Instant::now();
    let out = sess.run(
        &[
            ("images", images.clone()),
            ("labels", labels.clone()),
            ("w", params.w.clone()),
            ("b", params.b.clone()),
            ("steps", Tensor::scalar_i64(steps as i64)),
        ],
        &staged.outputs,
    )?;
    let dt = t0.elapsed();
    let trained = mnist::LinearParams {
        w: out[0].clone(),
        b: out[1].clone(),
    };
    println!(
        "{steps} SGD steps in one Session::run: {dt:?} ({:.0} steps/sec)",
        steps as f64 / dt.as_secs_f64()
    );
    println!("final loss:   {:.4}", mnist::loss_on(&trained, &x0, &y0)?);
    Ok(())
}
