//! Offline stand-in for the `serde_json` crate.
//!
//! Provides [`from_str`] parsing strict JSON into a [`Value`] tree, plus
//! the accessor surface the workspace's tests use (`get`, `as_*`,
//! indexing). There is no serde integration and no serializer — the
//! exporters in this workspace hand-render their JSON; this crate exists
//! so tests can *parse it back* and assert on structure.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (kept as f64, like serde_json's arbitrary
    /// precision disabled default for the ranges we use).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (key order normalized).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Object field or `None`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// Array element or `None`.
    pub fn get_index(&self, i: usize) -> Option<&Value> {
        match self {
            Value::Array(a) => a.get(i),
            _ => None,
        }
    }

    /// The contained array, if this is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The contained object, if this is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The contained string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number as f64, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as u64, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The number as i64, if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 => Some(*n as i64),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        static NULL: Value = Value::Null;
        self.get_index(i).unwrap_or(&NULL)
    }
}

/// A parse failure with byte offset.
#[derive(Debug, Clone)]
pub struct Error {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for Error {}

/// Parse a complete JSON document. Trailing non-whitespace is an error.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> Error {
        Error {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // surrogate pairs are not needed by our traces;
                            // map unpaired surrogates to the replacement char
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // consume one UTF-8 scalar
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = s.chars().next().ok_or_else(|| self.err("unterminated"))?;
                    if (ch as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = from_str(r#"{"a": [1, 2.5, {"b": "x\ny"}], "c": true, "d": null}"#).unwrap();
        assert_eq!(v["a"][0].as_u64(), Some(1));
        assert_eq!(v["a"][1].as_f64(), Some(2.5));
        assert_eq!(v["a"][2]["b"].as_str(), Some("x\ny"));
        assert_eq!(v["c"].as_bool(), Some(true));
        assert!(v["d"].is_null());
        assert!(v["missing"].is_null());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str(r#"{"a" 1}"#).is_err());
        assert!(from_str("01x").is_err());
        assert!(from_str("{} trailing").is_err());
        assert!(from_str("\"\u{0001}\"").is_err());
    }

    #[test]
    fn numbers_and_escapes_round_trip() {
        let v = from_str(r#"[-1.5e3, 0, 42, "A\t"]"#).unwrap();
        assert_eq!(v[0].as_f64(), Some(-1500.0));
        assert_eq!(v[1].as_i64(), Some(0));
        assert_eq!(v[2].as_u64(), Some(42));
        assert_eq!(v[3].as_str(), Some("A\t"));
    }
}
